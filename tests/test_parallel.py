"""Tests for the deterministic process-parallel runner (repro.parallel)."""

import gc
import pickle

import numpy as np
import pytest

from repro import caches
from repro.baselines import deepsea, hive, non_partitioned
from repro.bench.harness import clear_caches, run_systems, sdss_fixture
from repro.bench.profile import WallClockProfiler, check_report_against_baseline
from repro.engine.indexes import _GLOBAL_CACHE
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.errors import WorkerCrashError
from repro.parallel import (
    FixtureSpec,
    RunTask,
    SystemSpec,
    WorkloadSpec,
    batch_map,
    diff_results,
    fan_out,
    fingerprint,
    result_fingerprint,
    steal_map,
)
from repro.workloads.generator import sdss_mapped_workload

QUERIES = 12


def _fixture():
    return sdss_fixture(10.0, log_queries=500)


def _factories(fx):
    return {
        "H": lambda: hive(fx.catalog, domains=fx.domains),
        "NP": lambda: non_partitioned(fx.catalog, domains=fx.domains),
        "DS": lambda: deepsea(fx.catalog, domains=fx.domains),
    }


def _plans(fx):
    return sdss_mapped_workload(fx.log, fx.item_domain, n_queries=QUERIES, seed=2)


class TestFanOut:
    def test_results_in_task_order(self):
        tasks = [(lambda i=i: i * i) for i in range(5)]
        assert fan_out(tasks, workers=0) == [0, 1, 4, 9, 16]
        assert fan_out(tasks, workers=2) == [0, 1, 4, 9, 16]

    def test_submission_order_permuted_results_unchanged(self):
        tasks = [(lambda i=i: i + 10) for i in range(4)]
        shuffled = fan_out(tasks, workers=2, submission_order=[3, 1, 0, 2])
        assert shuffled == [10, 11, 12, 13]

    def test_submission_order_must_be_permutation(self):
        with pytest.raises(ValueError):
            fan_out([lambda: 1, lambda: 2], submission_order=[0, 0])

    def test_batch_map_serial_below_threshold(self):
        calls = batch_map(lambda x: x + 1, [1, 2, 3], workers=4, min_items=16)
        assert calls == [2, 3, 4]

    def test_batch_map_parallel_matches_serial(self):
        items = list(range(40))
        expected = [x * 2 for x in items]
        assert batch_map(lambda x: x * 2, items, workers=2, min_items=16) == expected


class TestWorkerCrashRecovery:
    def test_fault_plan_crash_then_retry_succeeds(self):
        tasks = [(lambda i=i: i * i) for i in range(6)]
        out = fan_out(tasks, workers=3, fault_plan={2: 1, 5: 1})
        assert out == [0, 1, 4, 9, 16, 25]

    def test_retry_budget_exhausted_raises_typed(self):
        tasks = [(lambda i=i: i) for i in range(4)]
        with pytest.raises(WorkerCrashError, match="retry limit"):
            fan_out(tasks, workers=2, retries=1, fault_plan={1: 99})
        try:
            fan_out(tasks, workers=2, retries=1, fault_plan={1: 99})
        except WorkerCrashError as exc:
            assert exc.index == 1
            assert exc.dispatches == 2

    def test_retries_zero_fails_on_first_crash(self):
        with pytest.raises(WorkerCrashError):
            fan_out([lambda: 1, lambda: 2], workers=2, retries=0, fault_plan={0: 1})

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            fan_out([lambda: 1, lambda: 2], workers=2, retries=-1)

    def test_worker_death_mid_batch_recovered(self, tmp_path):
        # A task that hard-kills its own worker on the first dispatch
        # (os._exit: no exception, no cleanup — just EOF on the pipe)
        # must be re-dispatched and complete, never hang the pool.
        marker = tmp_path / "died-once"

        def victim():
            import os

            if not marker.exists():
                marker.write_text("x")
                os._exit(23)
            return "survived"

        out = fan_out([lambda: "a", victim, lambda: "c"], workers=3)
        assert out == ["a", "survived", "c"]

    def test_task_timeout_kills_and_redispatches(self, tmp_path):
        marker = tmp_path / "slow-once"

        def slow_once():
            import time

            if not marker.exists():
                marker.write_text("x")
                time.sleep(60)
            return "done"

        out = fan_out([slow_once, lambda: "fast"], workers=2, task_timeout=3.0)
        assert out == ["done", "fast"]

    def test_task_exception_propagates_to_caller(self):
        def boom():
            raise ValueError("boom in worker")

        with pytest.raises(ValueError, match="boom in worker"):
            fan_out([lambda: 1, boom, lambda: 3], workers=2)

    def test_crashes_do_not_change_engine_results(self):
        # Worker kills perturb scheduling only: a re-dispatched RunTask
        # rebuilds the same system and replays the same workload, so the
        # crashed run's fingerprints match the crash-free run's exactly.
        fixture = FixtureSpec("sdss", 10.0, log_queries=500)
        workload = WorkloadSpec(QUERIES)
        tasks = [
            RunTask(label, SystemSpec.of(name), fixture, workload)
            for label, name in (("H", "hive"), ("DS", "deepsea"))
        ]
        plain = fan_out(tasks, workers=0)
        crashed = fan_out(tasks, workers=2, fault_plan={0: 1, 1: 1})
        for a, b in zip(plain, crashed):
            assert result_fingerprint(a) == result_fingerprint(b)


class TestTaskSpecs:
    SPEC = RunTask(
        "DS",
        SystemSpec.of("deepsea"),
        FixtureSpec("sdss", 10.0, log_queries=500),
        WorkloadSpec(QUERIES),
    )

    def test_specs_pickle_roundtrip(self):
        clone = pickle.loads(pickle.dumps(self.SPEC))
        assert clone == self.SPEC
        assert hash(clone) == hash(self.SPEC)

    def test_spec_runs_like_direct_construction(self):
        fx = _fixture()
        direct = run_systems({"DS": _factories(fx)["DS"]}, _plans(fx))["DS"]
        from_spec = self.SPEC.run()
        assert result_fingerprint(from_spec) == result_fingerprint(direct)

    def test_unknown_factory_rejected(self):
        spec = SystemSpec.of("no_such_system")
        with pytest.raises(ValueError, match="unknown system factory"):
            spec.build(_fixture())

    def test_pool_fraction_resolved_against_catalog(self):
        fx = _fixture()
        system = SystemSpec.of("deepsea", pool_fraction=0.25).build(fx)
        assert system.pool.smax_bytes == pytest.approx(0.25 * fx.catalog.total_size_bytes)

    def test_workload_slice(self):
        fx = _fixture()
        whole = WorkloadSpec(QUERIES).build(fx)
        shard = WorkloadSpec(QUERIES, start=4, stop=8).build(fx)
        assert len(whole) == QUERIES
        assert len(shard) == 4

    def test_table_pickle_strips_lineage(self):
        schema = Schema.of(Column("a"), Column("b"))
        base = Table.from_dict(schema, {"a": [3, 1, 2], "b": [9, 8, 7]})
        selected = base.filter(np.array([True, False, True]))
        assert selected._lineage is not None
        clone = pickle.loads(pickle.dumps(selected))
        assert clone._lineage is None
        assert clone.sorted_rows() == selected.sorted_rows()


class TestDeterminism:
    def test_run_systems_identical_across_worker_counts(self):
        fx = _fixture()
        plans = _plans(fx)
        clear_caches()
        serial = run_systems(_factories(fx), plans, workers=0)
        base = fingerprint(serial)
        for workers in (1, 4):
            clear_caches()
            results = run_systems(_factories(fx), plans, workers=workers)
            assert fingerprint(results) == base, "\n".join(diff_results(serial, results))

    def test_shuffled_submission_same_fingerprints(self):
        fixture = FixtureSpec("sdss", 10.0, log_queries=500)
        workload = WorkloadSpec(QUERIES)
        tasks = [
            RunTask(label, SystemSpec.of(name), fixture, workload)
            for label, name in (
                ("H", "hive"),
                ("NP", "non_partitioned"),
                ("DS", "deepsea"),
            )
        ]
        serial = fan_out(tasks, workers=0)
        shuffled = fan_out(tasks, workers=2, submission_order=[2, 0, 1])
        for a, b in zip(serial, shuffled):
            assert result_fingerprint(a) == result_fingerprint(b)

    def test_deepsea_parallel_refinement_same_fingerprints(self):
        # batch_map inside §7.2's refinement filter must never change a
        # decision, whatever the worker budget.
        fx = _fixture()
        plans = _plans(fx)

        def run(workers):
            system = deepsea(fx.catalog, domains=fx.domains)
            system.parallel_workers = workers
            return run_systems({"DS": lambda: system}, plans)

        assert fingerprint(run(0)) == fingerprint(run(2))

    def test_diff_results_names_divergence(self):
        fx = _fixture()
        plans = _plans(fx)
        a = run_systems(_factories(fx), plans[:3])
        b = run_systems({"H": _factories(fx)["H"]}, plans[:3])
        lines = diff_results(a, b)
        assert any("present only in serial" in line for line in lines)


class TestCacheRegistry:
    def test_known_caches_registered(self):
        names = caches.registered_caches()
        for expected in (
            "bench.harness.fixtures",
            "engine.indexes.probe",
            "engine.indexes.sort",
            "matching.match_view",
            "query.analysis",
            "query.optimizer.pushdown",
            "query.signature",
        ):
            assert expected in names

    def test_registration_idempotent_latest_wins(self):
        calls = []
        try:
            caches.register_cache("test.dummy", lambda: calls.append("old"))
            caches.register_cache("test.dummy", lambda: calls.append("new"))
            caches.clear_all_caches()
            assert calls == ["new"]
        finally:
            caches._CLEARERS.pop("test.dummy", None)
            caches._STATS.pop("test.dummy", None)

    def test_stats_shape(self):
        for name, stats in caches.cache_stats().items():
            for key in ("hits", "misses", "evictions", "entries"):
                assert key in stats, f"{name} lacks {key!r}"
                assert stats[key] >= 0

    def test_harness_clear_caches_covers_registry(self):
        fx = _fixture()
        run_systems(_factories(fx), _plans(fx))
        assert any(s["entries"] > 0 for s in caches.cache_stats().values())
        clear_caches()
        stats = caches.cache_stats()
        assert all(s["entries"] == 0 for s in stats.values())
        assert all(s["hits"] == 0 and s["misses"] == 0 for s in stats.values())


class TestCacheCounters:
    def test_sort_index_hits_and_misses(self):
        schema = Schema.of(Column("k"))
        table = Table.from_dict(schema, {"k": [3, 1, 2]})
        before = _GLOBAL_CACHE.stats()
        _GLOBAL_CACHE.sort_index(table, "k")
        _GLOBAL_CACHE.sort_index(table, "k")
        after = _GLOBAL_CACHE.stats()
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] == before["hits"] + 1

    def test_sort_index_eviction_counted_on_table_death(self):
        schema = Schema.of(Column("k"))
        table = Table.from_dict(schema, {"k": [3, 1, 2]})
        _GLOBAL_CACHE.sort_index(table, "k")
        before = _GLOBAL_CACHE.stats()["evictions"]
        del table
        gc.collect()
        assert _GLOBAL_CACHE.stats()["evictions"] == before + 1

    def test_workload_populates_counters(self):
        clear_caches()
        fx = _fixture()
        run_systems(_factories(fx), _plans(fx))
        stats = caches.cache_stats()
        assert stats["engine.indexes.sort"]["hits"] > 0
        assert stats["engine.indexes.sort"]["misses"] > 0
        assert stats["query.signature"]["hits"] > 0


class TestProfileIntegration:
    def test_parallel_profilers_merge(self):
        fx = _fixture()
        plans = _plans(fx)
        profilers = {label: WallClockProfiler() for label in ("H", "NP", "DS")}
        telemetry = {}
        run_systems(_factories(fx), plans, profilers, workers=2, telemetry=telemetry)
        for label, prof in profilers.items():
            assert prof.queries == QUERIES, label
            assert prof.total_seconds > 0, label
        assert set(telemetry) == {"H", "NP", "DS"}
        for info in telemetry.values():
            assert info.profile is not None
            assert "engine.indexes.sort" in info.caches


class TestCheckReport:
    BASELINE = {
        "total_seconds": 1.0,
        "stages": {
            "matching": {"seconds": 0.5, "calls": 10},
            "materialization": {"seconds": 0.01, "calls": 10},
        },
    }

    def test_ok_within_limit(self):
        report = {
            "total_seconds": 1.5,
            "stages": {"matching": {"seconds": 0.8, "calls": 10}},
        }
        ok, message = check_report_against_baseline(report, self.BASELINE)
        assert ok
        assert message.startswith("OK")

    def test_regression_names_the_phase(self):
        report = {
            "total_seconds": 1.5,
            "stages": {"matching": {"seconds": 4.0, "calls": 10}},
        }
        ok, message = check_report_against_baseline(report, self.BASELINE)
        assert not ok
        assert "REGRESSION" in message
        assert "stage matching" in message.splitlines()[0]

    def test_tiny_stages_not_gated(self):
        # materialization (10 ms baseline) regressing 100x is noise, not
        # a gate trip, as long as total and the large stages hold.
        report = {
            "total_seconds": 1.0,
            "stages": {
                "matching": {"seconds": 0.5, "calls": 10},
                "materialization": {"seconds": 1.0, "calls": 10},
            },
        }
        ok, _ = check_report_against_baseline(report, self.BASELINE)
        assert ok

    def test_missing_baseline_total_fails(self):
        ok, message = check_report_against_baseline({"total_seconds": 1.0}, {})
        assert not ok
        assert "baseline" in message


class TestCliDeterminism:
    def test_determinism_command_smoke(self, capsys):
        from repro.cli import main

        code = main(
            [
                "determinism",
                "--queries",
                "8",
                "--instance-gb",
                "10",
                "--workers",
                "1,2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "identical" in out


class TestStealMap:
    def test_results_in_task_order(self):
        tasks = [(lambda i=i: i * i) for i in range(9)]
        assert steal_map(tasks, workers=0) == [i * i for i in range(9)]
        assert steal_map(tasks, workers=3, chunk_size=2) == [i * i for i in range(9)]

    def test_submission_order_permuted_results_unchanged(self):
        tasks = [(lambda i=i: i + 10) for i in range(6)]
        shuffled = steal_map(
            tasks, workers=2, chunk_size=1, submission_order=[5, 3, 1, 0, 4, 2]
        )
        assert shuffled == [10, 11, 12, 13, 14, 15]

    def test_submission_order_must_be_permutation(self):
        with pytest.raises(ValueError):
            steal_map([lambda: 1, lambda: 2], workers=2, submission_order=[1, 1])

    def test_task_exception_propagates(self):
        def boom():
            raise RuntimeError("task failed")

        with pytest.raises(RuntimeError):
            steal_map([lambda: 1, boom, lambda: 3], workers=2, chunk_size=1)

    def test_crash_mid_chunk_redispatches_remainder(self):
        tasks = [(lambda i=i: i * 3) for i in range(8)]
        out = steal_map(
            tasks, workers=2, chunk_size=4, fault_plan={0: 1, 5: 1}, retries=2
        )
        assert out == [i * 3 for i in range(8)]

    def test_retry_budget_exhausted_raises_typed(self):
        with pytest.raises(WorkerCrashError):
            steal_map(
                [lambda: 1, lambda: 2], workers=2, chunk_size=1,
                fault_plan={0: 5}, retries=1,
            )

    def test_worker_stats_parallel_and_serial_shapes(self):
        stats: list = []
        steal_map([(lambda i=i: i) for i in range(6)], workers=2,
                  chunk_size=1, worker_stats=stats)
        assert len(stats) == 2
        assert sum(s["tasks"] for s in stats) == 6
        for entry in stats:
            assert set(entry) == {"pid", "tasks", "caches"}

        serial_stats: list = []
        steal_map([lambda: 1], workers=4, worker_stats=serial_stats)
        assert len(serial_stats) == 1
        assert serial_stats[0]["tasks"] == 1

    def test_cold_workers_match_warm_workers(self):
        fixture = FixtureSpec("sdss", 10.0, log_queries=500)
        workload = WorkloadSpec(QUERIES)
        tasks = [
            RunTask(label, SystemSpec.of(name), fixture, workload)
            for label, name in (("H", "hive"), ("DS", "deepsea"))
        ]
        warm = steal_map(tasks, workers=2, chunk_size=1, warm=True)
        cold = steal_map(tasks, workers=2, chunk_size=1, warm=False)
        for a, b in zip(warm, cold):
            assert result_fingerprint(a) == result_fingerprint(b)


class TestStealDeterminism:
    """Serial, static fan-out, and work-stealing are fingerprint-identical."""

    TASKS = [
        RunTask(
            label,
            SystemSpec.of(name),
            FixtureSpec("sdss", 10.0, log_queries=500),
            WorkloadSpec(QUERIES),
        )
        for label, name in (("H", "hive"), ("NP", "non_partitioned"), ("DS", "deepsea"))
    ]

    def test_three_schedulers_agree(self):
        serial = fan_out(self.TASKS, workers=0)
        static = fan_out(self.TASKS, workers=2, submission_order=[2, 0, 1])
        stolen = steal_map(self.TASKS, workers=2, chunk_size=1,
                           submission_order=[2, 0, 1])
        for a, b, c in zip(serial, static, stolen):
            assert result_fingerprint(a) == result_fingerprint(b)
            assert result_fingerprint(a) == result_fingerprint(c)

    def test_sliced_stateless_run_matches_whole_run(self):
        whole = self.TASKS[0]  # H: per-query outputs independent of history
        parts = whole.slices(3)
        assert len(parts) == 3
        merged = []
        for result in steal_map(parts, workers=2, chunk_size=1):
            merged.extend(result.reports)
        reference = whole.run()
        assert fingerprint({"H": reference}) == fingerprint(
            {"H": type(reference)("H", merged, ())}
        )

    def test_faulted_tasks_refuse_to_slice(self):
        task = RunTask(
            "H",
            SystemSpec.of("hive"),
            FixtureSpec("sdss", 10.0, log_queries=500),
            WorkloadSpec(QUERIES),
            faults="flaky-tasks",
        )
        assert task.slices(4) == [task]

    def test_chaos_schedule_results_identical_under_stealing(self):
        # The chaos harness invariant, re-run on the steal pool: fault
        # schedules attached to the engine plus worker kills aimed at the
        # pool itself never change a result byte.
        from repro.faults import FaultSchedule

        fixture = FixtureSpec("sdss", 10.0, log_queries=500)
        workload = WorkloadSpec(QUERIES)
        tasks = [
            RunTask(label, SystemSpec.of(name), fixture, workload, faults="flaky-tasks")
            for label, name in (("H", "hive"), ("DS", "deepsea"))
        ]
        sched = FaultSchedule.resolve("flaky-tasks")
        kill_plan = sched.injector().worker_kill_plan(len(tasks)) if sched.rate(
            "worker_kill"
        ) > 0 else {0: 1}
        serial = steal_map(tasks, workers=0)
        stolen = steal_map(tasks, workers=2, chunk_size=1,
                           fault_plan=kill_plan, retries=3)
        for a, b in zip(serial, stolen):
            assert result_fingerprint(a) == result_fingerprint(b)

    def test_run_systems_steal_scheduler_matches_serial(self):
        fx = _fixture()
        plans = _plans(fx)
        clear_caches()
        serial = run_systems(_factories(fx), plans, workers=0)
        stats: list = []
        results = run_systems(
            _factories(fx), plans, workers=3,
            scheduler="steal", stateless=("H",), worker_stats=stats,
        )
        assert fingerprint(results) == fingerprint(serial), "\n".join(
            diff_results(serial, results)
        )
        assert stats and sum(s["tasks"] for s in stats) >= len(_factories(fx))

    def test_run_systems_rejects_unknown_scheduler(self):
        fx = _fixture()
        with pytest.raises(ValueError):
            run_systems(_factories(fx), _plans(fx)[:2], scheduler="fifo")


class TestPrewarmSharedCaches:
    """Parent-side cache prewarm that warm steal forks inherit."""

    def test_populates_plan_memos_and_join_indexes(self):
        from repro.bench.harness import prewarm_shared_caches

        fx = _fixture()
        plans = _plans(fx)
        clear_caches()
        prewarm_shared_caches(plans, fx.catalog)
        stats = caches.cache_stats()
        assert stats["query.analysis"]["entries"] > 0
        assert stats["query.optimizer.pushdown"]["entries"] > 0
        assert stats["query.signature"]["entries"] > 0
        assert stats["engine.indexes.sort"]["entries"] > 0
        assert stats["engine.indexes.probe"]["entries"] > 0

    def test_prewarm_is_semantically_invisible(self):
        from repro.bench.harness import prewarm_shared_caches

        fx = _fixture()
        plans = _plans(fx)
        clear_caches()
        cold = run_systems(_factories(fx), plans)
        clear_caches()
        prewarm_shared_caches(plans, fx.catalog)
        warm = run_systems(_factories(fx), plans)
        assert fingerprint(cold) == fingerprint(warm)

    def test_steal_scheduler_with_catalog_matches_serial(self):
        fx = _fixture()
        plans = _plans(fx)
        clear_caches()
        serial = run_systems(_factories(fx), plans)
        clear_caches()
        stolen = run_systems(
            _factories(fx),
            plans,
            workers=2,
            scheduler="steal",
            stateless=("H",),
            catalog=fx.catalog,
        )
        assert fingerprint(serial) == fingerprint(stolen)


def _guarded(fn, timeout_s=60.0):
    """Run a pool call under a watchdog: a hang fails instead of wedging CI."""
    import threading

    box = {}

    def run():
        try:
            box["value"] = fn()
        except BaseException as exc:
            box["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    thread.join(timeout_s)
    assert not thread.is_alive(), "pool call hung past its guard timeout"
    if "error" in box:
        raise box["error"]
    return box["value"]


class _DeadSendConn:
    """A pipe whose far end died while the worker sat idle: send raises."""

    def __init__(self, conn):
        self._conn = conn

    def send(self, *args, **kwargs):
        raise BrokenPipeError("stub: worker died while idle")

    def __getattr__(self, name):
        return getattr(self._conn, name)


def _poison_first_spawn(monkeypatch):
    """First worker the pool spawns gets a dead pipe; the rest are healthy."""
    from repro.parallel import pool as pl

    real = pl._Worker
    state = {"poisoned": False}

    def factory(proc, conn, *args, **kwargs):
        if not state["poisoned"]:
            state["poisoned"] = True
            conn = _DeadSendConn(conn)
        return real(proc, conn, *args, **kwargs)

    monkeypatch.setattr(pl, "_Worker", factory)


class TestPoolEdgeCases:
    """Worker/task-count edges and the dead-idle-worker dispatch path."""

    def test_fan_out_zero_tasks(self):
        assert _guarded(lambda: fan_out([], workers=4)) == []

    def test_steal_map_zero_tasks(self):
        assert _guarded(lambda: steal_map([], workers=4)) == []

    def test_fan_out_more_workers_than_tasks(self):
        tasks = [(lambda i=i: i * 3) for i in range(2)]
        assert _guarded(lambda: fan_out(tasks, workers=8)) == [0, 3]

    def test_steal_map_more_workers_than_chunks(self):
        tasks = [(lambda i=i: i * 3) for i in range(3)]
        out = _guarded(lambda: steal_map(tasks, workers=8, chunk_size=1, warm=False))
        assert out == [0, 3, 6]

    def test_steal_map_chunk_larger_than_tasks(self):
        tasks = [(lambda i=i: i + 1) for i in range(3)]
        out = _guarded(lambda: steal_map(tasks, workers=2, chunk_size=99, warm=False))
        assert out == [1, 2, 3]

    def test_single_task_runs_serially_for_any_worker_count(self):
        assert _guarded(lambda: fan_out([lambda: 41], workers=16)) == [41]
        assert _guarded(lambda: steal_map([lambda: 41], workers=16)) == [41]

    def test_fan_out_dead_idle_worker_redispatches(self, monkeypatch):
        # A worker that dies *between* tasks surfaces as a send failure on
        # its next dispatch — the task must keep its retry budget, move to
        # a fresh worker, and the pool must neither hang nor crash.
        _poison_first_spawn(monkeypatch)
        tasks = [(lambda i=i: i * i) for i in range(4)]
        assert _guarded(lambda: fan_out(tasks, workers=2)) == [0, 1, 4, 9]

    def test_fan_out_dead_idle_worker_keeps_retry_budget(self, monkeypatch):
        # retries=0: any *re-dispatch* would raise, so finishing proves the
        # failed send was not charged against the task's budget.
        _poison_first_spawn(monkeypatch)
        tasks = [(lambda i=i: i + 7) for i in range(3)]
        assert _guarded(lambda: fan_out(tasks, workers=2, retries=0)) == [7, 8, 9]

    def test_steal_map_dead_idle_worker_redispatches(self, monkeypatch):
        _poison_first_spawn(monkeypatch)
        tasks = [(lambda i=i: i * i) for i in range(4)]
        out = _guarded(
            lambda: steal_map(tasks, workers=2, chunk_size=1, warm=False, retries=0)
        )
        assert out == [0, 1, 4, 9]
