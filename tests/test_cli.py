"""Tests for the experiment-runner CLI."""

from repro.cli import EXPERIMENTS, cmd_list, cmd_run, main


class TestCli:
    def test_list_returns_zero(self, capsys):
        assert cmd_list() == 0
        out = capsys.readouterr().out
        for key in ("fig5a", "fig9", "merging"):
            assert key in out

    def test_unknown_experiment_rejected(self, capsys):
        assert cmd_run(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "all assertions held" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "parameter grid" in capsys.readouterr().out

    def test_compare_smoke(self, capsys):
        assert main(["compare", "--queries", "10", "--instance-gb", "20", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "vs H" in out

    def test_compare_with_pool(self, capsys):
        assert main(
            [
                "compare",
                "--queries",
                "10",
                "--instance-gb",
                "20",
                "--pool",
                "0.2",
            ]
        ) == 0
        assert "20% of base" in capsys.readouterr().out

    def test_every_registered_experiment_has_a_bench_file(self):
        from repro.cli import _BENCH_DIR

        for key, (module_name, _) in EXPERIMENTS.items():
            assert (_BENCH_DIR / f"{module_name}.py").exists(), key
