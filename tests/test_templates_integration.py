"""Integration: every BigBench template through DeepSea, answers verified."""

import pytest

from repro.baselines import deepsea, hive
from repro.workloads import bigbench


@pytest.fixture(scope="module")
def instance():
    return bigbench.generate_bigbench(20.0, seed=13)


@pytest.mark.parametrize("name", sorted(bigbench.TEMPLATES))
def test_template_reuse_and_equivalence(instance, name):
    """Each template materializes its view and later queries reuse it,
    returning exactly the direct answers."""
    template = bigbench.TEMPLATES[name]
    system = deepsea(instance.catalog, domains=instance.domains, evidence_factor=0.0)
    reference = hive(instance.catalog, domains=instance.domains)
    plans = [template(8_000, 12_000), template(8_500, 11_500), template(9_000, 11_000)]
    reused = False
    for plan in plans:
        got = system.execute(plan)
        expected = reference.execute(plan)
        assert got.result.sorted_rows() == expected.result.sorted_rows(), name
        reused = reused or got.reused_view
    assert reused, f"{name} never reused its materialized view"


def test_templates_share_views_where_joins_coincide(instance):
    """q01, q09, q26 share the store_sales ⋈ item projection candidate base,
    so running one template warms matching for the others' join."""
    system = deepsea(instance.catalog, domains=instance.domains, evidence_factor=0.0)
    system.execute(bigbench.q01(8_000, 12_000))
    views_after_q01 = set(system.pool.resident_view_ids())
    report = system.execute(bigbench.q09(8_500, 11_500))
    # q09 projects a different column set, so it defines its own view — but
    # both templates register against the same underlying join candidates
    # and q09's first run already benefits from matching infrastructure.
    assert views_after_q01  # q01 materialized something
    assert report.result.nrows > 0
