"""Shared fixtures: a small star schema used across engine/matching tests."""

import numpy as np
import pytest

from repro.engine.catalog import Catalog
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.engine.types import ColumnKind


@pytest.fixture
def sales_schema() -> Schema:
    return Schema.of(
        Column("s_id", ColumnKind.INT64),
        Column("s_item_sk", ColumnKind.INT64),
        Column("s_qty", ColumnKind.INT64),
        Column("s_price", ColumnKind.FLOAT64),
    )


@pytest.fixture
def item_schema() -> Schema:
    return Schema.of(
        Column("i_item_sk", ColumnKind.INT64),
        Column("i_category", ColumnKind.INT64),
    )


@pytest.fixture
def sales_table(sales_schema) -> Table:
    rng = np.random.default_rng(7)
    n = 500
    return Table.from_dict(
        sales_schema,
        {
            "s_id": np.arange(n),
            "s_item_sk": rng.integers(0, 100, size=n),
            "s_qty": rng.integers(1, 10, size=n),
            "s_price": rng.uniform(1.0, 50.0, size=n),
        },
    )


@pytest.fixture
def item_table(item_schema) -> Table:
    n = 100
    rng = np.random.default_rng(11)
    return Table.from_dict(
        item_schema,
        {
            "i_item_sk": np.arange(n),
            "i_category": rng.integers(0, 8, size=n),
        },
    )


@pytest.fixture
def catalog(sales_table, item_table) -> Catalog:
    cat = Catalog()
    cat.register("sales", sales_table)
    cat.register("item", item_table)
    return cat
