"""Tests for the smaller core components: admission, tentative designs,
domain resolution, policies, reports, and the simulator."""

import numpy as np
import pytest

from repro.core.admission import AdmissionController
from repro.core.domains import DomainResolver
from repro.core.policies import Policy
from repro.core.reports import QueryReport, WorkloadSummary
from repro.core.simulator import (
    RegressionFit,
    TemplateRegression,
    project_workload_time,
    selection_width,
)
from repro.core.tentative import TentativePartitions
from repro.engine.catalog import Catalog
from repro.engine.cost import CostLedger
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.engine.types import ColumnKind
from repro.errors import PartitionError, ReproError
from repro.partitioning.candidates import SplitCandidate
from repro.partitioning.intervals import Interval
from repro.query.algebra import Relation, Select
from repro.query.predicates import between
from repro.storage.pool import MaterializedViewPool


# ----------------------------------------------------------------------
# AdmissionController
# ----------------------------------------------------------------------
class TestAdmission:
    def make_pool_with_entries(self, smax, sizes_values):
        """Pool with one fragment per (size, value); value_fn reads a dict."""
        pool = MaterializedViewPool(smax_bytes=smax)
        pool.define_view("v", Relation("t"))
        schema = Schema.of(Column("a"))
        values = {}
        for i, (size, value) in enumerate(sizes_values):
            nrows = max(int(size // schema.row_bytes), 1)
            table = Table.from_dict(
                schema, {"a": np.arange(nrows)}, scale=size / (nrows * schema.row_bytes)
            )
            entry = pool.add_fragment("v", "a", Interval.closed(i * 10, i * 10 + 5), table)
            values[entry.fragment_id] = value
        controller = AdmissionController(
            pool, lambda e: values.get(e.fragment_id, 0.0), hysteresis=1.0
        )
        return pool, controller, values

    def test_fits_without_eviction(self):
        pool, controller, _ = self.make_pool_with_entries(1000.0, [(100.0, 1.0)])
        assert controller.plan_eviction(100.0, candidate_value=0.1) == []

    def test_evicts_lowest_value_first(self):
        pool, controller, values = self.make_pool_with_entries(300.0, [(150.0, 1.0), (150.0, 5.0)])
        victims = controller.plan_eviction(150.0, candidate_value=10.0)
        assert victims is not None and len(victims) == 1
        assert values[victims[0].fragment_id] == 1.0

    def test_refuses_when_only_better_entries_resident(self):
        _, controller, _ = self.make_pool_with_entries(300.0, [(150.0, 5.0), (150.0, 6.0)])
        assert controller.plan_eviction(150.0, candidate_value=1.0) is None

    def test_hysteresis_protects_near_equals(self):
        pool = MaterializedViewPool(smax_bytes=300.0)
        pool.define_view("v", Relation("t"))
        schema = Schema.of(Column("a"))
        table = Table.from_dict(schema, {"a": np.arange(10)}, scale=150.0 / 80)
        pool.add_fragment("v", "a", Interval.closed(0, 5), table)
        pool.add_fragment("v", "a", Interval.closed(10, 15), table)
        controller = AdmissionController(pool, lambda e: 1.0, hysteresis=2.0)
        # candidate at 1.5x resident value: below the 2x hysteresis bar
        assert controller.plan_eviction(150.0, candidate_value=1.5) is None
        # at 3x it clears the bar
        assert controller.plan_eviction(150.0, candidate_value=3.0) is not None

    def test_admit_whole_view_roundtrip(self):
        pool = MaterializedViewPool(smax_bytes=1000.0)
        pool.define_view("w", Relation("t"))
        schema = Schema.of(Column("a"))
        table = Table.from_dict(schema, {"a": [1, 2]}, scale=10.0)
        controller = AdmissionController(pool, lambda e: 0.0)
        result = controller.admit_whole_view("w", table, candidate_value=1.0)
        assert result.admitted and result.evicted == []
        assert pool.whole_view_entry("w") is not None

    def test_impossible_admission_leaves_pool_untouched(self):
        pool, controller, _ = self.make_pool_with_entries(300.0, [(150.0, 5.0)])
        before = pool.used_bytes
        schema = Schema.of(Column("a"))
        huge = Table.from_dict(schema, {"a": np.arange(10)}, scale=1e6)
        result = controller.admit_fragment(
            "v", "a", Interval.closed(90, 95), huge, candidate_value=0.1
        )
        assert not result.admitted
        assert pool.used_bytes == before


# ----------------------------------------------------------------------
# TentativePartitions
# ----------------------------------------------------------------------
class TestTentative:
    DOMAIN = Interval.closed(0, 100)

    def test_ensure_seeds_trivial_design(self):
        tp = TentativePartitions()
        design = tp.ensure("v", "a", self.DOMAIN)
        assert list(design.intervals) == [self.DOMAIN]
        assert tp.attrs_of("v") == ["a"]

    def test_ensure_idempotent(self):
        tp = TentativePartitions()
        tp.ensure("v", "a", self.DOMAIN)
        left, right = self.DOMAIN.split_before(50)
        tp.apply_split("v", "a", SplitCandidate(self.DOMAIN, (left, right)))
        again = tp.ensure("v", "a", self.DOMAIN)
        assert len(again) == 2  # does not reset

    def test_apply_split_replaces_parent(self):
        tp = TentativePartitions()
        tp.ensure("v", "a", self.DOMAIN)
        left, right = self.DOMAIN.split_before(30)
        tp.apply_split("v", "a", SplitCandidate(self.DOMAIN, (left, right)))
        assert self.DOMAIN not in tp.intervals("v", "a")
        assert left in tp.intervals("v", "a")

    def test_apply_split_unknown_design_raises(self):
        tp = TentativePartitions()
        with pytest.raises(PartitionError):
            tp.apply_split(
                "ghost", "a", SplitCandidate(self.DOMAIN, (self.DOMAIN,))
            )

    def test_add_overlapping_keeps_design_covering(self):
        tp = TentativePartitions()
        tp.ensure("v", "a", self.DOMAIN)
        tp.add_overlapping("v", "a", Interval.closed(20, 30))
        design = tp.get("v", "a")
        assert design.is_overlapping_partitioning()
        assert not design.is_disjoint()

    def test_add_overlapping_duplicate_noop(self):
        tp = TentativePartitions()
        tp.ensure("v", "a", self.DOMAIN)
        tp.add_overlapping("v", "a", Interval.closed(20, 30))
        tp.add_overlapping("v", "a", Interval.closed(20, 30))
        assert len(tp.get("v", "a")) == 2


# ----------------------------------------------------------------------
# DomainResolver
# ----------------------------------------------------------------------
class TestDomainResolver:
    def test_declared_domain_wins(self):
        catalog = Catalog()
        resolver = DomainResolver(catalog, {"x": Interval.closed(0, 9)})
        assert resolver("x") == Interval.closed(0, 9)

    def test_derived_from_data(self):
        catalog = Catalog()
        schema = Schema.of(Column("a"))
        catalog.register("t", Table.from_dict(schema, {"a": [3, 7, 5]}))
        resolver = DomainResolver(catalog)
        assert resolver("a") == Interval.closed(3, 7)

    def test_unknown_attr_is_none_and_cached(self):
        catalog = Catalog()
        resolver = DomainResolver(catalog)
        assert resolver("nope") is None
        assert resolver("nope") is None  # cached path

    def test_non_numeric_column_none(self):
        catalog = Catalog()
        schema = Schema.of(Column("s", ColumnKind.STRING))
        catalog.register("t", Table.from_dict(schema, {"s": ["a", "b"]}))
        resolver = DomainResolver(catalog)
        assert resolver("s") is None

    def test_declare_overrides_later(self):
        catalog = Catalog()
        resolver = DomainResolver(catalog)
        resolver.declare("y", Interval.closed(0, 1))
        assert resolver("y") == Interval.closed(0, 1)


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
class TestPolicy:
    def test_defaults_valid(self):
        policy = Policy()
        assert policy.partitioning == "adaptive"
        assert policy.smoothing_enabled

    def test_invalid_partitioning(self):
        with pytest.raises(ReproError):
            Policy(partitioning="vertical")

    def test_invalid_value_model(self):
        with pytest.raises(ReproError):
            Policy(value_model="lru")

    def test_negative_evidence(self):
        with pytest.raises(ReproError):
            Policy(evidence_factor=-1)

    def test_nectar_forces_no_decay(self):
        from repro.costmodel.decay import NoDecay

        assert isinstance(Policy(value_model="nectar").effective_decay, NoDecay)
        assert isinstance(Policy(value_model="nectar+").effective_decay, NoDecay)

    def test_smoothing_disabled_for_nectar(self):
        assert not Policy(value_model="nectar", use_mle=True).smoothing_enabled


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
class TestReports:
    def make_report(self, i, exec_s=10.0, create_s=2.0, view=None):
        el, cl = CostLedger(), CostLedger()
        el.read_s = exec_s
        cl.write_s = create_s
        schema = Schema.of(Column("a"))
        return QueryReport(
            index=i,
            plan=Relation("t"),
            result=Table.empty(schema),
            execution_ledger=el,
            creation_ledger=cl,
            view_used=view,
        )

    def test_total_is_exec_plus_creation(self):
        r = self.make_report(1)
        assert r.total_s == pytest.approx(12.0)

    def test_summary_aggregates(self):
        summary = WorkloadSummary([self.make_report(1), self.make_report(2, view="v")])
        assert summary.total_s == pytest.approx(24.0)
        assert summary.reuse_count == 1
        assert summary.cumulative_s == [pytest.approx(12.0), pytest.approx(24.0)]


# ----------------------------------------------------------------------
# Simulator
# ----------------------------------------------------------------------
class TestSimulator:
    def test_regression_needs_min_samples(self):
        reg = TemplateRegression(min_samples=3)
        reg.observe("q", 10.0, 100.0)
        reg.observe("q", 20.0, 200.0)
        assert reg.predict("q", 15.0) is None
        reg.observe("q", 30.0, 300.0)
        assert reg.predict("q", 15.0) == pytest.approx(150.0)

    def test_regression_constant_widths(self):
        reg = TemplateRegression(min_samples=2)
        reg.observe("q", 10.0, 50.0)
        reg.observe("q", 10.0, 70.0)
        fit = reg.fit("q")
        assert fit.slope == 0.0
        assert fit.intercept == pytest.approx(60.0)

    def test_prediction_clamped_nonnegative(self):
        fit = RegressionFit(intercept=-5.0, slope=0.0, n_samples=3)
        assert fit.predict(100.0) == 0.0

    def test_selection_width(self):
        plan = Select(Relation("t"), (between("a", 10, 30),))
        assert selection_width(plan) == pytest.approx(20.0)

    def test_selection_width_unbounded_ignored(self):
        from repro.query.predicates import at_least

        plan = Select(Relation("t"), (at_least("a", 10),))
        assert selection_width(plan) == 0.0

    def test_project_workload_time_prefix(self):
        assert project_workload_time([5.0, 1.0, 1.0], 2) == pytest.approx(6.0)

    def test_project_workload_time_extension(self):
        total = project_workload_time([10.0, 2.0, 2.0], 10)
        assert total == pytest.approx(14.0 + 2.0 * 7)

    def test_project_with_steady_override(self):
        total = project_workload_time([10.0, 8.0], 4, steady=[1.0])
        assert total == pytest.approx(18.0 + 2.0)

    def test_project_empty_raises(self):
        with pytest.raises(ReproError):
            project_workload_time([], 5)

    def test_workload_simulator_switches_to_prediction(self, catalog):
        from repro.baselines import deepsea
        from repro.core.simulator import WorkloadSimulator
        from repro.query.algebra import Aggregate, AggSpec, Join

        def template(lo, hi):
            return Aggregate(
                Select(
                    Join(Relation("sales"), Relation("item"), "s_item_sk", "i_item_sk"),
                    (between("i_item_sk", lo, hi),),
                ),
                ("i_category",),
                (AggSpec("count", None, "n"),),
            )

        system = deepsea(catalog, evidence_factor=0.0)
        simulator = WorkloadSimulator(system, min_samples=3)
        for i in range(10):
            simulator.run("q", template(10, 30))
        assert simulator.predicted_count > 0
        assert simulator.measured_count + simulator.predicted_count == 10
