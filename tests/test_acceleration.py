"""Tests for the hot-path acceleration layer.

Covers the join-key index / probe caches (cold vs warm equivalence, bag
semantics, empty inputs, dtype preservation), the one-allocation
``concat_many`` fragment assembly, the process-wide ``clear_caches``
helper, and the wall-clock profiler.  The common theme: every cache and
fast path must be invisible — identical tables out, identical simulated
seconds — whether it is cold, warm, or cleared mid-run.
"""

import numpy as np
import pytest

from repro.baselines import deepsea
from repro.bench.harness import clear_caches, run_system
from repro.bench.profile import STAGES, WallClockProfiler, check_against_baseline
from repro.engine import indexes
from repro.engine.executor import hash_join
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.engine.types import ColumnKind


def tables_equal(a: Table, b: Table) -> bool:
    """Exact equality: schema, row order, values, and dtypes."""
    if a.schema.names != b.schema.names or a.nrows != b.nrows:
        return False
    for name in a.schema.names:
        ca, cb = a.columns[name], b.columns[name]
        if ca.dtype != cb.dtype or not np.array_equal(ca, cb):
            return False
    return True


# ----------------------------------------------------------------------
# concat_many: O(n) fragment assembly
# ----------------------------------------------------------------------
class TestConcatMany:
    def test_64_fragments_allocate_each_column_once(self, monkeypatch):
        """Assembling 64 fragments must call np.concatenate once per column."""
        schema = Schema.of(
            Column("k", ColumnKind.INT64),
            Column("v", ColumnKind.FLOAT64),
            Column("w", ColumnKind.INT64),
        )
        pieces = [
            Table.from_dict(
                schema,
                {"k": [i, i + 1], "v": [float(i), float(i)], "w": [7, 8]},
            )
            for i in range(64)
        ]
        calls = []
        real_concatenate = np.concatenate

        def counting(arrays, *args, **kwargs):
            calls.append(len(list(arrays)))
            return real_concatenate(arrays, *args, **kwargs)

        monkeypatch.setattr("repro.engine.table.np.concatenate", counting)
        out = Table.concat_many(pieces)
        assert len(calls) == len(schema.names)  # one allocation per column
        assert all(n == 64 for n in calls)  # each sees every fragment
        assert out.nrows == 128

    def test_matches_pairwise_fold(self):
        schema = Schema.of(Column("k", ColumnKind.INT64))
        pieces = [Table.from_dict(schema, {"k": list(range(i, i + 3))}) for i in range(5)]
        folded = pieces[0]
        for p in pieces[1:]:
            folded = folded.concat(p)
        assert tables_equal(Table.concat_many(pieces), folded)

    def test_singleton_is_identity(self):
        schema = Schema.of(Column("k", ColumnKind.INT64))
        t = Table.from_dict(schema, {"k": [1, 2]})
        assert Table.concat_many([t]) is t


# ----------------------------------------------------------------------
# hash_join through the index / probe caches
# ----------------------------------------------------------------------
class TestJoinCaches:
    def setup_method(self):
        clear_caches()

    def test_bag_semantics_preserved(self):
        sa = Schema.of(Column("a_k", ColumnKind.INT64), Column("a_v", ColumnKind.INT64))
        sb = Schema.of(Column("b_k", ColumnKind.INT64), Column("b_v", ColumnKind.INT64))
        a = Table.from_dict(sa, {"a_k": [1, 1, 2, 3], "a_v": [10, 11, 12, 13]})
        b = Table.from_dict(sb, {"b_k": [1, 1, 2, 2], "b_v": [20, 21, 22, 23]})
        out = hash_join(a, b, "a_k", "b_k")
        # 2 left dups x 2 right dups on key 1, 1 x 2 on key 2, 0 on key 3
        assert out.nrows == 6
        assert sorted(zip(out.columns["a_v"].tolist(), out.columns["b_v"].tolist())) == [
            (10, 20), (10, 21), (11, 20), (11, 21), (12, 22), (12, 23),
        ]

    def test_empty_inputs(self):
        sa = Schema.of(Column("a_k", ColumnKind.INT64))
        sb = Schema.of(Column("b_k", ColumnKind.INT64), Column("b_v", ColumnKind.FLOAT64))
        a = Table.from_dict(sa, {"a_k": [1, 2]})
        empty_b = Table.empty(sb)
        out = hash_join(a, empty_b, "a_k", "b_k")
        assert out.nrows == 0
        assert out.schema.names == ("a_k", "b_k", "b_v")
        out2 = hash_join(Table.empty(sa), Table.from_dict(sb, {"b_k": [1], "b_v": [2.0]}),
                         "a_k", "b_k")
        assert out2.nrows == 0

    def test_dtype_preservation(self):
        sa = Schema.of(
            Column("a_k", ColumnKind.INT64),
            Column("a_f", ColumnKind.FLOAT64),
            Column("a_s", ColumnKind.STRING),
        )
        sb = Schema.of(Column("b_k", ColumnKind.INT64), Column("b_f", ColumnKind.FLOAT64))
        a = Table.from_dict(sa, {"a_k": [1, 2], "a_f": [0.5, 1.5], "a_s": ["x", "y"]})
        b = Table.from_dict(sb, {"b_k": [1, 2], "b_f": [9.0, 8.0]})
        out = hash_join(a, b, "a_k", "b_k")
        assert out.columns["a_k"].dtype == a.columns["a_k"].dtype
        assert out.columns["a_f"].dtype == np.float64
        assert out.columns["a_s"].dtype == a.columns["a_s"].dtype
        assert out.columns["b_f"].dtype == np.float64

    def test_warm_cache_identical_to_cold(self, sales_table, item_table):
        """Joining the same pair repeatedly must be bitwise stable.

        The third join exercises the full two-strikes probe-cache path:
        first sighting probes directly, second pays the full-root probe,
        third is served from the cache.
        """
        cold = hash_join(sales_table, item_table, "s_item_sk", "i_item_sk")
        warm1 = hash_join(sales_table, item_table, "s_item_sk", "i_item_sk")
        warm2 = hash_join(sales_table, item_table, "s_item_sk", "i_item_sk")
        hits, _misses = indexes.probe_cache_stats()
        assert hits >= 1  # the cache really served the third join
        assert tables_equal(cold, warm1) and tables_equal(cold, warm2)
        clear_caches()
        assert tables_equal(cold, hash_join(sales_table, item_table, "s_item_sk", "i_item_sk"))

    def test_derived_build_side_identical_to_cold(self, sales_table, item_table):
        """A filtered (monotonic-subset) build side hits the derivation path."""
        sub = item_table.filter(item_table.column("i_category") < 4)
        results = [hash_join(sales_table, sub, "s_item_sk", "i_item_sk") for _ in range(3)]
        clear_caches()
        cold = hash_join(sales_table, sub, "s_item_sk", "i_item_sk")
        for r in results:
            assert tables_equal(cold, r)

    def test_clear_caches_resets_stats(self, sales_table, item_table):
        hash_join(sales_table, item_table, "s_item_sk", "i_item_sk")
        clear_caches()
        assert indexes.cache_stats() == (0, 0)
        assert indexes.probe_cache_stats() == (0, 0)


# ----------------------------------------------------------------------
# Wall-clock profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def _plans(self, catalog):
        from repro.query.predicates import between
        from repro.query.algebra import Aggregate, AggSpec, Join, Relation, Select

        join = Join(Relation("sales"), Relation("item"), "s_item_sk", "i_item_sk")
        return [
            Aggregate(
                Select(join, (between("i_item_sk", lo, lo + 30),)),
                ("i_category",),
                (AggSpec("sum", "s_qty", "total_qty"),),
            )
            for lo in (0, 10, 0, 10, 20, 0)
        ]

    def test_stages_recorded_and_ledgers_untouched(self, catalog):
        plans = self._plans(catalog)
        baseline = run_system("DS", deepsea(catalog), plans)
        profiler = WallClockProfiler()
        profiled = run_system("DS", deepsea(catalog), plans, profiler)
        assert profiler.queries == len(plans)
        assert set(profiler.seconds) <= set(STAGES)
        assert {"matching", "execution"} <= set(profiler.seconds)
        assert profiler.total_seconds > 0.0
        report = profiler.report()
        assert report["queries"] == len(plans)
        assert report["total_seconds"] == pytest.approx(profiler.total_seconds)
        # profiling must not perturb the simulated cost model
        assert [r.total_s for r in profiled.reports] == [r.total_s for r in baseline.reports]

    def test_check_against_baseline(self):
        ok, msg = check_against_baseline(1.0, {"total_seconds": 1.0}, 2.0)
        assert ok and "OK" in msg
        bad, msg = check_against_baseline(5.0, {"total_seconds": 1.0}, 2.0)
        assert not bad and "REGRESSION" in msg
        missing, _ = check_against_baseline(1.0, {}, 2.0)
        assert not missing
