"""Tests for the concurrent serving layer (repro.serve).

The serving invariant under test throughout: admission control, faults,
and concurrency change *latency and cost* — never answers.  Answers are
compared as sorted-row digests against serial, fault-free, direct
execution of the same plans.
"""

import threading
import time

import pytest

from repro.baselines import deepsea, hive
from repro.bench.harness import sdss_fixture
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.errors import DeadlineExceeded, Overloaded, RecoveryError
from repro.faults.schedule import FaultSchedule
from repro.partitioning.intervals import Interval
from repro.query.algebra import Relation
from repro.serve.driver import answer_digest, check_gates, reference_digests
from repro.serve.queue import AdmissionQueue
from repro.serve.service import QueryService
from repro.serve.snapshot import SnapshotManager
from repro.storage.pool import MaterializedViewPool
from repro.workloads.generator import sdss_mapped_workload

TIMEOUT = 60.0


@pytest.fixture(scope="module")
def fx():
    return sdss_fixture(20.0)


@pytest.fixture(scope="module")
def plans(fx):
    return sdss_mapped_workload(fx.log, fx.item_domain, n_queries=40, seed=2)


@pytest.fixture(scope="module")
def digests(fx, plans):
    return reference_digests(fx, plans)[0]


def drain(service, plans, *, pace_s=0.004):
    """Submit every plan (paced so nothing is shed) and collect outcomes."""
    tickets = []
    for plan in plans:
        time.sleep(pace_s)
        tickets.append(service.submit(plan))
    return [t.result(timeout=TIMEOUT) for t in tickets]


class TestAdmissionQueue:
    def test_fifo_order(self):
        q = AdmissionQueue(4)
        for i in range(4):
            q.offer(i)
        assert [q.take(0) for _ in range(4)] == [0, 1, 2, 3]

    def test_full_queue_sheds_typed_and_counted(self):
        q = AdmissionQueue(2)
        q.offer("a")
        q.offer("b")
        with pytest.raises(Overloaded) as info:
            q.offer("c")
        assert info.value.kind == "overloaded"
        assert info.value.depth == 2
        assert (q.offered, q.shed, len(q)) == (3, 1, 2)

    def test_take_timeout_returns_none(self):
        q = AdmissionQueue(1)
        start = time.monotonic()
        assert q.take(0.02) is None
        assert time.monotonic() - start < 1.0

    def test_close_sheds_offers_and_drains_takes(self):
        q = AdmissionQueue(4)
        q.offer("a")
        q.close()
        with pytest.raises(Overloaded):
            q.offer("b")
        assert q.take(0) == "a"  # queued work still drains
        assert q.take(0) is None  # then immediate None, no waiting

    def test_close_wakes_blocked_taker(self):
        q = AdmissionQueue(1)
        got = []
        t = threading.Thread(target=lambda: got.append(q.take(None)))
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(5.0)
        assert not t.is_alive() and got == [None]

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)

    def test_accounting_offered_equals_taken_plus_shed_plus_queued(self):
        q = AdmissionQueue(3)
        for i in range(7):
            try:
                q.offer(i)
            except Overloaded:
                pass
        q.take(0)
        assert q.offered == q.taken + q.shed + len(q)


def snapshot_pool(small=3):
    """A pool with two fragments of one view, plus its snapshot manager."""
    pool = MaterializedViewPool()
    pool.define_view("v1", Relation("sales"))
    schema = Schema.of(Column("v"))
    lo = Table.from_dict(schema, {"v": list(range(small))})
    hi = Table.from_dict(schema, {"v": list(range(100, 100 + small))})
    a = pool.add_fragment("v1", "v", Interval.closed(0, 10), lo)
    b = pool.add_fragment("v1", "v", Interval.open_closed(10, 20), hi)
    return pool, SnapshotManager(pool), a, b


class TestSnapshotLeases:
    def test_lease_pins_epoch_and_entries(self):
        pool, snaps, a, b = snapshot_pool()
        with snaps.acquire() as lease:
            view = lease.pool_view()
            assert view.epoch == pool.epoch
            assert view.get_fragment(a.fragment_id) is a
            assert view.whole_view_entry("v1") is None
            before = view.read_entry(a.fragment_id).sorted_rows()
            pool.evict(a.fragment_id)  # writer races the reader
            assert view.read_entry(a.fragment_id).sorted_rows() == before
            assert snaps.served_from_retained == 1

    def test_eviction_with_no_lease_retains_nothing(self):
        pool, snaps, a, _ = snapshot_pool()
        pool.evict(a.fragment_id)
        assert snaps.retained_total == 0
        assert snaps.retained_count == 0

    def test_release_prunes_retained_payloads(self):
        pool, snaps, a, _ = snapshot_pool()
        lease = snaps.acquire()
        pool.evict(a.fragment_id)
        assert snaps.retained_count == 1
        lease.release()
        assert snaps.retained_count == 0
        assert snaps.active_leases == 0

    def test_older_lease_keeps_payload_alive(self):
        pool, snaps, a, _ = snapshot_pool()
        old = snaps.acquire()
        pool.evict(a.fragment_id)
        new = snaps.acquire()  # pinned after the eviction
        new.release()
        assert snaps.retained_count == 1  # old lease may still read it
        old.release()
        assert snaps.retained_count == 0

    def test_lost_then_evicted_entry_still_readable(self):
        # Retention peeks past replica loss, so a fragment that was lost
        # *and* evicted is still served byte-identical from the snapshot.
        pool, snaps, a, _ = snapshot_pool()
        with snaps.acquire() as lease:
            view = lease.pool_view()
            before = view.read_entry(a.fragment_id).sorted_rows()
            pool.hdfs.lose_replicas(a.path)
            pool.evict(a.fragment_id)
            assert view.read_entry(a.fragment_id).sorted_rows() == before

    def test_vanished_without_retention_raises_typed(self):
        pool, snaps, a, _ = snapshot_pool()
        lease = snaps.acquire()
        view = lease.pool_view()
        snaps.detach()  # retention unhooked: eviction drops the payload
        pool.evict(a.fragment_id)
        with pytest.raises(RecoveryError):
            view.read_entry(a.fragment_id)

    def test_rollback_mid_read_keeps_prestep_bytes(self):
        # Satellite: a reader holding a lease across a journal rollback
        # sees the exact pre-step bytes at every point of the transaction.
        pool, snaps, a, b = snapshot_pool()
        schema = Schema.of(Column("v"))
        with snaps.acquire() as lease:
            view = lease.pool_view()
            before_a = view.read_entry(a.fragment_id).sorted_rows()
            before_b = view.read_entry(b.fragment_id).sorted_rows()

            pool.begin("repartition")
            pool.evict(a.fragment_id)
            pool.add_fragment(
                "v1", "v", Interval.open_closed(20, 30),
                Table.from_dict(schema, {"v": [7, 8, 9]}),
            )
            # Mid-transaction: the lease still serves the pre-step bytes
            # (the evicted payload from retention, the survivor live).
            assert view.read_entry(a.fragment_id).sorted_rows() == before_a
            assert view.read_entry(b.fragment_id).sorted_rows() == before_b
            pool.rollback()

            # Post-rollback: both via the lease and via the live pool.
            assert view.read_entry(a.fragment_id).sorted_rows() == before_a
            assert pool.read_entry(a.fragment_id).sorted_rows() == before_a
            assert len(pool.fragments_of("v1", "v")) == 2

    def test_snapshot_is_immune_to_entries_added_later(self):
        pool, snaps, a, _ = snapshot_pool()
        lease = snaps.acquire()
        schema = Schema.of(Column("v"))
        fresh = pool.add_fragment(
            "v1", "v", Interval.open_closed(20, 30),
            Table.from_dict(schema, {"v": [42]}),
        )
        view = lease.pool_view()
        from repro.errors import PoolError

        with pytest.raises(PoolError):
            view.get_fragment(fresh.fragment_id)
        lease.release()


class TestQueryService:
    def test_serial_equivalence_across_worker_counts(self, fx, plans, digests):
        for workers in (1, 3):
            system = deepsea(fx.catalog, domains=fx.domains)
            with QueryService(system, workers=workers, queue_depth=64) as svc:
                outs = drain(svc, plans)
            assert all(o is not None and o.status == "answered" for o in outs)
            got = [answer_digest(o.table) for o in outs]
            assert got == digests
            m = svc.metrics()
            assert m["accounting_ok"] and m["failed"] == 0

    def test_chaos_answers_byte_identical_with_retries(self, fx, plans, digests):
        system = deepsea(fx.catalog, domains=fx.domains)
        svc = QueryService(
            system, workers=3, queue_depth=64, faults="perfect-storm"
        ).start()
        outs = drain(svc, plans)
        svc.stop()
        assert all(o is not None and o.status == "answered" for o in outs)
        assert [answer_digest(o.table) for o in outs] == digests
        m = svc.metrics()
        assert m["accounting_ok"] and m["failed"] == 0
        assert m["fault_events"] > 0
        assert m["pool_epoch"] > 0  # the writer repartitioned throughout

    def test_burst_sheds_typed_and_accounted(self, fx, plans):
        system = deepsea(fx.catalog, domains=fx.domains)
        svc = QueryService(system, workers=1, queue_depth=2, adapt=False).start()
        shed = 0
        tickets = []
        for plan in plans:  # back-to-back: must overflow depth 2
            try:
                tickets.append(svc.submit(plan))
            except Overloaded as exc:
                assert exc.kind == "overloaded"
                shed += 1
        outs = [t.result(timeout=TIMEOUT) for t in tickets]
        svc.stop()
        assert shed > 0
        assert all(o is not None for o in outs)
        m = svc.metrics()
        assert m["shed"] == shed
        assert m["accounting_ok"]

    def test_expired_deadline_is_typed_never_a_hang(self, fx, plans):
        system = hive(fx.catalog, domains=fx.domains)
        svc = QueryService(system, workers=1, queue_depth=64, adapt=False)
        # Not started: tickets expire in the queue, then readers drain them.
        tickets = [svc.submit(p, deadline_s=0.01) for p in plans[:5]]
        time.sleep(0.05)
        svc.start()
        outs = [t.result(timeout=TIMEOUT) for t in tickets]
        svc.stop()
        assert all(o is not None and o.status == "timed_out" for o in outs)
        assert all(o.error_kind == "deadline_exceeded" for o in outs)
        m = svc.metrics()
        assert m["timed_out"] == 5 and m["accounting_ok"]

    def test_deadline_exception_carries_timing(self):
        exc = DeadlineExceeded(0.5, 0.75)
        assert exc.kind == "deadline_exceeded"
        assert exc.deadline_s == 0.5 and exc.waited_s == 0.75

    def test_certain_crashes_degrade_to_direct_not_failure(self, fx, plans, digests):
        # worker_kill at rate 1.0 makes every planned attempt die, so every
        # query must walk the full ladder and answer from the base tables.
        always = FaultSchedule.of("always-kill", seed=5, worker_kill=1.0)
        system = deepsea(fx.catalog, domains=fx.domains)
        svc = QueryService(
            system, workers=2, queue_depth=64, retries=1,
            backoff_s=0.0, faults=always, adapt=False,
        ).start()
        outs = drain(svc, plans[:10])
        svc.stop()
        assert all(o is not None and o.status == "answered" for o in outs)
        assert all(o.degraded == "direct" for o in outs)
        assert all(o.error_kind == "worker_crash" for o in outs)
        assert all(o.retries == 1 for o in outs)
        assert [answer_digest(o.table) for o in outs] == digests[:10]
        m = svc.metrics()
        assert m["degraded_direct"] == 10
        assert m["retries"] == 10
        assert m["accounting_ok"] and m["failed"] == 0

    def test_stop_is_idempotent_and_detaches_retention(self, fx):
        system = deepsea(fx.catalog, domains=fx.domains)
        svc = QueryService(system, workers=1).start()
        svc.stop()
        svc.stop()
        assert system.pool.retention is None

    def test_constructor_validation(self, fx):
        system = hive(fx.catalog, domains=fx.domains)
        with pytest.raises(ValueError):
            QueryService(system, workers=0)
        with pytest.raises(ValueError):
            QueryService(system, retries=-1)


class TestDriverGates:
    def phase(self, **over):
        base = {
            "offered": 10, "answered": 10, "shed": 0, "timed_out": 0,
            "failed": 0, "retries": 1, "digest_mismatches": [],
            "accounting_ok": True, "unresolved": 0, "pool_epoch": 3,
            "writer": {"steps": 5},
        }
        base.update(over)
        return base

    def test_clean_report_passes(self):
        phases = {
            "steady": self.phase(),
            "burst": self.phase(shed=4, answered=6),
            "chaos": self.phase(),
        }
        assert check_gates(phases) == []

    def test_each_gate_fires(self):
        assert check_gates({"steady": self.phase(digest_mismatches=[3])})
        assert check_gates({"steady": self.phase(accounting_ok=False)})
        assert check_gates({"steady": self.phase(failed=1)})
        assert check_gates({"steady": self.phase(unresolved=1)})
        assert check_gates({"burst": self.phase(shed=0)})
        assert check_gates({"chaos": self.phase(retries=0)})
        assert check_gates({"chaos": self.phase(writer={"steps": 0})})
        assert check_gates({"chaos": self.phase(pool_epoch=0)})
