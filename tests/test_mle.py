"""Tests for the probabilistic fragment-benefit model (MLE smoothing)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as sps

from repro.costmodel.decay import NoDecay
from repro.costmodel.mle import (
    FittedNormal,
    adjusted_hits,
    adjusted_hits_many,
    fit_normal,
    fit_partition_bounds,
    fit_partition_distribution,
    part_midpoints,
    spread_hits,
)
from repro.costmodel.stats import StatisticsStore
from repro.costmodel.value import partition_adjusted_hits
from repro.partitioning.intervals import Interval

DOMAIN = Interval.closed(0, 100)


class TestFittedNormal:
    def test_cdf_matches_scipy(self):
        fitted = FittedNormal(mu=10.0, sigma2=4.0)
        for x in (-5.0, 8.0, 10.0, 12.0, 30.0):
            assert fitted.cdf(x) == pytest.approx(sps.norm.cdf(x, 10.0, 2.0), abs=1e-12)

    def test_cdf_limits(self):
        fitted = FittedNormal(0.0, 1.0)
        assert fitted.cdf(-math.inf) == 0.0
        assert fitted.cdf(math.inf) == 1.0

    def test_mass_is_cdf_difference(self):
        fitted = FittedNormal(50.0, 100.0)
        iv = Interval.closed(40, 60)
        assert fitted.mass(iv) == pytest.approx(fitted.cdf(60) - fitted.cdf(40))

    def test_degenerate_sigma(self):
        fitted = FittedNormal(5.0, 0.0)
        assert fitted.cdf(4.9) == 0.0
        assert fitted.cdf(5.1) == 1.0


class TestPartMidpoints:
    def test_equal_spacing(self):
        mids = part_midpoints(DOMAIN, 4)
        assert mids == [12.5, 37.5, 62.5, 87.5]


class TestSpreadHits:
    def test_hits_split_evenly_over_parts(self):
        # fragment [0, 50] covers parts 0 and 1 of a 4-part grid
        mids, weights = spread_hits(DOMAIN, [(Interval.closed(0, 50), 10.0)], n_parts=4)
        assert weights == [5.0, 5.0, 0.0, 0.0]

    def test_total_mass_preserved(self):
        frags = [
            (Interval.closed(0, 30), 7.0),
            (Interval.open_closed(30, 100), 3.0),
        ]
        _, weights = spread_hits(DOMAIN, frags, n_parts=10)
        assert sum(weights) == pytest.approx(10.0)

    def test_tiny_fragment_charged_to_nearest_part(self):
        # narrower than one part — still contributes its full mass
        _, weights = spread_hits(DOMAIN, [(Interval.closed(50, 50.01), 4.0)], n_parts=4)
        assert sum(weights) == pytest.approx(4.0)

    def test_zero_hits_ignored(self):
        _, weights = spread_hits(DOMAIN, [(Interval.closed(0, 100), 0.0)], n_parts=4)
        assert sum(weights) == 0.0


class TestFitNormal:
    def test_matches_closed_form_unweighted(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        fitted = fit_normal(xs, [1.0] * 4)
        assert fitted.mu == pytest.approx(np.mean(xs))
        assert fitted.sigma2 == pytest.approx(np.var(xs, ddof=1))

    def test_weighted_mean(self):
        fitted = fit_normal([0.0, 10.0], [3.0, 1.0])
        assert fitted.mu == pytest.approx(2.5)

    def test_no_mass_returns_none(self):
        assert fit_normal([1.0, 2.0], [0.0, 0.0]) is None

    def test_single_observation_positive_sigma(self):
        fitted = fit_normal([5.0], [1.0])
        assert fitted is not None and fitted.sigma2 > 0

    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_mu_within_data_range(self, xs):
        fitted = fit_normal(xs, [1.0] * len(xs))
        assert min(xs) - 1e-9 <= fitted.mu <= max(xs) + 1e-9


class TestAdjustedHits:
    def test_total_mass_over_domain_partition(self):
        """H_A over a domain-covering partition sums to ≈ H_total."""
        frags = [
            (Interval.closed(0, 20), 5.0),
            (Interval.open_closed(20, 60), 50.0),
            (Interval.open_closed(60, 100), 2.0),
        ]
        fitted = fit_partition_distribution(DOMAIN, frags, n_parts=100)
        total = sum(h for _, h in frags)
        adj = [adjusted_hits(iv, fitted, total, DOMAIN) for iv, _ in frags]
        # the normal has tails outside the domain, so the sum is slightly less
        assert sum(adj) <= total + 1e-9
        assert sum(adj) >= 0.80 * total

    def test_neighbour_of_hot_spot_beats_distant_fragment(self):
        """The core §7.1 claim: a cold fragment near a hot spot gets more
        adjusted hits than an equally cold fragment far from it."""
        frags = [
            (Interval.closed(0, 5), 100.0),   # hot spot
            (Interval.open_closed(5, 10), 0.0),   # neighbour, no hits
            (Interval.open_closed(10, 15), 0.0),  # distant, no hits
            (Interval.open_closed(15, 100), 0.0),
        ]
        fitted = fit_partition_distribution(DOMAIN, frags, n_parts=200)
        total = 100.0
        near = adjusted_hits(Interval.open_closed(5, 10), fitted, total, DOMAIN)
        far = adjusted_hits(Interval.open_closed(10, 15), fitted, total, DOMAIN)
        assert near > far > 0.0

    def test_out_of_domain_interval(self):
        fitted = FittedNormal(50.0, 10.0)
        assert adjusted_hits(Interval.closed(200, 300), fitted, 10.0, DOMAIN) == 0.0

    def test_unbounded_fragment_clamped(self):
        fitted = FittedNormal(50.0, 100.0)
        full = adjusted_hits(Interval.unbounded(), fitted, 10.0, DOMAIN)
        direct = adjusted_hits(DOMAIN, fitted, 10.0, DOMAIN)
        assert full == pytest.approx(direct)


class TestPartitionAdjustedHits:
    def test_end_to_end_via_store(self):
        store = StatisticsStore()
        hot = store.ensure_fragment("v", "a", Interval.closed(0, 10))
        store.ensure_fragment("v", "a", Interval.open_closed(10, 20))
        store.ensure_fragment("v", "a", Interval.open_closed(20, 100))
        for t in range(1, 11):
            hot.record_hit(float(t))
        adj = partition_adjusted_hits(store, "v", "a", DOMAIN, 10.0, NoDecay())
        assert adj is not None
        assert adj[Interval.open_closed(10, 20)] > adj[Interval.open_closed(20, 100)] * 0.999
        assert adj[Interval.closed(0, 10)] > adj[Interval.open_closed(10, 20)]

    def test_no_hits_returns_none(self):
        store = StatisticsStore()
        store.ensure_fragment("v", "a", Interval.closed(0, 100))
        assert partition_adjusted_hits(store, "v", "a", DOMAIN, 1.0, NoDecay()) is None

    def test_unknown_partition_returns_none(self):
        store = StatisticsStore()
        assert partition_adjusted_hits(store, "v", "a", DOMAIN, 1.0, NoDecay()) is None


# ----------------------------------------------------------------------
# Bit-exactness oracles for the vectorized MLE pipeline.  The array code
# promises *identical* floats to the naive loops (same operations, same
# summation order), so every comparison below is ``==``, not approx.
# ----------------------------------------------------------------------
_grid = st.sampled_from([0.0, 12.5, 30.0, 50.0, 62.5, 80.0, 100.0])


@st.composite
def _intervals(draw):
    kind = draw(st.sampled_from(["closed", "open", "open_closed", "closed_open", "point"]))
    if kind == "point":
        return Interval.point(draw(_grid))
    lo = draw(_grid)
    hi = draw(_grid.filter(lambda x: x > lo))
    return getattr(Interval, kind)(lo, hi)


@st.composite
def _fragments(draw):
    ivs = draw(st.lists(_intervals(), min_size=1, max_size=10))
    return [(iv, draw(st.floats(0.0, 50.0))) for iv in ivs]


def _spread_hits_oracle(domain, fragments, n_parts):
    """The pre-vectorization scalar algorithm, kept verbatim as the oracle."""
    width = domain.width / n_parts
    mids = [domain.lo + (i + 0.5) * width for i in range(n_parts)]
    weights = [0.0] * n_parts
    for interval, hits in fragments:
        if hits <= 0:
            continue
        idxs = [i for i, m in enumerate(mids) if interval.contains_point(m)]
        if not idxs:
            anchor = min(max(interval.lo, domain.lo), domain.hi)
            idxs = [min(range(n_parts), key=lambda i: abs(mids[i] - anchor))]
        share = hits / len(idxs)
        for i in idxs:
            weights[i] += share
    return mids, weights


class TestSpreadHitsOracle:
    @given(_fragments(), st.sampled_from([4, 7, 16, 256]))
    @settings(max_examples=150, deadline=None)
    def test_bitwise_equals_scalar_loop(self, fragments, n_parts):
        mids, weights = spread_hits(DOMAIN, fragments, n_parts)
        o_mids, o_weights = _spread_hits_oracle(DOMAIN, fragments, n_parts)
        assert mids == o_mids
        assert weights == o_weights  # exact — not approx

    def test_unbounded_fragments(self):
        frags = [
            (Interval.unbounded(), 3.0),
            (Interval.at_least(50.0), 2.0),
        ]
        _, weights = spread_hits(DOMAIN, frags, 8)
        _, oracle = _spread_hits_oracle(DOMAIN, frags, 8)
        assert weights == oracle

    def test_degenerate_below_domain_charges_first_part(self):
        # anchor clamps to domain.lo; argmin must match min()'s tie choice
        _, weights = spread_hits(DOMAIN, [(Interval.point(-5.0), 4.0)], 4)
        assert weights == [4.0, 0.0, 0.0, 0.0]


class TestFitOracles:
    @given(_fragments(), st.sampled_from([16, 64, 256]))
    @settings(max_examples=75, deadline=None)
    def test_fit_partition_bounds_equals_fragment_list_path(self, fragments, n_parts):
        lk = np.array([iv._lkey for iv, _ in fragments], dtype=np.float64)
        uk = np.array([iv._ukey for iv, _ in fragments], dtype=np.float64)
        hits = np.array([h for _, h in fragments], dtype=np.float64)
        via_keys = fit_partition_bounds(DOMAIN, lk, uk, hits, n_parts)
        via_list = fit_partition_distribution(DOMAIN, fragments, n_parts)
        if via_list is None:
            assert via_keys is None
        else:
            assert via_keys.mu == via_list.mu
            assert via_keys.sigma2 == via_list.sigma2

    @given(
        st.lists(st.floats(-50, 150, allow_nan=False), min_size=1, max_size=30),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_fit_normal_equals_scalar_estimators(self, xs, data):
        ws = [data.draw(st.floats(0.0, 10.0)) for _ in xs]
        fitted = fit_normal(xs, ws)
        # scalar oracle: generator-expression sums, ** 2 powers
        total = sum(ws)
        if total <= 0:
            assert fitted is None
            return
        mu = sum(w * x for w, x in zip(ws, xs)) / total
        ss = sum(w * (x - mu) ** 2 for w, x in zip(ws, xs))
        denom = total - 1.0 if total - 1.0 > 0 else total
        sigma2 = ss / denom
        if sigma2 <= 0:
            span = (max(xs) - min(xs)) if len(xs) > 1 else 1.0
            sigma2 = max((span / max(len(xs), 1)) ** 2, 1e-12)
        assert fitted.mu == mu
        assert fitted.sigma2 == sigma2


class TestManyOracles:
    @given(st.lists(_intervals(), min_size=0, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_mass_many_equals_mass_loop(self, intervals):
        fitted = FittedNormal(mu=50.0, sigma2=400.0)
        assert fitted.mass_many(intervals) == [fitted.mass(iv) for iv in intervals]

    @given(st.lists(_intervals(), min_size=0, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_adjusted_hits_many_equals_loop(self, intervals):
        fitted = FittedNormal(mu=40.0, sigma2=225.0)
        many = adjusted_hits_many(intervals, fitted, 17.0, DOMAIN)
        assert many == [adjusted_hits(iv, fitted, 17.0, DOMAIN) for iv in intervals]

    def test_adjusted_hits_many_skips_out_of_domain(self):
        ivs = [Interval.closed(200, 300), Interval.closed(40, 60)]
        fitted = FittedNormal(mu=50.0, sigma2=100.0)
        many = adjusted_hits_many(ivs, fitted, 10.0, DOMAIN)
        assert many[0] == 0.0
        assert many[1] == adjusted_hits(ivs[1], fitted, 10.0, DOMAIN)
