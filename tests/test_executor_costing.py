"""Tests for the MapReduce cost charging: boundaries, dispatch, capture."""

import pytest

from repro.engine.cost import ClusterSpec, CostLedger
from repro.engine.executor import ExecutionContext, Executor
from repro.partitioning.intervals import Interval
from repro.query.algebra import (
    Aggregate,
    AggSpec,
    Join,
    MaterializedScan,
    Project,
    Relation,
    Select,
)
from repro.query.analysis import job_boundaries
from repro.query.predicates import between
from repro.storage.pool import MaterializedViewPool


@pytest.fixture
def ctx(catalog):
    pool = MaterializedViewPool()
    return ExecutionContext(catalog, pool)


def join_plan():
    return Join(Relation("sales"), Relation("item"), "s_item_sk", "i_item_sk")


class TestJobBoundaries:
    def test_bare_join_is_boundary(self):
        assert job_boundaries(join_plan()) == {join_plan()}

    def test_projection_folds_join(self):
        plan = Project(join_plan(), ("i_category", "s_qty"))
        assert job_boundaries(plan) == {plan}

    def test_projection_chain_folds_to_top(self):
        inner = Project(join_plan(), ("i_category", "s_qty", "s_item_sk"))
        outer = Project(inner, ("i_category",))
        assert job_boundaries(outer) == {outer}

    def test_selection_between_does_not_fold(self):
        selected = Select(join_plan(), (between("i_item_sk", 0, 5),))
        plan = Project(selected, ("i_category",))
        # the join writes its own (unprojected) boundary; the projection
        # over a Select is not a producing job
        assert job_boundaries(plan) == {join_plan()}

    def test_aggregate_root_is_boundary(self):
        plan = Aggregate(join_plan(), ("i_category",), (AggSpec("count", None, "n"),))
        assert job_boundaries(plan) == {join_plan(), plan}

    def test_scan_only_plan_has_no_boundary(self):
        assert job_boundaries(Select(Relation("sales"), (between("s_qty", 1, 2),))) == set()

    def test_materialized_scan_compensation_not_boundary(self):
        plan = Project(Select(MaterializedScan("v"), (between("a", 0, 1),)), ("a",))
        assert job_boundaries(plan) == set()


class TestBoundaryCharging:
    def test_boundary_write_charged(self, ctx):
        result = Executor(ctx).execute(join_plan())
        assert result.ledger.bytes_written > 0
        assert result.ledger.write_s > 0

    def test_projected_boundary_writes_less(self, ctx):
        bare = Executor(ctx).execute(join_plan())
        projected = Executor(ctx).execute(Project(join_plan(), ("i_category", "s_qty")))
        assert projected.ledger.bytes_written < bare.ledger.bytes_written

    def test_pushed_selection_shrinks_boundary(self, ctx):
        unpushed = Executor(ctx).execute(
            Select(join_plan(), (between("i_item_sk", 0, 5),))
        )
        pushed_plan = Join(
            Relation("sales"),
            Select(Relation("item"), (between("i_item_sk", 0, 5),)),
            "s_item_sk",
            "i_item_sk",
        )
        pushed = Executor(ctx).execute(pushed_plan)
        assert pushed.ledger.bytes_written < unpushed.ledger.bytes_written

    def test_scan_only_no_write(self, ctx):
        result = Executor(ctx).execute(Relation("sales"))
        assert result.ledger.bytes_written == 0


class TestDispatchCost:
    def test_more_tasks_cost_more_within_one_wave(self):
        spec = ClusterSpec()
        few = spec.read_elapsed(2 * spec.block_bytes, nfiles=1)
        many = spec.read_elapsed(40 * spec.block_bytes, nfiles=1)
        assert many > few

    def test_dispatch_saturates_at_slots(self):
        spec = ClusterSpec(map_slots=4, task_dispatch_s=1.0, read_s_per_byte=0.0,
                           task_overhead_s=0.0)
        one_wave = spec.read_elapsed(4 * spec.block_bytes, nfiles=1)
        assert one_wave == pytest.approx(4.0)
        two_waves = spec.read_elapsed(8 * spec.block_bytes, nfiles=1)
        assert two_waves == pytest.approx(4.0)  # dispatch counted once, not per wave

    def test_sub_block_read_cheaper_than_block(self):
        spec = ClusterSpec()
        sub = spec.read_elapsed(spec.block_bytes / 10, nfiles=1)
        full = spec.read_elapsed(10 * spec.block_bytes, nfiles=1)
        assert sub < full


class TestCapture:
    def test_capture_returns_intermediate(self, ctx, sales_table):
        plan = Project(join_plan(), ("i_category", "s_qty"))
        executor = Executor(ctx)
        result, captured = executor.execute_with_capture(plan, [join_plan()])
        assert join_plan() in captured
        assert captured[join_plan()].nrows == result.table.nrows

    def test_capture_missing_target_absent(self, ctx):
        executor = Executor(ctx)
        ghost = Relation("item")
        _, captured = executor.execute_with_capture(Relation("sales"), [ghost])
        assert ghost not in captured

    def test_capture_state_cleared_after_run(self, ctx):
        executor = Executor(ctx)
        executor.execute_with_capture(join_plan(), [join_plan()])
        executor.execute(join_plan())
        assert executor._captured == {}

    def test_capture_root(self, ctx):
        executor = Executor(ctx)
        plan = join_plan()
        result, captured = executor.execute_with_capture(plan, [plan])
        assert captured[plan].sorted_rows() == result.table.sorted_rows()


LEDGER_FIELDS = (
    "read_s", "write_s", "shuffle_s", "overhead_s", "jobs", "map_tasks",
    "bytes_read", "bytes_written", "files_written", "fault_s",
    "task_retries", "speculative_tasks", "fault_events",
)


def ledger_tuple(ledger: CostLedger) -> tuple:
    return tuple(getattr(ledger, f) for f in LEDGER_FIELDS)


class TestMaterializedScanChargePinning:
    """Pin the exact charge sequence of ``Executor._eval_materialized``.

    The executor owns the base read charge for pool entries; the pool's
    ``read_entry`` fetches the payload with ``charge_payload=False``, so a
    scan must charge each entry's bytes exactly once.  These tests replay
    the documented sequence onto a fresh ledger by hand and require the
    executed ledger to be bit-identical — any accidental double charge (or
    dropped charge) in either layer breaks them.
    """

    def test_whole_view_scan_charges_one_read_and_one_job(self, catalog):
        pool = MaterializedViewPool()
        pool.define_view("v", Relation("sales"))
        entry = pool.add_whole_view("v", catalog.get("sales"))
        ctx = ExecutionContext(catalog, pool)
        result = Executor(ctx).execute(MaterializedScan("v"))

        expected = CostLedger(ctx.cluster)
        expected.charge_read(entry.size_bytes, nfiles=1)  # the one base read
        expected.charge_jobs(1)  # scan-only plan: the compensating job
        assert ledger_tuple(result.ledger) == ledger_tuple(expected)

    def test_fragment_scan_charges_one_batched_read(self, catalog):
        pool = MaterializedViewPool()
        pool.define_view("v", Relation("sales"))
        sales = catalog.get("sales")
        col = sales.column("s_item_sk")
        a = Interval.closed(0, 50)
        b = Interval(50, 99, True, False)
        fa = pool.add_fragment("v", "s_item_sk", a, sales.filter(a.mask(col)))
        fb = pool.add_fragment("v", "s_item_sk", b, sales.filter(b.mask(col)))
        ctx = ExecutionContext(catalog, pool)
        scan = MaterializedScan("v", (fa.fragment_id, fb.fragment_id), "s_item_sk")
        result = Executor(ctx).execute(scan)

        expected = CostLedger(ctx.cluster)
        # One batched charge over the summed fragment bytes with
        # nfiles=len(fragments) — not one charge per fragment, and no
        # second payload charge from pool.read_entry.
        expected.charge_read(fa.size_bytes + fb.size_bytes, nfiles=2)
        expected.charge_jobs(1)
        assert ledger_tuple(result.ledger) == ledger_tuple(expected)

    def test_clipped_fragment_scan_still_charges_full_fragments(self, catalog):
        pool = MaterializedViewPool()
        pool.define_view("v", Relation("sales"))
        sales = catalog.get("sales")
        col = sales.column("s_item_sk")
        a = Interval.closed(0, 60)
        b = Interval.closed(40, 99)
        fa = pool.add_fragment("v", "s_item_sk", a, sales.filter(a.mask(col)))
        fb = pool.add_fragment("v", "s_item_sk", b, sales.filter(b.mask(col)))
        ctx = ExecutionContext(catalog, pool)
        clip = Interval(60, None, True, False)
        scan = MaterializedScan("v", (fa.fragment_id, fb.fragment_id), "s_item_sk", (None, clip))
        result = Executor(ctx).execute(scan)

        expected = CostLedger(ctx.cluster)
        # Clips drop rows after the file is read: charged bytes are the
        # full fragment sizes, untouched by the clip.
        expected.charge_read(fa.size_bytes + fb.size_bytes, nfiles=2)
        expected.charge_jobs(1)
        assert ledger_tuple(result.ledger) == ledger_tuple(expected)


class TestMaterializedScanClips:
    def test_clip_filters_duplicate_region(self, catalog):
        pool = MaterializedViewPool()
        pool.define_view("v", Relation("sales"))
        sales = catalog.get("sales")
        col = sales.column("s_item_sk")
        a = Interval.closed(0, 60)
        b = Interval.closed(40, 99)
        fa = pool.add_fragment("v", "s_item_sk", a, sales.filter(a.mask(col)))
        fb = pool.add_fragment("v", "s_item_sk", b, sales.filter(b.mask(col)))
        ctx = ExecutionContext(catalog, pool)
        clip = Interval(60, None, True, False)  # exclude <= 60 from b
        scan = MaterializedScan("v", (fa.fragment_id, fb.fragment_id), "s_item_sk", (None, clip))
        result = Executor(ctx).execute(scan)
        expected = sales.filter(Interval.closed(0, 99).mask(col))
        assert result.table.sorted_rows() == expected.sorted_rows()

    def test_clip_requires_attr(self, catalog):
        from repro.errors import PlanError

        pool = MaterializedViewPool()
        pool.define_view("v", Relation("sales"))
        sales = catalog.get("sales")
        f = pool.add_fragment("v", "s_item_sk", Interval.closed(0, 99), sales)
        scan = MaterializedScan("v", (f.fragment_id,), None, (Interval.closed(0, 1),))
        with pytest.raises(PlanError):
            Executor(ExecutionContext(catalog, pool)).execute(scan)

    def test_mismatched_clips_rejected(self, catalog):
        from repro.errors import PlanError

        pool = MaterializedViewPool()
        pool.define_view("v", Relation("sales"))
        sales = catalog.get("sales")
        f = pool.add_fragment("v", "s_item_sk", Interval.closed(0, 99), sales)
        scan = MaterializedScan(
            "v", (f.fragment_id,), "s_item_sk", (None, None)
        )
        with pytest.raises(PlanError):
            Executor(ExecutionContext(catalog, pool)).execute(scan)
