"""Integration tests for the DeepSea driver (Algorithm 1).

These exercise the full pipeline over a small star schema: candidate
registration, evidence-gated materialization, adaptive partitioning,
fragment reuse, refinement (split and overlapping), eviction under a pool
bound, and — the master invariant — result equivalence with direct
execution under every policy.
"""

import numpy as np
import pytest

from repro import Catalog, DeepSea, Interval, Policy, Q
from repro.baselines import (
    deepsea,
    equidepth,
    hive,
    nectar,
    nectar_plus,
    no_repartition,
    non_partitioned,
)
from repro.engine.schema import Column, Schema
from repro.engine.table import Table

DOMAIN = Interval.closed(0, 1000)


def make_catalog(nrows=4000, nitems=1000, scale=2.0e5, seed=3):
    """A sales/item star schema with a nominal size in the tens of GB."""
    rng = np.random.default_rng(seed)
    sales_schema = Schema.of(
        Column("ss_id"), Column("ss_item_sk"), Column("ss_qty"), Column("ss_price")
    )
    item_schema = Schema.of(Column("i_item_sk"), Column("i_category"))
    sales = Table.from_dict(
        sales_schema,
        {
            "ss_id": np.arange(nrows),
            "ss_item_sk": rng.integers(0, nitems + 1, nrows),
            "ss_qty": rng.integers(1, 10, nrows),
            "ss_price": rng.integers(1, 500, nrows),
        },
        scale=scale,
    )
    item = Table.from_dict(
        item_schema,
        {
            "i_item_sk": np.arange(nitems + 1),
            "i_category": rng.integers(0, 10, nitems + 1),
        },
        scale=scale,
    )
    catalog = Catalog()
    catalog.register("store_sales", sales)
    catalog.register("item", item)
    return catalog


def template(lo, hi):
    return (
        Q("store_sales")
        .join("item", on=("ss_item_sk", "i_item_sk"))
        .where_between("i_item_sk", lo, hi)
        .group_by("i_category", agg=[("sum", "ss_qty", "total")])
        .plan
    )


DOMAINS = {"i_item_sk": DOMAIN, "ss_item_sk": DOMAIN}



def partitioned_view(system):
    """The resident view that carries a partition (the join view)."""
    for vid in system.pool.resident_view_ids():
        if system.pool.partition_attrs(vid):
            return vid
    raise AssertionError("no partitioned view resident")

@pytest.fixture
def catalog():
    return make_catalog()


def reference_answers(catalog, plans):
    system = hive(catalog, domains=DOMAINS)
    return [system.execute(p).result.sorted_rows() for p in plans]


class TestBasicFlow:
    def test_first_query_no_views_direct(self, catalog):
        system = deepsea(catalog, domains=DOMAINS, evidence_factor=1.0)
        report = system.execute(template(100, 200))
        assert report.view_used is None
        assert report.execution_s > 0

    def test_eager_materializes_on_first_query(self, catalog):
        system = deepsea(catalog, domains=DOMAINS, evidence_factor=0.0)
        report = system.execute(template(100, 200))
        assert report.views_created
        assert report.creation_s > 0
        assert system.pool.used_bytes > 0

    def test_identical_query_reuses_aggregate_view(self, catalog):
        system = deepsea(catalog, domains=DOMAINS, evidence_factor=0.0)
        system.execute(template(100, 200))
        report = system.execute(template(100, 200))
        # the exact repeat is answered from the (tiny) aggregate view
        assert report.view_used is not None

    def test_narrower_query_reuses_join_fragments(self, catalog):
        system = deepsea(catalog, domains=DOMAINS, evidence_factor=0.0)
        system.execute(template(100, 200))
        report = system.execute(template(120, 180))
        assert report.view_used is not None
        assert report.fragments_read >= 1

    def test_reuse_is_cheaper_than_first_run(self, catalog):
        system = deepsea(catalog, domains=DOMAINS, evidence_factor=0.0)
        first = system.execute(template(100, 200))
        second = system.execute(template(100, 200))
        assert second.total_s < first.total_s

    def test_evidence_gate_defers_materialization(self, catalog):
        system = deepsea(catalog, domains=DOMAINS, evidence_factor=1e9)
        for _ in range(3):
            report = system.execute(template(100, 200))
        assert not report.views_created
        assert system.pool.used_bytes == 0

    def test_evidence_accumulates_then_materializes(self, catalog):
        system = deepsea(catalog, domains=DOMAINS, evidence_factor=1.0)
        created_at = None
        for i in range(1, 31):
            report = system.execute(template(100, 200))
            if report.views_created:
                created_at = i
                break
        assert created_at is not None, "evidence never reached the threshold"
        assert created_at > 1  # not eager


class TestPartitioningShapes:
    def test_adaptive_partition_matches_selection_boundaries(self, catalog):
        system = deepsea(catalog, domains=DOMAINS, evidence_factor=0.0, bounds=None)
        system.execute(template(100, 200))
        view_id = partitioned_view(system)
        intervals = system.pool.intervals_of(view_id, "i_item_sk")
        assert len(intervals) == 3
        assert any(iv == Interval.closed(100, 200) for iv in intervals)

    def test_partition_covers_domain(self, catalog):
        from repro.partitioning.fragmentation import union_covers

        system = deepsea(catalog, domains=DOMAINS, evidence_factor=0.0, bounds=None)
        system.execute(template(100, 200))
        view_id = partitioned_view(system)
        intervals = system.pool.intervals_of(view_id, "i_item_sk")
        assert union_covers(intervals, DOMAIN)

    def test_equidepth_partition_fragment_count(self, catalog):
        system = equidepth(catalog, 6, domains=DOMAINS, evidence_factor=0.0, bounds=None)
        system.execute(template(100, 200))
        view_id = partitioned_view(system)
        assert len(system.pool.intervals_of(view_id, "i_item_sk")) == 6

    def test_np_stores_whole_views_only(self, catalog):
        system = non_partitioned(catalog, domains=DOMAINS, evidence_factor=0.0)
        system.execute(template(100, 200))
        view_ids = system.pool.resident_view_ids()
        assert view_ids
        for view_id in view_ids:
            assert system.pool.whole_view_entry(view_id) is not None
            assert system.pool.partition_attrs(view_id) == []

    def test_hive_never_materializes(self, catalog):
        system = hive(catalog, domains=DOMAINS)
        for lo in (100, 100, 100):
            system.execute(template(lo, lo + 100))
        assert system.pool.used_bytes == 0


class TestRefinement:
    def run_shifted(self, system):
        # establish the view, then query a sub-range of an existing fragment
        # until the accumulated hits justify the refinement's write cost
        system.execute(template(100, 500))
        for _ in range(6):
            system.execute(template(100, 500))
        for _ in range(20):
            system.execute(template(150, 200))
        return system

    def test_overlapping_refinement_creates_overlap(self, catalog):
        system = deepsea(
            catalog, domains=DOMAINS, evidence_factor=0.0, overlapping=True, bounds=None
        )
        self.run_shifted(system)
        view_id = partitioned_view(system)
        from repro.partitioning.fragmentation import pairwise_disjoint

        intervals = system.pool.intervals_of(view_id, "i_item_sk")
        # a small fragment covering the hot range exists (widened by the
        # refinement margin), and the parent is kept → overlap
        hot = Interval.closed(150, 200)
        small = [iv for iv in intervals if iv.contains(hot) and iv.width < 200]
        assert small, intervals
        assert not pairwise_disjoint(intervals)
        assert any(r.refinements for r in system.reports)

    def test_split_refinement_stays_disjoint(self, catalog):
        system = deepsea(
            catalog, domains=DOMAINS, evidence_factor=0.0, overlapping=False, bounds=None
        )
        self.run_shifted(system)
        view_id = partitioned_view(system)
        from repro.partitioning.fragmentation import pairwise_disjoint

        intervals = system.pool.intervals_of(view_id, "i_item_sk")
        assert pairwise_disjoint(intervals)
        assert any(r.refinements for r in system.reports)

    def test_nr_never_refines(self, catalog):
        system = no_repartition(catalog, domains=DOMAINS, evidence_factor=0.0, bounds=None)
        self.run_shifted(system)
        assert all(r.refinements == 0 for r in system.reports)


class TestPoolBound:
    def test_smax_respected_throughout(self, catalog):
        base = catalog.total_size_bytes
        smax = base * 0.05
        system = deepsea(catalog, domains=DOMAINS, smax_bytes=smax, evidence_factor=0.0)
        rng = np.random.default_rng(5)
        for _ in range(15):
            lo = int(rng.integers(0, 900))
            system.execute(template(lo, lo + 50))
            assert system.pool.used_bytes <= smax + 1e-6

    def test_eviction_happens_under_pressure(self, catalog):
        """A fresh hot view displaces decayed views when space runs out."""
        from repro.core.policies import Policy
        from repro.costmodel.decay import ProportionalDecay

        # First, learn how big one materialized aggregate view is.
        probe = deepsea(catalog, domains=DOMAINS, evidence_factor=0.0)
        probe.execute(template(100, 130))
        agg_entry = min(probe.pool.all_entries(), key=lambda e: e.size_bytes)
        smax = agg_entry.size_bytes * 3.2  # room for three aggregate views

        system = DeepSea(
            catalog,
            domains=DOMAINS,
            smax_bytes=smax,
            policy=Policy(evidence_factor=0.0, decay=ProportionalDecay(t_max=6)),
        )
        evictions = 0
        for lo in (100, 300, 500):  # fill the pool with three views
            for _ in range(2):
                evictions += system.execute(template(lo, lo + 30)).evictions
        for _ in range(6):  # a new hot range must displace a stale view
            evictions += system.execute(template(700, 730)).evictions
        assert evictions > 0
        assert system.pool.used_bytes <= smax + 1e-6

    def test_infeasible_creation_skipped_without_thrash(self, catalog):
        """A pool smaller than any fragment never admits, never oscillates."""
        system = deepsea(
            catalog,
            domains=DOMAINS,
            smax_bytes=1.0,  # effectively zero space
            evidence_factor=0.0,
        )
        for _ in range(6):
            report = system.execute(template(100, 200))
        assert system.pool.used_bytes == 0
        assert not report.views_created


class TestEquivalence:
    """Master invariant: every policy returns exactly the direct answer."""

    def workload(self):
        rng = np.random.default_rng(11)
        plans = []
        for _ in range(12):
            lo = int(rng.integers(0, 900))
            plans.append(template(lo, lo + int(rng.integers(10, 120))))
        # repeat a hot template to force reuse and refinement
        plans += [template(300, 400)] * 5 + [template(320, 360)] * 5
        return plans

    @pytest.mark.parametrize(
        "factory",
        [
            hive,
            non_partitioned,
            lambda c, **kw: equidepth(c, 6, **kw),
            no_repartition,
            nectar,
            nectar_plus,
            deepsea,
            lambda c, **kw: deepsea(c, overlapping=False, **kw),
        ],
        ids=["H", "NP", "E6", "NR", "N", "N+", "DS", "DS-split"],
    )
    def test_all_policies_equivalent(self, catalog, factory):
        plans = self.workload()
        expected = reference_answers(catalog, plans)
        kwargs = {"domains": DOMAINS}
        if factory is not hive:
            kwargs["evidence_factor"] = 0.0
        system = factory(catalog, **kwargs)
        for plan, exp in zip(plans, expected):
            got = system.execute(plan).result.sorted_rows()
            assert got == exp

    def test_equivalence_under_small_pool(self, catalog):
        plans = self.workload()
        expected = reference_answers(catalog, plans)
        system = deepsea(
            catalog,
            domains=DOMAINS,
            smax_bytes=catalog.total_size_bytes * 0.03,
            evidence_factor=0.0,
        )
        for plan, exp in zip(plans, expected):
            assert system.execute(plan).result.sorted_rows() == exp
