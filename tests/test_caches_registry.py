"""Tests for the cache registry itself (repro.caches) and its tier axis.

``register_cache`` is the one place every semantically transparent cache
announces itself; worker isolation, the profile report, and the shared
tier's invalidation story all hang off it, so its own behavior gets
direct coverage here rather than riding along in integration tests.
"""

import pytest

from repro import caches
from repro.parallel import shared_cache
from repro.parallel.shared_cache import InProcessClient, SharedCacheServer, stable_key


@pytest.fixture
def scratch_registration():
    """Register-and-cleanup helper so tests never pollute the registry."""
    names = []

    def register(name, clear, stats=None, *, tier="local"):
        names.append(name)
        caches.register_cache(name, clear, stats, tier=tier)

    yield register
    for name in names:
        caches._CLEARERS.pop(name, None)
        caches._STATS.pop(name, None)
        caches._TIERS.pop(name, None)


@pytest.fixture
def clean_tier():
    prior_client = shared_cache.install_client(None)
    prior_server = shared_cache.install_server(None)
    yield
    shared_cache.install_client(prior_client)
    shared_cache.install_server(prior_server)


class TestRegistration:
    def test_default_tier_is_local(self, scratch_registration):
        scratch_registration("test.local_cache", lambda: None)
        assert caches.cache_tier("test.local_cache") == "local"

    def test_shared_tier_recorded(self, scratch_registration):
        scratch_registration("test.shared_cache", lambda: None, tier="shared")
        assert caches.cache_tier("test.shared_cache") == "shared"

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="tier"):
            caches.register_cache("test.bogus", lambda: None, tier="global")
        assert "test.bogus" not in caches.registered_caches()

    def test_reregistration_replaces_stats_and_tier(self, scratch_registration):
        scratch_registration("test.dup", lambda: None, lambda: {"hits": 1}, tier="shared")
        scratch_registration("test.dup", lambda: None)  # no stats this time
        assert caches.cache_tier("test.dup") == "local"
        assert "test.dup" not in caches.cache_stats()

    def test_shared_cache_module_registered_as_shared(self):
        assert "parallel.shared_cache" in caches.registered_caches()
        assert caches.cache_tier("parallel.shared_cache") == "shared"

    def test_every_other_cache_is_local(self):
        for name in caches.registered_caches():
            if name != "parallel.shared_cache":
                assert caches.cache_tier(name) == "local", name


class TestSharedTierStats:
    def test_stats_shape_without_client(self, clean_tier):
        stats = caches.cache_stats()["parallel.shared_cache"]
        for key in ("hits", "misses", "evictions", "entries"):
            assert stats[key] == 0
        assert "server" not in stats

    def test_stats_include_server_breakdown_when_installed(self, clean_tier):
        server = SharedCacheServer(use_arena=False)
        shared_cache.install_server(server)
        shared_cache.install_client(InProcessClient(server))
        key = stable_key("result", ("registry-test",))
        shared_cache.client().put("result", key, 1, b"z" * 200)
        shared_cache.client().get("result", key, 1)
        stats = caches.cache_stats()["parallel.shared_cache"]
        assert stats["hits"] == 1
        assert stats["entries"] == 1
        assert stats["server"]["publishes"] == 1
        assert stats["server"]["stale_served"] == 0

    def test_clear_all_caches_empties_client_and_server(self, clean_tier):
        server = SharedCacheServer(use_arena=False)
        shared_cache.install_server(server)
        shared_cache.install_client(InProcessClient(server))
        key = stable_key("cover", ("registry-clear",))
        shared_cache.client().put("cover", key, 1, b"z" * 200)
        shared_cache.client().get("cover", key, 1)
        caches.clear_all_caches()
        stats = caches.cache_stats()["parallel.shared_cache"]
        assert stats["entries"] == 0
        assert stats["hits"] == 0 and stats["misses"] == 0
        # The entry itself is gone, not just the counters.
        assert shared_cache.client().get("cover", key, 1) is None


class TestStatsDelta:
    def test_counters_diffed_gauges_passed_through(self):
        before = {"c": {"hits": 2, "misses": 1, "entries": 5}}
        after = {"c": {"hits": 7, "misses": 4, "entries": 9}}
        delta = caches.stats_delta(before, after)
        assert delta["c"] == {"hits": 5, "misses": 3, "entries": 9}

    def test_nested_server_dict_passes_through(self):
        before = {"c": {"hits": 1, "server": {"gets": 3}}}
        after = {"c": {"hits": 2, "server": {"gets": 9}}}
        delta = caches.stats_delta(before, after)
        assert delta["c"]["hits"] == 1
        assert delta["c"]["server"] == {"gets": 9}

    def test_new_cache_appears_with_full_counts(self):
        delta = caches.stats_delta({}, {"new": {"hits": 3, "entries": 2}})
        assert delta["new"] == {"hits": 3, "entries": 2}
