"""Unit and property tests for the interval algebra."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import IntervalError
from repro.partitioning.intervals import Interval, sort_key, total_covered_width


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
class TestConstruction:
    def test_closed(self):
        iv = Interval.closed(1, 5)
        assert iv.lo == 1 and iv.hi == 5
        assert not iv.low_open and not iv.high_open

    def test_point_interval(self):
        iv = Interval.point(3)
        assert iv.contains_point(3)
        assert iv.width == 0

    def test_empty_raises(self):
        with pytest.raises(IntervalError):
            Interval.closed(5, 1)

    def test_empty_point_open_raises(self):
        with pytest.raises(IntervalError):
            Interval.open(3, 3)

    def test_unbounded(self):
        iv = Interval.unbounded()
        assert iv.contains_point(-1e18) and iv.contains_point(1e18)
        assert math.isinf(iv.width)

    def test_half_bounded(self):
        assert Interval.at_least(10).contains_point(1e9)
        assert not Interval.at_least(10).contains_point(9.999)
        assert Interval.at_most(10).contains_point(-1e9)
        assert not Interval.at_most(10).contains_point(10.001)


# ----------------------------------------------------------------------
# Point membership with open bounds
# ----------------------------------------------------------------------
class TestMembership:
    def test_open_low_excludes_endpoint(self):
        iv = Interval.open_closed(1, 5)
        assert not iv.contains_point(1)
        assert iv.contains_point(5)

    def test_open_high_excludes_endpoint(self):
        iv = Interval.closed_open(1, 5)
        assert iv.contains_point(1)
        assert not iv.contains_point(5)


# ----------------------------------------------------------------------
# Relations
# ----------------------------------------------------------------------
class TestRelations:
    def test_contains_subset(self):
        assert Interval.closed(0, 10).contains(Interval.closed(2, 8))
        assert not Interval.closed(2, 8).contains(Interval.closed(0, 10))

    def test_contains_respects_openness(self):
        # [0,10] contains (0,10], but (0,10] does not contain [0,10]
        assert Interval.closed(0, 10).contains(Interval.open_closed(0, 10))
        assert not Interval.open_closed(0, 10).contains(Interval.closed(0, 10))

    def test_intersect_disjoint(self):
        assert Interval.closed(0, 1).intersect(Interval.closed(2, 3)) is None

    def test_intersect_touching_closed(self):
        iv = Interval.closed(0, 2).intersect(Interval.closed(2, 4))
        assert iv == Interval.point(2)

    def test_intersect_touching_open(self):
        # [0,2) and [2,4] share no point
        assert Interval.closed_open(0, 2).intersect(Interval.closed(2, 4)) is None

    def test_intersect_overlap(self):
        iv = Interval.closed(0, 5).intersect(Interval.open_closed(3, 9))
        assert iv == Interval.open_closed(3, 5)

    def test_adjacent(self):
        assert Interval.closed_open(0, 2).adjacent_to(Interval.closed(2, 4))
        assert not Interval.closed(0, 2).adjacent_to(Interval.closed(2, 4))  # overlap at 2
        assert not Interval.closed(0, 1).adjacent_to(Interval.closed(3, 4))  # gap

    def test_hull(self):
        h = Interval.closed(0, 2).hull(Interval.open_closed(5, 9))
        assert h == Interval.closed(0, 9)


# ----------------------------------------------------------------------
# Splitting (Definition 7 building blocks)
# ----------------------------------------------------------------------
class TestSplitting:
    def test_split_before(self):
        left, right = Interval.closed(0, 10).split_before(4)
        assert left == Interval.closed_open(0, 4)
        assert right == Interval.closed(4, 10)

    def test_split_after(self):
        left, right = Interval.closed(0, 10).split_after(4)
        assert left == Interval.closed(0, 4)
        assert right == Interval.open_closed(4, 10)

    def test_split_outside_raises(self):
        with pytest.raises(IntervalError):
            Interval.closed(0, 10).split_before(11)

    def test_split_at_boundary_raises_when_empty(self):
        with pytest.raises(IntervalError):
            Interval.closed(0, 10).split_before(0)  # left piece [0,0) empty


# ----------------------------------------------------------------------
# Masks
# ----------------------------------------------------------------------
class TestMask:
    def test_mask_closed(self):
        vals = np.array([0, 1, 2, 3, 4, 5])
        np.testing.assert_array_equal(
            Interval.closed(1, 3).mask(vals), [False, True, True, True, False, False]
        )

    def test_mask_open(self):
        vals = np.array([0, 1, 2, 3])
        np.testing.assert_array_equal(Interval.open(0, 3).mask(vals), [False, True, True, False])

    def test_mask_unbounded(self):
        vals = np.array([-5, 0, 5])
        assert Interval.unbounded().mask(vals).all()


# ----------------------------------------------------------------------
# Utilities
# ----------------------------------------------------------------------
class TestUtilities:
    def test_sort_key_orders_by_lower_bound(self):
        ivs = [Interval.closed(5, 9), Interval.closed(0, 3), Interval.open_closed(0, 2)]
        ordered = sorted(ivs, key=sort_key)
        assert ordered[0] == Interval.closed(0, 3)
        assert ordered[1] == Interval.open_closed(0, 2)

    def test_total_covered_width_disjoint(self):
        assert total_covered_width([Interval.closed(0, 2), Interval.closed(5, 6)]) == 3

    def test_total_covered_width_overlapping(self):
        assert total_covered_width([Interval.closed(0, 4), Interval.closed(2, 6)]) == 6

    def test_total_covered_width_empty(self):
        assert total_covered_width([]) == 0.0


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
bounds = st.integers(min_value=-1000, max_value=1000)


@st.composite
def intervals(draw):
    lo = draw(bounds)
    hi = draw(bounds)
    lo, hi = min(lo, hi), max(lo, hi)
    if lo == hi:
        return Interval.point(float(lo))
    lo_open = draw(st.booleans())
    hi_open = draw(st.booleans())
    return Interval(float(lo), float(hi), lo_open, hi_open)


@given(intervals(), intervals())
def test_intersection_is_commutative(a, b):
    assert a.intersect(b) == b.intersect(a)


@given(intervals(), intervals())
def test_intersection_is_subset_of_both(a, b):
    inter = a.intersect(b)
    if inter is not None:
        assert a.contains(inter)
        assert b.contains(inter)


@given(intervals(), intervals())
def test_hull_contains_both(a, b):
    h = a.hull(b)
    assert h.contains(a)
    assert h.contains(b)


@given(intervals(), st.integers(min_value=-1000, max_value=1000))
def test_membership_consistent_with_intersection(iv, x):
    point = Interval.point(float(x))
    assert iv.contains_point(x) == (iv.intersect(point) is not None)


@given(intervals(), st.data())
def test_split_pieces_tile_original(iv, data):
    if iv.width == 0:
        return
    # pick an interior point where both pieces are non-empty
    lo, hi = iv.lo, iv.hi
    point = data.draw(st.floats(min_value=lo, max_value=hi, exclude_min=True,
                                allow_nan=False, allow_infinity=False))
    if not iv.contains_point(point) or point == lo or point == hi:
        return
    for splitter in (iv.split_before, iv.split_after):
        left, right = splitter(point)
        assert iv.contains(left) and iv.contains(right)
        assert left.intersect(right) is None
        assert left.hull(right) == iv


@given(intervals(), st.integers(min_value=-1000, max_value=1000))
def test_mask_matches_contains_point(iv, x):
    vals = np.array([float(x)])
    assert bool(iv.mask(vals)[0]) == iv.contains_point(x)
