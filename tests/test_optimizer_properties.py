"""Property-based tests for selection pushdown.

Pushdown must be a pure physical transformation: same rows, same
signature, and never more expensive than the unpushed plan under the
cost model (that inequality is the whole reason Hive pushes selections,
and the penalty DeepSea accepts when instrumenting).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.engine.catalog import Catalog
from repro.engine.cost import ClusterSpec
from repro.engine.executor import ExecutionContext, Executor
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.matching.filter_tree import FilterTree
from repro.matching.rewriter import Rewriter
from repro.partitioning.intervals import Interval
from repro.query.algebra import (
    Aggregate,
    AggSpec,
    Join,
    Project,
    Relation,
    Select,
)
from repro.query.optimizer import push_down
from repro.query.predicates import between
from repro.query.signature import compute_signature
from repro.storage.pool import MaterializedViewPool


def build_catalog() -> Catalog:
    rng = np.random.default_rng(17)
    n = 250
    fact = Schema.of(Column("f_id"), Column("f_k"), Column("f_v"))
    dim = Schema.of(Column("d_k"), Column("d_c"))
    catalog = Catalog()
    catalog.register(
        "fact",
        Table.from_dict(
            fact,
            {
                "f_id": np.arange(n),
                "f_k": rng.integers(0, 50, n),
                "f_v": rng.integers(0, 20, n),
            },
            scale=1e6,
        ),
    )
    catalog.register(
        "dim",
        Table.from_dict(
            dim,
            {"d_k": np.arange(50), "d_c": rng.integers(0, 5, 50)},
            scale=1e6,
        ),
    )
    return catalog


_CATALOG = build_catalog()
_SCHEMAS = {name: _CATALOG.get(name).schema.names for name in _CATALOG.names}
_EXECUTOR = Executor(ExecutionContext(_CATALOG))
_REWRITER = Rewriter(
    _SCHEMAS,
    FilterTree(),
    MaterializedViewPool(),
    _CATALOG,
    ClusterSpec(),
    lambda attr: Interval.closed(0, 50),
)

_ATTRS = ("f_k", "f_v", "d_k", "d_c")


@st.composite
def plans(draw):
    base = Join(Relation("fact"), Relation("dim"), "f_k", "d_k")
    plan = base
    # a stack of selections at arbitrary positions
    for _ in range(draw(st.integers(0, 3))):
        attr = draw(st.sampled_from(_ATTRS))
        lo = draw(st.integers(0, 40))
        hi = lo + draw(st.integers(0, 20))
        plan = Select(plan, (between(attr, lo, hi),))
    if draw(st.booleans()):
        plan = Project(plan, ("d_c", "f_v"))
        if draw(st.booleans()):
            lo = draw(st.integers(0, 15))
            plan = Select(plan, (between("f_v", lo, lo + 8),))
    if draw(st.booleans()):
        group = ("d_c",) if "d_c" in _flat_columns(plan) else ()
        plan = Aggregate(plan, group, (AggSpec("count", None, "n"),))
    return plan


def _flat_columns(plan):
    from repro.query.analysis import output_columns

    return output_columns(plan, _SCHEMAS)


@given(plan=plans())
@settings(max_examples=80, deadline=None)
def test_pushdown_preserves_results(plan):
    pushed = push_down(plan, _SCHEMAS)
    direct = _EXECUTOR.execute(plan).table.sorted_rows()
    optimized = _EXECUTOR.execute(pushed).table.sorted_rows()
    assert optimized == direct


@given(plan=plans())
@settings(max_examples=80, deadline=None)
def test_pushdown_preserves_signature(plan):
    pushed = push_down(plan, _SCHEMAS)
    assert compute_signature(plan, _SCHEMAS) == compute_signature(pushed, _SCHEMAS)


@given(plan=plans())
@settings(max_examples=80, deadline=None)
def test_pushdown_never_costs_more_when_executed(plan):
    """On real execution (where filtered joins genuinely shrink the job
    boundaries) pushdown is never a pessimization.  The static estimator
    does not model semi-join reduction, so the property is asserted on
    executed ledgers with block-rounding tolerance."""
    before = _EXECUTOR.execute(plan).ledger.total_seconds
    after = _EXECUTOR.execute(push_down(plan, _SCHEMAS)).ledger.total_seconds
    assert after <= before * 1.05


@given(plan=plans())
@settings(max_examples=60, deadline=None)
def test_pushdown_idempotent(plan):
    once = push_down(plan, _SCHEMAS)
    assert push_down(once, _SCHEMAS) == once
