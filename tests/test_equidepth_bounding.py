"""Tests for equi-depth partitioning and fragment-size bounding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PartitionError
from repro.partitioning.bounding import (
    SizeBounds,
    bound_fragment,
    split_count,
    split_equal_width,
)
from repro.partitioning.equidepth import equidepth_boundaries, equidepth_intervals
from repro.partitioning.fragmentation import Fragmentation
from repro.partitioning.intervals import Interval


class TestEquidepthBoundaries:
    def test_uniform_values(self):
        values = np.arange(1000)
        bounds = equidepth_boundaries(values, 4)
        assert len(bounds) == 3
        np.testing.assert_allclose(bounds, [249.75, 499.5, 749.25])

    def test_k1_no_boundaries(self):
        assert equidepth_boundaries(np.arange(10), 1) == []

    def test_empty_values(self):
        assert equidepth_boundaries(np.array([]), 4) == []

    def test_duplicate_quantiles_collapsed(self):
        values = np.array([5] * 100)
        assert len(equidepth_boundaries(values, 10)) <= 1

    def test_invalid_k(self):
        with pytest.raises(PartitionError):
            equidepth_boundaries(np.arange(10), 0)


class TestEquidepthIntervals:
    DOMAIN = Interval.closed(0, 1000)

    def test_is_horizontal_partition(self):
        values = np.random.default_rng(3).integers(0, 1000, 5000)
        intervals = equidepth_intervals(values, 6, self.DOMAIN)
        frag = Fragmentation("a", self.DOMAIN, tuple(intervals))
        assert frag.is_horizontal_partition()
        assert len(intervals) == 6

    def test_roughly_equal_depth(self):
        values = np.random.default_rng(3).integers(0, 1000, 6000)
        intervals = equidepth_intervals(values, 6, self.DOMAIN)
        counts = [int(iv.mask(values).sum()) for iv in intervals]
        assert sum(counts) == 6000
        assert max(counts) - min(counts) < 600  # within 10% of ideal 1000

    def test_single_fragment(self):
        values = np.arange(100)
        assert equidepth_intervals(values, 1, self.DOMAIN) == [self.DOMAIN]

    def test_unbounded_domain_rejected(self):
        with pytest.raises(PartitionError):
            equidepth_intervals(np.arange(10), 2, Interval.at_least(0))

    @given(k=st.integers(1, 20), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_always_partition(self, k, seed):
        values = np.random.default_rng(seed).integers(0, 100, 500)
        domain = Interval.closed(0, 100)
        intervals = equidepth_intervals(values, k, domain)
        frag = Fragmentation("a", domain, tuple(intervals))
        assert frag.is_horizontal_partition()
        assert len(intervals) <= k


class TestSplitCount:
    def test_no_upper_bound(self):
        assert split_count(1e9, None, 100) == 1

    def test_upper_bound_splits(self):
        assert split_count(1000, 250, 0) == 4

    def test_lower_bound_caps(self):
        # want 10 pieces but each must be >= 300 bytes: cap at 3
        assert split_count(1000, 100, 300) == 3

    def test_small_fragment_never_split(self):
        assert split_count(50, 100, 10) == 1

    def test_zero_bytes(self):
        assert split_count(0, 10, 1) == 1


class TestSplitEqualWidth:
    def test_pieces_tile(self):
        iv = Interval.closed(0, 100)
        pieces = split_equal_width(iv, 4)
        frag = Fragmentation("a", iv, tuple(pieces))
        assert frag.is_horizontal_partition()
        assert [p.width for p in pieces] == [25.0] * 4

    def test_single_piece(self):
        iv = Interval.closed(0, 100)
        assert split_equal_width(iv, 1) == [iv]

    def test_openness_preserved_on_edges(self):
        iv = Interval.open(0, 100)
        pieces = split_equal_width(iv, 2)
        assert pieces[0].low_open and pieces[-1].high_open

    def test_invalid_count(self):
        with pytest.raises(PartitionError):
            split_equal_width(Interval.closed(0, 1), 0)

    def test_unbounded_rejected(self):
        with pytest.raises(PartitionError):
            split_equal_width(Interval.at_least(0), 2)


class TestBoundFragment:
    def test_oversized_fragment_split(self):
        bounds = SizeBounds(phi=0.1, min_bytes=1)
        pieces = bound_fragment(Interval.closed(0, 100), 1000, 2000, bounds)
        assert len(pieces) == 5  # 1000 bytes / (0.1*2000) = 5

    def test_within_bound_untouched(self):
        bounds = SizeBounds(phi=0.5, min_bytes=1)
        iv = Interval.closed(0, 100)
        assert bound_fragment(iv, 100, 2000, bounds) == [iv]

    def test_phi_none_disables(self):
        bounds = SizeBounds(phi=None, min_bytes=1)
        iv = Interval.closed(0, 100)
        assert bound_fragment(iv, 1e12, 1.0, bounds) == [iv]

    def test_point_interval_not_split(self):
        bounds = SizeBounds(phi=0.01, min_bytes=1)
        iv = Interval.point(5)
        assert bound_fragment(iv, 1000, 1000, bounds) == [iv]
