"""Tests for plan analysis, signatures, pushdown, subqueries, and the builder."""

import pytest

from repro.errors import PlanError
from repro.partitioning.intervals import Interval
from repro.query.algebra import (
    Aggregate,
    AggSpec,
    Join,
    MaterializedScan,
    Project,
    Relation,
    Select,
    base_relations,
    count_jobs,
    replace_subplan,
    walk,
)
from repro.query.analysis import (
    class_members,
    class_representative,
    collect_ranges,
    join_equivalence_classes,
    output_columns,
)
from repro.query.builder import Q
from repro.query.optimizer import push_down
from repro.query.predicates import between
from repro.query.signature import compute_signature, view_id_for
from repro.query.subqueries import view_candidate_subplans

SCHEMAS = {
    "sales": ("s_id", "s_item_sk", "s_qty", "s_price"),
    "item": ("i_item_sk", "i_category"),
    "web": ("w_id", "w_item_sk"),
}


def join_plan():
    return Join(Relation("sales"), Relation("item"), "s_item_sk", "i_item_sk")


def selected_join(lo=10, hi=20):
    return Select(join_plan(), (between("i_item_sk", lo, hi),))


class TestAlgebraUtilities:
    def test_walk_order(self):
        plan = selected_join()
        kinds = [type(n).__name__ for n in walk(plan)]
        assert kinds == ["Select", "Join", "Relation", "Relation"]

    def test_base_relations_sorted_multiset(self):
        plan = Join(join_plan(), Relation("web"), "s_item_sk", "w_item_sk")
        assert base_relations(plan) == ("item", "sales", "web")

    def test_count_jobs(self):
        assert count_jobs(Relation("sales")) == 1
        assert count_jobs(join_plan()) == 1
        plan = Aggregate(join_plan(), ("i_category",), (AggSpec("count", None, "n"),))
        assert count_jobs(plan) == 2

    def test_replace_subplan(self):
        plan = selected_join()
        replacement = MaterializedScan("v1")
        out = replace_subplan(plan, join_plan(), replacement)
        assert isinstance(out, Select)
        assert out.child == replacement

    def test_replace_subplan_no_match_identity(self):
        plan = selected_join()
        out = replace_subplan(plan, Relation("ghost"), MaterializedScan("v"))
        assert out == plan


class TestOutputColumns:
    def test_relation(self):
        assert output_columns(Relation("item"), SCHEMAS) == ("i_item_sk", "i_category")

    def test_join_concatenates(self):
        cols = output_columns(join_plan(), SCHEMAS)
        assert cols == ("s_id", "s_item_sk", "s_qty", "s_price", "i_item_sk", "i_category")

    def test_same_name_join_key_dropped(self):
        plan = Join(Relation("sales"), Relation("item"), "s_item_sk", "s_item_sk")
        # hypothetical same-name key: right copy dropped
        schemas = {"sales": ("s_item_sk", "a"), "item": ("s_item_sk", "b")}
        assert output_columns(plan, schemas) == ("s_item_sk", "a", "b")

    def test_aggregate(self):
        plan = Aggregate(join_plan(), ("i_category",), (AggSpec("sum", "s_qty", "total"),))
        assert output_columns(plan, SCHEMAS) == ("i_category", "total")

    def test_project(self):
        plan = Project(Relation("item"), ("i_category",))
        assert output_columns(plan, SCHEMAS) == ("i_category",)

    def test_unknown_relation(self):
        with pytest.raises(PlanError):
            output_columns(Relation("nope"), SCHEMAS)


class TestRangesAndClasses:
    def test_collect_ranges_intersects(self):
        plan = Select(
            Select(Relation("sales"), (between("s_item_sk", 0, 50),)),
            (between("s_item_sk", 10, 99),),
        )
        ranges = collect_ranges(plan)
        assert ranges["s_item_sk"] == Interval.closed(10, 50)

    def test_join_classes_transitive(self):
        plan = Join(join_plan(), Relation("web"), "i_item_sk", "w_item_sk")
        classes = join_equivalence_classes(plan)
        assert classes == frozenset({frozenset({"s_item_sk", "i_item_sk", "w_item_sk"})})

    def test_representative_is_sorted_first(self):
        classes = join_equivalence_classes(join_plan())
        assert class_representative("s_item_sk", classes) == "i_item_sk"
        assert class_representative("unrelated", classes) == "unrelated"

    def test_class_members_singleton(self):
        assert class_members("x", frozenset()) == frozenset({"x"})


class TestSignature:
    def test_join_order_invariance(self):
        a = Join(Relation("sales"), Relation("item"), "s_item_sk", "i_item_sk")
        b = Join(Relation("item"), Relation("sales"), "i_item_sk", "s_item_sk")
        sig_a = compute_signature(Select(a, (between("i_item_sk", 0, 9),)), SCHEMAS)
        sig_b = compute_signature(Select(b, (between("i_item_sk", 0, 9),)), SCHEMAS)
        assert sig_a.relations == sig_b.relations
        assert sig_a.join_classes == sig_b.join_classes
        assert sig_a.ranges == sig_b.ranges
        assert sig_a.agg_key == sig_b.agg_key

    def test_ranges_normalized_to_representative(self):
        # selection on s_item_sk and on i_item_sk produce the same range entry
        sig_s = compute_signature(
            Select(join_plan(), (between("s_item_sk", 5, 9),)), SCHEMAS
        )
        sig_i = compute_signature(
            Select(join_plan(), (between("i_item_sk", 5, 9),)), SCHEMAS
        )
        assert sig_s.ranges == sig_i.ranges

    def test_aggregate_shape_recorded(self):
        plan = Aggregate(join_plan(), ("i_category",), (AggSpec("sum", "s_qty", "t"),))
        sig = compute_signature(plan, SCHEMAS)
        assert sig.group_by == ("i_category",)
        assert sig.agg_key != ("none",)

    def test_materialized_scan_rejected(self):
        with pytest.raises(PlanError):
            compute_signature(MaterializedScan("v"), SCHEMAS)

    def test_two_aggregates_rejected(self):
        inner = Aggregate(Relation("sales"), ("s_id",), (AggSpec("count", None, "n"),))
        outer = Aggregate(inner, (), (AggSpec("sum", "n", "total"),))
        with pytest.raises(PlanError):
            compute_signature(outer, SCHEMAS)

    def test_view_id_deterministic_and_distinct(self):
        assert view_id_for(join_plan()) == view_id_for(join_plan())
        assert view_id_for(join_plan()) != view_id_for(Relation("sales"))


class TestPushDown:
    def test_selection_pushed_below_join(self):
        plan = selected_join()
        pushed = push_down(plan, SCHEMAS)
        # the selection should now sit on the item side, under the join
        assert isinstance(pushed, Join)
        assert isinstance(pushed.right, Select)
        assert pushed.right.predicates[0].attr == "i_item_sk"

    def test_pushdown_preserves_signature(self):
        plan = selected_join()
        pushed = push_down(plan, SCHEMAS)
        assert compute_signature(plan, SCHEMAS) == compute_signature(pushed, SCHEMAS)

    def test_selection_pushed_below_groupby(self):
        plan = Select(
            Aggregate(join_plan(), ("i_item_sk",), (AggSpec("count", None, "n"),)),
            (between("i_item_sk", 0, 5),),
        )
        pushed = push_down(plan, SCHEMAS)
        assert isinstance(pushed, Aggregate)

    def test_selection_on_agg_alias_stays(self):
        plan = Select(
            Aggregate(join_plan(), ("i_item_sk",), (AggSpec("count", None, "n"),)),
            (between("n", 0, 5),),
        )
        pushed = push_down(plan, SCHEMAS)
        assert isinstance(pushed, Select)  # cannot push below the aggregate

    def test_multi_predicate_split(self):
        plan = Select(
            join_plan(),
            (between("i_item_sk", 0, 5), between("s_qty", 1, 2)),
        )
        pushed = push_down(plan, SCHEMAS)
        assert isinstance(pushed, Join)
        assert isinstance(pushed.left, Select) and isinstance(pushed.right, Select)

    def test_fixpoint_idempotent(self):
        plan = selected_join()
        once = push_down(plan, SCHEMAS)
        twice = push_down(once, SCHEMAS)
        assert once == twice


class TestSubqueries:
    def test_candidates_shapes(self):
        plan = Aggregate(
            Select(join_plan(), (between("i_item_sk", 0, 5),)),
            ("i_category",),
            (AggSpec("count", None, "n"),),
        )
        cands = view_candidate_subplans(plan)
        assert plan in cands          # the aggregate
        assert join_plan() in cands   # the join
        assert all(not isinstance(c, (Select, Relation)) for c in cands)

    def test_materialized_scan_subtrees_excluded(self):
        plan = Join(MaterializedScan("v"), Relation("item"), "x", "i_item_sk")
        assert view_candidate_subplans(plan) == []


class TestBuilder:
    def test_full_pipeline(self):
        plan = (
            Q("sales")
            .join("item", on=("s_item_sk", "i_item_sk"))
            .where_between("i_item_sk", 1, 2)
            .group_by("i_category", agg=[("sum", "s_qty", "total")])
            .plan
        )
        assert isinstance(plan, Aggregate)
        assert isinstance(plan.child, Select)
        assert isinstance(plan.child.child, Join)

    def test_builder_composition(self):
        sub = Q("sales").where_eq("s_id", 5)
        plan = Q("item").join(sub, on=("i_item_sk", "s_item_sk")).plan
        assert isinstance(plan.right, Select)

    def test_where_variants(self):
        p1 = Q("item").where_at_least("i_item_sk", 5).plan
        p2 = Q("item").where_at_most("i_item_sk", 5).plan
        assert p1.predicates[0].interval == Interval.at_least(5)
        assert p2.predicates[0].interval == Interval.at_most(5)

    def test_global_aggregate(self):
        plan = Q("sales").aggregate([("count", None, "n")]).plan
        assert plan.group_by == ()
