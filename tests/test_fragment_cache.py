"""Tests for fragment-level prune decisions (repro/matching/fragment_cache).

The contract under test:

* pruning is wall-clock only — for any fragment layout, clips, and
  conjunction, the pruned executor path returns tables and ledgers
  bit-identical to the unpruned seed path;
* entries validate against per-view cover versions from the pool's
  CoverDelta stream: repartitioning view V invalidates exactly V's
  entries while other views' entries — and result-cache entries of plans
  not reading V — stay live;
* a journal rollback restores the prior versions, so entries recorded
  before the transaction re-validate for free;
* the cache registers with :mod:`repro.caches`, so its counters surface
  in ``python -m repro profile``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import caches
from repro.engine.catalog import Catalog
from repro.engine.cost import CostLedger
from repro.engine.executor import ExecutionContext, Executor
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.engine.types import ColumnKind
from repro.matching import fragment_cache
from repro.matching.fragment_cache import EMPTY, FULL, PARTIAL, FragmentPruneCache
from repro.partitioning.intervals import Interval
from repro.query.algebra import MaterializedScan, Relation, Select
from repro.query.predicates import between
from repro.storage.pool import MaterializedViewPool


def _make_catalog() -> Catalog:
    schema = Schema.of(
        Column("s_id", ColumnKind.INT64),
        Column("s_item_sk", ColumnKind.INT64),
        Column("s_qty", ColumnKind.INT64),
    )
    rng = np.random.default_rng(7)
    n = 400
    table = Table.from_dict(
        schema,
        {
            "s_id": np.arange(n),
            "s_item_sk": rng.integers(0, 100, size=n),
            "s_qty": rng.integers(1, 10, size=n),
        },
    )
    cat = Catalog()
    cat.register("sales", table)
    return cat


# Module-level: immutable, shared by every example (function-scoped
# fixtures don't mix with @given).
CATALOG = _make_catalog()
SALES = CATALOG.get("sales")

LEDGER_FIELDS = (
    "read_s", "write_s", "shuffle_s", "overhead_s", "jobs", "map_tasks",
    "bytes_read", "bytes_written", "files_written", "fault_s",
    "task_retries", "speculative_tasks", "fault_events",
)


def ledger_tuple(ledger: CostLedger) -> tuple:
    return tuple(getattr(ledger, f) for f in LEDGER_FIELDS)


def partitioned_pool(cuts: "list[float]", view_id: str = "v") -> "tuple[MaterializedViewPool, tuple[str, ...]]":
    """Pool with ``view_id`` partitioned on s_item_sk at ``cuts``."""
    pool = MaterializedViewPool()
    pool.define_view(view_id, Relation("sales"))
    col = SALES.column("s_item_sk")
    bounds = [0.0] + sorted(cuts) + [100.0]
    fids = []
    for i in range(len(bounds) - 1):
        lo, hi = bounds[i], bounds[i + 1]
        interval = Interval.closed(lo, hi) if i == 0 else Interval.open_closed(lo, hi)
        entry = pool.add_fragment(view_id, "s_item_sk", interval, SALES.filter(interval.mask(col)))
        fids.append(entry.fragment_id)
    return pool, tuple(fids)


def run_plan(pool, plan, *, pruned: bool):
    """Execute ``plan`` from cold caches with pruning on or off."""
    caches.clear_all_caches()
    fragment_cache.GLOBAL.enabled = pruned
    try:
        return Executor(ExecutionContext(CATALOG, pool)).execute(plan)
    finally:
        fragment_cache.GLOBAL.enabled = True


def assert_tables_identical(a: Table, b: Table) -> None:
    assert a.schema.names == b.schema.names
    assert a.nrows == b.nrows
    for name in a.schema.names:
        ca, cb = np.asarray(a.column(name)), np.asarray(b.column(name))
        assert ca.dtype == cb.dtype
        assert np.array_equal(ca, cb)


# ----------------------------------------------------------------------
# Property: pruned execution == unpruned execution, bit for bit.
# ----------------------------------------------------------------------
BOUND = st.integers(0, 100)


@st.composite
def scan_cases(draw):
    cuts = sorted(set(draw(st.lists(st.integers(1, 99), max_size=3))))
    nfrags = len(cuts) + 1
    clipped = draw(st.booleans())
    clips = None
    if clipped:
        clips = []
        for _ in range(nfrags):
            if draw(st.booleans()):
                lo = draw(BOUND)
                clips.append(Interval.closed(float(lo), float(lo + draw(st.integers(0, 40)))))
            else:
                clips.append(None)
        clips = tuple(clips)
    npreds = draw(st.integers(1, 3))
    preds = []
    for _ in range(npreds):
        lo = draw(BOUND)
        preds.append(between("s_item_sk", float(lo), float(lo + draw(st.integers(0, 60)))))
    if draw(st.booleans()):
        # Multi-attribute conjunction: exercises the unprunable fallback.
        preds.append(between("s_qty", 2.0, 8.0))
    return [float(c) for c in cuts], clips, tuple(preds)


@given(case=scan_cases())
@settings(max_examples=80, deadline=None)
def test_pruned_execution_is_bit_identical_to_unpruned(case):
    cuts, clips, predicates = case
    pool, fids = partitioned_pool(cuts)
    scan = MaterializedScan("v", fids, "s_item_sk", clips if clips is not None else ())
    plan = Select(scan, predicates)

    pruned = run_plan(pool, plan, pruned=True)
    unpruned = run_plan(pool, plan, pruned=False)

    assert_tables_identical(pruned.table, unpruned.table)
    assert ledger_tuple(pruned.ledger) == ledger_tuple(unpruned.ledger)


# ----------------------------------------------------------------------
# Classification unit tests.
# ----------------------------------------------------------------------
class TestClassification:
    def setup_method(self):
        self.pool, self.fids = partitioned_pool([50.0])
        self.cache = FragmentPruneCache()

    def _classify(self, predicates, clips=()):
        scan = MaterializedScan("v", self.fids, "s_item_sk", clips)
        return self.cache.classify(self.pool, scan, predicates)

    def test_disjoint_predicate_is_empty(self):
        decisions = self._classify((between("s_item_sk", 60.0, 70.0),))
        assert decisions[0].state == EMPTY  # fragment [0, 50] misses [60, 70]
        assert decisions[1].state == PARTIAL

    def test_covering_predicate_is_full(self):
        decisions = self._classify((between("s_item_sk", 0.0, 100.0),))
        assert [d.state for d in decisions] == [FULL, FULL]

    def test_partial_carries_fused_interval(self):
        clip = Interval.closed(10.0, 90.0)
        decisions = self._classify((between("s_item_sk", 20.0, 60.0),), (clip, clip))
        assert decisions[0].state == PARTIAL
        # predicates ∧ clip, fused; not clamped to the fragment interval
        # (the piece only holds rows inside it anyway).
        assert decisions[0].eff == Interval.closed(20.0, 60.0)

    def test_observed_minmax_upgrades_to_empty(self):
        # Key interval says [0, 100] but the payload only holds values
        # below 10: the observed bounds prove the miss.
        pool = MaterializedViewPool()
        pool.define_view("w", Relation("sales"))
        col = SALES.column("s_item_sk")
        narrow = Interval.closed(0.0, 9.0)
        entry = pool.add_fragment(
            "w", "s_item_sk", Interval.closed(0.0, 100.0), SALES.filter(narrow.mask(col))
        )
        scan = MaterializedScan("w", (entry.fragment_id,), "s_item_sk")
        decisions = self.cache.classify(pool, scan, (between("s_item_sk", 50.0, 60.0),))
        assert decisions[0].state == EMPTY

    def test_multi_attribute_conjunction_not_prunable(self):
        preds = (between("s_item_sk", 0.0, 50.0), between("s_qty", 1.0, 5.0))
        assert self._classify(preds) is None

    def test_disabled_cache_declines(self):
        self.cache.enabled = False
        assert self._classify((between("s_item_sk", 0.0, 100.0),)) is None


# ----------------------------------------------------------------------
# Pruning never changes the charge sequence.
# ----------------------------------------------------------------------
def test_pruned_scan_still_charges_all_fragment_bytes():
    pool, fids = partitioned_pool([50.0])
    entries = [pool.get_fragment(fid) for fid in fids]
    # [60, 70] misses the [0, 50] fragment entirely: it is pruned...
    plan = Select(MaterializedScan("v", fids, "s_item_sk"), (between("s_item_sk", 60.0, 70.0),))
    result = run_plan(pool, plan, pruned=True)
    assert fragment_cache.GLOBAL.stats()["pruned_fragments"] == 1

    # ...yet the ledger charges both fragments' bytes in one batched
    # read, exactly like the unpruned path (economics are simulated; the
    # prune only skips the real payload work).
    expected = CostLedger(ExecutionContext(CATALOG, pool).cluster)
    expected.charge_read(sum(e.size_bytes for e in entries), nfiles=len(entries))
    expected.charge_jobs(1)
    assert ledger_tuple(result.ledger) == ledger_tuple(expected)


# ----------------------------------------------------------------------
# Cover-delta invalidation + rollback revalidation.
# ----------------------------------------------------------------------
def two_view_setup():
    pool = MaterializedViewPool()
    plans = {}
    for vid in ("va", "vb"):
        pool.define_view(vid, Relation("sales"))
    col = SALES.column("s_item_sk")
    for vid in ("va", "vb"):
        a, b = Interval.closed(0.0, 50.0), Interval.open_closed(50.0, 100.0)
        fa = pool.add_fragment(vid, "s_item_sk", a, SALES.filter(a.mask(col)))
        fb = pool.add_fragment(vid, "s_item_sk", b, SALES.filter(b.mask(col)))
        scan = MaterializedScan(vid, (fa.fragment_id, fb.fragment_id), "s_item_sk")
        plans[vid] = Select(scan, (between("s_item_sk", 10.0, 60.0),))
    return pool, plans


class TestCoverDeltaInvalidation:
    def test_repartitioning_one_view_invalidates_only_its_entries(self):
        caches.clear_all_caches()
        pool, plans = two_view_setup()
        executor = Executor(ExecutionContext(CATALOG, pool))
        executor.execute(plans["va"])
        executor.execute(plans["vb"])
        cache = fragment_cache.GLOBAL
        assert cache.stats()["misses"] == 2
        assert cache.stats()["invalidations"] == 0

        # Repartition vb: admit a fragment → vb's cover version bumps.
        extra = Interval.open_closed(100.0, 200.0)
        pool.add_fragment("vb", "s_item_sk", extra, SALES.filter(extra.mask(SALES.column("s_item_sk"))))

        scan_a, scan_b = plans["va"].child, plans["vb"].child
        assert cache.classify(pool, scan_a, plans["va"].predicates) is not None
        stats = cache.stats()
        assert stats["hits"] >= 1  # va entry survived the vb mutation
        assert stats["invalidations"] == 0

        assert cache.classify(pool, scan_b, plans["vb"].predicates) is not None
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert stats["invalidations_by_view"] == {"vb": 1}

    def test_result_cache_entries_for_other_views_stay_live(self):
        caches.clear_all_caches()
        pool, plans = two_view_setup()
        executor = Executor(ExecutionContext(CATALOG, pool))
        executor.execute(plans["va"])
        executor.execute(plans["vb"])
        from repro.engine.result_cache import GLOBAL as results

        assert results.stats()["entries"] == 2

        extra = Interval.open_closed(100.0, 200.0)
        pool.add_fragment("vb", "s_item_sk", extra, SALES.filter(extra.mask(SALES.column("s_item_sk"))))

        hits_before = results.stats()["hits"]
        executor.execute(plans["va"])  # doesn't read vb: replayed from cache
        assert results.stats()["hits"] == hits_before + 1
        executor.execute(plans["vb"])  # reads vb: version vector changed
        assert results.stats()["hits"] == hits_before + 1
        assert results.stats()["entries"] == 3  # the re-execution stored anew

    def test_rollback_revalidates_pre_transaction_entries(self):
        caches.clear_all_caches()
        pool, plans = two_view_setup()
        executor = Executor(ExecutionContext(CATALOG, pool))
        before = executor.execute(plans["vb"])
        cache = fragment_cache.GLOBAL
        versions = pool.cover_version("vb")

        pool.begin("step")
        extra = Interval.open_closed(100.0, 200.0)
        pool.add_fragment("vb", "s_item_sk", extra, SALES.filter(extra.mask(SALES.column("s_item_sk"))))
        assert pool.cover_version("vb") != versions
        pool.rollback()
        assert pool.cover_version("vb") == versions

        # Fragment-cache entry recorded before the transaction is valid
        # again — a hit, not an invalidation.
        hits = cache.stats()["hits"]
        assert cache.classify(pool, plans["vb"].child, plans["vb"].predicates) is not None
        stats = cache.stats()
        assert stats["hits"] == hits + 1
        assert stats["invalidations"] == 0

        # And the result cache replays the pre-transaction entry.
        from repro.engine.result_cache import GLOBAL as results

        rc_hits = results.stats()["hits"]
        after = executor.execute(plans["vb"])
        assert results.stats()["hits"] == rc_hits + 1
        assert_tables_identical(before.table, after.table)


# ----------------------------------------------------------------------
# Registry + prewarm integration.
# ----------------------------------------------------------------------
def test_fragment_cache_registered_in_registry():
    caches.clear_all_caches()
    pool, fids = partitioned_pool([50.0])
    plan = Select(MaterializedScan("v", fids, "s_item_sk"), (between("s_item_sk", 10.0, 90.0),))
    Executor(ExecutionContext(CATALOG, pool)).execute(plan)
    stats = caches.cache_stats()["matching.fragment_cache"]
    for key in (
        "hits", "misses", "evictions", "entries", "invalidations",
        "invalidations_by_view", "pruned_fragments", "rows_pruned", "rows_scanned",
    ):
        assert key in stats
    assert stats["misses"] >= 1
    assert stats["rows_scanned"] > 0


def test_prewarm_builds_plan_pure_tier():
    from repro.parallel.prewarm import prewarm_shared_caches

    caches.clear_all_caches()
    assert fragment_cache.normalize_conjuncts.cache_info().currsize == 0
    plans = [Select(Relation("sales"), (between("s_item_sk", 10.0, 20.0),))]
    prewarm_shared_caches(plans, CATALOG)
    assert fragment_cache.normalize_conjuncts.cache_info().currsize >= 1


def test_clear_resets_counters_but_not_enabled():
    cache = FragmentPruneCache()
    cache.enabled = False
    cache.hits = 3
    cache.clear()
    assert cache.stats()["hits"] == 0
    assert cache.enabled is False
    cache.enabled = True
