"""Incremental ingest: catalog appends, delta maintenance, upkeep, serving.

The contract under test (DESIGN.md §16): a micro-batch append brings
every resident materialized view back in sync — delta-patched fragments
byte-identical to a from-scratch recompute over the grown base table —
without ever changing an answer, while charging all upkeep to
``CostLedger.maint_s``; a crash mid-batch rolls the catalog, the pool,
and the cover versions back exactly, stranding the aborted catalog
version forever.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.deepsea import DeepSea
from repro.engine.catalog import Catalog
from repro.engine.cost import CostLedger
from repro.engine.executor import ExecutionContext, Executor
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.engine.types import ColumnKind
from repro.errors import CatalogError
from repro.partitioning.intervals import Interval
from repro.query.builder import Q
from repro.storage.ingest import delta_source
from repro.workloads.bigbench import TEMPLATES

DOMAIN = Interval.closed(0, 1000)
SCHEMA = Schema.of(Column("id"), Column("k"), Column("v", ColumnKind.FLOAT64))


def make_table(n=4000, seed=1, scale=1000.0):
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        SCHEMA,
        {"id": np.arange(n), "k": rng.integers(0, 1001, n), "v": rng.random(n)},
        scale=scale,
    )


def make_system(n=4000, seed=1, smax=1e12):
    catalog = Catalog()
    catalog.register("t", make_table(n, seed))
    return DeepSea(catalog, smax_bytes=smax, domains={"k": DOMAIN})


def plan(lo, hi):
    return Q("t").select("id", "k", "v").where_between("k", lo, hi).plan


def batch_rows(rng, n, lo=0, hi=1000, id0=100_000):
    return {
        "id": np.arange(id0, id0 + n),
        "k": rng.integers(lo, hi + 1, n),
        "v": rng.random(n),
    }


def warm(system, queries=10):
    for i in range(queries):
        system.execute(plan(10 + 7 * i, 500 + 3 * i))
    assert system.pool.resident_view_ids(), "fixture failed to materialize a view"


def recompute(p, catalog, cluster):
    return Executor(ExecutionContext(catalog, None, cluster)).execute(
        p, None, use_cache=False
    ).table


def assert_tables_equal(a: Table, b: Table):
    assert a.schema.names == b.schema.names
    assert a.nrows == b.nrows
    for name in a.schema.names:
        np.testing.assert_array_equal(a.column(name), b.column(name))


def assert_pool_identity(system):
    """Every resident payload equals its slice of a fresh recompute."""
    pool = system.pool
    for view_id in pool.resident_view_ids():
        expected = recompute(pool.definition(view_id).plan, system.catalog, system.cluster)
        whole = pool.whole_view_entry(view_id)
        if whole is not None:
            assert_tables_equal(pool.hdfs.peek(whole.path), expected)
        for attr in pool.partition_attrs(view_id):
            for entry in pool.fragments_of(view_id, attr):
                want = expected.filter(entry.key.interval.mask(expected.column(attr)))
                assert_tables_equal(pool.hdfs.peek(entry.path), want)


class TestCatalogIngest:
    def test_append_bumps_version_and_grows_table(self):
        catalog = Catalog()
        catalog.register("t", make_table(100))
        v0 = catalog.version
        batch = catalog.ingest("t", batch_rows(np.random.default_rng(0), 7))
        assert batch.nrows == 7
        assert catalog.get("t").nrows == 107
        assert catalog.version == v0 + 1

    def test_append_is_copy_on_write(self):
        catalog = Catalog()
        catalog.register("t", make_table(50))
        before = catalog.get("t")
        catalog.ingest("t", batch_rows(np.random.default_rng(0), 5))
        assert before.nrows == 50  # old readers keep their rows

    def test_batch_inherits_base_scale(self):
        catalog = Catalog()
        catalog.register("t", make_table(50, scale=1000.0))
        batch = catalog.ingest("t", batch_rows(np.random.default_rng(0), 5))
        assert batch.scale == 1000.0
        assert catalog.get("t").scale == 1000.0

    def test_schema_mismatch_rejected(self):
        catalog = Catalog()
        catalog.register("t", make_table(10))
        other = Table.from_dict(Schema.of(Column("x")), {"x": np.arange(3)})
        with pytest.raises(CatalogError):
            catalog.ingest("t", other)

    def test_rollback_restores_version_but_strands_counter(self):
        catalog = Catalog()
        catalog.register("t", make_table(10))
        base, v0 = catalog.get("t"), catalog.version
        catalog.ingest("t", batch_rows(np.random.default_rng(0), 3))
        catalog.rollback_ingest("t", base, v0)
        assert catalog.version == v0
        assert catalog.get("t") is base
        catalog.ingest("t", batch_rows(np.random.default_rng(0), 3))
        # The aborted transaction's version (v0 + 1) is never re-issued.
        assert catalog.version == v0 + 2

    def test_fork_is_independent(self):
        catalog = Catalog()
        catalog.register("t", make_table(10))
        fork = catalog.fork(("test-fork",))
        assert fork.uid != catalog.uid
        assert fork.shared_ident == ("test-fork",)
        fork.ingest("t", batch_rows(np.random.default_rng(0), 4))
        assert fork.get("t").nrows == 14
        assert catalog.get("t").nrows == 10
        assert catalog.version != fork.version


class TestDeltaSource:
    def test_select_project_chain_is_delta_able(self):
        assert delta_source(plan(10, 20)) == "t"

    def test_join_template_takes_rebuild_path(self):
        assert delta_source(TEMPLATES["q01"](0, 100)) is None


class TestDeltaMaintenance:
    def test_patched_fragments_equal_recompute(self):
        system = make_system()
        warm(system)
        report = system.ingest("t", batch_rows(np.random.default_rng(7), 200))
        assert report.fragments_patched >= 1
        assert report.fragments_rebuilt == 0
        assert report.maint_s > 0.0
        assert report.ledger.delta_rows_routed == 200
        assert_pool_identity(system)

    def test_answers_match_direct_evaluation_after_ingest(self):
        system = make_system()
        warm(system)
        system.ingest("t", batch_rows(np.random.default_rng(7), 200))
        p = plan(100, 600)
        answer = system.execute(p).result
        truth = recompute(p, system.catalog, system.cluster)
        order = np.lexsort((answer.column("k"), answer.column("id")))
        torder = np.lexsort((truth.column("k"), truth.column("id")))
        for name in truth.schema.names:
            np.testing.assert_array_equal(
                answer.column(name)[order], truth.column(name)[torder]
            )

    def test_force_rebuild_produces_identical_payloads(self):
        rows = batch_rows(np.random.default_rng(7), 200)
        delta_sys = make_system()
        warm(delta_sys)
        delta_sys.ingest("t", dict(rows))
        rebuild_sys = make_system()
        warm(rebuild_sys)
        rebuild_sys.maintenance.force_rebuild = True
        rebuild_report = rebuild_sys.ingest("t", dict(rows))
        assert rebuild_report.fragments_rebuilt >= 1
        assert rebuild_report.fragments_patched == 0
        assert_pool_identity(rebuild_sys)
        a = sorted(delta_sys.pool.configuration().items())
        b = sorted(rebuild_sys.pool.configuration().items())
        assert a == b

    def test_maintenance_cost_folds_into_next_query_ledger(self):
        system = make_system()
        warm(system)
        report = system.ingest("t", batch_rows(np.random.default_rng(7), 100))
        next_report = system.execute(plan(100, 600))
        assert next_report.creation_ledger.maint_s == pytest.approx(report.maint_s)
        assert (
            next_report.creation_ledger.fragments_patched == report.fragments_patched
        )
        after = system.execute(plan(100, 600))
        assert after.creation_ledger.maint_s == 0.0  # folded exactly once

    def test_oversized_patch_evicts_instead_of_overflowing(self):
        system = make_system()
        warm(system)
        used = system.pool.used_bytes
        system.smax_bytes = system.pool.smax_bytes = used + 1.0  # no headroom
        report = system.ingest("t", batch_rows(np.random.default_rng(7), 500))
        assert report.fragments_dropped >= 1
        assert system.pool.used_bytes <= used + 1.0
        assert_pool_identity(system)  # survivors still exact


class TestCrashRollback:
    def test_mid_maintenance_crash_rolls_everything_back(self):
        system = make_system()
        warm(system)
        catalog = system.catalog
        pre_version = catalog.version
        pre_rows = catalog.get("t").nrows
        pre_config = repr(system.pool.configuration())
        pre_covers = system.pool.cover_versions_snapshot()

        original = system.maintenance._patch
        system.maintenance._patch = lambda entry, payload: (_ for _ in ()).throw(
            RuntimeError("simulated crash mid-maintenance")
        )
        with pytest.raises(RuntimeError):
            system.ingest("t", batch_rows(np.random.default_rng(7), 100))
        assert catalog.version == pre_version
        assert catalog.get("t").nrows == pre_rows
        assert repr(system.pool.configuration()) == pre_config
        assert system.pool.cover_versions_snapshot() == pre_covers
        assert not system.pool.journal.journaling

        system.maintenance._patch = original
        report = system.ingest("t", batch_rows(np.random.default_rng(7), 100))
        # The aborted attempt's version is stranded, never re-issued.
        assert catalog.version == pre_version + 2
        assert report.fragments_patched >= 1
        assert_pool_identity(system)

    def test_observed_rates_not_double_counted_on_controller_retry(self):
        system = make_system()
        warm(system)
        system.ingest("t", batch_rows(np.random.default_rng(7), 100))
        rows_pq, batches_pq = system.maintenance.per_query_rates(
            "t", float(system.clock)
        )
        assert batches_pq > 0.0
        total_rows = system.maintenance._observed["t"][0]
        assert total_rows == 100.0


class TestUpkeepGate:
    def test_upkeep_is_exactly_zero_without_ingest(self):
        system = make_system()
        warm(system)
        assert system.maintenance.predicted_upkeep_s("v", plan(0, 100)) == 0.0

    def test_upkeep_positive_after_observed_batches(self):
        system = make_system()
        warm(system)
        system.ingest("t", batch_rows(np.random.default_rng(7), 200))
        upkeep = system.maintenance.predicted_upkeep_s("v", plan(0, 100))
        assert upkeep > 0.0

    def test_rebuild_upkeep_dominates_delta_upkeep(self):
        system = make_system()
        warm(system)
        system.ingest("t", batch_rows(np.random.default_rng(7), 200))
        delta = system.maintenance.predicted_upkeep_s("v", plan(0, 100))
        system.maintenance.force_rebuild = True
        rebuild = system.maintenance.predicted_upkeep_s("v", plan(0, 100))
        assert rebuild > delta


class TestScenarioSchedules:
    def test_schedules_are_deterministic(self):
        from repro.bench.ingest_bench import scenario_schedule

        a = scenario_schedule("drift", 30, DOMAIN, seed=5)
        b = scenario_schedule("drift", 30, DOMAIN, seed=5)
        assert a == b

    def test_batch_offsets_are_contiguous(self):
        from repro.bench.ingest_bench import scenario_schedule

        _, batches = scenario_schedule("drip", 30, DOMAIN, seed=5)
        offset = 0
        for spec in batches:
            assert spec.offset == offset
            offset += spec.nrows

    def test_unknown_scenario_rejected(self):
        from repro.bench.ingest_bench import scenario_schedule

        with pytest.raises(ValueError):
            scenario_schedule("flood", 10, DOMAIN)

    def test_gate_flags_mode_divergence(self):
        from repro.bench.ingest_bench import gate_problems

        def result(mode, digest):
            return {
                "scenario": "drip",
                "mode": mode,
                "batches": 2,
                "identity_ok": True,
                "identity_problems": [],
                "stale_reads": 0,
                "maint_s": 1.0,
                "fragments_patched": 3,
                "answer_digest": digest,
            }

        assert gate_problems([result("delta", "aa"), result("rebuild", "aa")]) == []
        problems = gate_problems([result("delta", "aa"), result("rebuild", "bb")])
        assert any("diverged" in p for p in problems)


class TestBitIdentityProperty:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        batches=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=60),  # rows
                st.integers(min_value=0, max_value=900),  # range lo
                st.integers(min_value=1, max_value=100),  # range width
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_random_append_batches_keep_fragments_bit_identical(self, batches):
        system = make_system(n=2000)
        warm(system, queries=6)
        id0 = 200_000
        for i, (n, lo, width) in enumerate(batches):
            rng = np.random.default_rng([i, n, lo, width])
            rows = batch_rows(rng, n, lo, min(1000, lo + width), id0)
            id0 += n
            system.ingest("t", rows)
            assert_pool_identity(system)


class TestSchedulerFingerprints:
    def test_ingest_task_fingerprints_identical_across_schedulers(self):
        from repro.bench.harness import clear_caches
        from repro.parallel.determinism import fingerprint
        from repro.parallel.pool import fan_out, steal_map
        from repro.parallel.tasks import FixtureSpec, RunTask, SystemSpec, WorkloadSpec

        tasks = [
            RunTask(
                "DS+ingest",
                SystemSpec.of("deepsea"),
                FixtureSpec("sdss", 2.0),
                WorkloadSpec(10, seed=2),
                ingest="drip",
            )
        ]
        clear_caches()
        serial = fingerprint({"DS+ingest": tasks[0].run()})
        static = fingerprint({"DS+ingest": fan_out(tasks, 2)[0]})
        steal = fingerprint({"DS+ingest": steal_map(tasks, 2, chunk_size=1)[0]})
        assert serial == static == steal

    def test_ingest_tasks_are_never_sliced(self):
        from repro.parallel.tasks import FixtureSpec, RunTask, SystemSpec, WorkloadSpec

        task = RunTask(
            "DS+ingest",
            SystemSpec.of("deepsea"),
            FixtureSpec("sdss", 2.0),
            WorkloadSpec(40, seed=2),
            ingest="drip",
        )
        assert task.slices(4) == [task]


class TestServeFeedBatch:
    def test_writer_applies_batches_atomically_under_plan_lock(self):
        from repro.serve import QueryService

        system = make_system()
        service = QueryService(system, workers=2).start()
        try:
            tickets = []
            fed = 0
            rng = np.random.default_rng(3)
            id0 = 300_000
            for i in range(12):
                if i % 3 == 1:
                    assert service.feed_batch("t", batch_rows(rng, 40, id0=id0))
                    fed += 1
                    id0 += 40
                tickets.append(service.submit(plan(10 + 7 * i, 500 + 3 * i)))
            outcomes = [t.result(timeout=30) for t in tickets]
        finally:
            service.stop()
        metrics = service.metrics()
        assert metrics["writer"]["batches"] == fed
        assert metrics["writer"]["errors"] == 0
        assert all(o is not None and o.status == "answered" for o in outcomes)
        assert system.catalog.get("t").nrows == 4000 + 40 * fed
        assert_pool_identity(system)

    def test_feed_batch_without_writer_sheds(self):
        from repro.serve import QueryService

        system = make_system()
        service = QueryService(system, workers=1, adapt=False)
        assert service.feed_batch("t", batch_rows(np.random.default_rng(0), 5)) is False


class TestLedgerFields:
    def test_charge_maintenance_accumulates_and_merges(self):
        ledger = CostLedger(make_system().cluster)
        ledger.charge_maintenance(2.5, routed=10, applied=8, patched=3, rebuilt=1)
        assert ledger.maint_s == 2.5
        assert ledger.delta_rows_routed == 10
        assert ledger.delta_rows_applied == 8
        assert ledger.fragments_patched == 3
        assert ledger.fragments_rebuilt == 1
        assert ledger.total_seconds >= 2.5
        other = CostLedger(ledger.cluster)
        other.merge(ledger)
        assert other.maint_s == 2.5
        assert other.fragments_patched == 3

    def test_pristine_ledger_has_no_maintenance(self):
        ledger = CostLedger(make_system().cluster)
        assert ledger.is_pristine
        ledger.charge_maintenance(0.1, patched=1)
        assert not ledger.is_pristine
