"""Tests for the §11 fragment-merging extension."""

import numpy as np
import pytest

from repro import Catalog, DeepSea, Interval, Policy
from repro.core.merging import (
    co_access_fraction,
    find_merge_candidates,
    merge_cost,
    merge_saving_per_hit,
)
from repro.costmodel.decay import NoDecay
from repro.costmodel.stats import FragmentStats
from repro.engine.cost import ClusterSpec
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.query.algebra import Relation
from repro.storage.pool import MaterializedViewPool

DEC = NoDecay()


def frag_stats(interval, hit_times, ranges=None):
    fs = FragmentStats("v", "a", interval, size_bytes=100.0)
    for i, t in enumerate(hit_times):
        fs.record_hit(t, ranges[i] if ranges else None)
    return fs


class TestCoAccess:
    def test_identical_hits_full_fraction(self):
        a = frag_stats(Interval.closed(0, 10), [1, 2, 3])
        b = frag_stats(Interval.open_closed(10, 20), [1, 2, 3])
        assert co_access_fraction(a, b, 4.0, DEC) == 1.0

    def test_disjoint_hits_zero(self):
        a = frag_stats(Interval.closed(0, 10), [1, 2])
        b = frag_stats(Interval.open_closed(10, 20), [3, 4])
        assert co_access_fraction(a, b, 5.0, DEC) == 0.0

    def test_fraction_against_busier_fragment(self):
        a = frag_stats(Interval.closed(0, 10), [1, 2, 3, 4])
        b = frag_stats(Interval.open_closed(10, 20), [1, 2])
        # shared 2 of busier 4 → 0.5, not 2/2
        assert co_access_fraction(a, b, 5.0, DEC) == pytest.approx(0.5)

    def test_no_hits_zero(self):
        a = frag_stats(Interval.closed(0, 10), [])
        b = frag_stats(Interval.open_closed(10, 20), [1])
        assert co_access_fraction(a, b, 5.0, DEC) == 0.0


class TestEconomics:
    def test_saving_positive_for_two_files(self):
        cluster = ClusterSpec()
        assert merge_saving_per_hit(1e8, 1e8, cluster) > 0

    def test_cost_includes_rewrite(self):
        cluster = ClusterSpec()
        cost = merge_cost(1e8, 1e8, cluster)
        assert cost > merge_saving_per_hit(1e8, 1e8, cluster)


def make_entries(pool, intervals, size=1e8):
    schema = Schema.of(Column("a"))
    entries = []
    for iv in intervals:
        nrows = 10
        table = Table.from_dict(schema, {"a": np.arange(nrows)}, scale=size / (nrows * 8))
        entries.append(pool.add_fragment("v", "a", iv, table))
    return entries


class TestFindCandidates:
    def setup_method(self):
        self.pool = MaterializedViewPool()
        self.pool.define_view("v", Relation("t"))
        self.cluster = ClusterSpec()

    def candidates(self, intervals, hits, **kw):
        entries = make_entries(self.pool, intervals)
        stats = {iv: frag_stats(iv, h) for iv, h in zip(intervals, hits)}
        return find_merge_candidates(entries, stats, 100.0, DEC, self.cluster, **kw)

    def test_coaccessed_adjacent_pair_found(self):
        ivs = [Interval.closed(0, 10), Interval.open_closed(10, 20)]
        shared = list(range(1, 31))
        cands = self.candidates(ivs, [shared, shared], safety=0.1)
        assert len(cands) == 1
        assert cands[0].merged == Interval.closed(0, 20)

    def test_non_adjacent_skipped(self):
        ivs = [Interval.closed(0, 10), Interval.closed(15, 20)]
        shared = list(range(1, 31))
        assert self.candidates(ivs, [shared, shared], safety=0.1) == []

    def test_overlapping_skipped(self):
        ivs = [Interval.closed(0, 12), Interval.closed(10, 20)]
        shared = list(range(1, 31))
        assert self.candidates(ivs, [shared, shared], safety=0.1) == []

    def test_low_coaccess_skipped(self):
        ivs = [Interval.closed(0, 10), Interval.open_closed(10, 20)]
        cands = self.candidates(ivs, [list(range(1, 31)), list(range(40, 70))], safety=0.1)
        assert cands == []

    def test_size_bound_respected(self):
        ivs = [Interval.closed(0, 10), Interval.open_closed(10, 20)]
        shared = list(range(1, 31))
        cands = self.candidates(ivs, [shared, shared], safety=0.1, max_merged_bytes=1e8)
        assert cands == []

    def test_each_fragment_in_one_candidate(self):
        ivs = [
            Interval.closed(0, 10),
            Interval.open_closed(10, 20),
            Interval.open_closed(20, 30),
        ]
        shared = list(range(1, 31))
        cands = self.candidates(ivs, [shared, shared, shared], safety=0.1)
        assert len(cands) == 1  # middle fragment consumed by the first pair

    def test_cost_filter_blocks_unprofitable(self):
        ivs = [Interval.closed(0, 10), Interval.open_closed(10, 20)]
        cands = self.candidates(ivs, [[1, 2, 3], [1, 2, 3]], safety=10.0)
        assert cands == []


class TestEndToEnd:
    def make_catalog(self):
        rng = np.random.default_rng(9)
        n = 2000
        sales = Schema.of(Column("s_id"), Column("s_k"), Column("s_v"))
        dim = Schema.of(Column("d_k"), Column("d_c"))
        catalog = Catalog()
        catalog.register(
            "fact",
            Table.from_dict(
                sales,
                {
                    "s_id": np.arange(n),
                    "s_k": rng.integers(0, 1001, n),
                    "s_v": rng.integers(0, 10, n),
                },
                scale=3e6,
            ),
        )
        catalog.register(
            "dim",
            Table.from_dict(
                dim,
                {"d_k": np.arange(1001), "d_c": rng.integers(0, 4, 1001)},
                scale=3e6,
            ),
        )
        return catalog

    def query(self, lo, hi):
        from repro.query.algebra import Aggregate, AggSpec, Join, Select
        from repro.query.predicates import between

        return Aggregate(
            Select(
                Join(Relation("fact"), Relation("dim"), "s_k", "d_k"),
                (between("d_k", lo, hi),),
            ),
            ("d_c",),
            (AggSpec("sum", "s_v", "total"),),
        )

    def test_merge_fires_and_answers_stay_correct(self):
        catalog = self.make_catalog()
        domains = {"d_k": Interval.closed(0, 1000), "s_k": Interval.closed(0, 1000)}
        system = DeepSea(
            catalog,
            domains=domains,
            policy=Policy(
                evidence_factor=0.0,
                merge_fragments=True,
                merge_threshold=0.5,
                refinement_safety=0.1,
                bounds=None,
            ),
        )
        reference = DeepSea(catalog, domains=domains, policy=Policy(materialize=False))
        # Phase 1 carves a fragment at [100, 300]; phase 2's wider range
        # co-accesses it with its right neighbour query after query, until
        # the pair is coalesced.
        plans = [self.query(100, 300)] * 3 + [self.query(100, 500)] * 25
        for plan in plans:
            got = system.execute(plan).result.sorted_rows()
            assert got == reference.execute(plan).result.sorted_rows()
        merged = any(
            iv.contains(Interval.closed(150, 450))
            for v in system.pool.resident_view_ids()
            for a in system.pool.partition_attrs(v)
            for iv in system.pool.intervals_of(v, a)
        )
        assert merged, "co-accessed neighbours were never coalesced"
        # queries after the merge still answer correctly
        plan = self.query(150, 450)
        assert (
            system.execute(plan).result.sorted_rows()
            == reference.execute(plan).result.sorted_rows()
        )

    def test_merging_reduces_fragment_count(self):
        catalog = self.make_catalog()
        domains = {"d_k": Interval.closed(0, 1000), "s_k": Interval.closed(0, 1000)}

        def run(merge):
            system = DeepSea(
                catalog,
                domains=domains,
                policy=Policy(
                    evidence_factor=0.0,
                    merge_fragments=merge,
                    merge_threshold=0.5,
                    refinement_safety=0.1,
                    bounds=None,
                ),
            )
            for plan in [self.query(100, 300)] * 3 + [self.query(100, 500)] * 25:
                system.execute(plan)
            return sum(
                len(system.pool.fragments_of(v, a))
                for v in system.pool.resident_view_ids()
                for a in system.pool.partition_attrs(v)
            )

        assert run(True) <= run(False)
