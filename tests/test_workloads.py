"""Tests for workload generation: distributions, SDSS model, BigBench."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.partitioning.intervals import Interval
from repro.query.algebra import Aggregate, Join, Select, walk
from repro.workloads import bigbench
from repro.workloads.distributions import RangeSampler, selectivity_for, skew_for
from repro.workloads.generator import (
    SyntheticSpec,
    midpoint_sequence_workload,
    phased_workload,
    sdss_mapped_workload,
    synthetic_workload,
)
from repro.workloads.sdss import (
    SDSS_RA_DOMAIN,
    SDSSConfig,
    generate_sdss_log,
    map_ranges,
    range_histogram,
    sample_values_from_ranges,
)

DOMAIN = Interval.closed(0, 10_000)


class TestRangeSampler:
    def test_width_matches_selectivity(self):
        sampler = RangeSampler(DOMAIN, 0.05)
        rng = np.random.default_rng(0)
        iv = sampler.sample(rng)
        assert iv.width == pytest.approx(0.05 * DOMAIN.width)

    def test_samples_stay_in_domain(self):
        for skew in ("uniform", "light", "heavy", "zipf"):
            sampler = RangeSampler(DOMAIN, 0.25, skew=skew)
            rng = np.random.default_rng(1)
            for iv in sampler.sample_many(200, rng):
                assert DOMAIN.contains(iv)

    def test_heavy_skew_is_tighter_than_light(self):
        rng1, rng2 = np.random.default_rng(2), np.random.default_rng(2)
        light = RangeSampler(DOMAIN, 0.01, skew="light").sample_many(300, rng1)
        heavy = RangeSampler(DOMAIN, 0.01, skew="heavy").sample_many(300, rng2)
        spread = lambda ivs: np.std([iv.midpoint for iv in ivs])
        assert spread(heavy) < spread(light) / 3

    def test_uniform_covers_domain(self):
        rng = np.random.default_rng(3)
        mids = [
            iv.midpoint
            for iv in RangeSampler(DOMAIN, 0.01, skew="uniform").sample_many(500, rng)
        ]
        assert min(mids) < 0.2 * DOMAIN.hi and max(mids) > 0.8 * DOMAIN.hi

    def test_center_moves_hot_spot(self):
        rng = np.random.default_rng(4)
        sampler = RangeSampler(DOMAIN, 0.01, skew="heavy", center=0.2)
        mids = [iv.midpoint for iv in sampler.sample_many(100, rng)]
        assert abs(np.mean(mids) - 2_000) < 300

    def test_invalid_selectivity(self):
        with pytest.raises(WorkloadError):
            RangeSampler(DOMAIN, 0.0)
        with pytest.raises(WorkloadError):
            RangeSampler(DOMAIN, 1.5)

    def test_invalid_skew(self):
        with pytest.raises(WorkloadError):
            RangeSampler(DOMAIN, 0.1, skew="bogus")

    def test_unbounded_domain_rejected(self):
        with pytest.raises(WorkloadError):
            RangeSampler(Interval.at_least(0), 0.1)

    def test_labels(self):
        assert selectivity_for("S") == 0.01
        assert selectivity_for("m") == 0.05
        assert selectivity_for("B") == 0.25
        assert skew_for("U") == "uniform"
        assert skew_for("h") == "heavy"
        with pytest.raises(WorkloadError):
            selectivity_for("X")
        with pytest.raises(WorkloadError):
            skew_for("Q")


class TestSDSSLog:
    def test_log_length_and_domain(self):
        log = generate_sdss_log(SDSSConfig(n_queries=500))
        assert len(log) == 500
        for iv in log:
            assert SDSS_RA_DOMAIN.contains(iv)

    def test_early_phase_focuses_200_300(self):
        config = SDSSConfig(n_queries=2_000)
        log = generate_sdss_log(config)
        split = int(2_000 * config.phase_split)
        early = [iv.midpoint for iv in log[:split] if iv.width < 100]
        frac = np.mean([(200 <= m <= 300) for m in early])
        assert frac > 0.7

    def test_late_phase_shifts_to_100(self):
        config = SDSSConfig(n_queries=2_000)
        log = generate_sdss_log(config)
        split = int(2_000 * config.phase_split)
        late = [iv.midpoint for iv in log[split:] if iv.width < 100]
        frac = np.mean([(50 <= m <= 150) for m in late])
        assert frac > 0.7

    def test_full_domain_scans_present(self):
        log = generate_sdss_log(SDSSConfig(n_queries=2_000))
        assert any(iv == SDSS_RA_DOMAIN for iv in log)

    def test_histogram_nonuniform_and_correlated(self):
        log = generate_sdss_log(SDSSConfig(n_queries=5_000))
        _, hits = range_histogram(log, nbins=42)
        assert hits.max() > 5 * max(np.median(hits), 1)
        # spatial correlation: the hottest bin's neighbours are warm
        peak = int(hits.argmax())
        neighbours = [hits[i] for i in (peak - 1, peak + 1) if 0 <= i < len(hits)]
        assert all(n > np.median(hits) for n in neighbours)

    def test_histogram_counts_each_overlapped_bin(self):
        edges, hits = range_histogram(
            [Interval.closed(0, 100)], nbins=10, domain=Interval.closed(0, 100)
        )
        assert hits.sum() == 10  # one range touching every bin

    def test_deterministic_with_seed(self):
        a = generate_sdss_log(SDSSConfig(n_queries=100, seed=5))
        b = generate_sdss_log(SDSSConfig(n_queries=100, seed=5))
        assert a == b

    def test_map_ranges(self):
        target = Interval.closed(0, 420_000)
        mapped = map_ranges([Interval.closed(-20, 400)], SDSS_RA_DOMAIN, target)
        assert mapped[0].lo == pytest.approx(0)
        assert mapped[0].hi == pytest.approx(420_000)

    def test_sample_values_follow_histogram(self):
        log = generate_sdss_log(SDSSConfig(n_queries=3_000))
        target = Interval.closed(0, 10_000)
        rng = np.random.default_rng(0)
        values = sample_values_from_ranges(log, 20_000, target, rng)
        assert values.min() >= 0 and values.max() <= 10_000
        # the late-phase hot spot (~100 deg) maps to ~(100+20)/420 of the domain
        hot_lo = (80 + 20) / 420 * 10_000
        hot_hi = (120 + 20) / 420 * 10_000
        frac_hot = np.mean((values >= hot_lo) & (values <= hot_hi))
        assert frac_hot > 2 * ((hot_hi - hot_lo) / 10_000)


class TestBigBench:
    def test_instance_tables_and_nominal_size(self):
        inst = bigbench.generate_bigbench(100.0, seed=1)
        assert set(inst.catalog.names) == set(bigbench.SCHEMAS)
        total = inst.catalog.total_size_bytes
        assert total == pytest.approx(100.0e9, rel=0.01)

    def test_weights_respected(self):
        inst = bigbench.generate_bigbench(100.0, seed=1)
        ss = inst.catalog.get("store_sales").size_bytes
        assert ss == pytest.approx(0.32 * 100.0e9, rel=0.01)

    def test_domains_declared_for_item_columns(self):
        inst = bigbench.generate_bigbench(10.0, seed=1)
        for col in ("i_item_sk", "ss_item_sk", "wcs_item_sk"):
            assert inst.domains[col] == inst.item_domain

    def test_instance_scales_rows(self):
        small = bigbench.generate_bigbench(10.0, seed=1)
        big = bigbench.generate_bigbench(500.0, seed=1)
        assert big.catalog.get("store_sales").nrows > small.catalog.get("store_sales").nrows

    def test_custom_item_values_used(self):
        values = np.full(1_000, 123)
        inst = bigbench.generate_bigbench(10.0, seed=1, item_sk_values=values)
        assert (inst.catalog.get("store_sales").column("ss_item_sk") == 123).all()

    def test_invalid_size(self):
        with pytest.raises(WorkloadError):
            bigbench.generate_bigbench(0.0)

    def test_all_templates_build_and_have_selection(self):
        for name, template in bigbench.TEMPLATES.items():
            plan = template(100, 500)
            kinds = {type(n) for n in walk(plan)}
            assert Join in kinds, name
            assert Select in kinds, name
            assert isinstance(plan, Aggregate), name

    def test_templates_execute_on_instance(self):
        from repro.baselines import hive

        inst = bigbench.generate_bigbench(20.0, seed=2)
        system = hive(inst.catalog, domains=inst.domains)
        for name, template in bigbench.TEMPLATES.items():
            report = system.execute(template(0, 40_000))
            assert report.result.nrows > 0, name


class TestGenerator:
    def test_synthetic_workload_shapes(self):
        inst = bigbench.generate_bigbench(10.0, seed=3)
        spec = SyntheticSpec("q30", "S", "H", n_queries=20, seed=4)
        plans = synthetic_workload(spec, inst.item_domain)
        assert len(plans) == 20
        assert len(set(plans)) > 1  # ranges vary

    def test_unknown_template(self):
        with pytest.raises(WorkloadError):
            synthetic_workload(SyntheticSpec("q99", "S", "H", n_queries=1), DOMAIN)

    def test_phased_workload_changes_distribution(self):
        inst = bigbench.generate_bigbench(10.0, seed=3)
        phases = [
            SyntheticSpec("q05", "B", "H", n_queries=10, center=0.25, seed=1),
            SyntheticSpec("q05", "B", "H", n_queries=10, center=0.75, seed=2),
        ]
        plans = phased_workload(phases, inst.item_domain)
        assert len(plans) == 20

        def midpoint(plan):
            select = next(n for n in walk(plan) if isinstance(n, Select))
            return select.predicates[0].interval.midpoint

        early = np.mean([midpoint(p) for p in plans[:10]])
        late = np.mean([midpoint(p) for p in plans[10:]])
        assert late > early

    def test_midpoint_sequence(self):
        plans = midpoint_sequence_workload("q30", [100, 200], 50, DOMAIN)
        assert len(plans) == 2

    def test_sdss_mapped_workload(self):
        log = generate_sdss_log(SDSSConfig(n_queries=1_000))
        plans = sdss_mapped_workload(log, DOMAIN, n_queries=50, seed=5)
        assert len(plans) == 50
        # templates vary across the workload
        roots = {type(p).__name__ for p in plans}
        assert roots == {"Aggregate"}
        assert len({p for p in plans}) > 10

    def test_sdss_mapped_empty_log_rejected(self):
        with pytest.raises(WorkloadError):
            sdss_mapped_workload([], DOMAIN)

    def test_spec_label(self):
        assert SyntheticSpec("q30", "m", "h", 1).label == "MH"
