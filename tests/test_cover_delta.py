"""Tests for cover-delta invalidation (per-view versions + patched mirrors).

The contract under test (see ``repro/matching/cover_cache.py``):

* a residency mutation of view V invalidates only V's memoized covers —
  entries for every other view stay live across the mutation;
* the sorted interval mirror is patched in place from pool deltas and
  always equals the pool's canonical per-attribute order;
* a journal rollback restores the exact pre-transaction cover versions,
  so memo entries computed before the transaction validate again;
* under arbitrary interleavings of mutations and lookups the memoized
  covers are identical to a memo-free ``greedy_cover`` oracle.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.matching.cover_cache import CoverCache
from repro.matching.partition_match import greedy_cover
from repro.partitioning.intervals import Interval, IntervalIndex, sort_key
from repro.query.algebra import Relation
from repro.storage.pool import MaterializedViewPool


def payload(nrows: int = 3) -> Table:
    schema = Schema.of(Column("v"))
    return Table.from_dict(schema, {"v": list(range(nrows))})


def make_pool(*view_ids: str) -> MaterializedViewPool:
    pool = MaterializedViewPool()
    for view_id in view_ids:
        pool.define_view(view_id, Relation(f"base_{view_id}"))
    return pool


class TestPerViewInvalidation:
    def test_mutating_one_view_keeps_other_views_entries_live(self):
        pool = make_pool("va", "vb")
        pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
        pool.add_fragment("vb", "v", Interval.closed(0, 10), payload())
        cache = CoverCache(pool)
        theta = Interval.closed(2, 8)
        cache.cover("va", "v", theta)
        cache.cover("vb", "v", theta)
        assert cache.stats()["misses"] == 2

        pool.add_fragment("vb", "v", Interval.open_closed(10, 20), payload())

        before = cache.stats()["hits"]
        cache.cover("va", "v", theta)  # untouched view: still a hit
        assert cache.stats()["hits"] == before + 1
        assert cache.stats()["invalidations"] == 0

        cache.cover("vb", "v", theta)  # mutated view: invalidated
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert stats["by_view"] == {"vb": 1}

    def test_eviction_invalidates_only_its_view(self):
        pool = make_pool("va", "vb")
        left = pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
        pool.add_fragment("va", "v", Interval.open_closed(10, 20), payload())
        pool.add_fragment("vb", "v", Interval.closed(0, 20), payload())
        cache = CoverCache(pool)
        theta = Interval.closed(0, 15)
        assert cache.cover("va", "v", theta) is not None
        assert cache.cover("vb", "v", theta) is not None

        pool.evict(left.fragment_id)

        assert cache.cover("va", "v", theta) is None  # hole at [0, 10]
        assert cache.cover("vb", "v", theta) is not None
        stats = cache.stats()
        assert stats["by_view"] == {"va": 1}
        assert stats["hits"] == 1  # the vb re-lookup

    def test_memoized_cover_matches_oracle_after_mutations(self):
        pool = make_pool("va")
        pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
        cache = CoverCache(pool)
        theta = Interval.closed(0, 18)
        assert cache.cover("va", "v", theta) is None
        pool.add_fragment("va", "v", Interval.open_closed(10, 20), payload())
        got = cache.cover("va", "v", theta)
        oracle = greedy_cover(theta, pool.intervals_of("va", "v"))
        assert got == oracle


class TestMirrorPatching:
    def test_mirror_tracks_pool_order_across_admit_and_evict(self):
        pool = make_pool("va")
        pool.add_fragment("va", "v", Interval.closed(20, 30), payload())
        cache = CoverCache(pool)
        cache.cover("va", "v", Interval.closed(21, 29))  # seeds the mirror
        mirror = cache._mirrors[("va", "v")]
        assert mirror == pool.intervals_of("va", "v")

        pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
        middle = pool.add_fragment("va", "v", Interval.open_closed(10, 20), payload())
        assert mirror == pool.intervals_of("va", "v")
        assert mirror == sorted(mirror, key=sort_key)

        pool.evict(middle.fragment_id)
        assert mirror == pool.intervals_of("va", "v")

    def test_unseeded_mirror_ignores_deltas_then_seeds_from_pool(self):
        pool = make_pool("va")
        cache = CoverCache(pool)
        pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
        assert ("va", "v") not in cache._mirrors
        assert cache.cover("va", "v", Interval.closed(1, 9)) is not None
        assert cache._mirrors[("va", "v")] == pool.intervals_of("va", "v")

    def test_whole_view_deltas_do_not_touch_mirrors(self):
        pool = make_pool("va", "vw")
        pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
        cache = CoverCache(pool)
        cache.cover("va", "v", Interval.closed(1, 9))
        pool.add_whole_view("vw", payload())  # attr=None delta
        assert list(cache._mirrors) == [("va", "v")]

    def test_from_sorted_equals_fresh_index(self):
        intervals = [
            Interval.closed(0, 10),
            Interval.open_closed(10, 20),
            Interval.closed(5, 15),
        ]
        ordered = sorted(intervals, key=sort_key)
        fresh = IntervalIndex(ordered)
        patched = IntervalIndex.from_sorted(ordered)
        assert fresh.intervals == patched.intervals
        assert fresh.order == patched.order
        assert fresh.lower_keys == patched.lower_keys
        assert fresh.upper_keys == patched.upper_keys
        # And against an unsorted fresh index, the sorted traversal agrees.
        unsorted = IntervalIndex(intervals)
        assert [unsorted.intervals[i] for i in unsorted.order] == patched.intervals


class TestRollbackRestoresVersions:
    def test_rollback_restores_exact_versions_and_revalidates_memo(self):
        pool = make_pool("va", "vb")
        pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
        frag_b = pool.add_fragment("vb", "v", Interval.closed(0, 10), payload())
        cache = CoverCache(pool)
        theta = Interval.closed(2, 8)
        pre_cover = cache.cover("vb", "v", theta)
        pre_versions = {v: pool.cover_version(v) for v in ("va", "vb")}

        pool.begin("step")
        pool.add_fragment("vb", "v", Interval.open_closed(10, 20), payload())
        pool.evict(frag_b.fragment_id)
        assert pool.cover_version("vb") != pre_versions["vb"]
        pool.rollback()

        assert {v: pool.cover_version(v) for v in ("va", "vb")} == pre_versions
        hits_before = cache.stats()["hits"]
        assert cache.cover("vb", "v", theta) == pre_cover
        assert cache.stats()["hits"] == hits_before + 1  # entry valid again
        assert cache._mirrors[("vb", "v")] == pool.intervals_of("vb", "v")

    def test_mid_transaction_versions_are_never_reissued(self):
        pool = make_pool("va")
        pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
        pool.begin("step")
        pool.add_fragment("va", "v", Interval.open_closed(10, 20), payload())
        mid_version = pool.cover_version("va")
        pool.rollback()
        assert pool.cover_version("va") < mid_version
        # The next mutation draws a fresh epoch strictly beyond the
        # rolled-back transaction's versions.
        pool.add_fragment("va", "v", Interval.open_closed(10, 20), payload())
        assert pool.cover_version("va") > mid_version

    def test_commit_keeps_new_versions(self):
        pool = make_pool("va")
        pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
        v0 = pool.cover_version("va")
        pool.begin("step")
        pool.add_fragment("va", "v", Interval.open_closed(10, 20), payload())
        pool.commit()
        assert pool.cover_version("va") > v0


# ----------------------------------------------------------------------
# Property: interleaved mutations + lookups == memo-free oracle.
# ----------------------------------------------------------------------
GRID = st.integers(0, 12)


@st.composite
def op_sequences(draw):
    n = draw(st.integers(1, 24))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["admit", "admit", "query", "query", "query", "evict"]))
        lo = draw(GRID)
        width = draw(st.integers(1, 5))
        ops.append((kind, float(lo), float(lo + width), draw(st.integers(0, 10**6))))
    return ops


@given(ops=op_sequences())
@settings(max_examples=120, deadline=None)
def test_interleaved_mutations_and_matches_equal_oracle(ops):
    pool = make_pool("va")
    cache = CoverCache(pool)
    resident: dict[Interval, str] = {}
    for kind, lo, hi, salt in ops:
        interval = Interval.closed(lo, hi)
        if kind == "admit":
            if interval in resident:
                continue
            entry = pool.add_fragment("va", "v", interval, payload())
            resident[interval] = entry.fragment_id
        elif kind == "evict":
            if not resident:
                continue
            victim = sorted(resident, key=sort_key)[salt % len(resident)]
            pool.evict(resident.pop(victim))
        else:
            got = cache.cover("va", "v", interval)
            oracle = greedy_cover(interval, pool.intervals_of("va", "v"))
            assert got == oracle
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == sum(1 for op in ops if op[0] == "query")


def test_cover_cache_registered_in_registry():
    from repro.caches import cache_stats

    pool = make_pool("va")
    pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
    cache = CoverCache(pool)
    cache.cover("va", "v", Interval.closed(1, 9))
    stats = cache_stats()["matching.cover_cache"]
    for key in ("hits", "misses", "evictions", "entries", "invalidations", "by_view"):
        assert key in stats
    assert stats["misses"] >= 1


def test_bucket_eviction_is_bounded_fifo():
    from repro.matching import cover_cache as mod

    pool = make_pool("va")
    pool.add_fragment("va", "v", Interval.closed(0, 1000), payload())
    cache = CoverCache(pool)
    limit = mod._MAX_COVERS_PER_VIEW
    for i in range(limit + 5):
        cache.cover("va", "v", Interval.closed(float(i), float(i) + 0.5))
    stats = cache.stats()
    assert stats["entries"] <= limit
    assert stats["evictions"] >= 1


class TestSharedTierRollback:
    """Journal rollback vs the cross-worker shared tier (DESIGN.md §15).

    A rolled-back repartition must leave the shared tier either empty
    (``clear_all_caches`` in the server's process) or version-stale:
    entries published mid-transaction were stored at versions the journal
    rollback retires forever, so post-rollback lookups present the
    restored versions and the stranded entries can never be served.
    """

    @staticmethod
    def _tier(pool):
        from repro.parallel import shared_cache
        from repro.parallel.shared_cache import InProcessClient, SharedCacheServer

        pool.shared_ident = ("test-shared-rollback", id(pool))
        server = SharedCacheServer(use_arena=False)
        prior_server = shared_cache.install_server(server)
        prior_client = shared_cache.install_client(InProcessClient(server))
        return server, prior_server, prior_client

    @staticmethod
    def _teardown(server, prior_server, prior_client):
        from repro.parallel import shared_cache

        shared_cache.install_client(prior_client)
        shared_cache.install_server(prior_server)
        server.close()

    def test_mid_transaction_publishes_stranded_by_rollback(self):
        pool = make_pool("va")
        server, prior_server, prior_client = self._tier(pool)
        try:
            pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
            theta = Interval.closed(0, 18)
            pre_cover = CoverCache(pool).cover("va", "v", theta)  # published @ pre
            pre_version = pool.cover_version("va")

            pool.begin("step")
            pool.add_fragment("va", "v", Interval.open_closed(10, 20), payload())
            # A cold cache (fresh worker) publishes at the mid-transaction
            # version, overwriting the shared entry for this (view, θ).
            mid_cover = CoverCache(pool).cover("va", "v", theta)
            assert mid_cover != pre_cover
            pool.rollback()

            assert pool.cover_version("va") == pre_version
            # The stranded mid-transaction entry is version-stale: a fresh
            # cache recomputes the pre-transaction cover from the pool.
            got = CoverCache(pool).cover("va", "v", theta)
            assert got == pre_cover
            assert got == greedy_cover(theta, pool.intervals_of("va", "v"))
            stats = server.stats()
            assert stats["stale"] >= 1  # the stranded entry was probed
            assert stats["stale_served"] == 0
        finally:
            self._teardown(server, prior_server, prior_client)

    def test_rollback_revalidates_pre_transaction_shared_entries(self):
        pool = make_pool("va")
        server, prior_server, prior_client = self._tier(pool)
        try:
            pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
            theta = Interval.closed(2, 8)
            pre_cover = CoverCache(pool).cover("va", "v", theta)  # published @ pre

            pool.begin("step")
            pool.add_fragment("va", "v", Interval.open_closed(10, 20), payload())
            pool.rollback()

            # Nothing republished for this θ mid-transaction, so the
            # pre-transaction entry validates again at the restored
            # version — a fresh (memo-cold) cache hits the shared tier.
            hits_before = server.hits
            assert CoverCache(pool).cover("va", "v", theta) == pre_cover
            assert server.hits == hits_before + 1
            assert server.stats()["stale_served"] == 0
        finally:
            self._teardown(server, prior_server, prior_client)

    def test_clear_all_caches_empties_shared_tier_with_locals(self):
        from repro.caches import clear_all_caches

        pool = make_pool("va")
        server, prior_server, prior_client = self._tier(pool)
        try:
            pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
            CoverCache(pool).cover("va", "v", Interval.closed(1, 9))
            assert server.stats()["entries"] >= 1
            clear_all_caches()
            assert server.stats()["entries"] == 0
        finally:
            self._teardown(server, prior_server, prior_client)

    def test_fragment_cache_rollback_strands_shared_decisions(self):
        from repro.matching.fragment_cache import FragmentPruneCache

        pool = make_pool("va")
        server, prior_server, prior_client = self._tier(pool)
        try:
            pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
            pre_version = pool.cover_version("va")

            pool.begin("step")
            pool.add_fragment("va", "v", Interval.open_closed(10, 20), payload())
            mid_version = pool.cover_version("va")
            pool.rollback()

            assert pool.cover_version("va") == pre_version
            assert mid_version != pre_version
            # Any fragment decision published at mid_version can only miss
            # now: rolled-back versions are never re-issued (see
            # TestRollbackRestoresVersions), so exact-match validation
            # strands it without coordination.
            from repro.parallel import shared_cache

            key = shared_cache.stable_key("fragment", ("stranded",))
            shared_cache.client().put("fragment", key, mid_version, b"p" * 64)
            assert shared_cache.client().get("fragment", key, pre_version) is None
            assert server.stats()["stale_served"] == 0
            assert FragmentPruneCache is not None  # the client under test
        finally:
            self._teardown(server, prior_server, prior_client)

    def test_ingest_abort_restores_catalog_and_strands_aborted_version(self):
        """A crashed mid-ingest batch rolls the catalog back exactly, and
        any shared-tier publish stamped with the aborted catalog version
        is stranded: the version was drawn from a counter the rollback
        never rewinds, so neither the restored state nor any future
        successful ingest can ever validate against it."""
        import numpy as np

        from repro.core.deepsea import DeepSea
        from repro.engine.catalog import Catalog
        from repro.engine.schema import Column as C, Schema as S
        from repro.engine.table import Table as T
        from repro.parallel import shared_cache
        from repro.query.builder import Q

        rng = np.random.default_rng(1)
        n = 3000
        catalog = Catalog()
        catalog.register(
            "t",
            T.from_dict(
                S.of(C("id"), C("k")),
                {"id": np.arange(n), "k": rng.integers(0, 1001, n)},
                scale=1000.0,
            ),
        )
        system = DeepSea(
            catalog, smax_bytes=1e12, domains={"k": Interval.closed(0, 1000)}
        )
        server, prior_server, prior_client = self._tier(system.pool)
        try:
            for i in range(8):
                system.execute(
                    Q("t").select("id", "k").where_between("k", 10 + 7 * i, 500 + 3 * i).plan
                )
            pre_version = catalog.version
            pre_rows = catalog.get("t").nrows
            pre_covers = system.pool.cover_versions_snapshot()

            def crash_and_publish(entry, payload_table):
                # A concurrent worker publishes an entry stamped with the
                # mid-transaction catalog version, then the step crashes.
                key = shared_cache.stable_key("result", ("ingest-abort",))
                shared_cache.client().put("result", key, catalog.version, b"r" * 64)
                raise RuntimeError("simulated crash mid-ingest")

            system.maintenance._patch = crash_and_publish
            batch = {"id": np.arange(n, n + 50), "k": rng.integers(0, 1001, 50)}
            with pytest.raises(RuntimeError):
                system.ingest("t", dict(batch))
            aborted_version = pre_version + 1

            # Catalog, base table, and cover versions restored exactly.
            assert catalog.version == pre_version
            assert catalog.get("t").nrows == pre_rows
            assert system.pool.cover_versions_snapshot() == pre_covers

            # The mid-ingest publish is stranded at the aborted version:
            # the restored catalog can only miss on it ...
            key = shared_cache.stable_key("result", ("ingest-abort",))
            assert shared_cache.client().get("result", key, catalog.version) is None
            # ... and a successful retry draws a version PAST the aborted
            # one, so the stranded entry stays dead forever.
            system.maintenance._patch = type(system.maintenance)._patch.__get__(
                system.maintenance
            )
            system.ingest("t", dict(batch))
            assert catalog.version == pre_version + 2
            assert catalog.version != aborted_version
            assert shared_cache.client().get("result", key, catalog.version) is None
            assert server.stats()["stale_served"] == 0
        finally:
            self._teardown(server, prior_server, prior_client)


class TestFilterTreeResidency:
    """§8.3 registry counters ride the same delta stream as the memo."""

    @staticmethod
    def _tree(pool):
        from repro.matching.filter_tree import FilterTree

        tree = FilterTree()
        tree.subscribe_to(pool)
        return tree

    def test_admit_and_evict_update_counters_incrementally(self):
        pool = make_pool("va", "vb")
        tree = self._tree(pool)
        entry = pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
        pool.add_fragment("va", "v", Interval.open_closed(10, 20), payload())
        pool.add_fragment("vb", "v", Interval.closed(0, 10), payload())

        assert tree.residency("va").resident_fragments == 2
        assert tree.residency("va").admits == 2
        assert tree.residency("vb").resident_fragments == 1
        assert tree.stats.resident_views == 2
        assert tree.stats.deltas_applied == 3

        pool.evict(entry.fragment_id)
        assert tree.residency("va").resident_fragments == 1
        assert tree.residency("va").evicts == 1
        assert tree.stats.resident_views == 2

    def test_rollback_deltas_keep_gauge_exact(self):
        pool = make_pool("va")
        tree = self._tree(pool)
        keep = pool.add_fragment("va", "v", Interval.closed(0, 10), payload())

        pool.begin("step")
        pool.add_fragment("va", "v", Interval.open_closed(10, 20), payload())
        pool.evict(keep.fragment_id)
        pool.rollback()

        cell = tree.residency("va")
        assert cell.resident_fragments == 1  # back to just `keep`
        assert cell.admits == 2
        assert cell.evicts >= 1
        assert cell.restores >= 1
        assert tree.stats.resident_views == 1

    def test_unsubscribed_tree_sees_nothing(self):
        from repro.matching.filter_tree import FilterTree

        pool = make_pool("va")
        tree = FilterTree()
        pool.add_fragment("va", "v", Interval.closed(0, 10), payload())
        assert tree.residency("va") is None
        assert tree.stats.deltas_applied == 0

    def test_deepsea_wires_registry_to_its_pool(self):
        from repro.bench.harness import sdss_fixture
        from repro.baselines import deepsea
        from repro.workloads.generator import sdss_mapped_workload

        fx = sdss_fixture(1.0, seed=3)
        plans = sdss_mapped_workload(fx.log, fx.item_domain, n_queries=12, seed=3)
        system = deepsea(fx.catalog, domains=fx.domains)
        for plan in plans:
            system.execute(plan)
        stats = system.filter_tree.stats
        assert stats.deltas_applied > 0
        # The gauge agrees with a direct pool scan at quiescence.
        from collections import Counter

        by_view = Counter(entry.key.view_id for entry in system.pool.all_entries())
        for view_id, cell in stats.residency.items():
            assert cell.resident_fragments == by_view.get(view_id, 0), view_id
