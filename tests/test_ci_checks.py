"""The CI gate scripts in ``benchmarks/ci_checks`` are tier-1-tested.

Each gate is exercised through its real CLI (``subprocess``) on both the
pass and the fail path, so a broken gate fails the local suite instead of
surfacing as a red CI job after merge.  The JSON-reading gates get
synthetic profile fixtures; the end-to-end gate runs a scaled-down
fig-5a replay.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CHECKS = REPO / "benchmarks" / "ci_checks"


def run_check(script: str, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, str(CHECKS / script), *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


def write_profile(tmp_path: Path, per_worker: dict) -> str:
    path = tmp_path / "profile.json"
    path.write_text(json.dumps({"per_worker": per_worker}))
    return str(path)


def worker(caches: dict, pid: int = 4242) -> dict:
    return {"pid": pid, "caches": caches}


GOOD_MATCHING = {
    "matching.match_view": {"hits": 95, "misses": 5, "evictions": 0, "entries": 5},
    "matching.cover_cache": {
        "hits": 40,
        "misses": 10,
        "evictions": 0,
        "invalidations": 3,
        "entries": 10,
        "by_view": {"v_a": 2, "v_b": 1},
    },
    "engine.result_cache": {"hits": 10, "misses": 20, "evictions": 0, "entries": 20},
}


class TestCheckProfileCaches:
    def test_passes_with_traffic(self, tmp_path):
        report = write_profile(tmp_path, {"serial": worker(GOOD_MATCHING)})
        proc = run_check("check_profile_caches.py", report)
        assert proc.returncode == 0, proc.stderr
        assert "engine.result_cache" in proc.stdout

    def test_fails_on_missing_cache(self, tmp_path):
        report = write_profile(tmp_path, {"serial": worker({})})
        proc = run_check("check_profile_caches.py", report)
        assert proc.returncode == 1
        assert "missing" in proc.stderr

    def test_fails_on_zero_traffic(self, tmp_path):
        caches = {"engine.result_cache": {"hits": 0, "misses": 0, "evictions": 0, "entries": 0}}
        report = write_profile(tmp_path, {"serial": worker(caches)})
        proc = run_check("check_profile_caches.py", report)
        assert proc.returncode == 1
        assert "no traffic" in proc.stderr

    def test_require_flag_extends_the_gate(self, tmp_path):
        report = write_profile(tmp_path, {"serial": worker(GOOD_MATCHING)})
        proc = run_check(
            "check_profile_caches.py", report, "--require", "matching.match_view"
        )
        assert proc.returncode == 0, proc.stderr
        proc = run_check("check_profile_caches.py", report, "--require", "no.such.cache")
        assert proc.returncode == 1


class TestCheckMatchingMemo:
    def test_passes_above_floor(self, tmp_path):
        report = write_profile(tmp_path, {"serial": worker(GOOD_MATCHING)})
        proc = run_check("check_matching_memo.py", report)
        assert proc.returncode == 0, proc.stderr
        assert "aggregate match_view hit rate: 0.950" in proc.stdout
        assert "by_view" in proc.stdout

    def test_fails_below_floor_with_observed_rate(self, tmp_path):
        caches = dict(GOOD_MATCHING)
        caches["matching.match_view"] = {"hits": 5, "misses": 95, "evictions": 0, "entries": 95}
        report = write_profile(tmp_path, {"serial": worker(caches)})
        proc = run_check("check_matching_memo.py", report)
        assert proc.returncode == 1
        assert "0.050" in proc.stderr  # the observed rate is in the failure

    def test_fails_when_cover_cache_lacks_per_view_counters(self, tmp_path):
        caches = dict(GOOD_MATCHING)
        caches["matching.cover_cache"] = {"hits": 1, "misses": 1, "evictions": 0, "entries": 1}
        report = write_profile(tmp_path, {"serial": worker(caches)})
        proc = run_check("check_matching_memo.py", report)
        assert proc.returncode == 1
        assert "invalidation counters" in proc.stderr

    def test_fails_when_memo_missing(self, tmp_path):
        report = write_profile(
            tmp_path, {"serial": worker({"engine.result_cache": {"hits": 1, "misses": 1}})}
        )
        proc = run_check("check_matching_memo.py", report)
        assert proc.returncode == 1

    def test_floor_flag(self, tmp_path):
        report = write_profile(tmp_path, {"serial": worker(GOOD_MATCHING)})
        proc = run_check("check_matching_memo.py", report, "--floor", "0.99")
        assert proc.returncode == 1
        assert "below floor 0.99" in proc.stderr


class TestCheckWorkerIsolation:
    def test_passes_when_each_worker_missed(self, tmp_path):
        per_worker = {
            "worker-0": worker(GOOD_MATCHING, pid=1),
            "worker-1": worker(GOOD_MATCHING, pid=2),
        }
        report = write_profile(tmp_path, per_worker)
        proc = run_check("check_worker_isolation.py", report)
        assert proc.returncode == 0, proc.stderr
        assert "pid=1" in proc.stdout and "pid=2" in proc.stdout

    def test_fails_on_missless_worker(self, tmp_path):
        caches = {"engine.result_cache": {"hits": 9, "misses": 0, "evictions": 0, "entries": 0}}
        report = write_profile(
            tmp_path, {"worker-0": worker(GOOD_MATCHING), "worker-1": worker(caches)}
        )
        proc = run_check("check_worker_isolation.py", report)
        assert proc.returncode == 1
        assert "worker-1" in proc.stderr


class TestCheckResultCacheReuse:
    def test_scaled_down_replay_hits_the_cache(self):
        proc = run_check(
            "check_result_cache_reuse.py", "--queries", "15", "--instance-gb", "5"
        )
        assert proc.returncode == 0, proc.stderr
        assert "rerun result-cache hits:" in proc.stdout


class TestCheckFragmentPrune:
    def test_scaled_down_run_clears_both_floors(self):
        proc = run_check(
            "check_fragment_prune.py", "--queries", "15", "--instance-gb", "5"
        )
        assert proc.returncode == 0, proc.stderr
        assert "hit rate:" in proc.stdout
        assert "pruned-row fraction:" in proc.stdout

    def test_unreachable_hit_floor_fails_with_observed_rate(self):
        proc = run_check(
            "check_fragment_prune.py",
            "--queries", "15", "--instance-gb", "5", "--hit-floor", "0.99",
        )
        assert proc.returncode == 1
        assert "below floor 0.99" in proc.stderr

    def test_unreachable_pruned_floor_fails(self):
        proc = run_check(
            "check_fragment_prune.py",
            "--queries", "15", "--instance-gb", "5", "--pruned-floor", "0.999",
        )
        assert proc.returncode == 1
        assert "pruned-row fraction" in proc.stderr


class TestCheckSharedCache:
    def test_scaled_down_smoke_proves_cross_worker_reuse(self):
        proc = run_check(
            "check_shared_cache.py", "--queries", "12", "--instance-gb", "5"
        )
        assert proc.returncode == 0, proc.stderr
        assert "cross_hits=" in proc.stdout
        assert "stale_served=0" in proc.stdout


class TestCheckSelectionShare:
    @staticmethod
    def _report(tmp_path: Path, selection: float, execution: float) -> str:
        path = tmp_path / "stages.json"
        path.write_text(
            json.dumps(
                {
                    "stages": {
                        "selection": {"seconds": selection, "calls": 10},
                        "execution": {"seconds": execution, "calls": 10},
                    }
                }
            )
        )
        return str(path)

    def test_passes_under_ceiling(self, tmp_path):
        report = self._report(tmp_path, selection=0.1, execution=0.9)
        proc = run_check("check_selection_share.py", report)
        assert proc.returncode == 0, proc.stderr
        assert "10.0%" in proc.stdout

    def test_fails_over_ceiling_with_observed_share(self, tmp_path):
        report = self._report(tmp_path, selection=0.6, execution=0.4)
        proc = run_check("check_selection_share.py", report)
        assert proc.returncode == 1
        assert "60.0%" in proc.stderr

    def test_ceiling_flag(self, tmp_path):
        report = self._report(tmp_path, selection=0.1, execution=0.9)
        proc = run_check("check_selection_share.py", report, "--ceiling", "0.05")
        assert proc.returncode == 1

    def test_empty_profile_fails(self, tmp_path):
        path = tmp_path / "stages.json"
        path.write_text(json.dumps({"stages": {}}))
        proc = run_check("check_selection_share.py", str(path))
        assert proc.returncode == 1

    def test_live_profile_report_passes(self, tmp_path):
        # End-to-end: a real (tiny) profile run satisfies the gate.
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        out = tmp_path / "live.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "profile",
                "--queries", "20", "--instance-gb", "5", "--output", str(out),
            ],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        gate = run_check("check_selection_share.py", str(out))
        assert gate.returncode == 0, gate.stderr


def serve_phase(**over) -> dict:
    base = {
        "offered": 20, "answered": 20, "shed": 0, "timed_out": 0,
        "failed": 0, "retries": 2, "qps": 100.0, "p99_ms": 5.0,
        "digest_mismatches": [], "accounting_ok": True, "unresolved": 0,
        "pool_epoch": 4, "writer": {"steps": 9},
    }
    base.update(over)
    return base


def write_serve_report(tmp_path: Path, phases: dict) -> str:
    path = tmp_path / "serve.json"
    path.write_text(json.dumps({"phases": phases}))
    return str(path)


class TestServeInvariantsGate:
    def good_phases(self) -> dict:
        return {
            "steady": serve_phase(),
            "burst": serve_phase(shed=8, answered=12),
            "chaos": serve_phase(),
        }

    def test_passes_on_clean_report(self, tmp_path):
        report = write_serve_report(tmp_path, self.good_phases())
        proc = run_check("check_serve_invariants.py", report)
        assert proc.returncode == 0, proc.stderr
        assert "serving invariants hold" in proc.stdout

    def test_fails_on_digest_divergence(self, tmp_path):
        phases = self.good_phases()
        phases["chaos"] = serve_phase(digest_mismatches=[7])
        proc = run_check("check_serve_invariants.py", write_serve_report(tmp_path, phases))
        assert proc.returncode == 1
        assert "diverged" in proc.stderr

    def test_fails_on_broken_accounting(self, tmp_path):
        phases = self.good_phases()
        phases["steady"] = serve_phase(accounting_ok=False)
        proc = run_check("check_serve_invariants.py", write_serve_report(tmp_path, phases))
        assert proc.returncode == 1
        assert "accounting" in proc.stderr

    def test_fails_when_burst_shed_nothing(self, tmp_path):
        phases = self.good_phases()
        phases["burst"] = serve_phase(shed=0)
        proc = run_check("check_serve_invariants.py", write_serve_report(tmp_path, phases))
        assert proc.returncode == 1
        assert "admission control never fired" in proc.stderr

    def test_fails_when_chaos_never_retried(self, tmp_path):
        phases = self.good_phases()
        phases["chaos"] = serve_phase(retries=0)
        proc = run_check("check_serve_invariants.py", write_serve_report(tmp_path, phases))
        assert proc.returncode == 1
        assert "retries" in proc.stderr or "retry" in proc.stderr

    def test_fails_on_empty_report(self, tmp_path):
        proc = run_check("check_serve_invariants.py", write_serve_report(tmp_path, {}))
        assert proc.returncode == 1


def ingest_result(
    scenario="drip",
    mode="delta",
    digest="abc123",
    batches=20,
    identity_ok=True,
    identity_checks=40,
    stale_reads=0,
    maint_s=120.5,
    fragments_patched=12,
):
    return {
        "scenario": scenario,
        "mode": mode,
        "answer_digest": digest,
        "batches": batches,
        "identity_ok": identity_ok,
        "identity_checks": identity_checks,
        "identity_problems": [] if identity_ok else ["v_x/frag_1: column k diverged"],
        "stale_reads": stale_reads,
        "maint_s": maint_s,
        "fragments_patched": fragments_patched,
    }


def write_ingest_report(tmp_path: Path, results: list) -> str:
    path = tmp_path / "ingest.json"
    path.write_text(json.dumps({"results": results}))
    return str(path)


class TestCheckIngestDelta:
    def good_results(self):
        return [
            ingest_result(mode="delta"),
            ingest_result(mode="rebuild", fragments_patched=0),
        ]

    def test_passes_on_clean_report(self, tmp_path):
        report = write_ingest_report(tmp_path, self.good_results())
        proc = run_check("check_ingest_delta.py", report)
        assert proc.returncode == 0, proc.stderr
        assert "ingest delta gate passed" in proc.stdout

    def test_fails_when_delta_diverges_from_recompute(self, tmp_path):
        results = [
            ingest_result(mode="delta", digest="aaa"),
            ingest_result(mode="rebuild", digest="bbb", fragments_patched=0),
        ]
        proc = run_check("check_ingest_delta.py", write_ingest_report(tmp_path, results))
        assert proc.returncode == 1
        assert "diverged" in proc.stderr

    def test_fails_on_identity_proof_failure(self, tmp_path):
        results = self.good_results()
        results[0] = ingest_result(mode="delta", identity_ok=False)
        proc = run_check("check_ingest_delta.py", write_ingest_report(tmp_path, results))
        assert proc.returncode == 1
        assert "identity proof failed" in proc.stderr

    def test_fails_on_stale_cache_reads(self, tmp_path):
        results = self.good_results()
        results[0] = ingest_result(mode="delta", stale_reads=2)
        proc = run_check("check_ingest_delta.py", write_ingest_report(tmp_path, results))
        assert proc.returncode == 1
        assert "stale" in proc.stderr

    def test_fails_when_no_fragment_was_patched(self, tmp_path):
        results = self.good_results()
        results[0] = ingest_result(mode="delta", fragments_patched=0)
        proc = run_check("check_ingest_delta.py", write_ingest_report(tmp_path, results))
        assert proc.returncode == 1
        assert "patched no fragments" in proc.stderr

    def test_fails_when_a_mode_is_missing(self, tmp_path):
        report = write_ingest_report(tmp_path, [ingest_result(mode="delta")])
        proc = run_check("check_ingest_delta.py", report)
        assert proc.returncode == 1
        assert "both delta and rebuild" in proc.stderr

    def test_fails_on_empty_report(self, tmp_path):
        proc = run_check("check_ingest_delta.py", write_ingest_report(tmp_path, []))
        assert proc.returncode == 1
        assert "no scenario results" in proc.stderr
