"""Tests for the simulated HDFS and the materialized-view pool."""

import pytest

from repro.engine.cost import CostLedger
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.errors import BlockLostError, PoolError, RecoveryError
from repro.partitioning.intervals import Interval
from repro.query.algebra import Relation
from repro.storage.hdfs import SimulatedHDFS
from repro.storage.pool import FragmentKey, MaterializedViewPool


@pytest.fixture
def small_table():
    schema = Schema.of(Column("v"))
    return Table.from_dict(schema, {"v": [1, 2, 3]})


class TestSimulatedHDFS:
    def test_write_read_roundtrip(self, small_table):
        fs = SimulatedHDFS()
        fs.write("/a", small_table)
        assert fs.read("/a").to_rows() == small_table.to_rows()

    def test_write_charges_ledger(self, small_table):
        fs = SimulatedHDFS()
        ledger = CostLedger()
        fs.write("/a", small_table, ledger)
        assert ledger.write_s > 0
        assert ledger.bytes_written == small_table.size_bytes

    def test_read_charges_ledger(self, small_table):
        fs = SimulatedHDFS()
        fs.write("/a", small_table)
        ledger = CostLedger()
        fs.read("/a", ledger)
        assert ledger.read_s > 0

    def test_duplicate_write_raises(self, small_table):
        fs = SimulatedHDFS()
        fs.write("/a", small_table)
        with pytest.raises(PoolError):
            fs.write("/a", small_table)

    def test_delete(self, small_table):
        fs = SimulatedHDFS()
        fs.write("/a", small_table)
        fs.delete("/a")
        assert not fs.exists("/a")
        with pytest.raises(PoolError):
            fs.read("/a")

    def test_used_bytes(self, small_table):
        fs = SimulatedHDFS()
        fs.write("/a", small_table)
        fs.write("/b", small_table)
        assert fs.used_bytes == 2 * small_table.size_bytes


class TestPool:
    def make_pool(self, smax=None):
        pool = MaterializedViewPool(smax_bytes=smax)
        pool.define_view("v1", Relation("sales"))
        return pool

    def test_whole_view_residency(self, small_table):
        pool = self.make_pool()
        pool.add_whole_view("v1", small_table)
        assert pool.is_resident("v1")
        entry = pool.whole_view_entry("v1")
        assert entry is not None
        assert pool.read_entry(entry.fragment_id).nrows == 3

    def test_fragment_residency_sorted(self, small_table):
        pool = self.make_pool()
        pool.add_fragment("v1", "v", Interval.closed(10, 20), small_table)
        pool.add_fragment("v1", "v", Interval.closed(0, 10), small_table)
        intervals = pool.intervals_of("v1", "v")
        assert intervals[0].lo == 0 and intervals[1].lo == 10

    def test_duplicate_fragment_raises(self, small_table):
        pool = self.make_pool()
        pool.add_fragment("v1", "v", Interval.closed(0, 10), small_table)
        with pytest.raises(PoolError):
            pool.add_fragment("v1", "v", Interval.closed(0, 10), small_table)

    def test_undefined_view_raises(self, small_table):
        pool = MaterializedViewPool()
        with pytest.raises(PoolError):
            pool.add_whole_view("ghost", small_table)

    def test_smax_enforced(self, small_table):
        pool = self.make_pool(smax=small_table.size_bytes * 1.5)
        pool.add_whole_view("v1", small_table)
        pool.define_view("v2", Relation("item"))
        with pytest.raises(PoolError):
            pool.add_whole_view("v2", small_table)

    def test_evict_frees_space_and_file(self, small_table):
        pool = self.make_pool(smax=small_table.size_bytes)
        entry = pool.add_whole_view("v1", small_table)
        pool.evict(entry.fragment_id)
        assert pool.used_bytes == 0
        assert not pool.is_resident("v1")
        assert pool.hdfs.file_count == 0

    def test_evict_one_fragment_keeps_siblings(self, small_table):
        pool = self.make_pool()
        left = pool.add_fragment("v1", "v", Interval.closed(0, 10), small_table)
        pool.add_fragment("v1", "v", Interval.open_closed(10, 20), small_table)
        pool.evict(left.fragment_id)
        assert pool.is_resident("v1")
        assert len(pool.fragments_of("v1", "v")) == 1

    def test_find_fragment_by_key(self, small_table):
        pool = self.make_pool()
        pool.add_fragment("v1", "v", Interval.closed(0, 10), small_table)
        hit = pool.find_fragment(FragmentKey("v1", "v", Interval.closed(0, 10)))
        assert hit is not None
        miss = pool.find_fragment(FragmentKey("v1", "v", Interval.closed(0, 11)))
        assert miss is None

    def test_multiple_partitions_same_view(self, small_table):
        pool = self.make_pool()
        pool.add_fragment("v1", "v", Interval.closed(0, 10), small_table)
        pool.add_fragment("v1", "w", Interval.closed(0, 99), small_table)
        assert pool.partition_attrs("v1") == ["v", "w"]

    def test_configuration_snapshot(self, small_table):
        pool = self.make_pool()
        pool.add_fragment("v1", "v", Interval.closed(0, 10), small_table)
        snap = pool.configuration()
        assert snap["v1"]["partitions"]["v"] == [Interval.closed(0, 10)]

    def test_fragment_key_validation(self):
        with pytest.raises(PoolError):
            FragmentKey("v", "a", None)
        with pytest.raises(PoolError):
            FragmentKey("v", None, Interval.closed(0, 1))

    def test_view_id_collision_detection(self):
        pool = self.make_pool()
        with pytest.raises(PoolError):
            pool.define_view("v1", Relation("other"))
        # idempotent when the plan matches
        pool.define_view("v1", Relation("sales"))


class TestHDFSFaultSurface:
    """Edge semantics of simulated block loss, corruption, and healing.

    The load-bearing property: a *failed* operation leaves the file map
    and its counters exactly as they were, and recoverable cluster damage
    (BlockLostError) is typed distinctly from caller bugs (PoolError).
    """

    def test_read_after_replica_loss_raises_typed(self, small_table):
        fs = SimulatedHDFS()
        fs.write("/a", small_table)
        fs.lose_replicas("/a")
        assert fs.is_lost("/a")
        with pytest.raises(BlockLostError):
            fs.read("/a")

    def test_lose_replicas_of_unknown_path_is_a_caller_bug(self):
        fs = SimulatedHDFS()
        with pytest.raises(PoolError):
            fs.lose_replicas("/ghost")

    def test_restore_heals_the_file(self, small_table):
        fs = SimulatedHDFS()
        fs.write("/a", small_table)
        fs.lose_replicas("/a")
        fs.restore("/a", small_table)
        assert not fs.is_lost("/a")
        assert fs.read("/a").to_rows() == small_table.to_rows()

    def test_restore_size_mismatch_raises_and_stays_lost(self, small_table):
        fs = SimulatedHDFS()
        fs.write("/a", small_table)
        fs.lose_replicas("/a")
        bigger = Table.from_dict(small_table.schema, {"v": [1, 2, 3, 4, 5]})
        with pytest.raises(RecoveryError):
            fs.restore("/a", bigger)
        assert fs.is_lost("/a")

    def test_peek_ignores_replica_loss(self, small_table):
        fs = SimulatedHDFS()
        fs.write("/a", small_table)
        fs.lose_replicas("/a")
        assert fs.peek("/a").to_rows() == small_table.to_rows()

    def test_counters_unchanged_by_failed_operations(self, small_table):
        fs = SimulatedHDFS()
        fs.write("/a", small_table)
        fs.lose_replicas("/a")
        bytes_before, files_before = fs.used_bytes, fs.file_count
        for failing_op in (
            lambda: fs.write("/a", small_table),
            lambda: fs.delete("/ghost"),
            lambda: fs.read("/ghost"),
            lambda: fs.read("/a"),
            lambda: fs.lose_replicas("/ghost"),
            lambda: fs.restore("/ghost", small_table),
        ):
            with pytest.raises((PoolError, BlockLostError, RecoveryError)):
                failing_op()
            assert fs.used_bytes == bytes_before
            assert fs.file_count == files_before

    def test_delete_clears_the_lost_marker(self, small_table):
        fs = SimulatedHDFS()
        fs.write("/a", small_table)
        fs.lose_replicas("/a")
        fs.delete("/a")
        fs.write("/a", small_table)
        assert not fs.is_lost("/a")
        assert fs.read("/a").to_rows() == small_table.to_rows()


class TestPoolJournal:
    """Write-ahead journal: rollback restores the exact configuration."""

    def make_pool(self):
        pool = MaterializedViewPool()
        pool.define_view("v1", Relation("sales"))
        return pool

    def test_rollback_restores_exact_configuration(self, small_table):
        pool = self.make_pool()
        keep = pool.add_fragment("v1", "v", Interval.closed(0, 10), small_table)
        victim = pool.add_fragment("v1", "v", Interval.open_closed(10, 20), small_table)
        before_config = pool.configuration()
        before_bytes = pool.hdfs.used_bytes
        before_files = pool.hdfs.file_count

        pool.begin("repartition")
        pool.evict(victim.fragment_id)
        pool.add_fragment("v1", "v", Interval.open_closed(20, 30), small_table)
        undone = pool.rollback()

        assert undone == 2
        assert pool.configuration() == before_config
        assert pool.hdfs.used_bytes == before_bytes
        assert pool.hdfs.file_count == before_files
        assert pool.journal.rolled_back == 1
        # Both original entries readable, the aborted admit gone.
        assert pool.read_entry(keep.fragment_id).nrows == 3
        assert pool.read_entry(victim.fragment_id).nrows == 3
        assert len(pool.fragments_of("v1", "v")) == 2

    def test_rollback_replay_cost_lands_on_ledger(self, small_table):
        pool = self.make_pool()
        victim = pool.add_fragment("v1", "v", Interval.closed(0, 10), small_table)
        ledger = CostLedger()
        pool.begin("repartition")
        pool.evict(victim.fragment_id)
        pool.rollback(ledger)
        assert ledger.write_s > 0
        assert ledger.bytes_written == small_table.size_bytes

    def test_commit_keeps_changes(self, small_table):
        pool = self.make_pool()
        victim = pool.add_fragment("v1", "v", Interval.closed(0, 10), small_table)
        pool.begin("merge")
        pool.evict(victim.fragment_id)
        pool.commit()
        assert not pool.is_resident("v1")
        assert pool.journal.committed == 1
        assert not pool.journal.journaling

    def test_transactions_do_not_nest(self):
        pool = self.make_pool()
        pool.begin("a")
        with pytest.raises(PoolError, match="do not nest"):
            pool.begin("b")

    def test_commit_and_rollback_require_open_transaction(self):
        pool = self.make_pool()
        with pytest.raises(PoolError):
            pool.commit()
        with pytest.raises(PoolError):
            pool.rollback()

    def test_mutations_outside_transaction_are_unjournaled(self, small_table):
        pool = self.make_pool()
        entry = pool.add_fragment("v1", "v", Interval.closed(0, 10), small_table)
        pool.evict(entry.fragment_id)  # no begin(): plain eviction
        assert pool.journal.committed == 0
        assert pool.journal.rolled_back == 0

    def test_lost_entry_without_recovery_raises_typed(self, small_table):
        pool = self.make_pool()
        entry = pool.add_fragment("v1", "v", Interval.closed(0, 10), small_table)
        pool.hdfs.lose_replicas(entry.path)
        assert pool.recovery is None
        with pytest.raises(RecoveryError, match="no recovery"):
            pool.read_entry(entry.fragment_id)


class TestPoolRetention:
    """The retention hook: departing payloads offered before deletion."""

    def make_pool(self, small_table):
        pool = MaterializedViewPool()
        pool.define_view("v1", Relation("sales"))
        entry = pool.add_fragment("v1", "v", Interval.closed(0, 10), small_table)
        return pool, entry

    def test_hook_sees_departing_payload(self, small_table):
        pool, entry = self.make_pool(small_table)
        seen = []
        pool.retention = lambda e, table: seen.append((e, table.sorted_rows()))
        pool.evict(entry.fragment_id)
        assert seen == [(entry, small_table.sorted_rows())]

    def test_hook_fires_even_when_replicas_lost(self, small_table):
        # peek() ignores replica loss, so retention still gets the bytes a
        # snapshot reader was promised even for a lost-then-evicted entry.
        pool, entry = self.make_pool(small_table)
        seen = []
        pool.retention = lambda e, table: seen.append(table.sorted_rows())
        pool.hdfs.lose_replicas(entry.path)
        pool.evict(entry.fragment_id)
        assert seen == [small_table.sorted_rows()]

    def test_hook_fires_inside_transactions_not_on_rollback(self, small_table):
        # The journaled evict offers the payload once; the rollback that
        # re-admits the entry is a restore, not a departure.
        pool, entry = self.make_pool(small_table)
        calls = []
        pool.retention = lambda e, table: calls.append(e.fragment_id)
        pool.begin("repartition")
        pool.evict(entry.fragment_id)
        pool.rollback()
        assert calls == [entry.fragment_id]
        assert pool.read_entry(entry.fragment_id).sorted_rows() == small_table.sorted_rows()

    def test_no_hook_no_behavior_change(self, small_table):
        pool, entry = self.make_pool(small_table)
        assert pool.retention is None
        pool.evict(entry.fragment_id)
        assert not pool.hdfs.exists(entry.path)
