"""Bit-exactness oracle for :class:`ResidentProfile` (§7.2 estimates).

The refinement hot path estimates candidate pieces through the vectorized
profile; the scalar :func:`estimate_fragment_size` /
:func:`estimate_fragment_cost` pair stays as the readable oracle.  These
tests pin the contract the profile's docstring promises: identical floats,
not approximately-equal ones.
"""

from hypothesis import given, settings, strategies as st

from repro.costmodel.estimate import (
    ResidentProfile,
    estimate_fragment_cost,
    estimate_fragment_size,
)
from repro.engine.cost import ClusterSpec
from repro.partitioning.intervals import Interval

DOMAIN = Interval.closed(0, 100)
CLUSTER = ClusterSpec()

# A coarse grid of endpoints makes boundary collisions (shared endpoints,
# point fragments, zero-width intersections) common instead of measure-zero.
_points = st.sampled_from([0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0])


@st.composite
def intervals(draw):
    kind = draw(st.sampled_from(["closed", "open", "open_closed", "closed_open", "point"]))
    if kind == "point":
        return Interval.point(draw(_points))
    lo = draw(_points)
    hi = draw(_points.filter(lambda x: x > lo))
    return getattr(Interval, kind)(lo, hi)


@st.composite
def resident_lists(draw):
    ivs = draw(st.lists(intervals(), min_size=0, max_size=12))
    sizes = [draw(st.floats(1.0, 1e9)) for _ in ivs]
    return list(zip(ivs, sizes))


class TestResidentProfileOracle:
    @given(resident_lists(), intervals())
    @settings(max_examples=200, deadline=None)
    def test_estimate_bitwise_equals_scalar_pair(self, resident, piece):
        profile = ResidentProfile(resident, DOMAIN, CLUSTER)
        size, cost = profile.estimate(piece)
        assert size == estimate_fragment_size(piece, resident, DOMAIN)
        assert cost == estimate_fragment_cost(piece, resident, DOMAIN, CLUSTER)

    @given(intervals())
    @settings(max_examples=20, deadline=None)
    def test_empty_resident_list(self, piece):
        profile = ResidentProfile([], DOMAIN, CLUSTER)
        size, cost = profile.estimate(piece)
        assert size == estimate_fragment_size(piece, [], DOMAIN)
        assert cost == estimate_fragment_cost(piece, [], DOMAIN, CLUSTER)

    def test_unbounded_resident_fragment(self):
        resident = [(Interval.unbounded(), 500.0), (Interval.at_least(50.0), 250.0)]
        piece = Interval.closed(40, 60)
        profile = ResidentProfile(resident, DOMAIN, CLUSTER)
        size, cost = profile.estimate(piece)
        assert size == estimate_fragment_size(piece, resident, DOMAIN)
        assert cost == estimate_fragment_cost(piece, resident, DOMAIN, CLUSTER)

    def test_resident_outside_domain_contributes_nothing(self):
        resident = [(Interval.closed(200, 300), 100.0)]
        piece = Interval.closed(200, 250)  # overlaps the fragment, not the domain
        profile = ResidentProfile(resident, DOMAIN, CLUSTER)
        size, cost = profile.estimate(piece)
        assert size == estimate_fragment_size(piece, resident, DOMAIN)
        assert cost == estimate_fragment_cost(piece, resident, DOMAIN, CLUSTER)

    def test_piece_memo_starts_empty_and_is_per_profile(self):
        a = ResidentProfile([(Interval.closed(0, 10), 1.0)], DOMAIN, CLUSTER)
        b = ResidentProfile([], DOMAIN, CLUSTER)
        assert a.piece_memo == {} and b.piece_memo == {}
        a.piece_memo[Interval.closed(0, 1)] = (False, 0.0, 0.0, 0.0)
        assert b.piece_memo == {}
