"""Tests for schemas and columnar tables."""

import numpy as np
import pytest

from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.engine.types import ColumnKind, coerce_array
from repro.errors import SchemaError


class TestColumnKind:
    def test_widths(self):
        assert ColumnKind.INT64.default_width == 8
        assert ColumnKind.FLOAT64.default_width == 8
        assert ColumnKind.STRING.default_width == 32

    def test_coerce(self):
        arr = coerce_array(ColumnKind.INT64, [1, 2])
        assert arr.dtype == np.int64
        arr = coerce_array(ColumnKind.FLOAT64, [1, 2])
        assert arr.dtype == np.float64
        arr = coerce_array(ColumnKind.STRING, ["a"])
        assert arr.dtype == object


class TestSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(Column("a"), Column("a"))

    def test_row_bytes(self):
        s = Schema.of(Column("a"), Column("b", ColumnKind.STRING))
        assert s.row_bytes == 8 + 32

    def test_custom_width(self):
        s = Schema.of(Column("name", ColumnKind.STRING, width=64))
        assert s.row_bytes == 64

    def test_subset_preserves_order(self):
        s = Schema.of(Column("a"), Column("b"), Column("c"))
        sub = s.subset(("c", "a"))
        assert sub.names == ("c", "a")

    def test_subset_unknown_raises(self):
        s = Schema.of(Column("a"))
        with pytest.raises(SchemaError):
            s.subset(("z",))

    def test_concat_with_drop(self):
        s1 = Schema.of(Column("a"))
        s2 = Schema.of(Column("a"), Column("b"))
        merged = s1.concat(s2, drop={"a"})
        assert merged.names == ("a", "b")

    def test_contains(self):
        s = Schema.of(Column("a"))
        assert "a" in s and "b" not in s


class TestTable:
    def test_from_dict_and_nrows(self, sales_table):
        assert sales_table.nrows == 500

    def test_size_bytes_uses_scale(self, sales_schema):
        t = Table.from_dict(
            sales_schema,
            {"s_id": [1], "s_item_sk": [2], "s_qty": [3], "s_price": [4.0]},
            scale=1000.0,
        )
        assert t.size_bytes == sales_schema.row_bytes * 1000.0

    def test_ragged_columns_rejected(self, sales_schema):
        with pytest.raises(SchemaError):
            Table.from_dict(
                sales_schema,
                {"s_id": [1, 2], "s_item_sk": [2], "s_qty": [3], "s_price": [4.0]},
            )

    def test_wrong_columns_rejected(self, sales_schema):
        with pytest.raises(SchemaError):
            Table(sales_schema, {"bogus": np.array([1])})

    def test_filter(self, sales_table):
        mask = sales_table.column("s_item_sk") < 50
        out = sales_table.filter(mask)
        assert out.nrows == int(mask.sum())
        assert (out.column("s_item_sk") < 50).all()

    def test_take_with_repeats(self, sales_table):
        out = sales_table.take(np.array([0, 0, 1]))
        assert out.nrows == 3
        assert out.column("s_id")[0] == out.column("s_id")[1]

    def test_project(self, sales_table):
        out = sales_table.project(("s_qty", "s_id"))
        assert out.schema.names == ("s_qty", "s_id")
        assert out.nrows == sales_table.nrows

    def test_concat(self, sales_table):
        both = sales_table.concat(sales_table)
        assert both.nrows == 2 * sales_table.nrows

    def test_concat_schema_mismatch(self, sales_table, item_table):
        with pytest.raises(SchemaError):
            sales_table.concat(item_table)

    def test_distinct(self, sales_schema):
        t = Table.from_dict(
            sales_schema,
            {
                "s_id": [1, 1, 2],
                "s_item_sk": [5, 5, 6],
                "s_qty": [1, 1, 1],
                "s_price": [2.0, 2.0, 3.0],
            },
        )
        assert t.distinct().nrows == 2

    def test_distinct_empty(self, sales_schema):
        assert Table.empty(sales_schema).distinct().nrows == 0

    def test_sorted_rows_roundtrip(self, sales_schema):
        t = Table.from_dict(
            sales_schema,
            {"s_id": [2, 1], "s_item_sk": [1, 1], "s_qty": [1, 1], "s_price": [0.0, 0.0]},
        )
        rows = t.sorted_rows()
        assert rows[0][0] == 1 and rows[1][0] == 2
