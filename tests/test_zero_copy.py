"""Zero-copy execution core: encoded strings, views, and the result cache.

Three families of guarantees:

* representation — dictionary-encoded string columns and late-materialized
  selection/join views behave exactly like the eager tables they stand for;
* equivalence — randomized plans produce bit-identical rows *and* ledgers
  through the eager and zero-copy paths (``set_lazy_views`` toggles the
  reference implementation);
* reuse — the cross-query result cache replays recorded charges
  bit-identically and is invalidated by catalog versions and pool epochs.
"""

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.catalog import Catalog
from repro.engine.cost import ClusterSpec, CostLedger
from repro.engine.executor import ExecutionContext, Executor, aggregate, hash_join
from repro.engine import result_cache
from repro.engine.schema import Column, Schema
from repro.engine.table import JoinView, Table, TableView, set_lazy_views
from repro.engine.types import ColumnKind, EncodedColumn, coerce_array, concat_columns
from repro.errors import SchemaError
from repro.faults.schedule import FaultSchedule
from repro.partitioning.intervals import Interval
from repro.query.algebra import (
    Aggregate,
    AggSpec,
    Join,
    MaterializedScan,
    Project,
    Relation,
    Select,
)
from repro.query.predicates import between
from repro.storage.pool import MaterializedViewPool

LEDGER_FIELDS = (
    "read_s", "write_s", "shuffle_s", "overhead_s", "jobs", "map_tasks",
    "bytes_read", "bytes_written", "files_written", "fault_s",
    "task_retries", "speculative_tasks", "fault_events",
)


def ledger_tuple(ledger: CostLedger) -> tuple:
    return tuple(getattr(ledger, f) for f in LEDGER_FIELDS)


@pytest.fixture(autouse=True)
def _clean_result_cache():
    result_cache.GLOBAL.clear()
    yield
    result_cache.GLOBAL.clear()


# ----------------------------------------------------------------------
# EncodedColumn
# ----------------------------------------------------------------------
class TestEncodedColumn:
    def test_roundtrip_and_sorted_dictionary(self):
        col = EncodedColumn.encode(["pear", "apple", "pear", "fig"])
        assert col.tolist() == ["pear", "apple", "pear", "fig"]
        assert col.values.tolist() == sorted(set(["pear", "apple", "fig"]))
        assert col.codes.dtype == np.int32

    def test_code_order_equals_value_order(self):
        col = EncodedColumn.encode(["b", "c", "a", "c"])
        by_codes = np.argsort(col.codes, kind="stable")
        by_values = np.argsort(col.decode(), kind="stable")
        assert by_codes.tolist() == by_values.tolist()

    def test_fancy_index_shares_dictionary(self):
        col = EncodedColumn.encode(["x", "y", "x", "z"])
        sub = col[np.array([2, 0])]
        assert isinstance(sub, EncodedColumn)
        assert sub.values is col.values
        assert sub.tolist() == ["x", "x"]
        assert col[3] == "z"  # scalar access decodes

    def test_elementwise_eq_across_dictionaries(self):
        a = EncodedColumn.encode(["u", "v", "w"])
        b = EncodedColumn.encode(["u", "x", "w"])  # different dictionary
        assert (a == b).tolist() == [True, False, True]
        assert (a == np.array(["u", "v", "q"], dtype=object)).tolist() == [
            True, True, False,
        ]

    def test_min_max_decode(self):
        col = EncodedColumn.encode(["m", "a", "z"])[np.array([0, 2])]
        assert col.min() == "m"
        assert col.max() == "z"

    def test_empty(self):
        col = EncodedColumn.encode([])
        assert len(col) == 0
        assert col.decode().tolist() == []

    def test_coerce_array_encodes_strings(self):
        assert isinstance(coerce_array(ColumnKind.STRING, ["a"]), EncodedColumn)
        assert coerce_array(ColumnKind.INT64, [1]).dtype == np.int64

    def test_concat_same_dictionary_keeps_it(self):
        col = EncodedColumn.encode(["a", "b", "a"])
        out = concat_columns([col[np.array([0, 1])], col[np.array([2])]])
        assert out.values is col.values
        assert out.tolist() == ["a", "b", "a"]

    def test_concat_rebuilds_sorted_union_dictionary(self):
        a = EncodedColumn.encode(["b", "d"])
        b = EncodedColumn.encode(["a", "c", "d"])
        out = concat_columns([a, b])
        assert out.tolist() == ["b", "d", "a", "c", "d"]
        assert out.values.tolist() == ["a", "b", "c", "d"]


# ----------------------------------------------------------------------
# Views
# ----------------------------------------------------------------------
STR_SCHEMA = Schema.of(
    Column("k", ColumnKind.INT64),
    Column("name", ColumnKind.STRING),
    Column("v", ColumnKind.FLOAT64),
)


def str_table() -> Table:
    return Table.from_dict(
        STR_SCHEMA,
        {
            "k": [3, 1, 2, 1, 3],
            "name": ["cherry", "apple", "beet", "apple", "date"],
            "v": [0.5, 1.5, 2.5, 3.5, 4.5],
        },
    )


class TestTableView:
    def test_filter_returns_view_with_equal_rows(self):
        t = str_table()
        view = t.filter(np.array([True, False, True, True, False]))
        assert isinstance(view, TableView)
        eager = set_lazy_views(False)
        try:
            reference = t.filter(np.array([True, False, True, True, False]))
        finally:
            set_lazy_views(eager)
        assert type(reference) is Table
        assert view.to_rows() == reference.to_rows()

    def test_composed_selections_stay_one_level_deep(self):
        t = str_table()
        v = t.filter(np.array([True, True, True, True, False])).take([3, 0])
        assert isinstance(v, TableView)
        assert v.gather_plan()[0] is t
        assert v.to_rows() == [t.to_rows()[3], t.to_rows()[0]]

    def test_projected_away_column_raises_despite_shared_cache(self):
        # Regression: the gather cache is shared between a view and its
        # narrowed projection; schema membership must be checked first.
        t = str_table()
        wide = t.filter(np.array([True] * 5))
        wide.column("v")  # populate the shared cache
        narrow = wide.project(("k", "name"))
        with pytest.raises(SchemaError):
            narrow.column("v")

    def test_pickle_materializes_and_reencodes(self):
        t = str_table()
        view = t.filter(np.array([False, True, False, True, False]))
        restored = pickle.loads(pickle.dumps(view))
        assert type(restored) is Table
        assert restored.to_rows() == view.to_rows()
        assert isinstance(restored.column("name"), EncodedColumn)

    def test_view_lineage_matches_eager_lineage(self):
        t = str_table()
        mask = np.array([True, False, True, True, False])
        view = t.filter(mask)
        eager = set_lazy_views(False)
        try:
            reference = t.filter(mask)
        finally:
            set_lazy_views(eager)
        vroot, vrows, vmono = view._lineage
        eroot, erows, emono = reference._lineage
        assert vroot is eroot is t
        assert vrows.tolist() == erows.tolist()
        assert vmono == emono

    def test_empty_selection(self):
        t = str_table()
        view = t.filter(np.zeros(5, dtype=bool))
        assert view.nrows == 0
        assert view.to_rows() == []
        assert view.materialize().nrows == 0

    def test_empty_table_filter(self):
        t = Table.empty(STR_SCHEMA)
        assert t.filter(np.zeros(0, dtype=bool)).to_rows() == []

    def test_concat_many_single_piece_is_identity(self):
        t = str_table()
        assert Table.concat_many([t]) is t

    def test_concat_many_gathers_views(self):
        t = str_table()
        a = t.filter(np.array([True, True, False, False, False]))
        b = t.filter(np.array([False, False, True, True, True]))
        out = Table.concat_many([a, b])
        assert out.to_rows() == t.to_rows()


class TestJoinView:
    def make_join(self):
        left_schema = Schema.of(Column("k"), Column("lv"), Column("tag", ColumnKind.STRING))
        right_schema = Schema.of(Column("k"), Column("rv"))
        left = Table.from_dict(
            left_schema,
            {"k": [1, 2, 3, 2], "lv": [10, 20, 30, 21], "tag": list("abca")},
        )
        right = Table.from_dict(right_schema, {"k": [2, 3, 5], "rv": [200, 300, 500]})
        return left, right

    def test_join_output_is_lazy_and_correct(self):
        left, right = self.make_join()
        out = hash_join(left, right, "k", "k")
        assert isinstance(out, JoinView)
        assert sorted(out.to_rows()) == [
            (2, 20, "b", 200), (2, 21, "a", 200), (3, 30, "c", 300),
        ]

    def test_unconsumed_columns_never_gathered(self):
        left, right = self.make_join()
        out = hash_join(left, right, "k", "k").project(("rv",))
        assert out.column("rv").tolist() == [200, 300, 200]
        assert "lv" not in out._gathered  # never touched, never copied

    def test_filter_composes_into_both_sides(self):
        left, right = self.make_join()
        out = hash_join(left, right, "k", "k")
        picked = out.take(np.array([2, 0]))
        assert isinstance(picked, JoinView)
        assert picked.to_rows() == [out.to_rows()[2], out.to_rows()[0]]

    def test_pickle_ships_plain_decoded_table(self):
        left, right = self.make_join()
        out = hash_join(left, right, "k", "k")
        restored = pickle.loads(pickle.dumps(out))
        assert type(restored) is Table
        assert restored.sorted_rows() == out.sorted_rows()

    def test_matches_eager_join_bitwise(self):
        left, right = self.make_join()
        lazy = hash_join(left, right, "k", "k")
        eager = set_lazy_views(False)
        try:
            reference = hash_join(left, right, "k", "k")
        finally:
            set_lazy_views(eager)
        assert lazy.to_rows() == reference.to_rows()
        for name in reference.schema.names:
            a = lazy.column(name)
            b = reference.column(name)
            if isinstance(a, EncodedColumn):
                assert a.tolist() == b.tolist()
            else:
                assert a.dtype == b.dtype
                assert np.array_equal(a, b)

    def test_hdfs_write_is_a_materialization_boundary(self):
        from repro.storage.hdfs import SimulatedHDFS

        left, right = self.make_join()
        out = hash_join(left, right, "k", "k")
        hdfs = SimulatedHDFS()
        stored = hdfs.write("/views/j", out)
        assert type(stored.table) is Table  # self-contained, pins no roots
        assert stored.table.to_rows() == out.to_rows()


# ----------------------------------------------------------------------
# Aggregation over encoded keys / bincount fast path
# ----------------------------------------------------------------------
class TestAggregate:
    def test_string_group_keys_stay_encoded_and_sorted(self):
        t = str_table()
        out = aggregate(t, ("name",), (AggSpec("count", None, "n"),))
        assert isinstance(out.column("name"), EncodedColumn)
        assert out.to_rows() == [
            ("apple", 2), ("beet", 1), ("cherry", 1), ("date", 1),
        ]

    def test_bincount_path_matches_sorted_path(self):
        rng = np.random.default_rng(3)
        schema = Schema.of(Column("g"), Column("x"))
        t = Table.from_dict(
            schema,
            {"g": rng.integers(10, 40, 200), "x": rng.integers(-50, 50, 200)},
        )
        specs = (
            AggSpec("sum", "x", "s"),
            AggSpec("count", None, "n"),
            AggSpec("avg", "x", "m"),
        )
        fast = aggregate(t, ("g",), specs)
        # Force the sorted reference path by making the key span huge.
        wide = Table.from_dict(
            schema,
            {"g": t.column("g") * 10**9, "x": t.column("x")},
        )
        slow = aggregate(wide, ("g",), specs)
        assert fast.column("s").tolist() == slow.column("s").tolist()
        assert fast.column("n").tolist() == slow.column("n").tolist()
        assert fast.column("m").tolist() == slow.column("m").tolist()
        assert fast.column("s").dtype == slow.column("s").dtype == np.int64

    def test_min_max_and_floats_use_sorted_path(self):
        schema = Schema.of(Column("g"), Column("x", ColumnKind.FLOAT64))
        t = Table.from_dict(schema, {"g": [1, 2, 1, 2], "x": [0.5, 1.5, 2.5, 3.5]})
        out = aggregate(
            t, ("g",), (AggSpec("min", "x", "lo"), AggSpec("max", "x", "hi"))
        )
        assert out.to_rows() == [(1, 0.5, 2.5), (2, 1.5, 3.5)]

    def test_narrow_int_sums_widen(self):
        # Satellite: int accumulation happens in int64 even when the input
        # column arrives as a narrower dtype.
        schema = Schema.of(Column("g"), Column("x"))
        big = np.full(4, 2**30, dtype=np.int64)
        t = Table(
            schema,
            {"g": np.array([1, 1, 1, 1]), "x": big.astype(np.int32)},
        )
        out = aggregate(t, ("g",), (AggSpec("sum", "x", "s"),))
        assert out.column("s").tolist() == [4 * 2**30]


# ----------------------------------------------------------------------
# Eager vs zero-copy equivalence (randomized, fixed seeds via hypothesis)
# ----------------------------------------------------------------------
EQ_SCHEMA_FACT = Schema.of(Column("f_k"), Column("f_v"), Column("f_name", ColumnKind.STRING))
EQ_SCHEMA_DIM = Schema.of(Column("d_k"), Column("d_c"))


def eq_catalog(seed: int) -> Catalog:
    rng = np.random.default_rng(seed)
    n = 240
    names = np.array(["ash", "birch", "cedar", "doum", "elm"], dtype=object)
    fact = Table.from_dict(
        EQ_SCHEMA_FACT,
        {
            "f_k": rng.integers(0, 60, n),
            "f_v": rng.integers(0, 100, n),
            "f_name": names[rng.integers(0, len(names), n)],
        },
    )
    dim = Table.from_dict(EQ_SCHEMA_DIM, {"d_k": np.arange(60), "d_c": rng.integers(0, 5, 60)})
    catalog = Catalog()
    catalog.register("fact", fact)
    catalog.register("dim", dim)
    return catalog


def eq_plan(kind: int, lo: int, hi: int):
    joined = Join(Relation("fact"), Relation("dim"), "f_k", "d_k")
    selected = Select(joined, (between("f_k", lo, hi),))
    if kind == 0:
        return Project(selected, ("f_name", "f_v"))
    if kind == 1:
        return Aggregate(selected, ("f_name",), (AggSpec("sum", "f_v", "s"),))
    if kind == 2:
        return Aggregate(
            Select(Relation("fact"), (between("f_k", lo, hi),)),
            ("f_k",),
            (AggSpec("count", None, "n"), AggSpec("avg", "f_v", "m")),
        )
    return Aggregate(
        selected, ("d_c",), (AggSpec("min", "f_v", "lo"), AggSpec("max", "f_v", "hi"))
    )


@given(
    seed=st.integers(0, 5),
    queries=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 60), st.integers(0, 60)),
        min_size=1,
        max_size=6,
    ),
)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_eager_and_zero_copy_paths_are_bit_identical(seed, queries):
    catalog = eq_catalog(seed)
    for kind, a, b in queries:
        plan = eq_plan(kind, min(a, b), max(a, b))
        rows, ledgers = [], []
        for lazy in (True, False):
            result_cache.GLOBAL.clear()  # no cross-path replay shortcuts
            previous = set_lazy_views(lazy)
            try:
                executor = Executor(ExecutionContext(catalog))
                result = executor.execute(plan)
            finally:
                set_lazy_views(previous)
            rows.append(result.table.sorted_rows())
            ledgers.append(ledger_tuple(result.ledger))
    assert rows[0] == rows[1]
    assert ledgers[0] == ledgers[1]


def test_all_rows_filtered_equivalence():
    catalog = eq_catalog(0)
    plan = Aggregate(
        Select(Relation("fact"), (between("f_k", 1000, 2000),)),
        ("f_name",),
        (AggSpec("sum", "f_v", "s"),),
    )
    outputs = []
    for lazy in (True, False):
        result_cache.GLOBAL.clear()
        previous = set_lazy_views(lazy)
        try:
            result = Executor(ExecutionContext(catalog)).execute(plan)
        finally:
            set_lazy_views(previous)
        outputs.append((result.table.sorted_rows(), ledger_tuple(result.ledger)))
    assert outputs[0] == outputs[1]
    assert outputs[0][0] == []


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
def cache_stats():
    return result_cache.GLOBAL.stats()


class TestResultCache:
    def plan(self):
        return Aggregate(
            Select(
                Join(Relation("sales"), Relation("item"), "s_item_sk", "i_item_sk"),
                (between("i_item_sk", 0, 50),),
            ),
            ("i_category",),
            (AggSpec("sum", "s_qty", "q"),),
        )

    def test_hit_replays_table_and_charges_bitwise(self, catalog):
        ctx = ExecutionContext(catalog)
        first = Executor(ctx).execute(self.plan())
        again = Executor(ctx).execute(self.plan())
        assert cache_stats()["hits"] == 1
        assert again.table.sorted_rows() == first.table.sorted_rows()
        assert ledger_tuple(again.ledger) == ledger_tuple(first.ledger)

    def test_catalog_version_invalidates(self, catalog, sales_table):
        ctx = ExecutionContext(catalog)
        Executor(ctx).execute(self.plan())
        catalog.replace("sales", sales_table.take(np.arange(10)))
        Executor(ctx).execute(self.plan())
        assert cache_stats()["hits"] == 0
        assert cache_stats()["misses"] == 2

    def test_pool_epoch_invalidates_materialized_scans(self, catalog):
        pool = MaterializedViewPool()
        pool.define_view("v", Relation("sales"))
        sales = catalog.get("sales")
        f = pool.add_fragment("v", "s_item_sk", Interval.closed(0, 99), sales)
        ctx = ExecutionContext(catalog, pool)
        scan = MaterializedScan("v", (f.fragment_id,), "s_item_sk", (None,))
        Executor(ctx).execute(scan)
        Executor(ctx).execute(scan)
        assert cache_stats()["hits"] == 1
        pool.add_fragment(  # bumps the pool epoch
            "v", "s_item_sk", Interval(100, 200, True, False), sales.take(np.arange(3))
        )
        Executor(ctx).execute(scan)
        assert cache_stats()["hits"] == 1
        assert cache_stats()["misses"] == 2

    def test_pool_independent_plans_share_entries_across_pools(self, catalog):
        plain = Executor(ExecutionContext(catalog)).execute(self.plan())
        pooled = Executor(ExecutionContext(catalog, MaterializedViewPool())).execute(self.plan())
        assert cache_stats()["hits"] == 1
        assert pooled.table.sorted_rows() == plain.table.sorted_rows()

    def test_faulted_ledger_bypasses_cache(self, catalog):
        ctx = ExecutionContext(catalog)
        ledger = CostLedger(ctx.cluster)
        ledger.faults = FaultSchedule.of("t", seed=1, task_failure=0.5).injector()
        Executor(ctx).execute(self.plan(), ledger)
        assert cache_stats()["misses"] == 0  # never even consulted

    def test_capture_bypasses_cache(self, catalog):
        executor = Executor(ExecutionContext(catalog))
        executor.execute_with_capture(self.plan(), [self.plan()])
        assert cache_stats()["misses"] == 0

    def test_dirty_ledger_bypasses_cache(self, catalog):
        ctx = ExecutionContext(catalog)
        dirty = CostLedger(ctx.cluster)
        dirty.charge_jobs(1)
        Executor(ctx).execute(self.plan(), dirty)
        assert cache_stats()["misses"] == 0

    def test_lru_eviction_is_byte_bounded(self):
        cache = result_cache.ResultCache(max_bytes=1024)
        schema = Schema.of(Column("a"))
        cluster = ClusterSpec()
        for i in range(8):
            t = Table.from_dict(schema, {"a": np.arange(32) + i})
            cache.store((i,), t, CostLedger(cluster))
        assert cache.stats()["bytes"] <= 1024
        assert cache.stats()["evictions"] > 0
        assert cache.lookup((0,)) is None  # oldest evicted first

    def test_oversized_result_not_cached(self):
        cache = result_cache.ResultCache(max_bytes=64)
        schema = Schema.of(Column("a"))
        t = Table.from_dict(schema, {"a": np.arange(1000)})
        cache.store(("big",), t, CostLedger(ClusterSpec()))
        assert cache.stats()["entries"] == 0

    def test_registry_clear_resets_everything(self, catalog):
        from repro.caches import clear_all_caches

        ctx = ExecutionContext(catalog)
        Executor(ctx).execute(self.plan())
        clear_all_caches()
        assert cache_stats() == {
            "hits": 0, "misses": 0, "evictions": 0, "entries": 0, "bytes": 0,
        }


class TestMaskDeferral:
    """filter() keeps the boolean mask; flatnonzero happens on demand."""

    MASK = np.array([True, False, True, True, False])

    def test_filter_defers_flatnonzero(self):
        view = str_table().filter(self.MASK)
        assert view._rows_arr is None  # still mask-backed
        assert view.nrows == 3  # count straight off the mask

    def test_chained_filters_combine_masks_without_indices(self):
        view = str_table().filter(self.MASK)
        narrowed = view.filter(np.array([True, False, True]))
        assert isinstance(narrowed, TableView)
        assert narrowed._rows_arr is None
        assert view._rows_arr is None  # refining didn't resolve the parent
        assert narrowed.to_rows() == [str_table().to_rows()[0], str_table().to_rows()[3]]

    def test_mask_gather_bit_identical_to_index_gather(self):
        masked = str_table().filter(self.MASK)
        col_masked = masked.column("v")
        resolved = str_table().filter(self.MASK)
        _ = resolved._rows  # force index resolution first
        col_indexed = resolved.column("v")
        assert np.array_equal(col_masked, col_indexed)
        assert col_masked.dtype == col_indexed.dtype

    def test_take_resolves_and_composes(self):
        view = str_table().filter(self.MASK)
        picked = view.take([2, 0])
        assert picked.to_rows() == [str_table().to_rows()[3], str_table().to_rows()[0]]
        assert view._rows_arr is not None  # composition needed indices

    def test_lineage_resolves_lazily(self):
        t = str_table()
        view = t.filter(self.MASK)
        assert view._rows_arr is None
        root, rows, monotonic = view._lineage
        assert root is t
        assert rows.tolist() == [0, 2, 3]
        assert monotonic

    def test_projection_shares_mask_and_gather_cache(self):
        view = str_table().filter(self.MASK)
        narrow = view.project(["k", "v"])
        assert isinstance(narrow, TableView)
        assert narrow._rows_arr is None
        a = view.column("v")
        assert narrow.column("v") is a  # shared gather cache

    def test_string_columns_gather_through_mask(self):
        view = str_table().filter(self.MASK)
        col = view.column("name")
        assert isinstance(col, EncodedColumn)
        assert list(col) == ["cherry", "beet", "apple"]

    def test_eager_mode_still_copies(self):
        eager = set_lazy_views(False)
        try:
            out = str_table().filter(self.MASK)
        finally:
            set_lazy_views(eager)
        assert type(out) is Table
        assert out.to_rows() == [
            str_table().to_rows()[0],
            str_table().to_rows()[2],
            str_table().to_rows()[3],
        ]
