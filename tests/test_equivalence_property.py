"""Property-based end-to-end equivalence (the library's master invariant).

Hypothesis drives random workloads — random templates, ranges, pool
limits, and policies — through DeepSea and asserts every answer equals
direct execution.  This is the multiset-equality guarantee the rewriter's
sufficient matching condition promises (§8.1), exercised across
materialization, fragment covers, overlapping refinement, eviction, and
re-creation.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Catalog, DeepSea, Interval, Policy
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.query.algebra import Aggregate, AggSpec, Join, Project, Relation, Select
from repro.query.predicates import between

DOMAIN = Interval.closed(0, 200)
DOMAINS = {"f_k": DOMAIN, "d_k": DOMAIN}


def build_catalog(seed: int) -> Catalog:
    rng = np.random.default_rng(seed)
    n = 300
    fact_schema = Schema.of(Column("f_id"), Column("f_k"), Column("f_v"))
    dim_schema = Schema.of(Column("d_k"), Column("d_c"))
    fact = Table.from_dict(
        fact_schema,
        {
            "f_id": np.arange(n),
            "f_k": rng.integers(0, 201, n),
            "f_v": rng.integers(0, 50, n),
        },
        scale=5e5,
    )
    dim = Table.from_dict(
        dim_schema,
        {"d_k": np.arange(201), "d_c": rng.integers(0, 6, 201)},
        scale=5e5,
    )
    catalog = Catalog()
    catalog.register("fact", fact)
    catalog.register("dim", dim)
    return catalog


_CATALOG = build_catalog(0)

join = Join(Relation("fact"), Relation("dim"), "f_k", "d_k")


def make_query(kind: int, lo: float, hi: float):
    selected = Select(
        Project(join, ("d_k", "d_c", "f_v")), (between("d_k", lo, hi),)
    )
    if kind == 0:
        return selected
    if kind == 1:
        return Aggregate(selected, ("d_c",), (AggSpec("sum", "f_v", "s"),))
    if kind == 2:
        return Aggregate(selected, ("d_c",), (AggSpec("count", None, "n"),))
    return Aggregate(selected, (), (AggSpec("min", "f_v", "lo"), AggSpec("max", "f_v", "hi")))


query_strategy = st.tuples(
    st.integers(0, 3),
    st.integers(0, 200),
    st.integers(0, 200),
).map(lambda t: make_query(t[0], min(t[1], t[2]), max(t[1], t[2])))


@given(
    plans=st.lists(query_strategy, min_size=4, max_size=14),
    pool_fraction=st.sampled_from([None, 0.5, 0.1, 0.02]),
    overlapping=st.booleans(),
    eager=st.booleans(),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_deepsea_always_matches_direct_execution(plans, pool_fraction, overlapping, eager):
    smax = _CATALOG.total_size_bytes * pool_fraction if pool_fraction is not None else None
    system = DeepSea(
        _CATALOG,
        domains=DOMAINS,
        smax_bytes=smax,
        policy=Policy(
            overlapping=overlapping,
            evidence_factor=0.0 if eager else 1.0,
            creation_cooldown=2.0,
        ),
    )
    reference = DeepSea(_CATALOG, domains=DOMAINS, policy=Policy(materialize=False))
    # repeat the workload to force reuse / refinement / eviction paths
    for plan in plans + plans:
        got = system.execute(plan).result.sorted_rows()
        expected = reference.execute(plan).result.sorted_rows()
        assert got == expected
        if smax is not None:
            assert system.pool.used_bytes <= smax + 1e-6
