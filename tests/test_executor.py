"""Executor tests: operator semantics and cost charging."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.catalog import Catalog
from repro.engine.cost import ClusterSpec
from repro.engine.executor import ExecutionContext, Executor, aggregate, hash_join
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.engine.types import ColumnKind, decoded, sort_key
from repro.errors import SchemaError
from repro.query.algebra import Aggregate, AggSpec, Join, Project, Relation, Select
from repro.query.predicates import between


@pytest.fixture
def executor(catalog):
    return Executor(ExecutionContext(catalog))


def brute_force_join(left, right, lattr, rattr):
    """Reference nested-loop join for comparison."""
    out = []
    rrows = right.to_rows()
    rnames = right.schema.names
    for lrow in left.to_rows():
        lmap = dict(zip(left.schema.names, lrow))
        for rrow in rrows:
            rmap = dict(zip(rnames, rrow))
            if lmap[lattr] == rmap[rattr]:
                merged = list(lrow) + [rmap[n] for n in rnames if n != rattr or rattr != lattr]
                out.append(tuple(merged))
    return sorted(out, key=repr)


class TestHashJoin:
    def test_matches_nested_loop(self, sales_table, item_table):
        joined = hash_join(sales_table, item_table, "s_item_sk", "i_item_sk")
        expected = brute_force_join(sales_table, item_table, "s_item_sk", "i_item_sk")
        assert joined.sorted_rows() == expected

    def test_duplicates_on_both_sides(self):
        schema_a = Schema.of(Column("a_k"), Column("a_v"))
        schema_b = Schema.of(Column("b_k"), Column("b_v"))
        a = Table.from_dict(schema_a, {"a_k": [1, 1, 2], "a_v": [10, 11, 12]})
        b = Table.from_dict(schema_b, {"b_k": [1, 1, 3], "b_v": [20, 21, 22]})
        out = hash_join(a, b, "a_k", "b_k")
        assert out.nrows == 4  # 2 x 2 matches on key 1

    def test_no_matches(self):
        schema_a = Schema.of(Column("a_k"))
        schema_b = Schema.of(Column("b_k"))
        a = Table.from_dict(schema_a, {"a_k": [1]})
        b = Table.from_dict(schema_b, {"b_k": [2]})
        assert hash_join(a, b, "a_k", "b_k").nrows == 0

    def test_same_name_key_kept_once(self):
        schema_a = Schema.of(Column("k"), Column("a_v"))
        schema_b = Schema.of(Column("k"), Column("b_v"))
        a = Table.from_dict(schema_a, {"k": [1], "a_v": [10]})
        b = Table.from_dict(schema_b, {"k": [1], "b_v": [20]})
        out = hash_join(a, b, "k", "k")
        assert out.schema.names == ("k", "a_v", "b_v")

    def test_non_key_collision_raises(self):
        schema_a = Schema.of(Column("a_k"), Column("dup"))
        schema_b = Schema.of(Column("b_k"), Column("dup"))
        a = Table.from_dict(schema_a, {"a_k": [1], "dup": [1]})
        b = Table.from_dict(schema_b, {"b_k": [1], "dup": [1]})
        with pytest.raises(SchemaError):
            hash_join(a, b, "a_k", "b_k")

    @given(
        keys_l=st.lists(st.integers(0, 5), max_size=30),
        keys_r=st.lists(st.integers(0, 5), max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_join_cardinality_property(self, keys_l, keys_r):
        """|A ⋈ B| = Σ_k count_A(k) · count_B(k)."""
        schema_a = Schema.of(Column("a_k"))
        schema_b = Schema.of(Column("b_k"))
        a = Table.from_dict(schema_a, {"a_k": keys_l})
        b = Table.from_dict(schema_b, {"b_k": keys_r})
        out = hash_join(a, b, "a_k", "b_k")
        expected = sum(keys_l.count(k) * keys_r.count(k) for k in set(keys_l))
        assert out.nrows == expected


class TestAggregate:
    def test_group_by_sum_count(self):
        schema = Schema.of(Column("g"), Column("v"))
        t = Table.from_dict(schema, {"g": [1, 1, 2], "v": [10, 20, 5]})
        out = aggregate(
            t, ("g",), (AggSpec("sum", "v", "total"), AggSpec("count", None, "n"))
        )
        rows = dict((r[0], (r[1], r[2])) for r in out.to_rows())
        assert rows == {1: (30, 2), 2: (5, 1)}

    def test_min_max_avg(self):
        schema = Schema.of(Column("g"), Column("v", ColumnKind.FLOAT64))
        t = Table.from_dict(schema, {"g": [1, 1, 1], "v": [1.0, 5.0, 3.0]})
        out = aggregate(
            t,
            ("g",),
            (
                AggSpec("min", "v", "lo"),
                AggSpec("max", "v", "hi"),
                AggSpec("avg", "v", "mean"),
            ),
        )
        row = out.to_rows()[0]
        assert row == (1, 1.0, 5.0, 3.0)

    def test_global_aggregate_no_group(self):
        schema = Schema.of(Column("v"))
        t = Table.from_dict(schema, {"v": [1, 2, 3]})
        out = aggregate(t, (), (AggSpec("sum", "v", "s"),))
        assert out.to_rows() == [(6,)]

    def test_empty_input(self):
        schema = Schema.of(Column("g"), Column("v"))
        t = Table.empty(schema)
        out = aggregate(t, ("g",), (AggSpec("sum", "v", "s"),))
        assert out.nrows == 0
        assert out.schema.names == ("g", "s")

    def test_multi_column_group(self):
        schema = Schema.of(Column("g1"), Column("g2"), Column("v"))
        t = Table.from_dict(schema, {"g1": [1, 1, 1], "g2": [1, 2, 1], "v": [10, 20, 30]})
        out = aggregate(t, ("g1", "g2"), (AggSpec("sum", "v", "s"),))
        assert sorted(out.to_rows()) == [(1, 1, 40), (1, 2, 20)]

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(-50, 50)), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_sum_partition_property(self, rows):
        """Grouped sums add up to the global sum."""
        schema = Schema.of(Column("g"), Column("v"))
        t = Table.from_dict(schema, {"g": [r[0] for r in rows], "v": [r[1] for r in rows]})
        out = aggregate(t, ("g",), (AggSpec("sum", "v", "s"),))
        assert sum(r[1] for r in out.to_rows()) == sum(r[1] for r in rows)


class TestPlanExecution:
    def test_select_project(self, executor, sales_table):
        plan = Project(
            Select(Relation("sales"), (between("s_item_sk", 10, 20),)),
            ("s_id", "s_item_sk"),
        )
        result = executor.execute(plan)
        col = result.table.column("s_item_sk")
        assert ((col >= 10) & (col <= 20)).all()
        expected = int(((sales_table.column("s_item_sk") >= 10)
                        & (sales_table.column("s_item_sk") <= 20)).sum())
        assert result.table.nrows == expected

    def test_join_aggregate_pipeline(self, executor):
        plan = Aggregate(
            Join(Relation("sales"), Relation("item"), "s_item_sk", "i_item_sk"),
            ("i_category",),
            (AggSpec("sum", "s_qty", "total_qty"),),
        )
        result = executor.execute(plan)
        assert result.table.nrows > 0
        assert result.table.schema.names == ("i_category", "total_qty")

    def test_scan_only_charges_one_job(self, executor):
        result = executor.execute(Relation("sales"))
        assert result.ledger.jobs == 1

    def test_join_agg_charges_two_jobs(self, executor):
        plan = Aggregate(
            Join(Relation("sales"), Relation("item"), "s_item_sk", "i_item_sk"),
            ("i_category",),
            (AggSpec("count", None, "n"),),
        )
        result = executor.execute(plan)
        assert result.ledger.jobs == 2

    def test_cost_scales_with_table_size(self, sales_table, item_table):
        small_cat = Catalog()
        small_cat.register("sales", sales_table)
        big = Table(sales_table.schema, sales_table.columns, scale=1000.0)
        big_cat = Catalog()
        big_cat.register("sales", big)
        cheap = Executor(ExecutionContext(small_cat)).execute(Relation("sales"))
        costly = Executor(ExecutionContext(big_cat)).execute(Relation("sales"))
        assert costly.elapsed_s > cheap.elapsed_s


class TestClusterCost:
    def test_map_tasks_one_per_file_minimum(self):
        spec = ClusterSpec(block_bytes=1000)
        assert spec.map_tasks(nbytes=100, nfiles=10) == 10

    def test_map_tasks_one_per_block(self):
        spec = ClusterSpec(block_bytes=1000)
        assert spec.map_tasks(nbytes=5000, nfiles=1) == 5

    def test_more_files_cost_more_to_read(self):
        spec = ClusterSpec(block_bytes=1 << 20, task_overhead_s=1.0, map_slots=4)
        one = spec.read_elapsed(1000, nfiles=1)
        many = spec.read_elapsed(1000, nfiles=100)
        assert many > one

    def test_write_costs_more_than_read_per_byte(self):
        spec = ClusterSpec()
        assert spec.write_s_per_byte > spec.read_s_per_byte

    def test_more_fragment_files_cost_more_to_write(self):
        spec = ClusterSpec()
        assert spec.write_elapsed(1e9, nfiles=60) > spec.write_elapsed(1e9, nfiles=6)

    def test_zero_bytes(self):
        spec = ClusterSpec()
        assert spec.read_elapsed(0, 0) == 0.0
        assert spec.shuffle_elapsed(0) == 0.0


class TestMultiKeyBincount:
    """The packed-code bincount path is bit-identical to sort+reduceat."""

    @staticmethod
    def _sorted_reference(table, group_by, aggregates):
        """The general path with the bincount dispatch disabled."""
        from unittest import mock

        import repro.engine.executor as executor_mod

        with mock.patch.object(executor_mod, "_pack_group_codes", lambda keys: None):
            return aggregate(table, group_by, aggregates)

    @staticmethod
    def _assert_bit_identical(fast, slow):
        assert fast.schema.names == slow.schema.names
        assert fast.nrows == slow.nrows
        for name in fast.schema.names:
            a, b = np.asarray(decoded(fast.column(name))), np.asarray(decoded(slow.column(name)))
            assert a.dtype == b.dtype, name
            assert np.array_equal(a, b), name

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(-3, 3), st.integers(-100, 100)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_two_int_keys_match_sorted_path(self, rows):
        schema = Schema.of(Column("g1"), Column("g2"), Column("v"))
        t = Table.from_dict(
            schema,
            {
                "g1": [r[0] for r in rows],
                "g2": [r[1] for r in rows],
                "v": [r[2] for r in rows],
            },
        )
        aggs = (
            AggSpec("sum", "v", "total"),
            AggSpec("count", None, "n"),
            AggSpec("avg", "v", "mean"),
        )
        fast = aggregate(t, ("g1", "g2"), aggs)
        slow = self._sorted_reference(t, ("g1", "g2"), aggs)
        self._assert_bit_identical(fast, slow)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["ale", "ipa", "stout"]),
                st.integers(0, 3),
                st.integers(0, 50),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_encoded_string_key_plus_int_key(self, rows):
        schema = Schema.of(
            Column("cat", ColumnKind.STRING), Column("bucket"), Column("v")
        )
        t = Table.from_dict(
            schema,
            {
                "cat": [r[0] for r in rows],
                "bucket": [r[1] for r in rows],
                "v": [r[2] for r in rows],
            },
        )
        aggs = (AggSpec("sum", "v", "s"), AggSpec("count", None, "n"))
        fast = aggregate(t, ("cat", "bucket"), aggs)
        slow = self._sorted_reference(t, ("cat", "bucket"), aggs)
        self._assert_bit_identical(fast, slow)
        # Group order is the lexicographic order the sorted path emits.
        heads = [r[:2] for r in fast.to_rows()]
        assert heads == sorted(heads)

    def test_three_keys_take_fast_path(self):
        import repro.engine.executor as executor_mod

        schema = Schema.of(Column("a"), Column("b"), Column("c"), Column("v"))
        t = Table.from_dict(
            schema,
            {"a": [1, 1, 2, 2], "b": [0, 0, 1, 1], "c": [5, 5, 5, 6], "v": [1, 2, 3, 4]},
        )
        raw_keys = [t.column(g) for g in ("a", "b", "c")]
        keys = [sort_key(k) for k in raw_keys]
        out_schema = Schema.of(Column("a"), Column("b"), Column("c"), Column("s"))
        fast = executor_mod._aggregate_bincount(
            t, out_schema, ("a", "b", "c"), raw_keys, keys, (AggSpec("sum", "v", "s"),)
        )
        assert fast is not None
        assert fast.to_rows() == [(1, 0, 5, 3), (2, 1, 5, 3), (2, 1, 6, 4)]

    def test_wide_key_space_falls_back(self):
        import repro.engine.executor as executor_mod

        schema = Schema.of(Column("a"), Column("b"), Column("v"))
        t = Table.from_dict(
            schema,
            {"a": [0, 1_000_000], "b": [0, 1_000_000], "v": [1, 2]},
        )
        raw_keys = [t.column(g) for g in ("a", "b")]
        keys = [sort_key(k) for k in raw_keys]
        out_schema = Schema.of(Column("a"), Column("b"), Column("s"))
        fast = executor_mod._aggregate_bincount(
            t, out_schema, ("a", "b"), raw_keys, keys, (AggSpec("sum", "v", "s"),)
        )
        assert fast is None
        # ...but the public entry point still answers via the sorted path.
        out = aggregate(t, ("a", "b"), (AggSpec("sum", "v", "s"),))
        assert sorted(out.to_rows()) == [(0, 0, 1), (1_000_000, 1_000_000, 2)]

    def test_float_values_fall_back_to_sorted_path(self):
        schema = Schema.of(Column("g1"), Column("g2"), Column("v", ColumnKind.FLOAT64))
        t = Table.from_dict(
            schema, {"g1": [1, 1, 2], "g2": [0, 0, 1], "v": [0.1, 0.2, 0.3]}
        )
        aggs = (AggSpec("sum", "v", "s"),)
        fast = aggregate(t, ("g1", "g2"), aggs)
        slow = self._sorted_reference(t, ("g1", "g2"), aggs)
        self._assert_bit_identical(fast, slow)
