"""Tests for multi-attribute partitioning (§4 / §11 extension)."""

import numpy as np
import pytest

from repro import Catalog, DeepSea, Interval, Policy
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.query.algebra import Aggregate, AggSpec, Join, Project, Relation, Select
from repro.query.predicates import between

DOMAINS = {
    "d_k": Interval.closed(0, 1000),
    "f_k": Interval.closed(0, 1000),
    "f_w": Interval.closed(0, 500),
}


@pytest.fixture
def catalog():
    rng = np.random.default_rng(4)
    n = 2000
    fact = Schema.of(Column("f_id"), Column("f_k"), Column("f_w"), Column("f_v"))
    dim = Schema.of(Column("d_k"), Column("d_c"))
    cat = Catalog()
    cat.register(
        "fact",
        Table.from_dict(
            fact,
            {
                "f_id": np.arange(n),
                "f_k": rng.integers(0, 1001, n),
                "f_w": rng.integers(0, 501, n),
                "f_v": rng.integers(0, 9, n),
            },
            scale=3e6,
        ),
    )
    cat.register(
        "dim",
        Table.from_dict(
            dim,
            {"d_k": np.arange(1001), "d_c": rng.integers(0, 4, 1001)},
            scale=3e6,
        ),
    )
    return cat


def join():
    return Project(
        Join(Relation("fact"), Relation("dim"), "f_k", "d_k"),
        ("d_k", "f_w", "d_c", "f_v"),
    )


def query_on(attr, lo, hi):
    return Aggregate(
        Select(join(), (between(attr, lo, hi),)),
        ("d_c",),
        (AggSpec("sum", "f_v", "total"),),
    )


def partitioned_view(system):
    for vid in system.pool.resident_view_ids():
        attrs = system.pool.partition_attrs(vid)
        if attrs:
            return vid, attrs
    raise AssertionError("no partitioned view")


class TestMultiAttribute:
    def warm(self, system):
        """Queries restricting two different attributes of the same view."""
        plans = [query_on("d_k", 100, 200), query_on("f_w", 50, 120)] * 3
        reports = [system.execute(p) for p in plans]
        return reports

    def test_default_single_attribute(self, catalog):
        system = DeepSea(catalog, domains=DOMAINS, policy=Policy(evidence_factor=0.0))
        self.warm(system)
        _, attrs = partitioned_view(system)
        assert len(attrs) == 1

    def test_multi_attribute_creates_both_partitions(self, catalog):
        system = DeepSea(
            catalog,
            domains=DOMAINS,
            policy=Policy(evidence_factor=0.0, multi_attribute=True),
        )
        self.warm(system)
        _, attrs = partitioned_view(system)
        assert set(attrs) == {"d_k", "f_w"}

    def test_queries_on_either_attribute_reuse_fragments(self, catalog):
        system = DeepSea(
            catalog,
            domains=DOMAINS,
            policy=Policy(evidence_factor=0.0, multi_attribute=True),
        )
        self.warm(system)
        r1 = system.execute(query_on("d_k", 120, 180))
        r2 = system.execute(query_on("f_w", 60, 110))
        assert r1.fragments_read >= 1
        assert r2.fragments_read >= 1

    def test_secondary_partition_charged_full_write(self, catalog):
        def creation_cost(multi):
            system = DeepSea(
                catalog,
                domains=DOMAINS,
                policy=Policy(evidence_factor=0.0, multi_attribute=multi),
            )
            reports = self.warm(system)
            return sum(r.creation_s for r in reports)

        assert creation_cost(True) > creation_cost(False)

    def test_answers_identical_under_multi_attribute(self, catalog):
        system = DeepSea(
            catalog,
            domains=DOMAINS,
            policy=Policy(evidence_factor=0.0, multi_attribute=True),
        )
        reference = DeepSea(catalog, domains=DOMAINS, policy=Policy(materialize=False))
        plans = [query_on("d_k", 100, 200), query_on("f_w", 50, 120)] * 4 + [
            query_on("d_k", 150, 160),
            query_on("f_w", 70, 80),
        ]
        for plan in plans:
            assert (
                system.execute(plan).result.sorted_rows()
                == reference.execute(plan).result.sorted_rows()
            )
