"""Tests for the rewriter: matching, rewriting construction, estimation."""

import numpy as np
import pytest

from repro.engine.catalog import Catalog
from repro.engine.cost import ClusterSpec
from repro.engine.executor import ExecutionContext, Executor
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.matching.filter_tree import FilterTree
from repro.matching.rewriter import Rewriter
from repro.partitioning.intervals import Interval
from repro.query.algebra import (
    Aggregate,
    AggSpec,
    Join,
    Project,
    Relation,
    Select,
)
from repro.query.predicates import between
from repro.query.signature import view_id_for
from repro.storage.pool import MaterializedViewPool

DOMAIN = Interval.closed(0, 100)


@pytest.fixture
def setup():
    rng = np.random.default_rng(3)
    n = 400
    sales_schema = Schema.of(Column("s_id"), Column("s_item_sk"), Column("s_qty"))
    item_schema = Schema.of(Column("i_item_sk"), Column("i_cat"))
    sales = Table.from_dict(
        sales_schema,
        {
            "s_id": np.arange(n),
            "s_item_sk": rng.integers(0, 101, n),
            "s_qty": rng.integers(1, 5, n),
        },
        scale=1e6,
    )
    item = Table.from_dict(
        item_schema,
        {"i_item_sk": np.arange(101), "i_cat": rng.integers(0, 5, 101)},
        scale=1e6,
    )
    catalog = Catalog()
    catalog.register("sales", sales)
    catalog.register("item", item)
    schemas = {name: catalog.get(name).schema.names for name in catalog.names}
    pool = MaterializedViewPool()
    tree = FilterTree()
    rewriter = Rewriter(schemas, tree, pool, catalog, ClusterSpec(), lambda attr: DOMAIN)
    return catalog, pool, tree, rewriter


def join_plan():
    return Join(Relation("sales"), Relation("item"), "s_item_sk", "i_item_sk")


def query(lo=10, hi=40):
    return Aggregate(
        Select(join_plan(), (between("i_item_sk", lo, hi),)),
        ("i_cat",),
        (AggSpec("sum", "s_qty", "total"),),
    )


def register_join_view(tree, pool, rewriter):
    plan = join_plan()
    vid = view_id_for(plan)
    tree.add(vid, rewriter.signature_of(plan))
    pool.define_view(vid, plan)
    return vid


class TestFindMatches:
    def test_no_views_no_matches(self, setup):
        _, _, _, rewriter = setup
        assert rewriter.find_matches(query()) == []

    def test_matches_found_for_nonresident_view(self, setup):
        _, pool, tree, rewriter = setup
        vid = register_join_view(tree, pool, rewriter)
        matches = rewriter.find_matches(query())
        assert {m.view_id for m in matches} == {vid}
        # the view matches both the bare join and the selection above it
        assert len(matches) == 2

    def test_attr_ranges_resolved(self, setup):
        _, pool, tree, rewriter = setup
        register_join_view(tree, pool, rewriter)
        matches = rewriter.find_matches(query(10, 40))
        ranged = [m for m in matches if m.attr_ranges]
        assert ranged
        assert ranged[0].attr_ranges["i_item_sk"] == Interval.closed(10, 40)


class TestBuildRewritings:
    def materialize_fragments(self, setup, intervals):
        catalog, pool, tree, rewriter = setup
        vid = register_join_view(tree, pool, rewriter)
        executor = Executor(ExecutionContext(catalog, pool))
        table = executor.execute(join_plan()).table
        col = table.column("i_item_sk")
        for iv in intervals:
            pool.add_fragment(vid, "i_item_sk", iv, table.filter(iv.mask(col)))
        return vid, table

    def test_partition_rewriting_covers_theta(self, setup):
        vid, _ = self.materialize_fragments(
            setup,
            [Interval.closed(0, 50), Interval.open_closed(50, 100)],
        )
        _, _, _, rewriter = setup
        q = query(10, 40)
        rewritings = rewriter.build_rewritings(q, rewriter.find_matches(q))
        assert rewritings
        best = min(rewritings, key=lambda r: r.est_cost_s)
        assert best.view_id == vid
        assert len(best.fragment_ids) == 1  # theta fits in [0, 50]

    def test_rewriting_executes_equivalently(self, setup):
        catalog, pool, _, rewriter = setup
        self.materialize_fragments(setup, [Interval.closed(0, 50), Interval.open_closed(50, 100)])
        q = query(10, 40)
        rewritings = rewriter.build_rewritings(q, rewriter.find_matches(q))
        executor = Executor(ExecutionContext(catalog, pool))
        direct = executor.execute(q).table.sorted_rows()
        for rw in rewritings:
            assert executor.execute(rw.plan).table.sorted_rows() == direct

    def test_cover_hole_prevents_rewriting(self, setup):
        self.materialize_fragments(setup, [Interval.closed(0, 20)])
        _, _, _, rewriter = setup
        q = query(10, 40)  # needs (20, 40] which is not resident
        assert rewriter.build_rewritings(q, rewriter.find_matches(q)) == []

    def test_whole_view_rewriting(self, setup):
        catalog, pool, tree, rewriter = setup
        vid = register_join_view(tree, pool, rewriter)
        executor = Executor(ExecutionContext(catalog, pool))
        table = executor.execute(join_plan()).table
        pool.add_whole_view(vid, table)
        q = query(10, 40)
        rewritings = rewriter.build_rewritings(q, rewriter.find_matches(q))
        assert any(r.attr is None for r in rewritings)

    def test_overlapping_fragments_no_duplicates(self, setup):
        catalog, pool, _, rewriter = setup
        self.materialize_fragments(
            setup,
            [
                Interval.closed(0, 60),
                Interval.closed(40, 80),  # overlaps the first
                Interval.open_closed(80, 100),
            ],
        )
        q = query(10, 70)  # cover must use both overlapping fragments
        rewritings = rewriter.build_rewritings(q, rewriter.find_matches(q))
        frag_rewritings = [r for r in rewritings if len(r.fragment_ids) >= 2]
        assert frag_rewritings
        executor = Executor(ExecutionContext(catalog, pool))
        direct = executor.execute(q).table.sorted_rows()
        for rw in frag_rewritings:
            assert executor.execute(rw.plan).table.sorted_rows() == direct


class TestEstimation:
    def test_estimate_includes_job_floor(self, setup):
        _, _, _, rewriter = setup
        est = rewriter.estimate_plan_cost(Relation("sales"))
        assert est.jobs == 1
        assert est.cost_s > 0

    def test_estimate_monotone_in_inputs(self, setup):
        _, _, _, rewriter = setup
        small = rewriter.estimate_plan_cost(Relation("item")).cost_s
        big = rewriter.estimate_plan_cost(join_plan()).cost_s
        assert big > small

    def test_estimate_boundary_writes_charged(self, setup):
        _, _, _, rewriter = setup
        bare = rewriter.estimate_plan_cost(join_plan())
        projected = rewriter.estimate_plan_cost(Project(join_plan(), ("i_item_sk", "s_qty")))
        # the projection folds into the join's job: fewer boundary bytes;
        # cost ties (within block-rounding noise) when the write floor
        # dominates at this scale
        assert projected.bytes_out < bare.bytes_out
        assert projected.cost_s <= bare.cost_s * 1.01

    def test_estimate_saving_positive_for_selective_match(self, setup):
        _, pool, tree, rewriter = setup
        register_join_view(tree, pool, rewriter)
        q = query(10, 12)
        matches = [m for m in rewriter.find_matches(q) if m.attr_ranges]
        saving = rewriter.estimate_saving(
            q, matches[0], view_size_bytes=1e9, partition_attrs=["i_item_sk"]
        )
        assert saving > 0

    def test_estimate_saving_clamped_nonnegative(self, setup):
        _, pool, tree, rewriter = setup
        register_join_view(tree, pool, rewriter)
        q = query(0, 100)
        matches = [m for m in rewriter.find_matches(q) if m.attr_ranges]
        # a gigantic view is not worth reading: saving clamps at zero
        saving = rewriter.estimate_saving(
            q, matches[0], view_size_bytes=1e15, partition_attrs=["i_item_sk"]
        )
        assert saving == 0.0
