"""Tests for DeepSea's internal helpers: jitter estimation, piece widening,
mean fragment width, view reconstruction, and admission feasibility."""

import numpy as np
import pytest

from repro import Catalog, DeepSea, Interval, Policy
from repro.engine.cost import CostLedger
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.query.algebra import Aggregate, AggSpec, Join, Relation, Select
from repro.query.predicates import between

DOMAIN = Interval.closed(0, 1000)
DOMAINS = {"d_k": DOMAIN, "f_k": DOMAIN}


@pytest.fixture
def catalog():
    rng = np.random.default_rng(6)
    n = 1500
    fact = Schema.of(Column("f_id"), Column("f_k"), Column("f_v"))
    dim = Schema.of(Column("d_k"), Column("d_c"))
    cat = Catalog()
    cat.register(
        "fact",
        Table.from_dict(
            fact,
            {
                "f_id": np.arange(n),
                "f_k": rng.integers(0, 1001, n),
                "f_v": rng.integers(0, 9, n),
            },
            scale=2e6,
        ),
    )
    cat.register(
        "dim",
        Table.from_dict(
            dim,
            {"d_k": np.arange(1001), "d_c": rng.integers(0, 4, 1001)},
            scale=2e6,
        ),
    )
    return cat


def query(lo, hi):
    return Aggregate(
        Select(
            Join(Relation("fact"), Relation("dim"), "f_k", "d_k"),
            (between("d_k", lo, hi),),
        ),
        ("d_c",),
        (AggSpec("sum", "f_v", "total"),),
    )


@pytest.fixture
def system(catalog):
    return DeepSea(catalog, domains=DOMAINS, policy=Policy(evidence_factor=0.0))


def the_partitioned_view(system):
    for vid in system.pool.resident_view_ids():
        if system.pool.partition_attrs(vid):
            return vid
    raise AssertionError


class TestObservedJitter:
    def test_no_stats_zero(self, system):
        assert system._observed_jitter("ghost", "d_k", DOMAIN, DOMAIN) == 0.0

    def test_repeated_identical_queries_zero_jitter(self, system):
        for _ in range(5):
            system.execute(query(100, 200))
        vid = the_partitioned_view(system)
        parent = system.tentative.intervals(vid, "d_k")[0]
        jitter = system._observed_jitter(vid, "d_k", parent, Interval.closed(100, 200))
        assert jitter == pytest.approx(0.0)

    def test_drifting_queries_positive_jitter(self, system):
        for i in range(8):
            system.execute(query(100 + 10 * i, 200 + 10 * i))
        vid = the_partitioned_view(system)
        # use a parent that saw all the hits
        intervals = system.stats.intervals_for(vid, "d_k")
        jitters = [
            system._observed_jitter(vid, "d_k", iv, Interval.closed(140, 240))
            for iv in intervals
        ]
        assert max(jitters) > 0.0

    def test_different_width_queries_excluded(self, system):
        # wide queries should not contribute jitter for narrow theta
        for _ in range(4):
            system.execute(query(0, 900))
        vid = the_partitioned_view(system)
        parent = system.stats.intervals_for(vid, "d_k")[0]
        jitter = system._observed_jitter(vid, "d_k", parent, Interval.closed(100, 110))
        assert jitter == 0.0


class TestWidenPiece:
    def test_margin_scales_with_theta(self, system):
        theta = Interval.closed(100, 300)
        parent = Interval.closed(0, 1000)
        piece = Interval.closed(100, 300)
        widened = system._widen_piece(piece, theta, parent, DOMAIN)
        margin = system.policy.refinement_margin * theta.width
        assert widened.lo == pytest.approx(100 - margin)
        assert widened.hi == pytest.approx(300 + margin)

    def test_clamped_to_parent(self, system):
        theta = Interval.closed(0, 400)
        parent = Interval.closed(0, 350)
        piece = Interval.closed(0, 350)
        widened = system._widen_piece(piece, theta, parent, DOMAIN)
        assert parent.contains(widened)

    def test_jitter_dominates_small_margin(self, system):
        theta = Interval.closed(100, 110)
        parent = Interval.closed(0, 1000)
        piece = Interval.closed(100, 110)
        widened = system._widen_piece(piece, theta, parent, DOMAIN, jitter=50.0)
        assert widened.width >= 100.0  # 2 * 2*jitter / sides


class TestMeanFragmentWidth:
    def test_falls_back_to_domain(self, system):
        assert system._mean_fragment_width("ghost", "d_k", DOMAIN) == DOMAIN.width

    def test_uses_resident_fragments(self, system):
        system.execute(query(100, 200))
        vid = the_partitioned_view(system)
        width = system._mean_fragment_width(vid, "d_k", DOMAIN)
        intervals = system.pool.intervals_of(vid, "d_k")
        expected = sum(iv.width for iv in intervals) / len(intervals)
        assert width == pytest.approx(expected)


class TestReconstructView:
    def test_from_partition(self, system, catalog):
        system.execute(query(100, 200))
        vid = the_partitioned_view(system)
        ledger = CostLedger(system.cluster)
        table = system._reconstruct_view(vid, ledger)
        assert table is not None
        assert ledger.bytes_read > 0
        # the reconstruction equals the defining plan's result
        from repro.engine.executor import ExecutionContext, Executor

        plan = system.pool.definition(vid).plan
        direct = Executor(ExecutionContext(catalog, system.pool)).execute(plan)
        assert table.sorted_rows() == direct.table.sorted_rows()

    def test_unreconstructable_returns_none(self, system):
        system.execute(query(100, 200))
        vid = the_partitioned_view(system)
        # evict one fragment: the cover over the domain now has a hole
        entry = system.pool.fragments_of(vid, "d_k")[0]
        system.pool.evict(entry.fragment_id)
        ledger = CostLedger(system.cluster)
        assert system._reconstruct_view(vid, ledger) is None


class TestAdmissionFeasible:
    def test_unlimited_pool_always_feasible(self, system):
        assert system._admission_feasible("anything", None, 1.0)

    def test_small_pool_blocks_large_view(self, catalog):
        system = DeepSea(
            catalog,
            domains=DOMAINS,
            smax_bytes=10.0,
            policy=Policy(evidence_factor=0.0),
        )
        # prime statistics so the view has a size estimate
        system.execute(query(100, 200))
        for view in system.stats.all_views():
            if system.tentative.attrs_of(view.view_id):
                assert not system._admission_feasible(view.view_id, "d_k", 2.0)
                break
        else:
            pytest.fail("no partitionable view registered")


# ----------------------------------------------------------------------
# _piece_refinement_passes memoization: the §7.2 filter prefix cached on
# the estimator must replay the cold path's decision exactly.
# ----------------------------------------------------------------------
class TestPieceRefinementMemo:
    DOMAIN = Interval.closed(0, 1000)
    RESIDENT = [
        (Interval.closed(0, 500), 4e8),
        (Interval.open_closed(500, 1000), 4e8),
    ]

    def _call(self, piece, estimator, *, realizing=None, safety=1.0):
        from repro.core.deepsea import _piece_refinement_passes

        sizes = {iv: s for iv, s in self.RESIDENT}
        return _piece_refinement_passes(
            piece,
            estimator=estimator,
            resident_sizes=sizes,
            resident_intervals=list(sizes),
            domain=self.DOMAIN,
            cluster=self._cluster(),
            realizing=realizing,
            dist_fn=None,
            safety=safety,
        )

    def _cluster(self):
        from repro.engine.cost import ClusterSpec

        return ClusterSpec()

    def _profile(self):
        from repro.costmodel.estimate import ResidentProfile

        return ResidentProfile(self.RESIDENT, self.DOMAIN, self._cluster())

    def _realizing(self, parent_iv, n_hits):
        from repro.costmodel.decay import NoDecay
        from repro.costmodel.stats import FragmentStats
        from repro.costmodel.value import RealizingHitsIndex

        parent = FragmentStats("v", "a", parent_iv, size_bytes=4e8)
        for i in range(n_hits):
            parent.record_hit(float(i + 1), Interval.closed(100, 140))
        return RealizingHitsIndex(parent, parent_iv, float(n_hits + 1), NoDecay())

    def test_warm_memo_replays_cold_decision(self):
        parent_iv = Interval.closed(0, 500)
        pieces = [
            Interval.closed(100, 140),  # hot, well-backed piece
            Interval.closed(100, 141),  # near-identical jittered sibling
            Interval.closed(0, 499),    # nearly the whole cover: rejected
            Interval.closed(600, 601),  # sliver in the other fragment
        ]
        warm = self._profile()
        warm_realizing = self._realizing(parent_iv, 500)
        cold_decisions = []
        for piece in pieces:
            cold_decisions.append(
                self._call(piece, self._profile(), realizing=self._realizing(parent_iv, 500))
            )
        for piece, expected in zip(pieces, cold_decisions):
            self._call(piece, warm, realizing=warm_realizing)  # populate memo
        for piece, expected in zip(pieces, cold_decisions):
            assert self._call(piece, warm, realizing=warm_realizing) is expected

    def test_hot_piece_passes_and_cold_piece_fails(self):
        """Sanity that the fixture exercises both decisions."""
        parent_iv = Interval.closed(0, 500)
        assert self._call(
            Interval.closed(100, 140), self._profile(), realizing=self._realizing(parent_iv, 500)
        )
        assert not self._call(Interval.closed(100, 140), self._profile(), realizing=None)

    def test_rejected_prefix_memoized_as_false(self):
        estimator = self._profile()
        whale = Interval.closed(0, 499)
        assert not self._call(whale, estimator)
        assert estimator.piece_memo[whale][0] is False
        assert not self._call(whale, estimator)  # memo short-circuit, same answer

    def test_uncovered_piece_rejected(self):
        resident_half = [(Interval.closed(0, 500), 4e8)]
        from repro.core.deepsea import _piece_refinement_passes
        from repro.costmodel.estimate import ResidentProfile

        estimator = ResidentProfile(resident_half, self.DOMAIN, self._cluster())
        sizes = {iv: s for iv, s in resident_half}
        piece = Interval.closed(600, 700)  # hole: nothing resident to refine
        assert not _piece_refinement_passes(
            piece,
            estimator=estimator,
            resident_sizes=sizes,
            resident_intervals=list(sizes),
            domain=self.DOMAIN,
            cluster=self._cluster(),
            realizing=None,
            dist_fn=None,
            safety=1.0,
        )
        assert estimator.piece_memo[piece][0] is False
