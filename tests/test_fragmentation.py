"""Tests for fragmentations, coverage, and disjointness (Definitions 1-2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PartitionError
from repro.partitioning.fragmentation import (
    Fragmentation,
    pairwise_disjoint,
    union_covers,
)
from repro.partitioning.intervals import Interval


class TestUnionCovers:
    def test_single_exact(self):
        assert union_covers([Interval.closed(0, 10)], Interval.closed(0, 10))

    def test_gap_detected(self):
        frags = [Interval.closed(0, 3), Interval.closed(5, 10)]
        assert not union_covers(frags, Interval.closed(0, 10))

    def test_point_gap_detected(self):
        # [0,3) and (3,10] miss the single point 3
        frags = [Interval.closed_open(0, 3), Interval.open_closed(3, 10)]
        assert not union_covers(frags, Interval.closed(0, 10))

    def test_touching_open_closed_covers(self):
        frags = [Interval.closed_open(0, 3), Interval.closed(3, 10)]
        assert union_covers(frags, Interval.closed(0, 10))

    def test_overlap_covers(self):
        frags = [Interval.closed(0, 6), Interval.closed(4, 10)]
        assert union_covers(frags, Interval.closed(0, 10))

    def test_missing_left_endpoint(self):
        frags = [Interval.open_closed(0, 10)]
        assert not union_covers(frags, Interval.closed(0, 10))
        assert union_covers(frags, Interval.open_closed(0, 10))

    def test_missing_right_endpoint(self):
        frags = [Interval.closed_open(0, 10)]
        assert not union_covers(frags, Interval.closed(0, 10))

    def test_example_1_paper(self):
        """Example 1: I'' = {[1,4], [5,6]} is a partition of domain {1..6}.

        With a continuous domain [1,6] there is a gap (4,5); with the
        integer-style fragments [1,4] and (4,6] it covers.
        """
        assert union_covers(
            [Interval.closed(1, 4), Interval.open_closed(4, 6)], Interval.closed(1, 6)
        )

    def test_empty_fragments(self):
        assert not union_covers([], Interval.closed(0, 1))


class TestPairwiseDisjoint:
    def test_disjoint(self):
        assert pairwise_disjoint(
            [Interval.closed(0, 1), Interval.open_closed(1, 2), Interval.open(2, 3)]
        )

    def test_shared_endpoint_overlaps(self):
        assert not pairwise_disjoint([Interval.closed(0, 2), Interval.closed(2, 4)])

    def test_containment_overlaps(self):
        assert not pairwise_disjoint([Interval.closed(0, 10), Interval.closed(3, 4)])

    def test_paper_example_1_overlap(self):
        """I' = {[1,4], [3,4], [5,6]} is NOT a horizontal partition."""
        assert not pairwise_disjoint(
            [Interval.closed(1, 4), Interval.closed(3, 4), Interval.closed(5, 6)]
        )

    def test_empty(self):
        assert pairwise_disjoint([])


class TestFragmentation:
    DOMAIN = Interval.closed(0, 30)

    def frag(self, *intervals):
        return Fragmentation("a", self.DOMAIN, tuple(intervals))

    def test_single_is_horizontal_partition(self):
        f = Fragmentation.single("a", self.DOMAIN)
        assert f.is_horizontal_partition()

    def test_example_3_partition(self):
        """[0,10], (10,20], (20,30] is a horizontal partition of [0,30]."""
        f = self.frag(
            Interval.closed(0, 10),
            Interval.open_closed(10, 20),
            Interval.open_closed(20, 30),
        )
        assert f.is_horizontal_partition()

    def test_overlapping_partitioning_not_horizontal(self):
        f = self.frag(Interval.closed(0, 20), Interval.closed(10, 30))
        assert f.is_overlapping_partitioning()
        assert not f.is_horizontal_partition()

    def test_non_covering_is_neither(self):
        f = self.frag(Interval.closed(0, 10))
        assert not f.is_overlapping_partitioning()
        assert not f.is_horizontal_partition()

    def test_unbounded_domain_rejected(self):
        with pytest.raises(PartitionError):
            Fragmentation("a", Interval.unbounded(), ())

    def test_out_of_domain_fragment_rejected(self):
        with pytest.raises(PartitionError):
            self.frag(Interval.closed(40, 50))

    def test_replace_preserves_partition(self):
        f = Fragmentation.single("a", self.DOMAIN)
        pieces = (Interval.closed_open(0, 15), Interval.closed(15, 30))
        f2 = f.replace(self.DOMAIN, pieces)
        assert f2.is_horizontal_partition()
        assert len(f2) == 2

    def test_replace_rejects_non_tiling_pieces(self):
        f = Fragmentation.single("a", self.DOMAIN)
        with pytest.raises(PartitionError):
            f.replace(self.DOMAIN, (Interval.closed(0, 10),))

    def test_replace_rejects_overlapping_pieces(self):
        f = Fragmentation.single("a", self.DOMAIN)
        with pytest.raises(PartitionError):
            f.replace(self.DOMAIN, (Interval.closed(0, 20), Interval.closed(10, 30)))

    def test_replace_unknown_fragment(self):
        f = Fragmentation.single("a", self.DOMAIN)
        with pytest.raises(PartitionError):
            f.replace(Interval.closed(0, 5), (Interval.closed(0, 5),))

    def test_add_overlapping(self):
        f = self.frag(Interval.closed(0, 30))
        f2 = f.add_overlapping(Interval.closed(10, 12))
        assert f2.is_overlapping_partitioning()
        assert not f2.is_disjoint()

    def test_fragments_containing(self):
        f = self.frag(Interval.closed(0, 20), Interval.closed(10, 30))
        assert len(f.fragments_containing(15)) == 2
        assert len(f.fragments_containing(5)) == 1


# ----------------------------------------------------------------------
# Property: recursively splitting a partition keeps it a partition
# ----------------------------------------------------------------------
@given(
    points=st.lists(st.integers(1, 99), min_size=1, max_size=10, unique=True),
    after=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_repeated_splits_stay_horizontal(points, after):
    domain = Interval.closed(0, 100)
    frag = Fragmentation.single("a", domain)
    for p in points:
        target = next((iv for iv in frag.intervals if iv.contains_point(p)), None)
        if target is None:
            continue
        try:
            pieces = target.split_after(p) if after else target.split_before(p)
        except Exception:
            continue
        frag = frag.replace(target, pieces)
    assert frag.is_horizontal_partition()
