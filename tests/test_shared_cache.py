"""Tests for the cross-worker shared cache tier (repro.parallel.shared_cache).

The contract under test (see DESIGN.md §15):

* entries are served only at the exact version they were published at —
  anything else is a miss counted ``stale``, and the ``stale_served``
  tripwire stays zero forever;
* payload bytes survive the pipe and the mmap'd arena byte-identically;
* a worker's hit on another worker's publish is counted ``cross_hits`` —
  the whole point of the tier;
* enabling the tier never changes a result: serial, static fan-out, and
  work-stealing runs fingerprint-identically with the tier on and off.
"""

import pickle
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro import caches
from repro.bench.harness import clear_caches, run_systems, sdss_fixture
from repro.baselines import deepsea, hive
from repro.parallel import (
    FixtureSpec,
    RunTask,
    SystemSpec,
    WorkloadSpec,
    fan_out,
    fingerprint,
    result_fingerprint,
    steal_map,
)
from repro.parallel import shared_cache
from repro.parallel.shared_cache import (
    AdmissionPolicy,
    InProcessClient,
    PipeClient,
    SharedCacheServer,
    stable_key,
)
from repro.workloads.generator import sdss_mapped_workload

QUERIES = 12


def _fixture():
    return sdss_fixture(10.0, log_queries=500)


def _plans(fx):
    return sdss_mapped_workload(fx.log, fx.item_domain, n_queries=QUERIES, seed=2)


@pytest.fixture
def clean_tier():
    """Guarantee no client/server leaks across tests."""
    prior_client = shared_cache.install_client(None)
    prior_server = shared_cache.install_server(None)
    yield
    shared_cache.install_client(prior_client)
    shared_cache.install_server(prior_server)


PAYLOAD = b"x" * 256  # comfortably above every namespace's admission floor


class TestServer:
    def test_publish_then_hit_byte_identical(self, clean_tier):
        server = SharedCacheServer(use_arena=False)
        key = stable_key("result", ("ident", 1))
        assert server.get("result", key, (0, None)) == shared_cache.MISS_REPLY
        assert server.put("result", key, (0, None), PAYLOAD)
        reply = server.get("result", key, (0, None))
        assert server.read_payload(reply) == PAYLOAD
        stats = server.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["publishes"] == 1 and stats["entries"] == 1

    def test_version_mismatch_is_stale_miss_never_served(self, clean_tier):
        server = SharedCacheServer(use_arena=False)
        key = stable_key("cover", ("ident", "va", "v"))
        server.put("cover", key, 3, PAYLOAD)
        reply = server.get("cover", key, 4)
        assert reply == ("cmiss", True)
        assert server.stats()["stale"] == 1
        assert server.stats()["stale_served"] == 0
        # Exact match still works after the stale probe.
        assert server.read_payload(server.get("cover", key, 3)) == PAYLOAD

    def test_cross_hits_counts_only_other_origins(self, clean_tier):
        server = SharedCacheServer(use_arena=False)
        key = stable_key("result", ("ident",))
        server.put("result", key, 1, PAYLOAD, origin=100)
        server.get("result", key, 1, origin=100)  # self-hit
        assert server.cross_hits == 0
        server.get("result", key, 1, origin=200)
        assert server.cross_hits == 1

    def test_admission_floors_and_ceiling(self, clean_tier):
        server = SharedCacheServer(use_arena=False)
        key = stable_key("result", ("tiny",))
        assert not server.put("result", key, 1, b"x" * 10)  # below floor
        policy = AdmissionPolicy(max_bytes=1024)
        capped = SharedCacheServer(use_arena=False, admission=policy)
        assert not capped.put("result", key, 1, b"x" * 2048)  # above ceiling
        assert capped.stats()["rejected"] == 1

    def test_large_payload_routes_to_arena_and_reads_back(self, clean_tier):
        server = SharedCacheServer(arena_threshold=1024)
        try:
            big = bytes(range(256)) * 16  # 4 KiB of non-trivial bytes
            key = stable_key("result", ("big",))
            server.put("result", key, 1, big)
            reply = server.get("result", key, 1)
            assert reply[0] == "carena"
            assert server.read_payload(reply) == big
            assert server.stats()["arena_bytes"] == len(big)
            # A second reader process would open arena_path; same bytes here.
            reader = shared_cache._Arena(server.arena_path)
            assert reader.read(reply[1], reply[2]) == big
            reader.close()
        finally:
            server.close()

    def test_mem_budget_evicts_fifo(self, clean_tier):
        server = SharedCacheServer(use_arena=False, max_bytes=1024)
        for i in range(8):
            server.put("result", stable_key("result", (i,)), 1, b"y" * 256)
        stats = server.stats()
        assert stats["evictions"] >= 1
        assert stats["mem_bytes"] <= 1024

    def test_clear_drops_entries_and_counters(self, clean_tier):
        server = SharedCacheServer(use_arena=False)
        key = stable_key("result", ("ident",))
        server.put("result", key, 1, PAYLOAD)
        server.get("result", key, 1)
        server.clear()
        stats = server.stats()
        assert stats["entries"] == 0 and stats["hits"] == 0
        assert server.get("result", key, 1) == shared_cache.MISS_REPLY


class TestInProcessClient:
    def test_roundtrip_and_stale(self, clean_tier):
        server = SharedCacheServer(use_arena=False)
        client = InProcessClient(server)
        key = stable_key("fragment", ("ident",))
        assert client.get("fragment", key, 7) is None
        client.put("fragment", key, 7, PAYLOAD)
        assert client.get("fragment", key, 7) == PAYLOAD
        assert client.get("fragment", key, 8) is None
        stats = client.stats()
        assert stats["hits"] == 1 and stats["stale"] == 1

    def test_prefer_shared_flag(self, clean_tier):
        server = SharedCacheServer(use_arena=False)
        assert not InProcessClient(server).prefer_shared
        assert InProcessClient(server, prefer_shared=True).prefer_shared


class TestPipeClient:
    """The wire protocol over a real pipe, server answered inline."""

    @staticmethod
    def _pair():
        import multiprocessing

        return multiprocessing.Pipe()

    def _serve_one(self, server, parent_conn):
        frame = parent_conn.recv()
        reply = server.handle(frame)
        if reply is not None:
            parent_conn.send(reply)

    def test_roundtrip_over_pipe(self, clean_tier):
        server = SharedCacheServer(use_arena=False)
        parent_conn, child_conn = self._pair()
        client = PipeClient(child_conn)
        key = stable_key("result", ("ident",))

        client.put("result", key, 1, PAYLOAD)
        self._serve_one(server, parent_conn)  # consume the cput

        import threading

        thread = threading.Thread(target=self._serve_one, args=(server, parent_conn))
        thread.start()
        got = client.get("result", key, 1)
        thread.join()
        assert got == PAYLOAD

    def test_unexpected_reply_permanently_disables(self, clean_tier):
        parent_conn, child_conn = self._pair()
        client = PipeClient(child_conn)
        key = stable_key("result", ("ident",))
        parent_conn.send(("task", 0, None))  # not a cache reply
        assert client.get("result", key, 1) is None
        assert client._dead
        assert client.stats()["errors"] == 1
        assert parent_conn.recv()[0] == "cget"  # the poisoned lookup's frame
        # Dead client never touches the pipe again.
        assert client.get("result", key, 1) is None
        client.put("result", key, 1, PAYLOAD)
        assert not parent_conn.poll(0.05)

    def test_closed_pipe_degrades_to_miss(self, clean_tier):
        parent_conn, child_conn = self._pair()
        client = PipeClient(child_conn)
        parent_conn.close()
        assert client.get("result", stable_key("result", (1,)), 1) is None
        assert client._dead


# ----------------------------------------------------------------------
# Cross-worker proof: real forked pools, frames over the task pipes.
# ----------------------------------------------------------------------
_XKEY = stable_key("result", ("cross-worker-proof",))
_XPAYLOAD = bytes(range(256)) * 2


def _publish_task():
    client = shared_cache.client()
    assert client is not None, "worker has no shared-tier client installed"
    client.put("result", _XKEY, 1, _XPAYLOAD)
    return "published"


def _poll_task():
    client = shared_cache.client()
    assert client is not None, "worker has no shared-tier client installed"
    for _ in range(400):  # up to ~4s for the other worker's publish to land
        payload = client.get("result", _XKEY, 1)
        if payload is not None:
            return payload
        time.sleep(0.01)
    return None


def _arena_poll_task():
    client = shared_cache.client()
    for _ in range(400):
        payload = client.get("result", _XKEY, 1)
        if payload is not None:
            return payload
        time.sleep(0.01)
    return None


class TestCrossWorkerFrames:
    def test_fan_out_cross_worker_hit_byte_identical(self, clean_tier):
        server = SharedCacheServer(use_arena=False)
        try:
            out = fan_out([_publish_task, _poll_task], workers=2, shared=server)
            assert out[0] == "published"
            assert out[1] == _XPAYLOAD  # exact bytes, across two processes
            stats = server.stats()
            assert stats["cross_hits"] >= 1
            assert stats["stale_served"] == 0
        finally:
            server.close()

    def test_steal_map_cross_worker_hit(self, clean_tier):
        server = SharedCacheServer(use_arena=False)
        try:
            out = steal_map(
                [_publish_task, _poll_task], workers=2, chunk_size=1,
                warm=False, shared=server,
            )
            assert out == ["published", _XPAYLOAD]
            assert server.cross_hits >= 1
        finally:
            server.close()

    def test_arena_payload_crosses_processes(self, clean_tier):
        # Threshold below the payload size: the hit travels as an
        # (offset, length) ref and the worker reads the mmap'd arena.
        server = SharedCacheServer(arena_threshold=64)
        try:
            out = fan_out([_publish_task, _arena_poll_task], workers=2, shared=server)
            assert out[1] == _XPAYLOAD
            assert server.stats()["arena_bytes"] >= len(_XPAYLOAD)
        finally:
            server.close()

    def test_serial_fallback_uses_in_process_client(self, clean_tier):
        server = SharedCacheServer(use_arena=False)
        try:
            out = fan_out([_publish_task, _poll_task], workers=0, shared=server)
            assert out == ["published", _XPAYLOAD]
            assert server.stats()["hits"] >= 1
        finally:
            server.close()


class TestEngineReuse:
    """The tier on real workloads: identical results, provable reuse."""

    TASKS = [
        RunTask(
            label,
            SystemSpec.of(name),
            FixtureSpec("sdss", 10.0, log_queries=500),
            WorkloadSpec(QUERIES),
        )
        for label, name in (("H", "hive"), ("DS", "deepsea"))
    ]

    def test_schedulers_agree_with_tier_on(self, clean_tier):
        serial = fan_out(self.TASKS, workers=0)
        server = SharedCacheServer()
        try:
            static = fan_out(self.TASKS, workers=2, shared=server)
            stolen = steal_map(self.TASKS, workers=2, chunk_size=1, shared=server)
            for a, b, c in zip(serial, static, stolen):
                assert result_fingerprint(a) == result_fingerprint(b)
                assert result_fingerprint(a) == result_fingerprint(c)
            assert server.stats()["stale_served"] == 0
        finally:
            server.close()

    def test_second_run_hits_first_runs_publishes_cross_process(self, clean_tier):
        # Deterministic cross-worker reuse: run the same sliced stateless
        # H task twice against one server.  The second run's workers are
        # fresh processes (new pids), so every hit on a first-run entry is
        # by construction a cross-origin hit.
        whole = self.TASKS[0]
        parts = whole.slices(3)
        server = SharedCacheServer()
        try:
            first = steal_map(parts, workers=2, chunk_size=1, warm=False, shared=server)
            published = server.stats()["publishes"]
            assert published > 0
            second = steal_map(parts, workers=2, chunk_size=1, warm=False, shared=server)
            for a, b in zip(first, second):
                assert result_fingerprint(a) == result_fingerprint(b)
            stats = server.stats()
            assert stats["cross_hits"] >= 1
            assert stats["stale_served"] == 0
        finally:
            server.close()

    def test_run_systems_serial_shared_on_off_identical(self, clean_tier):
        fx = _fixture()
        plans = _plans(fx)
        factories = {
            "H": lambda: hive(fx.catalog, domains=fx.domains),
            "DS": lambda: deepsea(fx.catalog, domains=fx.domains),
        }
        clear_caches()
        off = run_systems(factories, plans, workers=0)
        server = SharedCacheServer(use_arena=False)
        try:
            clear_caches()
            on = run_systems(factories, plans, workers=0, shared=server)
            assert fingerprint(off) == fingerprint(on)
            assert server.stats()["stale_served"] == 0
        finally:
            server.close()


# ----------------------------------------------------------------------
# Property: the tier is invisible to the ledger, whatever slice of the
# workload runs.  Reports embed every simulated charge, so fingerprint
# equality is ledger equality.
# ----------------------------------------------------------------------
@given(
    start=st.integers(0, QUERIES - 2),
    width=st.integers(1, 6),
)
@settings(max_examples=8, deadline=None)
def test_shared_tier_never_changes_ledgers(start, width):
    fx = _fixture()
    plans = _plans(fx)[start : start + width]
    factories = {"DS": lambda: deepsea(fx.catalog, domains=fx.domains)}
    prior_client = shared_cache.install_client(None)
    prior_server = shared_cache.install_server(None)
    server = SharedCacheServer(use_arena=False)
    try:
        clear_caches()
        off = run_systems(factories, plans, workers=0)
        clear_caches()
        on = run_systems(factories, plans, workers=0, shared=server)
        assert fingerprint(off) == fingerprint(on)
        # And a warm second pass (shared hits possible) is still identical.
        again = run_systems(factories, plans, workers=0, shared=server)
        assert fingerprint(off) == fingerprint(again)
        assert server.stats()["stale_served"] == 0
    finally:
        server.close()
        shared_cache.install_client(prior_client)
        shared_cache.install_server(prior_server)


class TestResultCacheIntegration:
    def test_shared_parts_requires_ident(self, clean_tier):
        from repro.engine.executor import ExecutionContext
        from repro.engine.result_cache import ResultCache
        from repro.query.analysis import analyze_plan
        from repro.query.optimizer import push_down

        fx = _fixture()
        plan = push_down(_plans(fx)[0], hive(fx.catalog, domains=fx.domains).schemas)
        analysis = analyze_plan(plan)
        context = ExecutionContext(fx.catalog, None)
        ident = fx.catalog.shared_ident
        try:
            fx.catalog.shared_ident = None
            assert ResultCache.shared_parts(plan, analysis, context) is None
            fx.catalog.shared_ident = ("sdss-test",)
            parts = ResultCache.shared_parts(plan, analysis, context)
            assert parts is not None
            key, version = parts
            assert isinstance(key, bytes) and version == (fx.catalog.version, None)
        finally:
            fx.catalog.shared_ident = ident

    def test_fixture_builders_stamp_idents(self):
        fx = _fixture()
        assert fx.catalog.shared_ident is not None
        assert fx.catalog.shared_ident[0] == "sdss"

    def test_run_task_stamps_pool_ident(self):
        task = RunTask(
            "DS",
            SystemSpec.of("deepsea"),
            FixtureSpec("sdss", 10.0, log_queries=500),
            WorkloadSpec(2),
        )
        result = task.run()
        assert result is not None
        # The stamp itself is checked structurally: rebuild and inspect.
        fx = task.fixture.build()
        system = task.system.build(fx)
        system.pool.shared_ident = ("run_task", task)
        assert system.pool.shared_ident[1] == task


class TestServeSharedTier:
    def test_service_digests_identical_and_globals_restored(self, clean_tier):
        from repro.serve.driver import answer_digest
        from repro.serve.service import QueryService

        fx = sdss_fixture(5.0)
        plans = sdss_mapped_workload(fx.log, fx.item_domain, n_queries=16, seed=2)
        reference = hive(fx.catalog, domains=fx.domains)
        expected = [answer_digest(reference.execute(p).result) for p in plans]

        system = deepsea(fx.catalog, domains=fx.domains)
        with QueryService(system, workers=3, shared_cache=True) as service:
            tickets = [service.submit(p) for p in plans]
            outcomes = [t.result(timeout=60.0) for t in tickets]
        metrics = service.metrics()
        assert metrics["shared_cache"]["stale_served"] == 0
        for i, outcome in enumerate(outcomes):
            assert outcome is not None and outcome.status == "answered"
            assert answer_digest(outcome.table) == expected[i], i
        # The tier is torn down with the service.
        assert shared_cache.client() is None
        assert shared_cache.server() is None

    def test_reader_clients_prefer_shared(self, clean_tier):
        from repro.serve.service import QueryService

        fx = sdss_fixture(5.0)
        system = deepsea(fx.catalog, domains=fx.domains)
        service = QueryService(system, workers=1, shared_cache=True).start()
        try:
            assert shared_cache.client().prefer_shared
        finally:
            service.stop()
