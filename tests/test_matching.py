"""Tests for view matching, the filter tree, and Algorithm 2."""

from repro.matching.filter_tree import FilterTree
from repro.matching.matcher import match_view, partition_attr_ranges
from repro.matching.partition_match import covered_bytes, greedy_cover
from repro.partitioning.intervals import Interval
from repro.query.algebra import Aggregate, AggSpec, Join, Project, Relation, Select
from repro.query.predicates import between
from repro.query.signature import compute_signature

SCHEMAS = {
    "sales": ("s_id", "s_item_sk", "s_qty", "s_price"),
    "item": ("i_item_sk", "i_category"),
    "web": ("w_id", "w_item_sk"),
}


def sig(plan):
    return compute_signature(plan, SCHEMAS)


def join_plan():
    return Join(Relation("sales"), Relation("item"), "s_item_sk", "i_item_sk")


class TestMatchView:
    def test_exact_match_identity_compensation(self):
        comp = match_view(sig(join_plan()), sig(join_plan()))
        assert comp is not None and comp.is_identity

    def test_view_superset_range_compensated(self):
        view = Select(join_plan(), (between("i_item_sk", 0, 100),))
        query = Select(join_plan(), (between("i_item_sk", 10, 20),))
        comp = match_view(sig(view), sig(query))
        assert comp is not None
        assert len(comp.selections) == 1
        assert comp.selections[0].interval == Interval.closed(10, 20)

    def test_unrestricted_view_answers_restricted_query(self):
        query = Select(join_plan(), (between("i_item_sk", 10, 20),))
        comp = match_view(sig(join_plan()), sig(query))
        assert comp is not None and len(comp.selections) == 1

    def test_view_narrower_than_query_rejected(self):
        view = Select(join_plan(), (between("i_item_sk", 10, 20),))
        query = Select(join_plan(), (between("i_item_sk", 0, 100),))
        assert match_view(sig(view), sig(query)) is None

    def test_restricted_view_vs_unrestricted_query_rejected(self):
        view = Select(join_plan(), (between("i_item_sk", 10, 20),))
        assert match_view(sig(view), sig(join_plan())) is None

    def test_different_relations_rejected(self):
        view = Join(Relation("web"), Relation("item"), "w_item_sk", "i_item_sk")
        assert match_view(sig(view), sig(join_plan())) is None

    def test_different_join_attrs_rejected(self):
        view = Join(Relation("sales"), Relation("item"), "s_qty", "i_item_sk")
        assert match_view(sig(view), sig(join_plan())) is None

    def test_aggregation_shape_must_match(self):
        agg = Aggregate(join_plan(), ("i_category",), (AggSpec("sum", "s_qty", "t"),))
        assert match_view(sig(agg), sig(join_plan())) is None
        assert match_view(sig(join_plan()), sig(agg)) is None
        comp = match_view(sig(agg), sig(agg))
        assert comp is not None and comp.is_identity

    def test_selection_commutes_with_groupby_on_group_attr(self):
        """σ over a group-by attr matches an aggregate view without the σ."""
        view = Aggregate(join_plan(), ("i_item_sk",), (AggSpec("sum", "s_qty", "t"),))
        query = Select(view, (between("i_item_sk", 0, 9),))
        comp = match_view(sig(view), sig(query))
        assert comp is not None and len(comp.selections) == 1

    def test_projection_subset_compensated(self):
        view = join_plan()
        query = Project(join_plan(), ("i_category", "s_qty"))
        comp = match_view(sig(view), sig(query))
        assert comp is not None
        assert comp.projection == ("i_category", "s_qty")

    def test_view_projection_missing_needed_column_rejected(self):
        view = Project(join_plan(), ("i_category",))
        query = Project(join_plan(), ("s_qty",))
        assert match_view(sig(view), sig(query)) is None

    def test_compensation_attr_resolved_through_equivalence(self):
        """View projects only i_item_sk; query restricts s_item_sk (= join key)."""
        view = Project(join_plan(), ("i_item_sk", "s_qty"))
        query = Project(
            Select(join_plan(), (between("s_item_sk", 3, 7),)),
            ("i_item_sk", "s_qty"),
        )
        comp = match_view(sig(view), sig(query))
        assert comp is not None
        assert comp.selections[0].attr == "i_item_sk"

    def test_compensation_impossible_when_class_projected_away(self):
        view = Project(join_plan(), ("s_qty",))
        query = Project(
            Select(join_plan(), (between("s_item_sk", 3, 7),)), ("s_qty",)
        )
        assert match_view(sig(view), sig(query)) is None


class TestPartitionAttrRanges:
    def test_range_reported_under_view_output_column(self):
        view = join_plan()
        query = Select(join_plan(), (between("s_item_sk", 3, 7),))
        ranges = partition_attr_ranges(sig(view), sig(query))
        # representative is i_item_sk (sorted first), present in view output
        assert ranges == {"i_item_sk": Interval.closed(3, 7)}


class TestFilterTree:
    def test_add_lookup_remove(self):
        tree = FilterTree()
        tree.add("v1", sig(join_plan()))
        hits = tree.candidates(sig(join_plan()))
        assert [vid for vid, _ in hits] == ["v1"]
        tree.remove("v1")
        assert tree.candidates(sig(join_plan())) == []
        assert len(tree) == 0

    def test_prunes_on_relations(self):
        tree = FilterTree()
        tree.add("v1", sig(join_plan()))
        other = Join(Relation("web"), Relation("item"), "w_item_sk", "i_item_sk")
        assert tree.candidates(sig(other)) == []

    def test_prunes_on_agg_shape(self):
        tree = FilterTree()
        tree.add("v1", sig(join_plan()))
        agg = Aggregate(join_plan(), ("i_category",), (AggSpec("count", None, "n"),))
        assert tree.candidates(sig(agg)) == []

    def test_range_variants_share_bucket(self):
        tree = FilterTree()
        tree.add("v1", sig(Select(join_plan(), (between("i_item_sk", 0, 50),))))
        tree.add("v2", sig(join_plan()))
        hits = tree.candidates(sig(Select(join_plan(), (between("i_item_sk", 5, 9),))))
        assert {vid for vid, _ in hits} == {"v1", "v2"}

    def test_add_idempotent(self):
        tree = FilterTree()
        tree.add("v1", sig(join_plan()))
        tree.add("v1", sig(join_plan()))
        assert len(tree) == 1

    def test_remove_unknown_noop(self):
        tree = FilterTree()
        tree.remove("ghost")

    def test_stats_counters(self):
        tree = FilterTree()
        tree.add("v1", sig(join_plan()))
        tree.candidates(sig(join_plan()))
        assert tree.stats.lookups == 1
        assert tree.stats.candidates_returned == 1


class TestGreedyCover:
    def test_disjoint_partition_cover(self):
        frags = [
            Interval.closed(0, 10),
            Interval.open_closed(10, 20),
            Interval.open_closed(20, 30),
        ]
        cover = greedy_cover(Interval.closed(5, 25), frags)
        assert cover is not None
        assert [c.interval for c in cover] == frags
        assert cover[0].clip is None
        assert cover[1].clip == Interval(10, None, True, False)

    def test_single_fragment_suffices(self):
        frags = [Interval.closed(0, 30), Interval.closed(5, 10)]
        cover = greedy_cover(Interval.closed(6, 9), frags)
        assert cover is not None
        # greedy prefers the largest lower bound: the small hot fragment
        assert [c.interval for c in cover] == [Interval.closed(5, 10)]

    def test_overlapping_fragments_clipped(self):
        frags = [Interval.closed(0, 10), Interval.closed(8, 20)]
        cover = greedy_cover(Interval.closed(0, 15), frags)
        assert cover is not None
        assert [c.interval for c in cover] == frags
        # second fragment must exclude everything ≤ 10
        assert cover[1].clip == Interval(10, None, True, False)

    def test_gap_returns_none(self):
        frags = [Interval.closed(0, 10), Interval.closed(15, 30)]
        assert greedy_cover(Interval.closed(5, 20), frags) is None

    def test_point_gap_returns_none(self):
        frags = [Interval.closed_open(0, 10), Interval.open_closed(10, 20)]
        assert greedy_cover(Interval.closed(5, 15), frags) is None

    def test_open_theta_lower_bound(self):
        frags = [Interval.open_closed(10, 20)]
        assert greedy_cover(Interval.open_closed(10, 20), frags) is not None
        assert greedy_cover(Interval.closed(10, 20), frags) is None

    def test_covered_bytes(self):
        frags = [Interval.closed(0, 10), Interval.open_closed(10, 20)]
        cover = greedy_cover(Interval.closed(0, 20), frags)
        sizes = {frags[0]: 100.0, frags[1]: 50.0}
        assert covered_bytes(cover, sizes) == 150.0

    def test_prefers_fewer_wasted_bytes(self):
        """Greedy picks the fragment with the largest lower bound (least waste)."""
        frags = [Interval.closed(0, 100), Interval.closed(40, 60)]
        cover = greedy_cover(Interval.closed(50, 55), frags)
        assert [c.interval for c in cover] == [Interval.closed(40, 60)]
