"""Tests for the benchmark harness and reporting helpers."""

import pytest

from repro.baselines import deepsea, hive
from repro.bench.harness import (
    RunResult,
    run_system,
    run_systems,
    sdss_fixture,
    uniform_fixture,
)
from repro.bench.reporting import format_series, format_table, normalize
from repro.workloads.bigbench import q01


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [(1, 2.5), ("xx", 10000.0)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "10,000" in out

    def test_format_table_float_rendering(self):
        out = format_table(["v"], [(0.1234,), (12.3,), (1234.5,)])
        assert "0.123" in out and "12.3" in out and "1,235" in out or "1,234" in out

    def test_format_series(self):
        out = format_series("x", [1.0, 2.0, 3.0, 4.0], every=2)
        assert out == "x [s]: 1, 3"

    def test_normalize(self):
        assert normalize([2.0, 4.0], 4.0) == [0.5, 1.0]

    def test_normalize_zero_baseline(self):
        with pytest.raises(ZeroDivisionError):
            normalize([1.0], 0.0)


class TestHarness:
    def test_run_system_collects_reports(self):
        fx = uniform_fixture(10.0)
        plans = [q01(100, 200), q01(100, 200)]
        result = run_system("H", hive(fx.catalog, domains=fx.domains), plans)
        assert len(result.reports) == 2
        assert result.total_s > 0
        assert result.reuse_count == 0

    def test_run_systems_fresh_instances(self):
        fx = uniform_fixture(10.0)
        plans = [q01(100, 200)] * 3
        results = run_systems(
            {
                "H": lambda: hive(fx.catalog, domains=fx.domains),
                "DS": lambda: deepsea(
                    fx.catalog, domains=fx.domains, evidence_factor=0.0
                ),
            },
            plans,
        )
        assert set(results) == {"H", "DS"}
        assert results["DS"].reuse_count >= 1

    def test_cumulative_monotone(self):
        fx = uniform_fixture(10.0)
        plans = [q01(0, 40_000)] * 3
        result = run_system("H", hive(fx.catalog, domains=fx.domains), plans)
        cum = result.cumulative_s
        assert cum == sorted(cum)

    def test_recoup_point(self):
        base = [10.0, 10.0, 10.0, 10.0]
        # construct per-query via a stub: use recoup_point math directly

        class Stub(RunResult):
            def __init__(self, per):
                self._per = per

            @property
            def per_query_s(self):
                return self._per

            @property
            def cumulative_s(self):
                import numpy as np

                return list(np.cumsum(self._per))

        stub = Stub([25.0, 2.0, 2.0, 2.0])
        assert stub.recoup_point(base) == 3

    def test_fixture_caching(self):
        a = uniform_fixture(10.0)
        b = uniform_fixture(10.0)
        assert a is b

    def test_sdss_fixture_shape(self):
        fx = sdss_fixture(10.0, log_queries=500)
        assert len(fx.log) == 500
        assert fx.catalog.total_size_bytes == pytest.approx(10e9, rel=0.02)
