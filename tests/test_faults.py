"""Tests for the deterministic fault-injection subsystem (repro.faults).

The contract under test everywhere: **faults may change cost, never
answers** — a faulted run's result tables and decision trail are
byte-identical to the fault-free run's, while its ledgers are strictly
costlier and its event log non-empty.
"""

import pickle

import pytest

from repro.engine.cost import CostLedger
from repro.errors import FaultError
from repro.faults import (
    BUILTIN_SCHEDULES,
    FAULT_KINDS,
    FaultSchedule,
    FaultSpec,
    builtin_schedule,
    builtin_schedule_names,
    verify_run,
)
from repro.parallel import (
    FixtureSpec,
    RunTask,
    SystemSpec,
    WorkloadSpec,
    fan_out,
    result_fingerprint,
)
from repro.parallel.determinism import report_fingerprint

QUERIES = 12
FIXTURE = FixtureSpec("sdss", 10.0, log_queries=500)
WORKLOAD = WorkloadSpec(QUERIES)

# A deliberately hot schedule so that even a 12-query workload fires
# every fault kind it carries — built-in rates are calibrated for the
# larger chaos-CLI workloads and may stay silent at this scale.
STORM = FaultSchedule.of(
    "test-storm",
    seed=5,
    task_failure=0.05,
    straggler=0.02,
    replica_loss=0.3,
    block_corruption=0.2,
    fragment_loss=0.5,
    controller_crash=0.5,
).to_json()

FLAKY = FaultSchedule.of("test-flaky", seed=9, task_failure=0.05, straggler=0.02).to_json()


def _task(label, factory, faults=None, **options):
    return RunTask(label, SystemSpec.of(factory, **options), FIXTURE, WORKLOAD, faults=faults)


_RUNS = {}


def _run(label, factory, faults=None):
    """Serial run of one (system, schedule) pair, memoized per module."""
    key = (label, factory, faults)
    if key not in _RUNS:
        _RUNS[key] = _task(label, factory, faults).run()
    return _RUNS[key]


class TestFaultSchedule:
    def test_builtin_registry_sanity(self):
        names = builtin_schedule_names()
        assert len(names) >= 3
        for name in names:
            sched = builtin_schedule(name)
            assert sched is FaultSchedule.resolve(name)
            # Every built-in carries a task-failure floor so every system
            # variant — even H, which never touches the pool — pays a
            # strictly positive fault cost.
            assert sched.rate("task_failure") > 0.0

    def test_unknown_builtin_raises(self):
        with pytest.raises(FaultError, match="no built-in schedule"):
            builtin_schedule("nope")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultSpec("meteor_strike", 0.1)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(FaultError, match="rate"):
            FaultSpec("task_failure", 1.5)

    def test_duplicate_kinds_rejected(self):
        with pytest.raises(FaultError, match="duplicate"):
            FaultSchedule("dup", 1, (FaultSpec("straggler", 0.1), FaultSpec("straggler", 0.2)))

    def test_json_roundtrip(self):
        for sched in BUILTIN_SCHEDULES.values():
            assert FaultSchedule.from_json(sched.to_json()) == sched

    def test_pickle_roundtrip(self):
        for sched in BUILTIN_SCHEDULES.values():
            clone = pickle.loads(pickle.dumps(sched))
            assert clone == sched
            assert hash(clone) == hash(sched)

    def test_resolve_accepts_json_and_passthrough(self):
        sched = FaultSchedule.resolve(STORM)
        assert sched.name == "test-storm"
        assert FaultSchedule.resolve(sched) is sched

    def test_resolve_rejects_garbage(self):
        with pytest.raises(FaultError, match="unknown schedule"):
            FaultSchedule.resolve("definitely-not-a-schedule")
        with pytest.raises(FaultError, match="invalid schedule JSON"):
            FaultSchedule.resolve("{not json")

    def test_rate_lookup_defaults_to_zero(self):
        sched = FaultSchedule.of("x", task_failure=0.25)
        assert sched.rate("task_failure") == 0.25
        assert sched.rate("controller_crash") == 0.0

    def test_kind_registry_is_closed(self):
        assert "worker_kill" in FAULT_KINDS
        assert len(FAULT_KINDS) == 7


class TestFaultInjector:
    def _drive(self, injector):
        """A fixed call sequence covering every injection site."""
        ledger = CostLedger()
        ledger.faults = injector
        for tasks in (40, 7, 120, 3):
            injector.map_task_faults(tasks)
        for path in ("/pool/a", "/pool/b", "/pool/c"):
            injector.block_read_faults(path, 5e8, ledger)
        sites = [injector.lose_fragment(6) for _ in range(8)]
        crashes = [injector.controller_crash("repartition") for _ in range(8)]
        plan = injector.worker_kill_plan(12)
        return injector.event_log(), sites, crashes, plan, ledger.fault_s

    def test_same_seed_same_decisions(self):
        sched = FaultSchedule.resolve(STORM)
        a = self._drive(sched.injector())
        b = self._drive(sched.injector())
        assert a == b
        assert len(a[0]) > 0  # the storm actually fired

    def test_different_seed_diverges(self):
        sched = FaultSchedule.resolve(STORM)
        hot = FaultSchedule.of("other", seed=6, **{s.kind: s.rate for s in sched.specs})
        assert self._drive(sched.injector()) != self._drive(hot.injector())

    def test_event_lines_are_sequential(self):
        injector = FaultSchedule.resolve(STORM).injector()
        self._drive(injector)
        for seq, event in enumerate(injector.events):
            assert event.seq == seq
            assert event.line().startswith(f"{seq}:")

    def test_ledger_charges_task_faults(self):
        sched = FaultSchedule.of("hot", seed=3, task_failure=0.2, straggler=0.1)
        ledger = CostLedger()
        ledger.faults = sched.injector()
        ledger.charge_read(2e9, nfiles=8)
        assert ledger.fault_s > 0
        assert ledger.task_retries + ledger.speculative_tasks > 0
        assert ledger.fault_events > 0
        assert ledger.total_seconds == pytest.approx(ledger.read_s + ledger.fault_s)

    def test_ledger_without_faults_unchanged(self):
        plain, faulted = CostLedger(), CostLedger()
        faulted.faults = FaultSchedule.of("cold", seed=1).injector()
        for ledger in (plain, faulted):
            ledger.charge_read(2e9, nfiles=8)
        assert faulted.fault_s == 0.0
        assert faulted.read_s == plain.read_s
        assert faulted.map_tasks == plain.map_tasks


class TestVerifyRun:
    def test_fault_free_pair_flagged_as_unexercised(self):
        base = _run("DS", "deepsea")
        report = verify_run(base, base, "noop")
        assert not report.ok
        assert any("no faults" in p for p in report.problems)

    def test_divergent_answers_flagged(self):
        # Two different systems disagree on the decision trail — exactly
        # what the checker must catch if a recovery path ever corrupted it.
        report = verify_run(_run("DS", "deepsea"), _run("NP", "non_partitioned"))
        assert not report.ok
        assert any("diverged" in p for p in report.problems)
        assert "FAIL" in report.summary()


class TestChaosInvariant:
    """End-to-end: real systems, real workload, hot schedule."""

    @pytest.mark.parametrize(
        "label,factory",
        [("DS", "deepsea"), ("NP", "non_partitioned"), ("H", "hive")],
    )
    def test_answers_unchanged_ledgers_costlier(self, label, factory):
        schedule = STORM if label != "H" else FLAKY
        report = verify_run(_run(label, factory), _run(label, factory, schedule), schedule)
        assert report.ok, report.summary()
        assert report.events > 0
        assert report.overhead_s > 0

    def test_fault_events_cover_recovery(self):
        # The storm must exercise recovery, not just injection: at least
        # one journal rollback or fragment recompute shows up in the log.
        faulted = _run("DS", "deepsea", STORM)
        kinds = {line.split(":")[2] for line in faulted.fault_events}
        assert "controller_crash" in kinds or "fragment_loss" in kinds
        assert "recovery" in kinds

    def test_ledger_masking_in_fingerprints(self):
        base = _run("DS", "deepsea")
        faulted = _run("DS", "deepsea", STORM)
        for b, f in zip(base.reports, faulted.reports):
            masked_b = report_fingerprint(b, include_ledgers=False)
            masked_f = report_fingerprint(f, include_ledgers=False)
            assert "<masked>" in masked_b
            assert masked_b == masked_f
        # Unmasked fingerprints must differ somewhere: the ledgers carry
        # the fault cost.
        assert any(
            report_fingerprint(b) != report_fingerprint(f)
            for b, f in zip(base.reports, faulted.reports)
        )

    def test_run_result_fault_accounting(self):
        faulted = _run("DS", "deepsea", STORM)
        assert faulted.fault_s > 0
        assert faulted.total_s > _run("DS", "deepsea").total_s
        assert len(faulted.fault_events) > 0


class TestFaultDeterminism:
    TASKS = (
        _task("DS", "deepsea", faults=STORM),
        _task("NP", "non_partitioned", faults=STORM),
        _task("H", "hive", faults=FLAKY),
    )

    def test_faulted_tasks_pickle_roundtrip(self):
        for task in self.TASKS:
            clone = pickle.loads(pickle.dumps(task))
            assert clone == task
            assert hash(clone) == hash(task)

    def test_workers_do_not_change_faulted_runs(self):
        tasks = list(self.TASKS)
        serial = fan_out(tasks, workers=0)
        parallel = fan_out(tasks, workers=2)
        for a, b in zip(serial, parallel):
            assert result_fingerprint(a) == result_fingerprint(b)
            assert a.fault_events == b.fault_events

    def test_worker_kills_do_not_change_faulted_runs(self):
        # Chaos squared: the schedule attacks the simulation while the
        # fault plan hard-kills each task's first worker.  Results must
        # still be byte-identical — the re-dispatched task replays the
        # identical seeded fault sequence.
        tasks = list(self.TASKS)
        serial = fan_out(tasks, workers=0)
        killed = fan_out(tasks, workers=2, fault_plan={0: 1, 1: 1, 2: 1})
        for a, b in zip(serial, killed):
            assert result_fingerprint(a) == result_fingerprint(b)
            assert a.fault_events == b.fault_events


class TestChaosCli:
    def test_list_schedules(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--list-schedules"]) == 0
        out = capsys.readouterr().out
        for name in builtin_schedule_names():
            assert name in out

    def test_bad_schedule_rejected(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--schedule", "definitely-not-real"]) == 2
        assert "bad --schedule" in capsys.readouterr().err

    def test_chaos_command_smoke(self, capsys):
        from repro.cli import main

        code = main(
            [
                "chaos",
                "--queries",
                "12",
                "--instance-gb",
                "10",
                "--schedule",
                STORM,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "byte-identical" in out
        assert "FAIL" not in out
