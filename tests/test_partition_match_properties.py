"""Property-based tests for Algorithm 2 (greedy fragment cover)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.matching.partition_match import greedy_cover
from repro.partitioning.fragmentation import union_covers
from repro.partitioning.intervals import Interval

bound = st.integers(0, 60)


@st.composite
def interval_sets(draw):
    n = draw(st.integers(1, 8))
    out = []
    for _ in range(n):
        lo = draw(bound)
        hi = draw(bound)
        lo, hi = min(lo, hi), max(lo, hi)
        if lo == hi:
            out.append(Interval.point(float(lo)))
        else:
            out.append(Interval(float(lo), float(hi), draw(st.booleans()), draw(st.booleans())))
    return out


@st.composite
def thetas(draw):
    lo = draw(bound)
    hi = draw(bound)
    lo, hi = min(lo, hi), max(lo, hi)
    if lo == hi:
        return Interval.point(float(lo))
    return Interval.closed(float(lo), float(hi))


@given(fragments=interval_sets(), theta=thetas())
@settings(max_examples=300, deadline=None)
def test_greedy_cover_succeeds_iff_union_covers(fragments, theta):
    """Completeness: greedy finds a cover exactly when one exists."""
    cover = greedy_cover(theta, fragments)
    coverable = union_covers(fragments, theta)
    assert (cover is not None) == coverable


@given(fragments=interval_sets(), theta=thetas())
@settings(max_examples=300, deadline=None)
def test_cover_union_contains_theta(fragments, theta):
    cover = greedy_cover(theta, fragments)
    if cover is None:
        return
    assert union_covers([c.interval for c in cover], theta)


@given(fragments=interval_sets(), theta=thetas())
@settings(max_examples=300, deadline=None)
def test_clipped_regions_are_disjoint_and_cover_theta(fragments, theta):
    """The clips disjointify the cover: every point of θ belongs to exactly
    one (fragment ∩ clip) region."""
    cover = greedy_cover(theta, fragments)
    if cover is None:
        return
    # sample many points of theta and count which clipped fragments own them
    lo, hi = theta.lo, theta.hi
    points = np.unique(
        np.concatenate(
            [
                np.linspace(lo, hi, 23),
                np.array([lo, hi]),
                np.array([c.interval.lo for c in cover]),
                np.array([c.interval.hi for c in cover]),
            ]
        )
    )
    for p in points:
        if not theta.contains_point(p):
            continue
        owners = 0
        for covered in cover:
            if not covered.interval.contains_point(p):
                continue
            if covered.clip is None or covered.clip.contains_point(p):
                owners += 1
        assert owners == 1, f"point {p} owned by {owners} clipped fragments"


@given(fragments=interval_sets(), theta=thetas())
@settings(max_examples=200, deadline=None)
def test_cover_uses_each_fragment_at_most_once(fragments, theta):
    cover = greedy_cover(theta, fragments)
    if cover is None:
        return
    seen = [c.interval for c in cover]
    # identity-level uniqueness: greedy removes chosen fragments
    assert len(seen) == len({id(c) for c in cover})
    assert len(cover) <= len(fragments)
