"""Tests for decay, statistics, benefit/value, Nectar models, and estimates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel.decay import NoDecay, ProportionalDecay
from repro.costmodel.estimate import (
    estimate_fragment_cost,
    estimate_fragment_size,
    estimate_view_size,
)
from repro.costmodel.nectar import (
    nectar_fragment_value,
    nectar_plus_fragment_value,
    nectar_plus_view_value,
    nectar_view_value,
)
from repro.costmodel.stats import FragmentStats, StatisticsStore, ViewStats
from repro.costmodel.value import (
    fragment_benefit,
    fragment_hits,
    fragment_value,
    view_benefit,
    view_value,
)
from repro.engine.cost import ClusterSpec
from repro.errors import ReproError
from repro.partitioning.intervals import Interval
from repro.query.algebra import Relation

DOMAIN = Interval.closed(0, 100)


# ----------------------------------------------------------------------
# Decay
# ----------------------------------------------------------------------
class TestDecay:
    def test_recent_events_weighted_near_one(self):
        dec = ProportionalDecay(t_max=100)
        assert dec(100, 100) == 1.0
        assert dec(100, 99) == pytest.approx(0.99)

    def test_times_out_after_tmax(self):
        dec = ProportionalDecay(t_max=10)
        assert dec(100, 89) == 0.0
        assert dec(100, 90) == pytest.approx(0.9)

    def test_monotone_in_age(self):
        dec = ProportionalDecay(t_max=1000)
        weights = [dec(100, t) for t in range(1, 101)]
        assert weights == sorted(weights)

    def test_future_event_raises(self):
        with pytest.raises(ReproError):
            ProportionalDecay()(10, 11)
        with pytest.raises(ReproError):
            NoDecay()(10, 11)

    def test_no_decay_constant(self):
        dec = NoDecay()
        assert dec(1000, 1) == 1.0

    @given(
        t_now=st.integers(1, 10_000),
        t=st.integers(1, 10_000),
        t_max=st.integers(1, 1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_range_property(self, t_now, t, t_max):
        if t > t_now:
            return
        w = ProportionalDecay(t_max=t_max)(t_now, t)
        assert 0.0 <= w <= 1.0


# ----------------------------------------------------------------------
# Statistics store
# ----------------------------------------------------------------------
class TestStatisticsStore:
    def test_ensure_view_idempotent(self):
        store = StatisticsStore()
        a = store.ensure_view("v1", Relation("t"))
        b = store.ensure_view("v1", Relation("t"))
        assert a is b

    def test_ensure_fragment_tracks_partition(self):
        store = StatisticsStore()
        store.ensure_fragment("v1", "a", Interval.closed(10, 20))
        store.ensure_fragment("v1", "a", Interval.closed(0, 10))
        ivs = store.intervals_for("v1", "a")
        assert ivs[0] == Interval.closed(0, 10)  # sorted
        assert store.partition_attrs("v1") == ["a"]

    def test_drop_fragment(self):
        store = StatisticsStore()
        store.ensure_fragment("v1", "a", Interval.closed(0, 10))
        store.drop_fragment("v1", "a", Interval.closed(0, 10))
        assert store.intervals_for("v1", "a") == []

    def test_record_benefit_updates_last_access(self):
        stats = ViewStats("v", Relation("t"))
        stats.record_benefit(5.0, 100.0)
        stats.record_benefit(3.0, 50.0)  # out of order
        assert stats.last_access_t == 5.0
        assert len(stats.benefit_events) == 2

    def test_actual_overrides(self):
        stats = ViewStats("v", Relation("t"), size_bytes=10.0, creation_cost_s=1.0)
        stats.set_actual_size(99.0)
        stats.set_actual_cost(42.0)
        assert stats.size_bytes == 99.0 and stats.size_is_actual
        assert stats.creation_cost_s == 42.0 and stats.cost_is_actual


class TestStatisticsCaches:
    """The per-partition caches replay exactly what a cold store computes."""

    def _store(self):
        store = StatisticsStore()
        a = store.ensure_fragment("v", "a", Interval.closed(0, 10))
        b = store.ensure_fragment("v", "a", Interval.open_closed(10, 60))
        store.ensure_fragment("v", "a", Interval.open_closed(60, 100))
        for t in (1.0, 2.0, 3.0):
            a.record_hit(t)
        b.record_hit(2.0)  # shared timestamp: distinct set must dedupe
        b.record_hit(4.0)
        return store

    def test_partition_times_matches_naive(self):
        import numpy as np

        store = self._store()
        frags, lens, concat, distinct = store.partition_times("v", "a")
        assert [f.interval for f in frags] == store.intervals_for("v", "a")
        assert lens == [len(f.hit_times) for f in frags]
        assert concat.tolist() == [t for f in frags for t in f.hit_times]
        assert set(distinct.tolist()) == {t for f in frags for t in f.hit_times}
        assert distinct.size == len(set(concat.tolist()))
        assert concat.dtype == np.float64

    def test_partition_times_cached_until_next_hit(self):
        store = self._store()
        first = store.partition_times("v", "a")
        again = store.partition_times("v", "a")
        assert all(x is y for x, y in zip(first, again))  # cache hit: same objects
        store.fragments_for("v", "a")[0].record_hit(9.0)
        frags, lens, concat, _ = store.partition_times("v", "a")
        assert concat is not first[2]
        assert 9.0 in concat.tolist()

    def test_partition_times_invalidated_by_fragment_changes(self):
        store = self._store()
        store.partition_times("v", "a")
        store.ensure_fragment("v", "a", Interval.open_closed(100, 200))
        frags, lens, _, _ = store.partition_times("v", "a")
        assert len(frags) == 4 and lens[-1] == 0
        store.drop_fragment("v", "a", Interval.open_closed(100, 200))
        frags, _, _, _ = store.partition_times("v", "a")
        assert len(frags) == 3

    def test_partition_bounds_parallel_intervals(self):
        store = self._store()
        ivs, lk, uk = store.partition_bounds("v", "a")
        assert ivs == store.intervals_for("v", "a")
        for i, iv in enumerate(ivs):
            assert tuple(lk[i]) == iv._lower_key()
            assert tuple(uk[i]) == iv._upper_key()
        store.ensure_fragment("v", "a", Interval.open_closed(100, 200))
        ivs2, lk2, uk2 = store.partition_bounds("v", "a")
        assert len(ivs2) == 4 and lk2.shape == (4, 2)

    def test_overlapping_intervals_equals_scalar_filter(self):
        store = self._store()
        for theta in (
            Interval.closed(5, 65),
            Interval.point(10.0),
            Interval.open(10, 10.5),
            Interval.closed(200, 300),
            Interval.unbounded(),
        ):
            expected = [iv for iv in store.intervals_for("v", "a") if iv.overlaps(theta)]
            assert store.overlapping_intervals("v", "a", theta) == expected

    def test_fragments_for_cached_and_ordered(self):
        store = self._store()
        frags = store.fragments_for("v", "a")
        assert store.fragments_for("v", "a") is frags
        assert [f.interval for f in frags] == store.intervals_for("v", "a")
        store.ensure_fragment("v", "b", Interval.closed(0, 1))
        assert store.fragments_for("v", "a") is frags  # other partitions untouched

    def test_hit_cell_shared_across_partition(self):
        store = self._store()
        frags = store.fragments_for("v", "a")
        cells = {id(f._hit_cell) for f in frags}
        assert len(cells) == 1  # one revision cell per partition
        before = frags[0]._hit_cell[0]
        frags[1].record_hit(7.0)
        assert frags[0]._hit_cell[0] == before + 1


# ----------------------------------------------------------------------
# View benefit and value
# ----------------------------------------------------------------------
class TestViewValue:
    def make_view(self, cost=100.0, size=1000.0):
        v = ViewStats("v", Relation("t"), size_bytes=size, creation_cost_s=cost)
        return v

    def test_benefit_sums_decayed_savings(self):
        v = self.make_view()
        v.record_benefit(50.0, 10.0)
        v.record_benefit(100.0, 20.0)
        dec = ProportionalDecay(t_max=1000)
        expected = 10.0 * (50 / 100) + 20.0 * 1.0
        assert view_benefit(v, 100.0, dec) == pytest.approx(expected)

    def test_value_formula(self):
        v = self.make_view(cost=100.0, size=1000.0)
        v.record_benefit(100.0, 30.0)
        dec = NoDecay()
        assert view_value(v, 100.0, dec) == pytest.approx(100.0 * 30.0 / 1000.0)

    def test_larger_views_less_competitive(self):
        small = self.make_view(size=100.0)
        big = self.make_view(size=10_000.0)
        for v in (small, big):
            v.record_benefit(10.0, 50.0)
        dec = NoDecay()
        assert view_value(small, 10.0, dec) > view_value(big, 10.0, dec)

    def test_benefit_decays_after_workload_shift(self):
        v = self.make_view()
        v.record_benefit(10.0, 100.0)
        dec = ProportionalDecay(t_max=50)
        early = view_benefit(v, 11.0, dec)
        late = view_benefit(v, 61.0, dec)  # age > t_max
        assert early > 0 and late == 0.0


# ----------------------------------------------------------------------
# Fragment benefit and value
# ----------------------------------------------------------------------
class TestFragmentValue:
    def setup_method(self):
        self.view = ViewStats("v", Relation("t"), size_bytes=1000.0, creation_cost_s=200.0)
        self.frag = FragmentStats("v", "a", Interval.closed(0, 10), size_bytes=100.0)

    def test_hits_decayed(self):
        self.frag.record_hit(50.0)
        self.frag.record_hit(100.0)
        dec = ProportionalDecay(t_max=1000)
        assert fragment_hits(self.frag, 100.0, dec) == pytest.approx(0.5 + 1.0)

    def test_benefit_formula(self):
        self.frag.record_hit(100.0)
        dec = NoDecay()
        expected = 1.0 * (100.0 / 1000.0) * 200.0
        assert fragment_benefit(self.frag, self.view, 100.0, dec) == pytest.approx(expected)

    def test_value_formula(self):
        self.frag.record_hit(100.0)
        dec = NoDecay()
        benefit = fragment_benefit(self.frag, self.view, 100.0, dec)
        expected = 200.0 * benefit / 100.0
        assert fragment_value(self.frag, self.view, 100.0, dec) == pytest.approx(expected)

    def test_hits_override_for_mle(self):
        dec = NoDecay()
        v0 = fragment_value(self.frag, self.view, 100.0, dec)
        v_adj = fragment_value(self.frag, self.view, 100.0, dec, hits_override=3.0)
        assert v0 == 0.0 and v_adj > 0.0


# ----------------------------------------------------------------------
# Nectar / Nectar+
# ----------------------------------------------------------------------
class TestNectar:
    def setup_method(self):
        self.view = ViewStats("v", Relation("t"), size_bytes=1000.0, creation_cost_s=200.0)
        self.frag = FragmentStats("v", "a", Interval.closed(0, 10), size_bytes=100.0)

    def test_nectar_ignores_benefit(self):
        lo = nectar_view_value(self.view, 10.0)
        self.view.record_benefit(9.0, 1e6)
        hi = nectar_view_value(self.view, 10.0)
        assert hi == pytest.approx(self.view.creation_cost_s / (self.view.size_bytes * 1.0))
        assert hi >= lo  # only via ΔT shrinking

    def test_nectar_plus_uses_undecayed_benefit(self):
        self.view.record_benefit(1.0, 10.0)
        self.view.record_benefit(9.0, 10.0)
        v = nectar_plus_view_value(self.view, 10.0)
        assert v == pytest.approx(200.0 * 20.0 / (1000.0 * 1.0))

    def test_staleness_penalizes(self):
        self.view.record_benefit(10.0, 10.0)
        fresh = nectar_plus_view_value(self.view, 11.0)
        stale = nectar_plus_view_value(self.view, 100.0)
        assert fresh > stale

    def test_fragment_variants(self):
        self.frag.record_hit(10.0)
        n = nectar_fragment_value(self.frag, self.view, 11.0)
        np_ = nectar_plus_fragment_value(self.frag, self.view, 11.0)
        assert n > 0 and np_ > 0
        # Nectar+ scales with hit count, plain Nectar does not
        self.frag.record_hit(10.5)
        assert nectar_plus_fragment_value(self.frag, self.view, 11.0) > np_
        assert nectar_fragment_value(self.frag, self.view, 11.0) == pytest.approx(n)


# ----------------------------------------------------------------------
# Estimates
# ----------------------------------------------------------------------
class TestEstimates:
    def test_size_estimate_proportional_overlap(self):
        resident = [(Interval.closed(0, 10), 100.0), (Interval.open_closed(10, 20), 200.0)]
        # candidate [5, 15] overlaps half of each
        est = estimate_fragment_size(Interval.closed(5, 15), resident, DOMAIN)
        assert est == pytest.approx(0.5 * 100 + 0.5 * 200)

    def test_size_estimate_no_overlap(self):
        resident = [(Interval.closed(0, 10), 100.0)]
        assert estimate_fragment_size(Interval.closed(50, 60), resident, DOMAIN) == 0.0

    def test_size_estimate_contained(self):
        resident = [(Interval.closed(0, 100), 1000.0)]
        est = estimate_fragment_size(Interval.closed(0, 10), resident, DOMAIN)
        assert est == pytest.approx(100.0)

    def test_cost_estimate_reads_all_overlapping(self):
        cluster = ClusterSpec()
        resident = [(Interval.closed(0, 50), 1e9), (Interval.open_closed(50, 100), 1e9)]
        cost_one = estimate_fragment_cost(Interval.closed(0, 10), resident, DOMAIN, cluster)
        cost_two = estimate_fragment_cost(Interval.closed(40, 60), resident, DOMAIN, cluster)
        assert cost_two > cost_one  # must read both fragments

    def test_cost_estimate_write_dominates_for_large_candidates(self):
        cluster = ClusterSpec()
        resident = [(Interval.closed(0, 100), 1e9)]
        small = estimate_fragment_cost(Interval.closed(0, 1), resident, DOMAIN, cluster)
        large = estimate_fragment_cost(Interval.closed(0, 99), resident, DOMAIN, cluster)
        assert large > small

    def test_view_size_estimate(self):
        assert estimate_view_size(100.0, 0.5) == 50.0
