"""Tests for Definition-7 partition candidates and the Example-3 scenario."""

from hypothesis import given, settings, strategies as st

from repro.partitioning.candidates import (
    initial_candidates,
    partition_candidates,
    split_fragment,
)
from repro.partitioning.fragmentation import pairwise_disjoint, union_covers
from repro.partitioning.intervals import Interval

DOMAIN = Interval.closed(0, 30)


class TestSplitFragment:
    def test_case1_disjoint(self):
        assert split_fragment(Interval.closed(0, 10), Interval.closed(20, 25)) is None

    def test_case2_selection_contains_fragment(self):
        assert split_fragment(Interval.closed(10, 15), Interval.closed(5, 25)) is None

    def test_case3_overlap_from_left(self):
        """Selection [l, u] with l < l' < u < u' → [l', u] and (u, u']."""
        cand = split_fragment(Interval.open_closed(20, 30), Interval.closed(5, 25))
        assert cand is not None
        assert cand.pieces == (
            Interval.open_closed(20, 25),
            Interval.open_closed(25, 30),
        )

    def test_case4_overlap_from_right(self):
        """Selection [l, u] with l' < l < u' < u → [l', l) and [l, u']."""
        cand = split_fragment(Interval.closed(0, 10), Interval.closed(5, 25))
        assert cand is not None
        assert cand.pieces == (Interval.closed_open(0, 5), Interval.closed(5, 10))

    def test_case5_selection_inside_fragment(self):
        cand = split_fragment(Interval.closed(0, 30), Interval.closed(5, 25))
        assert cand is not None
        assert cand.pieces == (
            Interval.closed_open(0, 5),
            Interval.closed(5, 25),
            Interval.open_closed(25, 30),
        )

    def test_selection_endpoint_on_boundary_no_split(self):
        # selection [0, 25] over fragment [0, 10]: l == l' so only case-2/3
        # logic applies; selection contains the fragment → no candidates.
        assert split_fragment(Interval.closed(0, 10), Interval.closed(0, 25)) is None

    def test_selection_upper_on_fragment_upper(self):
        # [5, 10] inside [0, 10]: only the lower endpoint splits
        cand = split_fragment(Interval.closed(0, 10), Interval.closed(5, 10))
        assert cand is not None
        assert cand.pieces == (Interval.closed_open(0, 5), Interval.closed(5, 10))


class TestExample3:
    """The paper's Example 3, verbatim."""

    FRAGMENTS = [
        Interval.closed(0, 10),
        Interval.open_closed(10, 20),
        Interval.open_closed(20, 30),
    ]

    def test_candidates(self):
        cands = partition_candidates(Interval.closed(5, 25), self.FRAGMENTS, DOMAIN)
        assert len(cands) == 2
        by_parent = {c.parent: c.pieces for c in cands}
        assert by_parent[Interval.closed(0, 10)] == (
            Interval.closed_open(0, 5),
            Interval.closed(5, 10),
        )
        assert by_parent[Interval.open_closed(20, 30)] == (
            Interval.open_closed(20, 25),
            Interval.open_closed(25, 30),
        )


class TestClamping:
    def test_selection_clamped_to_domain(self):
        cands = partition_candidates(Interval.closed(-100, 5), [Interval.closed(0, 30)], DOMAIN)
        # clamped to [0, 5]: only the upper endpoint splits
        assert len(cands) == 1
        assert cands[0].pieces == (
            Interval.closed(0, 5),
            Interval.open_closed(5, 30),
        )

    def test_selection_outside_domain(self):
        assert partition_candidates(
            Interval.closed(100, 200), [Interval.closed(0, 30)], DOMAIN
        ) == []

    def test_initial_candidates_seed_domain(self):
        cands = initial_candidates(Interval.closed(5, 25), DOMAIN)
        assert len(cands) == 1
        assert cands[0].parent == DOMAIN
        assert len(cands[0].pieces) == 3


# ----------------------------------------------------------------------
# Property: split pieces always tile the parent fragment exactly
# ----------------------------------------------------------------------
interval_ints = st.integers(0, 100)


@given(fl=interval_ints, fh=interval_ints, sl=interval_ints, sh=interval_ints)
@settings(max_examples=200, deadline=None)
def test_pieces_tile_parent(fl, fh, sl, sh):
    if fl > fh or sl > sh:
        return
    fragment = Interval.closed(float(fl), float(fh))
    selection = Interval.closed(float(sl), float(sh))
    cand = split_fragment(fragment, selection)
    if cand is None:
        return
    pieces = list(cand.pieces)
    assert len(pieces) in (2, 3)
    assert union_covers(pieces, fragment)
    assert pairwise_disjoint(pieces)
    for piece in pieces:
        assert fragment.contains(piece)


# ----------------------------------------------------------------------
# Oracle: the vectorized case discrimination emits element-for-element the
# scalar loop's candidates (same pieces, same order), on both sides of the
# dispatch threshold.
# ----------------------------------------------------------------------
_kinds = st.sampled_from(["closed", "open", "open_closed", "closed_open"])


@st.composite
def _grid_interval(draw):
    lo = draw(st.integers(0, 29))
    hi = draw(st.integers(lo + 1, 30))
    return getattr(Interval, draw(_kinds))(float(lo), float(hi))


@given(
    st.lists(_grid_interval(), min_size=1, max_size=24),
    _grid_interval(),
)
@settings(max_examples=200, deadline=None)
def test_vector_path_matches_scalar_loop(fragments, selection):
    from repro.partitioning.candidates import _partition_candidates_vector

    clamped = selection.intersect(DOMAIN)
    scalar = [c for c in (split_fragment(f, clamped) for f in fragments) if c is not None]
    assert _partition_candidates_vector(clamped, fragments) == scalar


def test_vector_path_handles_unbounded_fragments():
    from repro.partitioning.candidates import _partition_candidates_vector

    fragments = [
        Interval.unbounded(),
        Interval.at_least(10.0),
        Interval.closed(0, 30),
        Interval.point(15.0),
    ]
    selection = Interval.closed(5, 15)
    scalar = [c for c in (split_fragment(f, selection) for f in fragments) if c is not None]
    assert _partition_candidates_vector(selection, fragments) == scalar


def test_dispatch_agrees_across_threshold():
    """partition_candidates gives the same answer for 15 vs 16+ fragments."""
    fragments = [Interval.closed_open(float(i), float(i + 1)) for i in range(20)]
    selection = Interval.closed(3.5, 17.5)
    wide = partition_candidates(selection, fragments, DOMAIN)
    narrow = partition_candidates(selection, fragments[:15], DOMAIN)
    assert narrow == [c for c in wide if c.parent in fragments[:15]]
