"""Tests for the newer value-model helpers: weighted/realizing hits and
density-normalized adjusted hits."""

import pytest

from repro.costmodel.decay import NoDecay, ProportionalDecay
from repro.costmodel.mle import FittedNormal, adjusted_hits, adjusted_hits_density
from repro.costmodel.stats import FragmentStats
from repro.costmodel.value import fragment_weighted_hits, realizing_hits
from repro.partitioning.intervals import Interval

DOMAIN = Interval.closed(0, 100)
DEC = NoDecay()


def frag(interval=Interval.closed(0, 100)):
    return FragmentStats("v", "a", interval, size_bytes=100.0)


class TestWeightedHits:
    def test_containing_query_counts_fully(self):
        f = frag()
        f.record_hit(1.0, Interval.closed(0, 50))
        piece = Interval.closed(10, 20)
        assert fragment_weighted_hits(f, piece, 2.0, DEC) == pytest.approx(1.0)

    def test_partial_overlap_weighted(self):
        f = frag()
        f.record_hit(1.0, Interval.closed(15, 25))  # covers half of [10, 20]
        piece = Interval.closed(10, 20)
        assert fragment_weighted_hits(f, piece, 2.0, DEC) == pytest.approx(0.5)

    def test_disjoint_query_ignored(self):
        f = frag()
        f.record_hit(1.0, Interval.closed(50, 60))
        assert fragment_weighted_hits(f, Interval.closed(10, 20), 2.0, DEC) == 0.0

    def test_rangeless_hit_counts_fully(self):
        f = frag()
        f.record_hit(1.0, None)
        assert fragment_weighted_hits(f, Interval.closed(10, 20), 2.0, DEC) == 1.0

    def test_decay_applied(self):
        f = frag()
        f.record_hit(5.0, Interval.closed(0, 100))
        dec = ProportionalDecay(t_max=100)
        assert fragment_weighted_hits(f, Interval.closed(10, 20), 10.0, dec) == (pytest.approx(0.5))


class TestRealizingHits:
    PARENT = Interval.closed(0, 100)

    def test_need_inside_piece_realizes(self):
        parent = frag(self.PARENT)
        parent.record_hit(1.0, Interval.closed(10, 20))
        piece = Interval.closed(5, 25)
        assert realizing_hits(parent, self.PARENT, piece, 2.0, DEC) == 1.0

    def test_need_wider_than_piece_does_not(self):
        parent = frag(self.PARENT)
        parent.record_hit(1.0, Interval.closed(10, 60))
        piece = Interval.closed(5, 25)
        assert realizing_hits(parent, self.PARENT, piece, 2.0, DEC) == 0.0

    def test_need_clamped_to_parent(self):
        """A query extending past the parent only needs θ∩parent from it."""
        parent = frag(Interval.closed(0, 30))
        parent.record_hit(1.0, Interval.closed(20, 90))  # needs (20, 30] here
        piece = Interval.closed(15, 30)
        assert realizing_hits(parent, Interval.closed(0, 30), piece, 2.0, DEC) == 1.0

    def test_rangeless_hits_never_realize(self):
        parent = frag(self.PARENT)
        parent.record_hit(1.0, None)
        assert realizing_hits(parent, self.PARENT, Interval.closed(0, 100), 2.0, DEC) == 0.0

    def test_edge_sliver_not_backed_by_wide_queries(self):
        """The anti-sliver property: wide jittering queries don't justify
        carving a thin boundary sliver."""
        parent = frag(self.PARENT)
        for i in range(10):
            parent.record_hit(float(i + 1), Interval.closed(10 + i, 60 + i))
        sliver = Interval.closed(10, 12)
        assert realizing_hits(parent, self.PARENT, sliver, 11.0, DEC) == 0.0


class TestAdjustedHitsDensity:
    FITTED = FittedNormal(mu=50.0, sigma2=100.0)

    def test_equal_width_matches_plain(self):
        iv = Interval.closed(40, 60)
        plain = adjusted_hits(iv, self.FITTED, 10.0, DOMAIN)
        dens = adjusted_hits_density(iv, self.FITTED, 10.0, DOMAIN, reference_width=20.0)
        assert dens == pytest.approx(plain)

    def test_whale_deflated(self):
        whale = Interval.closed(0, 100)
        sliver = Interval.closed(45, 55)
        ref = 10.0
        whale_d = adjusted_hits_density(whale, self.FITTED, 10.0, DOMAIN, ref)
        sliver_d = adjusted_hits_density(sliver, self.FITTED, 10.0, DOMAIN, ref)
        # per reference width, the hot sliver is denser than the whale
        assert sliver_d > whale_d

    def test_neighbour_beats_distant_equal_width(self):
        near = Interval.closed(60, 70)   # near the mu=50 hot spot
        far = Interval.closed(85, 95)
        ref = 10.0
        assert adjusted_hits_density(near, self.FITTED, 10.0, DOMAIN, ref) > (
            adjusted_hits_density(far, self.FITTED, 10.0, DOMAIN, ref)
        )

    def test_out_of_domain_zero(self):
        assert adjusted_hits_density(
            Interval.closed(500, 600), self.FITTED, 10.0, DOMAIN, 10.0
        ) == 0.0

    def test_point_interval_capped(self):
        point = Interval.point(50.0)
        value = adjusted_hits_density(point, self.FITTED, 10.0, DOMAIN, 10.0)
        assert value >= 0.0  # degenerate width handled without blowing up
