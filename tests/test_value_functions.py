"""Tests for the newer value-model helpers: weighted/realizing hits and
density-normalized adjusted hits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel.decay import NoDecay, ProportionalDecay
from repro.costmodel.mle import (
    FittedNormal,
    adjusted_hits,
    adjusted_hits_density,
    fit_partition_distribution,
)
from repro.costmodel.stats import FragmentStats, StatisticsStore
from repro.costmodel.value import (
    RealizingHitsIndex,
    fragment_weighted_hits,
    partition_distribution,
    partition_distributions,
    realizing_hits,
)
from repro.partitioning.intervals import Interval

DOMAIN = Interval.closed(0, 100)
DEC = NoDecay()


def frag(interval=Interval.closed(0, 100)):
    return FragmentStats("v", "a", interval, size_bytes=100.0)


class TestWeightedHits:
    def test_containing_query_counts_fully(self):
        f = frag()
        f.record_hit(1.0, Interval.closed(0, 50))
        piece = Interval.closed(10, 20)
        assert fragment_weighted_hits(f, piece, 2.0, DEC) == pytest.approx(1.0)

    def test_partial_overlap_weighted(self):
        f = frag()
        f.record_hit(1.0, Interval.closed(15, 25))  # covers half of [10, 20]
        piece = Interval.closed(10, 20)
        assert fragment_weighted_hits(f, piece, 2.0, DEC) == pytest.approx(0.5)

    def test_disjoint_query_ignored(self):
        f = frag()
        f.record_hit(1.0, Interval.closed(50, 60))
        assert fragment_weighted_hits(f, Interval.closed(10, 20), 2.0, DEC) == 0.0

    def test_rangeless_hit_counts_fully(self):
        f = frag()
        f.record_hit(1.0, None)
        assert fragment_weighted_hits(f, Interval.closed(10, 20), 2.0, DEC) == 1.0

    def test_decay_applied(self):
        f = frag()
        f.record_hit(5.0, Interval.closed(0, 100))
        dec = ProportionalDecay(t_max=100)
        assert fragment_weighted_hits(f, Interval.closed(10, 20), 10.0, dec) == (pytest.approx(0.5))


class TestRealizingHits:
    PARENT = Interval.closed(0, 100)

    def test_need_inside_piece_realizes(self):
        parent = frag(self.PARENT)
        parent.record_hit(1.0, Interval.closed(10, 20))
        piece = Interval.closed(5, 25)
        assert realizing_hits(parent, self.PARENT, piece, 2.0, DEC) == 1.0

    def test_need_wider_than_piece_does_not(self):
        parent = frag(self.PARENT)
        parent.record_hit(1.0, Interval.closed(10, 60))
        piece = Interval.closed(5, 25)
        assert realizing_hits(parent, self.PARENT, piece, 2.0, DEC) == 0.0

    def test_need_clamped_to_parent(self):
        """A query extending past the parent only needs θ∩parent from it."""
        parent = frag(Interval.closed(0, 30))
        parent.record_hit(1.0, Interval.closed(20, 90))  # needs (20, 30] here
        piece = Interval.closed(15, 30)
        assert realizing_hits(parent, Interval.closed(0, 30), piece, 2.0, DEC) == 1.0

    def test_rangeless_hits_never_realize(self):
        parent = frag(self.PARENT)
        parent.record_hit(1.0, None)
        assert realizing_hits(parent, self.PARENT, Interval.closed(0, 100), 2.0, DEC) == 0.0

    def test_edge_sliver_not_backed_by_wide_queries(self):
        """The anti-sliver property: wide jittering queries don't justify
        carving a thin boundary sliver."""
        parent = frag(self.PARENT)
        for i in range(10):
            parent.record_hit(float(i + 1), Interval.closed(10 + i, 60 + i))
        sliver = Interval.closed(10, 12)
        assert realizing_hits(parent, self.PARENT, sliver, 11.0, DEC) == 0.0


class TestAdjustedHitsDensity:
    FITTED = FittedNormal(mu=50.0, sigma2=100.0)

    def test_equal_width_matches_plain(self):
        iv = Interval.closed(40, 60)
        plain = adjusted_hits(iv, self.FITTED, 10.0, DOMAIN)
        dens = adjusted_hits_density(iv, self.FITTED, 10.0, DOMAIN, reference_width=20.0)
        assert dens == pytest.approx(plain)

    def test_whale_deflated(self):
        whale = Interval.closed(0, 100)
        sliver = Interval.closed(45, 55)
        ref = 10.0
        whale_d = adjusted_hits_density(whale, self.FITTED, 10.0, DOMAIN, ref)
        sliver_d = adjusted_hits_density(sliver, self.FITTED, 10.0, DOMAIN, ref)
        # per reference width, the hot sliver is denser than the whale
        assert sliver_d > whale_d

    def test_neighbour_beats_distant_equal_width(self):
        near = Interval.closed(60, 70)   # near the mu=50 hot spot
        far = Interval.closed(85, 95)
        ref = 10.0
        assert adjusted_hits_density(near, self.FITTED, 10.0, DOMAIN, ref) > (
            adjusted_hits_density(far, self.FITTED, 10.0, DOMAIN, ref)
        )

    def test_out_of_domain_zero(self):
        assert adjusted_hits_density(
            Interval.closed(500, 600), self.FITTED, 10.0, DOMAIN, 10.0
        ) == 0.0

    def test_point_interval_capped(self):
        point = Interval.point(50.0)
        value = adjusted_hits_density(point, self.FITTED, 10.0, DOMAIN, 10.0)
        assert value >= 0.0  # degenerate width handled without blowing up


# ----------------------------------------------------------------------
# Bit-exactness oracles for the vectorized value helpers: identical
# floats to the scalar loops, so every comparison is ``==``.
# ----------------------------------------------------------------------
_grid = st.sampled_from([0.0, 10.0, 25.0, 40.0, 60.0, 85.0, 100.0])


@st.composite
def _ranges(draw):
    if draw(st.booleans()) and draw(st.booleans()):
        return None  # rangeless hit
    lo = draw(_grid)
    hi = draw(_grid.filter(lambda x: x >= lo))
    if hi == lo:
        return Interval.point(lo)
    kind = draw(st.sampled_from(["closed", "open_closed", "closed_open", "open"]))
    return getattr(Interval, kind)(lo, hi)


class TestRealizingHitsIndexOracle:
    PARENT = Interval.closed(0, 100)

    def _parent_with(self, ranges):
        parent = frag(self.PARENT)
        for i, rng in enumerate(ranges):
            parent.record_hit(float(i + 1), rng)
        return parent

    @given(st.lists(_ranges(), min_size=0, max_size=15), st.lists(_ranges(), min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_both_paths_equal_scalar(self, ranges, piece_ranges):
        pieces = [p for p in piece_ranges if p is not None] or [Interval.closed(10, 20)]
        parent = self._parent_with(ranges)
        t_now = float(len(ranges) + 2)
        decay = ProportionalDecay(t_max=1000)
        index = RealizingHitsIndex(parent, self.PARENT, t_now, decay)
        for piece in pieces:  # call 1 exercises the scalar path, 2+ the arrays
            expected = realizing_hits(parent, self.PARENT, piece, t_now, decay)
            assert index.hits_for(piece) == expected
        # re-query after the arrays exist: still exact
        for piece in pieces:
            assert index.hits_for(piece) == realizing_hits(
                parent, self.PARENT, piece, t_now, decay
            )

    def test_no_ranged_hits_lazy_build(self):
        parent = self._parent_with([None, None])
        index = RealizingHitsIndex(parent, self.PARENT, 5.0, DEC)
        piece = Interval.closed(0, 50)
        assert index.hits_for(piece) == 0.0  # scalar path
        assert index.hits_for(piece) == 0.0  # empty-array path

    def test_parent_interval_clamping_matches(self):
        parent_iv = Interval.closed(0, 30)
        parent = FragmentStats("v", "a", parent_iv, size_bytes=10.0)
        parent.record_hit(1.0, Interval.closed(20, 90))
        parent.record_hit(2.0, Interval.closed(25, 28))
        index = RealizingHitsIndex(parent, parent_iv, 3.0, DEC)
        for piece in (Interval.closed(15, 30), Interval.closed(24, 29)):
            expected = realizing_hits(parent, parent_iv, piece, 3.0, DEC)
            assert index.hits_for(piece) == expected


class TestPartitionDistributionsOracle:
    def _store(self):
        store = StatisticsStore()
        spec = {
            ("v1", "a"): [(Interval.closed(0, 20), 6), (Interval.open_closed(20, 100), 2)],
            ("v1", "b"): [(Interval.closed(0, 100), 0)],
            ("v2", "a"): [
                (Interval.closed(0, 50), 3),
                (Interval.closed(40, 80), 3),  # overlapping: shared hit times
                (Interval.open_closed(80, 100), 1),
            ],
        }
        for (view_id, attr), frags in spec.items():
            for iv, nhits in frags:
                f = store.ensure_fragment(view_id, attr, iv)
                for t in range(1, nhits + 1):
                    f.record_hit(float(t), iv)
        return store

    def test_batched_equals_scalar_recomputation(self):
        store = self._store()
        decay = ProportionalDecay(t_max=50)
        t_now = 10.0
        partitions = [("v1", "a", DOMAIN), ("v1", "b", DOMAIN), ("v2", "a", DOMAIN)]
        results = partition_distributions(store, partitions, t_now, decay)
        for view_id, attr, domain in partitions:
            frags = store.fragments_for(view_id, attr)
            values = [
                sum(decay(t_now, t) for t in f.hit_times) if f.hit_times else 0.0
                for f in frags
            ]
            distinct = {t for f in frags for t in f.hit_times}
            total = sum(decay(t_now, t) for t in sorted(distinct))
            got = results[(view_id, attr)]
            if total <= 0:
                assert got is None
                continue
            pairs = [(f.interval, v) for f, v in zip(frags, values)]
            expected = fit_partition_distribution(domain, pairs, 256)
            assert got is not None
            fitted, got_total = got
            assert got_total == pytest.approx(total)
            assert fitted.mu == pytest.approx(expected.mu)
            assert fitted.sigma2 == pytest.approx(expected.sigma2)

    def test_batched_equals_one_at_a_time(self):
        decay = ProportionalDecay(t_max=50)
        partitions = [("v1", "a", DOMAIN), ("v1", "b", DOMAIN), ("v2", "a", DOMAIN)]
        batched = partition_distributions(self._store(), partitions, 10.0, decay)
        store = self._store()  # fresh store: no memo cross-talk
        for view_id, attr, domain in partitions:
            single = partition_distribution(store, view_id, attr, domain, 10.0, decay)
            got = batched[(view_id, attr)]
            if single is None:
                assert got is None
            else:
                assert got[0] == single[0]  # FittedNormal dataclass: exact fields
                assert got[1] == single[1]

    def test_seeds_fragment_hits_memo(self):
        store = self._store()
        decay = ProportionalDecay(t_max=50)
        partition_distributions(store, [("v1", "a", DOMAIN)], 10.0, decay)
        for f in store.fragments_for("v1", "a"):
            memo = f._hits_memo
            assert memo is not None and memo[0] == decay and memo[1] == 10.0
            if f.hit_times:
                assert memo[2] == sum(decay.weights(10.0, f.times_array()).tolist())
            else:
                assert memo[2] == 0.0
