"""Ablation A3 — filter-tree pruning vs a linear matching scan (§8.3).

The filter tree indexes view signatures by relations → join classes →
aggregation shape, so a lookup touches only signature-compatible views.
This is the one benchmark where we measure real wall-clock time: matching
a query against a pool of many registered view signatures, with and
without the index.
"""

from repro.matching.filter_tree import FilterTree
from repro.matching.matcher import match_view
from repro.bench.reporting import format_table
from repro.query.algebra import Aggregate, AggSpec, Join, Relation, Select
from repro.query.predicates import between
from repro.query.signature import compute_signature

N_VIEWS = 600


def build_corpus():
    """Many view signatures over a family of schemas."""
    schemas = {}
    signatures = []
    for i in range(N_VIEWS):
        left = f"fact_{i % 30}"
        right = f"dim_{i % 10}"
        schemas.setdefault(left, (f"f{i % 30}_id", f"f{i % 30}_k", f"f{i % 30}_v"))
        schemas.setdefault(right, (f"d{i % 10}_k", f"d{i % 10}_c"))
        plan = Join(Relation(left), Relation(right), f"f{i % 30}_k", f"d{i % 10}_k")
        if i % 3 == 0:
            plan = Select(plan, (between(f"d{i % 10}_k", 0, 50 + i),))
        if i % 2 == 0:
            plan = Aggregate(
                plan, (f"d{i % 10}_c",), (AggSpec("count", None, f"n_{i % 4}"),)
            )
        signatures.append((f"v{i}", compute_signature(plan, schemas)))
    query = Select(
        Join(Relation("fact_7"), Relation("dim_7"), "f7_k", "d7_k"),
        (between("d7_k", 5, 25),),
    )
    query_sig = compute_signature(query, schemas)
    return signatures, query_sig


def test_ablation_filtertree(benchmark):
    signatures, query_sig = build_corpus()
    tree = FilterTree()
    for view_id, sig in signatures:
        tree.add(view_id, sig)

    def match_with_tree():
        return [
            view_id
            for view_id, sig in tree.candidates(query_sig)
            if match_view(sig, query_sig) is not None
        ]

    def match_linear():
        return [
            view_id
            for view_id, sig in tree.all_views()
            if match_view(sig, query_sig) is not None
        ]

    import time

    t0 = time.perf_counter()
    for _ in range(50):
        linear_result = match_linear()
    linear_s = time.perf_counter() - t0

    tree_result = benchmark(match_with_tree)

    t0 = time.perf_counter()
    for _ in range(50):
        match_with_tree()
    tree_s = time.perf_counter() - t0

    print()
    print(
        format_table(
            ["strategy", "wall time (50 lookups, s)", "candidates checked"],
            [
                ("linear scan", linear_s, len(tree.all_views())),
                ("filter tree", tree_s, len(tree.candidates(query_sig))),
            ],
            title=f"Ablation A3 — filter tree vs linear scan over {N_VIEWS} views",
        )
    )
    # both find the same matches ...
    assert sorted(tree_result) == sorted(linear_result)
    assert tree_result  # the query does have matching views
    # ... but the tree checks far fewer candidates, far faster
    assert len(tree.candidates(query_sig)) < N_VIEWS / 10
    assert tree_s < linear_s
