"""Figure 6 — equi-depth vs adaptive partitioning (Q30 sequence, 100 GB).

Three panels over a workload of Q30 instances with small selectivity and
heavy skew, fragment size unbounded (as in the paper):

* (a) cost of the instrumented query that materializes and partitions the
  view — grows with the number of generated fragments;
* (b) average time of the rewritten queries that reuse the view;
* (c) cumulative time over the whole sequence.

The paper's claims: creation cost increases with fragment count and
DeepSea's workload-aware creation is cheapest (a); with a comparable
fragment count equi-depth reads larger fragments than DeepSea (b);
DeepSea has the lowest cumulative time (c).
"""

import numpy as np

from repro.baselines import deepsea, equidepth
from repro.bench.harness import uniform_fixture
from repro.bench.reporting import format_table
from repro.workloads.generator import SyntheticSpec, synthetic_workload

VARIANTS = ("DS", "E-6", "E-15", "E-30", "E-60")
N_QUERIES = 15


def run_experiment():
    fx = uniform_fixture(100.0)
    plans = synthetic_workload(
        SyntheticSpec("q30", "S", "H", n_queries=N_QUERIES, seed=3), fx.item_domain
    )
    results = {}
    for label in VARIANTS:
        if label == "DS":
            system = deepsea(fx.catalog, domains=fx.domains, bounds=None)
        else:
            k = int(label.split("-")[1])
            system = equidepth(fx.catalog, k, domains=fx.domains, bounds=None)
        reports = [system.execute(p) for p in plans]
        created_at = next(i for i, r in enumerate(reports) if r.views_created)
        after = reports[created_at + 1 :]
        fragments = sum(
            len(system.pool.fragments_of(v, a))
            for v in system.pool.resident_view_ids()
            for a in system.pool.partition_attrs(v)
        )
        results[label] = {
            "created_at": created_at + 1,
            "first": reports[created_at].total_s,
            "avg_rest": float(np.mean([r.total_s for r in after])),
            "cumulative": float(sum(r.total_s for r in reports)),
            "bytes_rest": float(np.mean([r.execution_ledger.bytes_read for r in after])),
            "fragments": fragments,
        }
    return results


def test_fig6_equidepth(once):
    results = once(run_experiment)
    rows = [
        (
            label,
            r["fragments"],
            r["first"],
            r["avg_rest"],
            r["cumulative"],
            r["bytes_rest"] / 1e9,
        )
        for label, r in results.items()
    ]
    print()
    print(
        format_table(
            [
                "variant",
                "fragments",
                "(a) instrumented query (s)",
                "(b) avg reuse (s)",
                "(c) cumulative (s)",
                "reuse GB/query",
            ],
            rows,
            title=f"Figure 6 — equi-depth vs adaptive (DeepSea), Q30 x {N_QUERIES}, 100GB",
        )
    )
    # (a) creation cost increases with equi-depth fragment count ...
    firsts = [results[v]["first"] for v in ("E-6", "E-15", "E-30", "E-60")]
    assert firsts == sorted(firsts)
    # ... and DeepSea's workload-aware creation is the cheapest.
    assert results["DS"]["first"] <= results["E-6"]["first"]
    # (b) equi-depth with few fragments reads more data than DeepSea ...
    assert results["DS"]["bytes_rest"] < results["E-6"]["bytes_rest"]
    # ... making its rewritten queries slower.
    assert results["DS"]["avg_rest"] <= results["E-6"]["avg_rest"]
    # (c) DeepSea's cumulative time is at worst within a few percent of the
    # best equi-depth setting, without knowing the workload in advance.
    best_e = min(results[v]["cumulative"] for v in VARIANTS[1:])
    assert results["DS"]["cumulative"] <= 1.10 * best_e
