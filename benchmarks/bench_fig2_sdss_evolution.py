"""Figure 2 — evolution of selection ranges over the SDSS query sequence.

The paper's figure shows the first ~3 000 queries focused on 200-300
degrees, a later shift to ~100 degrees, and full-domain scans near query
1 000.  We regenerate the per-window midpoint statistics of the synthetic
log and assert those phases.
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.workloads.sdss import SDSS_RA_DOMAIN, SDSSConfig, generate_sdss_log


def build_evolution():
    log = generate_sdss_log(SDSSConfig(n_queries=10_000))
    window = 1_000
    rows = []
    for start in range(0, 10_000, window):
        chunk = log[start : start + window]
        narrow = [iv.midpoint for iv in chunk if iv.width < 100]
        full_domain = sum(1 for iv in chunk if iv == SDSS_RA_DOMAIN)
        rows.append(
            (
                f"{start + 1}..{start + window}",
                float(np.mean(narrow)),
                float(np.std(narrow)),
                full_domain,
            )
        )
    return rows


def test_fig2_sdss_evolution(once):
    rows = once(build_evolution)
    print()
    print(
        format_table(
            ["queries", "mean midpoint (deg)", "stdev", "full-domain scans"],
            rows,
            title="Figure 2 — evolution of selection ranges",
        )
    )
    # early windows focus on 200..300 degrees
    for row in rows[:3]:
        assert 200 <= row[1] <= 300
    # late windows shift to around 100 degrees
    for row in rows[5:]:
        assert 60 <= row[1] <= 140
    # the vertical line near query 1000: at least one full-domain scan there
    assert rows[1][3] >= 1
