"""Ablation A2 — fragment-size bounding (§9's φ threshold).

Without an upper bound, infrequently queried ranges become one enormous
fragment whose reads dominate any query that strays outside the hot set;
too small a φ multiplies creation overhead (more files).  We sweep φ on a
spread-out (lightly skewed) workload and report creation cost and
steady-state reuse time.
"""

import numpy as np

from repro import DeepSea, Policy, SizeBounds
from repro.bench.harness import uniform_fixture
from repro.bench.reporting import format_table
from repro.workloads.generator import SyntheticSpec, synthetic_workload

PHIS = (None, 0.5, 0.25, 0.10, 0.02)
N_QUERIES = 30


def run_experiment():
    fx = uniform_fixture(500.0)
    plans = synthetic_workload(
        SyntheticSpec("q30", "S", "L", n_queries=N_QUERIES, seed=43), fx.item_domain
    )
    out = {}
    for phi in PHIS:
        bounds = SizeBounds(phi=phi) if phi is not None else None
        system = DeepSea(fx.catalog, domains=fx.domains, policy=Policy(bounds=bounds))
        reports = [system.execute(p) for p in plans]
        steady = [
            r.total_s
            for r in reports
            if r.reused_view and not r.views_created and r.refinements == 0
        ]
        out[phi] = {
            "creation": sum(r.creation_s for r in reports),
            "steady": float(np.mean(steady)) if steady else float("nan"),
            "total": sum(r.total_s for r in reports),
        }
    return out


def test_ablation_bounding(once):
    results = once(run_experiment)
    rows = [
        ("unbounded" if phi is None else f"phi={phi}", r["creation"], r["steady"], r["total"])
        for phi, r in results.items()
    ]
    print()
    print(
        format_table(
            ["bound", "creation (s)", "steady reuse (s)", "total (s)"],
            rows,
            title=f"Ablation A2 — fragment-size bound sweep, Q30 x {N_QUERIES} (S, light skew)",
        )
    )
    # bounding improves steady-state reads over unbounded cold giants
    assert results[0.10]["steady"] <= results[None]["steady"]
    # but an aggressive bound costs more at creation than a moderate one
    # (more fragment files); unbounded variants pay later via refinements
    assert results[0.02]["creation"] >= results[0.25]["creation"]
