"""Ablation A1 — the benefit decay function under a workload shift.

DeepSea weights benefits by ``DEC(t_now, t)`` so that after a shift, views
fitting the old pattern lose value and are replaced (§1, §7.1).  We run a
two-phase workload under a tight pool with decay on (the paper's DEC) and
off (DEC ≡ 1) and compare the second phase: without decay the stale
first-phase entries keep outranking the new pattern's fragments.
"""

from repro import DeepSea, Policy
from repro.bench.harness import uniform_fixture
from repro.bench.reporting import format_table
from repro.costmodel.decay import NoDecay, ProportionalDecay
from repro.workloads.generator import SyntheticSpec, phased_workload

POOL_FRACTION = 0.12
N_PER_PHASE = 60


def run_experiment():
    fx = uniform_fixture(500.0)
    plans = phased_workload(
        [
            SyntheticSpec("q30", "M", "H", n_queries=N_PER_PHASE, center=0.25, seed=41),
            SyntheticSpec("q30", "M", "H", n_queries=N_PER_PHASE, center=0.75, seed=42),
        ],
        fx.item_domain,
    )
    smax = fx.catalog.total_size_bytes * POOL_FRACTION
    out = {}
    for label, decay in (
        ("decay", ProportionalDecay(t_max=80.0)),
        ("no-decay", NoDecay()),
    ):
        system = DeepSea(
            fx.catalog,
            domains=fx.domains,
            smax_bytes=smax,
            policy=Policy(decay=decay),
        )
        reports = [system.execute(p) for p in plans]
        out[label] = {
            "total": sum(r.total_s for r in reports),
            "phase2": sum(r.total_s for r in reports[N_PER_PHASE:]),
            "phase2_reuse": sum(1 for r in reports[N_PER_PHASE:] if r.reused_view),
        }
    return out


def test_ablation_decay(once):
    results = once(run_experiment)
    rows = [(label, r["total"], r["phase2"], r["phase2_reuse"]) for label, r in results.items()]
    print()
    print(
        format_table(
            ["variant", "total (s)", "phase-2 (s)", "phase-2 reuses"],
            rows,
            title="Ablation A1 — decay vs no decay under a workload shift "
            f"(pool {POOL_FRACTION:.0%} of base)",
        )
    )
    with_decay = results["decay"]
    without = results["no-decay"]
    # decay lets the pool adapt: at least as many phase-2 reuses and no
    # worse phase-2 time
    assert with_decay["phase2_reuse"] >= without["phase2_reuse"]
    assert with_decay["phase2"] <= 1.05 * without["phase2"]
