"""Figure 5b — selection strategies (N, N+, DS) under pool-size limits.

The paper varies the pool from 10 % to 100 % of the base-table size and
shows Nectar+ consistently beating Nectar and DeepSea consistently
beating Nectar+, with the gap widest at small pools.  We reproduce the
sweep and assert DS ≤ N+ ≤ N at the tight pools and DS best overall.
"""

from repro.baselines import deepsea, hive, nectar, nectar_plus
from repro.bench.harness import run_system, sdss_fixture
from repro.bench.reporting import format_table
from repro.workloads.generator import sdss_mapped_workload

N_QUERIES = 300
POOL_FRACTIONS = (0.10, 0.25, 0.50, 1.00)


def run_experiment():
    fx = sdss_fixture(500.0)
    plans = sdss_mapped_workload(fx.log, fx.item_domain, n_queries=N_QUERIES, seed=2)
    base = fx.catalog.total_size_bytes
    hive_total = run_system("H", hive(fx.catalog, domains=fx.domains), plans).total_s
    table = {}
    for frac in POOL_FRACTIONS:
        cell = {}
        for label, factory in (("N", nectar), ("N+", nectar_plus), ("DS", deepsea)):
            system = factory(fx.catalog, domains=fx.domains, smax_bytes=base * frac)
            cell[label] = run_system(label, system, plans).total_s
        table[frac] = cell
    return hive_total, table


def test_fig5b_selection_strategies(once):
    hive_total, table = once(run_experiment)
    rows = [
        (
            f"{int(frac * 100)}%",
            cell["N"],
            cell["N+"],
            cell["DS"],
            cell["DS"] / cell["N"],
        )
        for frac, cell in table.items()
    ]
    print()
    print(
        format_table(
            ["pool size", "N (s)", "N+ (s)", "DS (s)", "DS/N"],
            rows,
            title=f"Figure 5b — selection strategies, {N_QUERIES} queries, 500GB "
            f"(Hive reference: {hive_total:,.0f}s)",
        )
    )
    # DeepSea clearly beats plain Nectar at the tight pools where the
    # paper's headline claim lives, and stays within noise elsewhere.
    for frac in (0.10, 0.25):
        assert table[frac]["DS"] < table[frac]["N"], f"DS vs N broken at {frac:.0%}"
    for frac, cell in table.items():
        assert cell["DS"] <= 1.15 * cell["N"], f"DS vs N broken at {frac:.0%}"
    # At the tightest pools DeepSea's advantage over Nectar is largest.
    assert table[0.10]["DS"] / table[0.10]["N"] < table[1.00]["DS"] / table[1.00]["N"] + 0.05
    # DeepSea stays competitive with Nectar+ everywhere (the paper has DS
    # strictly ahead; our exact-repeat-heavy mix makes them trade places at
    # some pool sizes — see EXPERIMENTS.md).
    for frac, cell in table.items():
        assert cell["DS"] <= 1.25 * cell["N+"], f"DS vs N+ broken at {frac:.0%}"
    # Larger pools help every strategy (monotone trend for DS).
    ds_series = [table[f]["DS"] for f in POOL_FRACTIONS]
    assert ds_series[-1] < ds_series[0]
