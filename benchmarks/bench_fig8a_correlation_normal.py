"""Figure 8a — exploiting fragment correlations (normal workload).

Twenty Q30 queries — ten with big selectivity then ten with small
selectivity, all heavily skewed around the same hot spot — on a 500 GB
instance with a small pool.  DeepSea smooths fragment hits with the
MLE-fitted normal distribution, keeping fragments that neighbour the hot
spot resident; Nectar's hit-count-only strategy evicts them.  The paper's
claim: DS's cumulative time is clearly below Nectar's.
"""

import numpy as np

from repro.baselines import deepsea, nectar
from repro.bench.harness import uniform_fixture
from repro.bench.reporting import format_series, format_table
from repro.workloads.generator import SyntheticSpec, phased_workload

POOL_GB = 7.0


def run_experiment():
    fx = uniform_fixture(500.0)
    plans = phased_workload(
        [
            SyntheticSpec("q30", "B", "H", n_queries=10, seed=11),
            SyntheticSpec("q30", "S", "H", n_queries=10, seed=12),
        ],
        fx.item_domain,
    )
    out = {}
    for label, factory in (("N", nectar), ("DS", deepsea)):
        system = factory(fx.catalog, domains=fx.domains, smax_bytes=POOL_GB * 1e9)
        times = [system.execute(p).total_s for p in plans]
        out[label] = list(np.cumsum(times))
    return out


def test_fig8a_correlation_normal(once):
    series = once(run_experiment)
    print()
    print(format_series("N  cumulative", series["N"], every=2))
    print(format_series("DS cumulative", series["DS"], every=2))
    print(
        format_table(
            ["strategy", "total (s)"],
            [("N", series["N"][-1]), ("DS", series["DS"][-1])],
            title=f"Figure 8a — normal selection ranges, pool {POOL_GB:.0f} GB, "
            "Q30_1..Q30_20, 500GB",
        )
    )
    assert series["DS"][-1] < series["N"][-1]
