"""Figure 8b — robustness of the MLE smoothing under Zipf selections.

DeepSea fits a *normal* distribution to fragment hits; the paper checks
that when the workload's selection ranges instead follow a radically
different distribution (Zipf), DeepSea's selection strategy does not fall
behind Nectar's.  Pool sizes 4, 8, 25 GB on a 500 GB instance.
"""

from repro.baselines import deepsea, nectar
from repro.bench.harness import uniform_fixture
from repro.bench.reporting import format_table
from repro.workloads.generator import SyntheticSpec, synthetic_workload

POOLS_GB = (4.0, 8.0, 25.0)
N_QUERIES = 20


def run_experiment():
    fx = uniform_fixture(500.0)
    plans = synthetic_workload(
        SyntheticSpec("q30", "S", "Z", n_queries=N_QUERIES, seed=13), fx.item_domain
    )
    table = {}
    for pool_gb in POOLS_GB:
        cell = {}
        for label, factory in (("N", nectar), ("DS", deepsea)):
            system = factory(fx.catalog, domains=fx.domains, smax_bytes=pool_gb * 1e9)
            cell[label] = sum(system.execute(p).total_s for p in plans)
        table[pool_gb] = cell
    return table


def test_fig8b_correlation_zipf(once):
    table = once(run_experiment)
    rows = [
        (f"{pool:.0f} GB", cell["N"], cell["DS"], cell["DS"] / cell["N"])
        for pool, cell in table.items()
    ]
    print()
    print(
        format_table(
            ["pool size", "N (s)", "DS (s)", "DS/N"],
            rows,
            title=f"Figure 8b — Zipf selection ranges, Q30 x {N_QUERIES}, 500GB",
        )
    )
    # the paper's claim: DeepSea "does not perform worse than Nectar" even
    # though the fitted distribution is wrong for Zipf data
    for pool, cell in table.items():
        assert cell["DS"] <= 1.10 * cell["N"], pool
