"""Ablation A5 — the §11 fragment-merging extension.

"...how to merge consecutive fragments that are mostly accessed together."

A workload first explores a narrow range and then settles on a wider one
spanning the earlier fragment and its neighbour: every steady-state query
reads two files.  With merging enabled the pair is coalesced once its
co-access record pays for the rewrite, and subsequent queries read one
file (one fewer map task + dispatch).
"""

import numpy as np

from repro import DeepSea, Policy
from repro.bench.harness import uniform_fixture
from repro.bench.reporting import format_table
from repro.workloads.bigbench import q30

PHASE1 = (4_000, 12_000)
PHASE2 = (4_000, 20_000)


def run_experiment():
    fx = uniform_fixture(500.0)
    # jitter phase-2 endpoints so each query is distinct (no whole-result
    # aggregate reuse) and covers must read the fragment pair every time
    plans = [q30(*PHASE1)] * 3 + [q30(PHASE2[0] + 7 * i, PHASE2[1] - 5 * i) for i in range(40)]
    out = {}
    for label, merge in (("merging", True), ("no merging", False)):
        system = DeepSea(
            fx.catalog,
            domains=fx.domains,
            policy=Policy(
                evidence_factor=0.0,
                merge_fragments=merge,
                merge_threshold=0.5,
                bounds=None,
            ),
        )
        reports = [system.execute(p) for p in plans]
        tail = reports[-15:]
        out[label] = {
            "total": sum(r.total_s for r in reports),
            "tail_avg": float(np.mean([r.total_s for r in tail])),
            "tail_frags": float(np.mean([r.fragments_read for r in tail])),
            "resident": sum(
                len(system.pool.fragments_of(v, a))
                for v in system.pool.resident_view_ids()
                for a in system.pool.partition_attrs(v)
            ),
        }
    return out


def test_ablation_merging(once):
    results = once(run_experiment)
    rows = [
        (label, r["total"], r["tail_avg"], r["tail_frags"], r["resident"])
        for label, r in results.items()
    ]
    print()
    print(
        format_table(
            ["variant", "total (s)", "tail avg (s)", "tail frags/query", "resident frags"],
            rows,
            title="Ablation A5 — §11 fragment merging on a settle-down workload",
        )
    )
    with_merge = results["merging"]
    without = results["no merging"]
    # once merged, steady-state queries touch fewer files ...
    assert with_merge["tail_frags"] <= without["tail_frags"]
    # ... and the variant is no slower overall
    assert with_merge["total"] <= 1.05 * without["total"]
