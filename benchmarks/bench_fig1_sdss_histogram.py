"""Figure 1 — histogram of selection ranges on SDSS.

Regenerates the per-bin hit counts over attribute ``ra`` for the synthetic
SDSS log and asserts the properties the paper reads off the figure:
pronounced hot spots and spatial correlation (hot bins have warm
neighbours).
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.workloads.sdss import SDSSConfig, generate_sdss_log, range_histogram


def build_histogram():
    log = generate_sdss_log(SDSSConfig(n_queries=10_000))
    edges, hits = range_histogram(log, nbins=42)
    return edges, hits


def test_fig1_sdss_histogram(once):
    edges, hits = once(build_histogram)
    rows = [(f"{edges[i]:.0f}..{edges[i + 1]:.0f}", int(hits[i])) for i in range(len(hits))]
    print()
    print(format_table(["ra range (deg)", "hits"], rows, title="Figure 1 — SDSS hits"))

    # non-uniform: the hottest bin dwarfs the median
    assert hits.max() > 10 * max(np.median(hits), 1)
    # two hot regions: the late phase peak (~100 deg) dominates, and the
    # early phase region (200..300 deg) is clearly warmer than the median
    centers = (edges[:-1] + edges[1:]) / 2
    peak_center = centers[int(hits.argmax())]
    assert 60 <= peak_center <= 140
    early = hits[(centers >= 220) & (centers <= 280)]
    assert early.max() > 3 * max(np.median(hits), 1)
    # spatial correlation: neighbours of the peak are warm
    peak = int(hits.argmax())
    for n in (peak - 1, peak + 1):
        if 0 <= n < len(hits):
            assert hits[n] > np.median(hits)
