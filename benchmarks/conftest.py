"""Shared benchmark configuration.

Each benchmark reproduces one table or figure of the paper.  Experiments
are deterministic (seeded) and report *simulated* cluster seconds; the
pytest-benchmark timer around them measures harness wall-time only.  Every
benchmark prints the paper-shaped rows/series it regenerates and asserts
the paper's qualitative claims.
"""

import pytest


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    return lambda fn: run_once(benchmark, fn)
