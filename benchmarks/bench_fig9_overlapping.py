"""Figure 9 — overlapping vs horizontal partitioning under a moving hot spot.

Q30 queries with small selectivity and heavy skew whose midpoints march
across the domain in three phases (the paper uses 20 000 → 40 000 →
60 000 over [0, 400 000]; we use the same 5 % / 10 % / 15 % positions of
our item domain, on the 500 GB instance where fragment reads are in the
byte-proportional regime — see EXPERIMENTS.md).  Horizontal
partitioning must split-and-rewrite a large fragment at each shift;
overlapping partitioning writes only the small newly hot fragment and
keeps the old one (Example 2 / Fig 3), so its
cumulative time stays lower.
"""

import numpy as np

from repro.baselines import deepsea
from repro.bench.harness import uniform_fixture
from repro.bench.reporting import format_series, format_table
from repro.workloads.generator import SyntheticSpec, phased_workload

PHASE_CENTERS = (0.05, 0.10, 0.15)  # the paper's 20k/40k/60k over [0, 400k]


def build_plans(fx):
    phases = [
        SyntheticSpec("q30", "S", "H", n_queries=15, center=c, seed=20 + i)
        for i, c in enumerate(PHASE_CENTERS)
    ]
    return phased_workload(phases, fx.item_domain)


def run_experiment():
    fx = uniform_fixture(500.0)
    plans = build_plans(fx)
    out = {}
    for label, overlapping in (("Horizontal", False), ("Overlapping", True)):
        system = deepsea(fx.catalog, domains=fx.domains, overlapping=overlapping, bounds=None)
        reports = [system.execute(p) for p in plans]
        out[label] = {
            "cumulative": list(np.cumsum([r.total_s for r in reports])),
            "bytes_written": sum(
                r.creation_ledger.bytes_written + r.execution_ledger.bytes_written
                for r in reports
            ),
            "refinements": sum(r.refinements for r in reports),
        }
    return out


def test_fig9_overlapping(once):
    results = once(run_experiment)
    horizontal = results["Horizontal"]["cumulative"]
    overlapping = results["Overlapping"]["cumulative"]
    print()
    print(format_series("Horizontal  cumulative", horizontal, every=3))
    print(format_series("Overlapping cumulative", overlapping, every=3))
    rows = [
        (label, r["cumulative"][-1], r["bytes_written"] / 1e9, r["refinements"])
        for label, r in results.items()
    ]
    print(
        format_table(
            ["partitioning", "total (s)", "GB written", "refinements"],
            rows,
            title="Figure 9 — overlapping vs horizontal partitioning, "
            "Q30_1..Q30_45 with shifting midpoints, 500GB",
        )
    )
    # Overlapping partitioning is more robust to the workload shifts.
    # Because an overlapping refinement writes only the newly hot piece
    # (no cold-remainder rewrite), the same §7.2 cost-benefit filter
    # approves it where a horizontal split's full rewrite cost is
    # prohibitive — so the overlapping variant adapts at the shifts and
    # finishes faster.
    assert results["Overlapping"]["refinements"] >= results["Horizontal"]["refinements"]
    assert overlapping[-1] < horizontal[-1]
    # The adaptation pays off inside the shifted phases (last two thirds).
    phase1 = len(overlapping) // 3
    assert (overlapping[-1] - overlapping[phase1]) < (horizontal[-1] - horizontal[phase1])
