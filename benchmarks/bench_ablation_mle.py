"""Ablation A4 — MLE hit smoothing on/off under pool pressure.

The Figure-8a scenario isolates what smoothing buys: a focused hot spot
whose queries shrink from big to small selectivity.  With smoothing on,
fragments *near* the hot spot keep non-zero value and survive eviction,
so the small-selectivity phase finds its neighbours resident.  We run the
same workload with `use_mle` on and off and compare.
"""

from repro import DeepSea, Policy
from repro.bench.harness import uniform_fixture
from repro.bench.reporting import format_table
from repro.workloads.generator import SyntheticSpec, phased_workload

POOL_GB = 7.0


def run_experiment():
    fx = uniform_fixture(500.0)
    plans = phased_workload(
        [
            SyntheticSpec("q30", "B", "H", n_queries=10, seed=11),
            SyntheticSpec("q30", "S", "H", n_queries=10, seed=12),
        ],
        fx.item_domain,
    )
    out = {}
    for label, use_mle in (("smoothing", True), ("raw hits", False)):
        system = DeepSea(
            fx.catalog,
            domains=fx.domains,
            smax_bytes=POOL_GB * 1e9,
            policy=Policy(use_mle=use_mle),
        )
        reports = [system.execute(p) for p in plans]
        out[label] = {
            "total": sum(r.total_s for r in reports),
            "phase2_reuse": sum(1 for r in reports[10:] if r.reused_view),
        }
    return out


def test_ablation_mle(once):
    results = once(run_experiment)
    rows = [(label, r["total"], r["phase2_reuse"]) for label, r in results.items()]
    print()
    print(
        format_table(
            ["variant", "total (s)", "phase-2 reuses"],
            rows,
            title=f"Ablation A4 — MLE smoothing on/off, Fig-8a workload, pool {POOL_GB:.0f} GB",
        )
    )
    # on the focused workload smoothing never hurts and typically helps
    assert results["smoothing"]["total"] <= 1.05 * results["raw hits"]["total"]
