"""Figure 7b — queries needed to recoup the materialization cost.

DeepSea does not push selections below an intermediate it materializes,
paying an up-front penalty; the paper reports how many queries it takes
each variant to recoup that cost relative to Hive (3-15 queries across
the grid).  We compute the first query index where the variant's
cumulative time drops below Hive's.
"""

import itertools

import numpy as np

from repro.baselines import deepsea, equidepth, hive, non_partitioned
from repro.bench.harness import uniform_fixture
from repro.bench.reporting import format_table
from repro.workloads.generator import SyntheticSpec, synthetic_workload

SELECTIVITIES = ("B", "M", "S")
SKEWS = ("U", "L", "H")
N_QUERIES = 25


def recoup_point(variant_times, hive_times):
    """First query after which the variant's cumulative time stays below
    Hive's forever — i.e. the materialization penalty is paid off."""
    cum_v = np.cumsum(variant_times)
    cum_h = np.cumsum(hive_times)
    behind = np.flatnonzero(cum_v > cum_h)
    if len(behind) == 0:
        return 1
    if behind[-1] == len(cum_v) - 1:
        return None  # never recouped within the horizon
    return int(behind[-1]) + 2


def run_cell(fx, sel, skew):
    plans = synthetic_workload(
        SyntheticSpec("q30", sel, skew, n_queries=N_QUERIES, seed=7), fx.item_domain
    )
    system_h = hive(fx.catalog, domains=fx.domains)
    hive_times = [system_h.execute(p).total_s for p in plans]
    out = {}
    for label, make in (
        ("NP", lambda: non_partitioned(fx.catalog, domains=fx.domains)),
        ("E", lambda: equidepth(fx.catalog, 15, domains=fx.domains)),
        ("DS", lambda: deepsea(fx.catalog, domains=fx.domains)),
    ):
        system = make()
        times = [system.execute(p).total_s for p in plans]
        out[label] = recoup_point(times, hive_times)
    return out


def run_experiment():
    fx = uniform_fixture(500.0)
    return {
        f"{sel}{skew}": run_cell(fx, sel, skew)
        for sel, skew in itertools.product(SELECTIVITIES, SKEWS)
    }


def test_fig7b_recoup(once):
    grid = once(run_experiment)
    rows = [
        (cell, v["NP"] or f">{N_QUERIES}", v["E"] or f">{N_QUERIES}", v["DS"] or f">{N_QUERIES}")
        for cell, v in grid.items()
    ]
    print()
    print(
        format_table(
            ["setting", "NP", "E", "DS"],
            rows,
            title="Figure 7b — # of queries needed to recoup materialization cost "
            "(vs Hive), Q30, 500GB",
        )
    )
    for cell, v in grid.items():
        # every variant recoups its materialization cost within the horizon
        assert v["DS"] is not None and v["DS"] <= 20, cell
        assert v["E"] is not None and v["E"] <= 20, cell
    # the paper: recoup points are similar across variants, except that for
    # heavily skewed large-selectivity workloads DeepSea has the advantage
    assert grid["BH"]["DS"] <= grid["BH"]["E"]
