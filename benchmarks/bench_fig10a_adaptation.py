"""Figure 10a — adaptation to workload changes (Q5 × 200, 100 GB).

Two hundred Q5 queries with big selectivity and heavy skew; the first
hundred follow one distribution, the next hundred another.  The paper
compares materialization without partitioning (NP), equi-depth with five
fragments (E-5), DeepSea without repartitioning (NR), and full DeepSea —
DS beats NR by ~7 % and E-5 by ~27 % because progressive repartitioning
adapts the fragments to the new distribution.  Fragment size is left
unbounded (as in §10.2's experiments), so the never-queried region stays
one large fragment — the situation progressive repartitioning exists to
fix.

Deviation: the paper runs this on a 100 GB instance; at that scale our
cost model's one-task-wave read floor hides all fragment-size differences
(every fragment read costs one wave), so repartitioning cannot pay off by
construction.  We run the same workload on the 500 GB instance, where
reads are in the byte-proportional regime — see EXPERIMENTS.md.
"""

from repro.baselines import deepsea, equidepth, no_repartition, non_partitioned
from repro.bench.harness import uniform_fixture
from repro.bench.reporting import format_table
from repro.workloads.generator import SyntheticSpec, phased_workload

N_PER_PHASE = 100


def build_plans(fx):
    return phased_workload(
        [
            SyntheticSpec("q05", "B", "H", n_queries=N_PER_PHASE, center=0.3, seed=31),
            SyntheticSpec("q05", "B", "H", n_queries=N_PER_PHASE, center=0.7, seed=32),
        ],
        fx.item_domain,
    )


def run_experiment():
    fx = uniform_fixture(500.0)
    plans = build_plans(fx)
    out = {}
    for label, make in (
        ("NP", lambda: non_partitioned(fx.catalog, domains=fx.domains)),
        ("E-5", lambda: equidepth(fx.catalog, 5, domains=fx.domains, bounds=None)),
        ("NR", lambda: no_repartition(fx.catalog, domains=fx.domains, bounds=None)),
        ("DS", lambda: deepsea(fx.catalog, domains=fx.domains, bounds=None)),
    ):
        system = make()
        reports = [system.execute(p) for p in plans]
        out[label] = {
            "total": sum(r.total_s for r in reports),
            "phase2": sum(r.total_s for r in reports[N_PER_PHASE:]),
            "per_query": [r.total_s for r in reports],
        }
    return out


def test_fig10a_adaptation(once):
    results = once(run_experiment)
    rows = [(label, r["total"], r["phase2"]) for label, r in results.items()]
    print()
    print(
        format_table(
            ["variant", "total (s)", "phase-2 total (s)"],
            rows,
            title="Figure 10a — adaptation to workload changes, Q5 x 200, 500GB",
        )
    )
    # After the shift, progressive repartitioning pays: DeepSea's phase-2
    # time beats the variant that never repartitions (the paper's point);
    # over the whole workload DS lands at worst a whisker above NR because
    # phase-1 refinements are not yet amortized at this horizon.
    assert results["DS"]["phase2"] < results["NR"]["phase2"]
    assert results["DS"]["total"] <= 1.03 * results["NR"]["total"]
    # DeepSea beats equi-depth partitioning (paper: ~27%)
    assert results["DS"]["total"] < results["E-5"]["total"]
    # and partitioning in any form beats whole-view materialization
    assert results["DS"]["total"] < results["NP"]["total"]


def run_ratio_experiment():
    """Shared with Figure 10b: per-query times for DS and NR."""
    fx = uniform_fixture(500.0)
    plans = build_plans(fx)
    out = {}
    for label, make in (
        ("NR", lambda: no_repartition(fx.catalog, domains=fx.domains, bounds=None)),
        ("DS", lambda: deepsea(fx.catalog, domains=fx.domains, bounds=None)),
    ):
        system = make()
        out[label] = [system.execute(p).total_s for p in plans]
    return out
