"""Table 1 — experiment parameters and their values.

Validates that every cell of the paper's parameter grid is constructible:
instance sizes (100 GB, 500 GB), pool sizes (50/125/250/500 GB, ∞),
selectivities (1/5/25 %), and skews (uniform / light / heavy).
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.workloads.bigbench import generate_bigbench
from repro.workloads.distributions import RangeSampler, selectivity_for, skew_for

POOL_SIZES_GB = [50, 125, 250, 500, None]


def build_grid():
    rows = []
    rng = np.random.default_rng(0)
    for size_gb in (100.0, 500.0):
        instance = generate_bigbench(size_gb, seed=1)
        assert abs(instance.catalog.total_size_bytes - size_gb * 1e9) < 0.02 * size_gb * 1e9
        for sel in ("S", "M", "B"):
            for skew in ("U", "L", "H"):
                sampler = RangeSampler(instance.item_domain, selectivity_for(sel), skew_for(skew))
                ranges = sampler.sample_many(50, rng)
                widths = {round(iv.width, 6) for iv in ranges}
                assert len(widths) == 1  # fixed-selectivity widths
                rows.append(
                    (
                        f"{size_gb:.0f}GB",
                        sel,
                        skew,
                        ranges[0].width / instance.item_domain.width,
                        float(np.std([iv.midpoint for iv in ranges])),
                    )
                )
    return rows


def test_table1_parameter_grid(once):
    rows = once(build_grid)
    print()
    print(
        format_table(
            ["instance", "selectivity", "skew", "width/domain", "midpoint stdev"],
            rows,
            title="Table 1 — parameter grid (defaults in bold in the paper: "
            "100GB, 250GB pool, 5%, uniform)",
        )
    )
    # selectivity labels map to the paper's fractions
    fractions = {r[1]: r[3] for r in rows}
    assert abs(fractions["S"] - 0.01) < 1e-9
    assert abs(fractions["M"] - 0.05) < 1e-9
    assert abs(fractions["B"] - 0.25) < 1e-9
    # heavier skew concentrates midpoints
    by_skew = {}
    for r in rows:
        by_skew.setdefault(r[2], []).append(r[4])
    assert np.mean(by_skew["H"]) < np.mean(by_skew["L"]) < np.mean(by_skew["U"])
