"""Figure 5a — DS vs NP vs H on the SDSS-patterned workload, 500 GB.

The paper runs 1 000 BigBench queries whose selection ranges follow the
SDSS log, with no pool limit, and reports total elapsed time: NP at
~65.6 % of Hive and DeepSea at ~64.2 % of NP.  We run a 400-query prefix
(the steady state is reached well before) and assert the ordering
H > NP > DS with substantial margins.
"""

from repro.baselines import deepsea, hive, non_partitioned
from repro.bench.harness import run_systems, sdss_fixture
from repro.bench.reporting import format_table
from repro.workloads.generator import sdss_mapped_workload

N_QUERIES = 400


def run_experiment():
    fx = sdss_fixture(500.0)
    plans = sdss_mapped_workload(fx.log, fx.item_domain, n_queries=N_QUERIES, seed=2)
    factories = {
        "H": lambda: hive(fx.catalog, domains=fx.domains),
        "NP": lambda: non_partitioned(fx.catalog, domains=fx.domains),
        "DS": lambda: deepsea(fx.catalog, domains=fx.domains),
    }
    return run_systems(factories, plans)


def test_fig5a_overall(once):
    results = once(run_experiment)
    h, np_, ds = results["H"], results["NP"], results["DS"]
    rows = [
        (label, r.total_s, r.total_s / h.total_s, r.execution_s, r.creation_s, r.reuse_count)
        for label, r in results.items()
    ]
    print()
    print(
        format_table(
            ["system", "elapsed (s)", "vs H", "execution (s)", "creation (s)", "reuses"],
            rows,
            title=f"Figure 5a — workload simulating SDSS ({N_QUERIES} queries), 500GB",
        )
    )
    # materialization beats vanilla Hive (paper: NP = 65.6% of H)
    assert np_.total_s < 0.9 * h.total_s
    # partitioned views beat non-partitioned materialization (paper: 64.2% of NP)
    assert ds.total_s < np_.total_s
    # DeepSea answers most of the workload from the pool
    assert ds.reuse_count > 0.8 * N_QUERIES
