"""Figure 10b — cumulative-time ratio DS/NR after the workload shift.

Zooming into queries 101-200 of the Figure-10a workload: right after the
distribution changes, DeepSea pays for repartitioning and its cumulative
time (restarted at query 101) exceeds NR's; the cost is amortized by the
subsequent queries and the ratio drops below 1 well before query 200.
"""

import numpy as np

from bench_fig10a_adaptation import N_PER_PHASE, run_ratio_experiment
from repro.bench.reporting import format_series


def run_experiment():
    times = run_ratio_experiment()
    ds = np.cumsum(times["DS"][N_PER_PHASE:])
    nr = np.cumsum(times["NR"][N_PER_PHASE:])
    return list(ds / nr)


def test_fig10b_ratio(once):
    ratio = once(run_experiment)
    print()
    print(format_series("DS/NR cumulative ratio (q101..q200)", ratio, every=10, unit="x"))
    # repartitioning makes DeepSea more expensive right after the shift ...
    assert max(ratio[:30]) > 1.0
    # ... but the cost is amortized by the end of the workload
    assert ratio[-1] < 1.0
