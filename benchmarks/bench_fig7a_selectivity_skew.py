"""Figure 7a — expected elapsed time for 100 queries, as a fraction of Hive.

The paper sweeps query selectivity (B/M/S = 25/5/1 %) × skew (U/L/H) on a
500 GB instance with query template Q30, measures a 10-query prefix and
projects the elapsed time of a 100-query workload with linear regression
(the §9 simulator).  Claims: both partitioning techniques (E, DS) save
50-80 % over Hive, growing as selectivity shrinks; NP saves only 15-25 %;
DeepSea matches equi-depth on uniform selections and beats it on skewed
ones.
"""

import itertools

from repro.baselines import deepsea, equidepth, hive, non_partitioned
from repro.bench.harness import uniform_fixture
from repro.bench.reporting import format_table
from repro.core.simulator import project_workload_time
from repro.workloads.generator import SyntheticSpec, synthetic_workload

SELECTIVITIES = ("B", "M", "S")
SKEWS = ("U", "L", "H")
MEASURED = 10
PROJECTED = 100


def run_cell(fx, sel, skew):
    plans = synthetic_workload(
        SyntheticSpec("q30", sel, skew, n_queries=MEASURED, seed=7), fx.item_domain
    )
    out = {}
    for label, make in (
        ("H", lambda: hive(fx.catalog, domains=fx.domains)),
        ("NP", lambda: non_partitioned(fx.catalog, domains=fx.domains)),
        ("E", lambda: equidepth(fx.catalog, 15, domains=fx.domains)),
        ("DS", lambda: deepsea(fx.catalog, domains=fx.domains)),
    ):
        system = make()
        reports = [system.execute(p) for p in plans]
        measured = [r.total_s for r in reports]
        # steady state = queries answered from the pool without any
        # materialization activity (the regression the §9 simulator fits)
        steady = [
            r.total_s
            for r in reports
            if r.reused_view and not r.views_created and r.refinements == 0
        ] or measured
        out[label] = project_workload_time(measured, PROJECTED, steady=steady)
    return out


def run_experiment():
    fx = uniform_fixture(500.0)
    return {
        f"{sel}{skew}": run_cell(fx, sel, skew)
        for sel, skew in itertools.product(SELECTIVITIES, SKEWS)
    }


def test_fig7a_selectivity_skew(once):
    grid = once(run_experiment)
    rows = [
        (
            cell,
            v["NP"] / v["H"],
            v["E"] / v["H"],
            v["DS"] / v["H"],
        )
        for cell, v in grid.items()
    ]
    print()
    print(
        format_table(
            ["setting", "NP / Hive", "E / Hive", "DS / Hive"],
            rows,
            title="Figure 7a — projected time for 100 queries (fraction of Hive), "
            "Q30, 500GB",
        )
    )
    for cell, v in grid.items():
        # every materializing variant beats Hive over 100 queries
        assert v["DS"] < v["H"], cell
        assert v["E"] < v["H"], cell
        assert v["NP"] < v["H"], cell
        # partitioned views beat whole-view materialization
        assert v["DS"] < v["NP"], cell
    # smaller selectivity means reading fewer fragments: DeepSea's absolute
    # steady-state cost shrinks from B to S.  (The paper's *fraction-of-
    # Hive* ordering inverts here because our MR model charges Hive's
    # pushed plans selectivity-proportional intermediate writes — see
    # EXPERIMENTS.md.)
    assert grid["SH"]["DS"] < grid["BH"]["DS"]
    # on skewed workloads DeepSea is competitive with equi-depth (the
    # paper's up-to-30% advantage compresses here because sub-wave
    # fragment reads all cost about one task wave — see EXPERIMENTS.md)
    for cell in ("SL", "SH", "ML", "MH", "BL", "BH"):
        assert grid[cell]["DS"] <= 1.35 * grid[cell]["E"], cell
