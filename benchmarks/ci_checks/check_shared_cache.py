"""CI gate: the shared cache tier proves cross-worker reuse and zero stale reads.

Runs the fig-5a smoke three ways against one
:class:`~repro.parallel.shared_cache.SharedCacheServer`:

1. serial, tier off — the reference fingerprint;
2. work-stealing pool, tier on — must fingerprint-match the reference
   while publishing entries through the pipe frames;
3. the same steal run again — its workers are fresh forks (new pids), so
   every hit on a run-2 entry is by construction a **cross-worker** hit.

Gates: all three fingerprints identical; at least one cross-worker hit
(``cross_hits >= 1``); and the ``stale_served`` tripwire — a
version-mismatched entry returned as a hit — exactly zero.

Runnable locally:

    PYTHONPATH=src python benchmarks/ci_checks/check_shared_cache.py
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=40)
    parser.add_argument("--instance-gb", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    from repro.baselines import deepsea, hive
    from repro.bench.harness import clear_caches, run_systems, sdss_fixture
    from repro.parallel import fingerprint
    from repro.parallel.shared_cache import SharedCacheServer
    from repro.workloads.generator import sdss_mapped_workload

    fx = sdss_fixture(args.instance_gb)
    plans = sdss_mapped_workload(
        fx.log, fx.item_domain, n_queries=args.queries, seed=args.seed
    )
    factories = {
        "H": lambda: hive(fx.catalog, domains=fx.domains),
        "DS": lambda: deepsea(fx.catalog, domains=fx.domains),
    }
    scope = ("check_shared_cache", args.queries, args.instance_gb, args.seed)

    clear_caches()
    reference = fingerprint(run_systems(factories, plans, workers=0))

    server = SharedCacheServer()
    try:
        clear_caches()  # warm forks must not inherit the serial run's locals
        first = run_systems(
            factories, plans, workers=args.workers,
            scheduler="steal", stateless=("H",),
            shared=server, shared_scope=scope,
        )
        published = server.stats()["publishes"]
        second = run_systems(
            factories, plans, workers=args.workers,
            scheduler="steal", stateless=("H",),
            shared=server, shared_scope=scope,
        )
        stats = server.stats()
    finally:
        server.close()

    print(
        f"shared-cache smoke: publishes={published} gets={stats['gets']} "
        f"hits={stats['hits']} cross_hits={stats['cross_hits']} "
        f"stale={stats['stale']} stale_served={stats['stale_served']}"
    )

    failures = []
    if fingerprint(first) != reference:
        failures.append("tier-on steal run diverged from the serial reference")
    if fingerprint(second) != reference:
        failures.append("second tier-on steal run diverged from the serial reference")
    if published <= 0:
        failures.append("no entries were ever published to the shared tier")
    if stats["cross_hits"] < 1:
        failures.append(
            f"expected >= 1 cross-worker hit, got {stats['cross_hits']} "
            "(tier provides no cross-process reuse)"
        )
    if stats["stale_served"] != 0:
        failures.append(
            f"stale_served tripwire fired {stats['stale_served']} times — "
            "a version-mismatched entry was served as a hit"
        )
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
