"""CI gate: each pool worker starts with an empty result cache.

The profile report's per-worker cache counters prove isolation: every
worker must record its own misses (no cross-process sharing), while the
determinism harness separately proves the isolated caches still
fingerprint-match the serial run.

Runnable locally:

    PYTHONPATH=src python -m repro profile --queries 80 --instance-gb 20 \
        --seed 2 --workers 2 --output /tmp/profile_workers.json
    python benchmarks/ci_checks/check_worker_isolation.py /tmp/profile_workers.json
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="profile JSON from a --workers N run")
    args = parser.parse_args(argv)

    with open(args.report) as fh:
        report = json.load(fh)

    failures: list[str] = []
    for label, info in sorted(report["per_worker"].items()):
        counters = info["caches"]["engine.result_cache"]
        if counters["misses"] <= 0:
            failures.append(f"{label}: no result-cache misses recorded: {counters}")
        else:
            print(f"{label}: pid={info['pid']} engine.result_cache {counters}")

    if failures:
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
