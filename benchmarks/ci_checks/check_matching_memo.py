"""CI gate: the matching-stage memo hit rate must clear a checked-in floor.

The cover-delta invalidation work keys `match_view` skeletons on
range-free signature shapes and greedy covers on per-view cover versions,
so pool mutations of one view no longer flush everyone else's entries.
On the fig-5a profile this pushes the `matching.match_view` hit rate from
~55% (whole-cover invalidation) to >95%; the floor locks the property in
and fails with the observed rate so a regression is diagnosable from the
CI log alone.

The gate also requires the `matching.cover_cache` per-view invalidation
counters to be present in the JSON — they are the observable part of the
delta protocol.

Runnable locally:

    PYTHONPATH=src python -m repro profile --queries 150 --instance-gb 100 \
        --seed 2 --output /tmp/profile_smoke.json
    python benchmarks/ci_checks/check_matching_memo.py /tmp/profile_smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_FLOOR = 0.80


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="profile JSON written by `python -m repro profile`")
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR,
        help=f"minimum aggregate match_view hit rate (default {DEFAULT_FLOOR})",
    )
    args = parser.parse_args(argv)

    with open(args.report) as fh:
        report = json.load(fh)

    total_hits = 0
    total_misses = 0
    cover_cache_seen = False
    for label, info in sorted(report["per_worker"].items()):
        caches = info["caches"]
        memo = caches.get("matching.match_view")
        if memo is None:
            print(f"FAIL {label}: matching.match_view not in cache stats", file=sys.stderr)
            return 1
        hits, misses = memo["hits"], memo["misses"]
        total_hits += hits
        total_misses += misses
        if hits + misses:
            print(f"{label}: matching.match_view hits={hits} misses={misses}")
        cover = caches.get("matching.cover_cache")
        if cover is not None:
            cover_cache_seen = True
            if "invalidations" not in cover or "by_view" not in cover:
                print(
                    f"FAIL {label}: matching.cover_cache lacks per-view "
                    f"invalidation counters: {sorted(cover)}",
                    file=sys.stderr,
                )
                return 1
            print(
                f"{label}: matching.cover_cache hits={cover['hits']} "
                f"misses={cover['misses']} invalidations={cover['invalidations']} "
                f"by_view={cover['by_view']}"
            )

    if not cover_cache_seen:
        print("FAIL matching.cover_cache missing from every worker", file=sys.stderr)
        return 1
    calls = total_hits + total_misses
    if calls == 0:
        print("FAIL no match_view calls recorded — profile ran no matching", file=sys.stderr)
        return 1
    rate = total_hits / calls
    print(f"aggregate match_view hit rate: {rate:.3f} ({total_hits}/{calls})")
    if rate < args.floor:
        print(
            f"FAIL match_view hit rate {rate:.3f} below floor {args.floor:.2f}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
