"""CI gate: the profile JSON must carry per-system cache telemetry.

Regressions that silently disable a cache (a renamed registry key, a
cache that stops registering) would otherwise only show up as "slower" —
this asserts the counters are present and saw traffic, so the failure
names the missing cache instead.

Runnable locally:

    PYTHONPATH=src python -m repro profile --queries 80 --instance-gb 20 \
        --seed 2 --output /tmp/profile_smoke.json
    python benchmarks/ci_checks/check_profile_caches.py /tmp/profile_smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="profile JSON written by `python -m repro profile`")
    parser.add_argument(
        "--require",
        action="append",
        default=None,
        help="cache name that must be present with traffic (repeatable; "
        "default: engine.result_cache)",
    )
    args = parser.parse_args(argv)
    required = args.require or ["engine.result_cache"]

    with open(args.report) as fh:
        report = json.load(fh)

    failures: list[str] = []
    for label, info in sorted(report["per_worker"].items()):
        caches = info["caches"]
        for name in required:
            if name not in caches:
                failures.append(f"{label}: cache {name!r} missing (have {sorted(caches)})")
                continue
            counters = caches[name]
            if counters["hits"] + counters["misses"] <= 0:
                failures.append(f"{label}: cache {name!r} saw no traffic: {counters}")
            else:
                print(f"{label}: {name} {counters}")

    if failures:
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
