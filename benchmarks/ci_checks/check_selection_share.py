"""CI gate: the §7 selection stage stays a bounded share of fig-5a time.

The vectorized selection rewrite (array-based ``spread_hits`` scatter,
batched ``partition_distribution`` decay passes, packed candidate
generation) took selection from the single largest DeepSea wall-clock
block to well under a fifth of the combined profile.  This gate pins
that down: the ``selection`` stage's share of total profiled seconds —
summed across the H / NP / DS systems of a ``python -m repro profile``
run — must stay under the checked-in ceiling.  A share above it means
the scalar fallback paths are carrying real traffic again (a dispatch
threshold regression, a dtype that silently bounces to the loop, or new
per-piece work in the refinement filter).

Shares, not absolute seconds, so runner-hardware variance cancels out.

Runnable locally:

    PYTHONPATH=src python -m repro profile --queries 150 --instance-gb 100 \
        --seed 2 --output /tmp/profile_smoke.json
    python benchmarks/ci_checks/check_selection_share.py /tmp/profile_smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys

# Measured combined share after the vectorization pass is ~0.17 at the CI
# smoke scale (150 queries, 100 GB); the pre-rewrite code sat around 2x
# that.  0.30 keeps noise headroom while catching a wholesale regression.
SELECTION_SHARE_CEILING = 0.30


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="profile JSON from python -m repro profile")
    parser.add_argument(
        "--ceiling",
        type=float,
        default=SELECTION_SHARE_CEILING,
        help="maximum allowed selection share of total profiled seconds",
    )
    args = parser.parse_args(argv)

    with open(args.report) as fh:
        report = json.load(fh)

    stages = report["stages"]
    total = sum(info["seconds"] for info in stages.values())
    selection = stages.get("selection", {}).get("seconds", 0.0)
    if total <= 0:
        print("FAIL empty profile: no stage seconds recorded", file=sys.stderr)
        return 1

    share = selection / total
    print(
        f"selection {selection:.3f}s of {total:.3f}s profiled "
        f"= {share:.1%} (ceiling {args.ceiling:.0%})"
    )
    if share > args.ceiling:
        print(
            f"FAIL selection stage is {share:.1%} of fig-5a wall-clock, "
            f"above the {args.ceiling:.0%} ceiling — vectorized paths "
            "are likely not engaging",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
