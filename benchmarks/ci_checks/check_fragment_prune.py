"""CI gate: fragment-level pruning carries its weight on the fig-5a smoke.

Runs the DeepSea system over a scaled-down fig-5a workload and gates two
floors on the fragment cache (``repro/matching/fragment_cache.py``):

* **hit rate** — the rewriter primes each conjunction's entry and the
  executor's fused scan consumes it, so a healthy run sits at ~50%.
  Falling below the floor means the executor stopped consulting the
  cache (e.g. a guard regression took the fused path dark) and every
  scan re-derives its prune verdicts.
* **pruned-row fraction** — ``rows_pruned / rows_scanned``, the share of
  concatenated cover rows the predicate intersection kills.  This is
  the wall-clock payoff of the tier (measured ≈0.5–0.65 on smoke
  scales); a collapse means pruning was silently disabled or the
  rewriter stopped producing clipped covers worth pruning.

Ledger identity is *not* checked here — that is the determinism gate's
job; this gate only keeps the acceleration layer honest.

Runnable locally:

    PYTHONPATH=src python benchmarks/ci_checks/check_fragment_prune.py
"""

from __future__ import annotations

import argparse
import sys


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=60)
    parser.add_argument("--instance-gb", type=float, default=20.0)
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument("--hit-floor", type=float, default=0.4)
    parser.add_argument("--pruned-floor", type=float, default=0.3)
    args = parser.parse_args(argv)

    from repro.baselines import deepsea
    from repro.bench.harness import run_system, sdss_fixture
    from repro.matching import fragment_cache
    from repro.workloads.generator import sdss_mapped_workload

    fx = sdss_fixture(args.instance_gb)
    plans = sdss_mapped_workload(fx.log, fx.item_domain, n_queries=args.queries, seed=args.seed)
    fragment_cache.GLOBAL.clear()
    run_system("DS", deepsea(fx.catalog, domains=fx.domains), plans)
    stats = fragment_cache.GLOBAL.stats()
    lookups = stats["hits"] + stats["misses"]
    print(f"fragment-cache stats: {stats}")
    if lookups == 0 or stats["rows_scanned"] == 0:
        print("FAIL fragment cache saw no traffic on the fig-5a smoke", file=sys.stderr)
        return 1
    hit_rate = stats["hits"] / lookups
    pruned_fraction = stats["rows_pruned"] / stats["rows_scanned"]
    print(f"hit rate: {hit_rate:.3f}  pruned-row fraction: {pruned_fraction:.3f}")
    if hit_rate < args.hit_floor:
        print(
            f"FAIL fragment-cache hit rate {hit_rate:.3f} below floor {args.hit_floor}",
            file=sys.stderr,
        )
        return 1
    if pruned_fraction < args.pruned_floor:
        print(
            f"FAIL pruned-row fraction {pruned_fraction:.3f} below floor {args.pruned_floor}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
