"""CI gate: a fig-5a rerun against a warm system hits the result cache.

Replays the same workload twice against one system instance: on the
second pass every query's plan, catalog version, and pool epoch are
unchanged, so it must be served from the result cache.  Zero hits means
the cache key or the epoch protocol broke (e.g. an epoch bump on a
non-mutation, which the cover-delta work specifically must not introduce).

Runnable locally:

    PYTHONPATH=src python benchmarks/ci_checks/check_result_cache_reuse.py
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=60)
    parser.add_argument("--instance-gb", type=float, default=20.0)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args(argv)

    from repro.baselines import hive
    from repro.bench.harness import run_system, sdss_fixture
    from repro.engine import result_cache
    from repro.workloads.generator import sdss_mapped_workload

    fx = sdss_fixture(args.instance_gb)
    plans = sdss_mapped_workload(fx.log, fx.item_domain, n_queries=args.queries, seed=args.seed)
    system = hive(fx.catalog, domains=fx.domains)
    run_system("H", system, plans)  # cold: populates views + cache
    base = result_cache.GLOBAL.stats()
    run_system("H", system, plans)  # warm: same catalog/pool state
    stats = result_cache.GLOBAL.stats()
    hits = stats["hits"] - base["hits"]
    print(f"rerun result-cache hits: {hits}  (stats: {stats})")
    if hits <= 0:
        print(f"FAIL expected result-cache hits on fig-5a rerun, got {stats}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
