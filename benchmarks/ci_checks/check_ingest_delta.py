"""CI gate: delta maintenance equals recompute, patches fire, reads stay fresh.

Re-derives the ingest invariants from an ``ingest-bench`` JSON report
(``python -m repro ingest-bench --output ...``) instead of trusting the
run's own ``ok`` flag:

1. every scenario that ran in both modes has **identical per-query answer
   digests** for ``delta`` and ``rebuild`` — delta maintenance never
   changes an answer;
2. every run passed its per-batch fragment identity proof (each resident
   payload byte-identical to a from-scratch recompute over the grown
   base table) and actually checked at least one entry;
3. every ``delta`` run patched at least one fragment (``fragments_patched
   >= 1`` — the delta path genuinely ran, it did not silently fall back
   to rebuilds or do nothing);
4. zero stale cache reads: every per-query answer matched a direct
   base-table evaluation of the post-append catalog;
5. maintenance was charged (``maint_s > 0`` with at least one batch).

Runnable locally:

    PYTHONPATH=src python -m repro ingest-bench --scenario drip \\
        --output /tmp/ingest.json
    python benchmarks/ci_checks/check_ingest_delta.py /tmp/ingest.json
"""

from __future__ import annotations

import argparse
import json
import sys


def check_report(report: dict) -> list[str]:
    problems: list[str] = []
    results = report.get("results", [])
    if not results:
        return ["report contains no scenario results"]
    by_scenario: dict[str, dict[str, dict]] = {}
    for res in results:
        name = f"{res['scenario']}/{res['mode']}"
        by_scenario.setdefault(res["scenario"], {})[res["mode"]] = res
        if res.get("batches", 0) < 1:
            problems.append(f"{name}: no micro-batch ran")
        if res.get("identity_checks", 0) < 1:
            problems.append(f"{name}: identity proof checked no entries")
        if not res.get("identity_ok", False):
            detail = "; ".join(res.get("identity_problems", [])[:3])
            problems.append(f"{name}: fragment identity proof failed: {detail}")
        if res.get("stale_reads", 0) != 0:
            problems.append(f"{name}: {res['stale_reads']} stale cache read(s)")
        if res.get("maint_s", 0.0) <= 0.0:
            problems.append(f"{name}: maint_s was never charged")
        if res["mode"] == "delta" and res.get("fragments_patched", 0) < 1:
            problems.append(f"{name}: delta path patched no fragments")
    for scenario, modes in sorted(by_scenario.items()):
        if "delta" in modes and "rebuild" in modes:
            if modes["delta"]["answer_digest"] != modes["rebuild"]["answer_digest"]:
                problems.append(
                    f"{scenario}: delta answers diverged from full recompute "
                    f"({modes['delta']['answer_digest'][:12]} != "
                    f"{modes['rebuild']['answer_digest'][:12]})"
                )
        else:
            problems.append(
                f"{scenario}: needs both delta and rebuild modes for the "
                f"cross-mode digest check (got {sorted(modes)})"
            )
    return problems


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="ingest-bench JSON report path")
    args = parser.parse_args(argv)

    with open(args.report) as fh:
        report = json.load(fh)
    problems = check_report(report)
    for problem in problems:
        print(f"GATE: {problem}", file=sys.stderr)
    if problems:
        print("ingest delta gate FAILED", file=sys.stderr)
        return 1
    n = len(report["results"])
    patched = sum(r.get("fragments_patched", 0) for r in report["results"])
    print(
        f"ingest delta gate passed: {n} runs, {patched} fragments patched, "
        "answers identical to recompute, zero stale reads"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
