"""CI gate: audit a serve-bench report against the serving invariants.

Reads the JSON artifact ``python -m repro serve-bench --output`` wrote and
re-derives every gate from the raw phase counters (a stale ``ok`` flag in
the report cannot pass the check):

* every answered query's digest matched the serial fault-free run,
* the accounting invariant held — ``answered + shed + timed_out +
  failed == offered`` in every phase, nothing vanished into the queue,
* no query failed outright and no ticket went unresolved,
* the burst phase actually shed load (admission control fired),
* the chaos phase actually retried readers, applied writer steps, and
  advanced the pool epoch (degradation raced real repartitioning).

Runnable locally:

    PYTHONPATH=src python -m repro serve-bench --queries 60 --output /tmp/serve.json
    PYTHONPATH=src python benchmarks/ci_checks/check_serve_invariants.py /tmp/serve.json
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="serve-bench JSON report")
    args = parser.parse_args(argv)

    from repro.serve.driver import check_gates

    with open(args.report) as fh:
        report = json.load(fh)
    phases = report.get("phases", {})
    if not phases:
        print("FAIL report has no phases", file=sys.stderr)
        return 1
    problems = check_gates(phases)
    for name, phase in sorted(phases.items()):
        print(
            f"{name}: offered={phase['offered']} answered={phase['answered']} "
            f"shed={phase['shed']} timed_out={phase['timed_out']} "
            f"failed={phase['failed']} retries={phase['retries']} "
            f"qps={phase['qps']} p99={phase['p99_ms']}ms"
        )
    if problems:
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        return 1
    print("serving invariants hold: identical answers, complete accounting")
    return 0


if __name__ == "__main__":
    sys.exit(main())
