"""Pool pressure — selection strategies under a storage budget (§7, §10.1).

A cluster operator gives the view pool a hard byte budget.  This example
runs the same drifting workload under plain Nectar, Nectar+, and DeepSea
selection at several budgets, showing how DeepSea's decayed, correlation-
aware values keep the *useful* fragments resident while the others churn.

Run:  python examples/pool_pressure.py
"""

import numpy as np

from repro.baselines import deepsea, hive, nectar, nectar_plus
from repro.partitioning.intervals import Interval
from repro.workloads.bigbench import generate_bigbench
from repro.workloads.generator import sdss_mapped_workload
from repro.workloads.sdss import SDSSConfig, generate_sdss_log, sample_values_from_ranges

N_QUERIES = 150
BUDGET_FRACTIONS = (0.10, 0.25, 1.00)


def main() -> None:
    log = generate_sdss_log(SDSSConfig())
    item_domain = Interval.closed(0, 40_000)
    rng = np.random.default_rng(0)
    values = sample_values_from_ranges(log, 50_000, item_domain, rng)
    instance = generate_bigbench(
        500.0, seed=1, item_domain=item_domain, item_sk_values=values
    )
    plans = sdss_mapped_workload(log, item_domain, n_queries=N_QUERIES, seed=2)
    base = instance.catalog.total_size_bytes

    hive_system = hive(instance.catalog, domains=instance.domains)
    hive_total = sum(hive_system.execute(p).total_s for p in plans)
    print(f"Hive (no materialization): {hive_total:,.0f} simulated seconds "
          f"for {N_QUERIES} queries\n")

    header = f"{'budget':>8} {'strategy':>9} {'total (s)':>12} {'vs Hive':>8} " \
             f"{'reuses':>7} {'evictions':>10}"
    print(header)
    print("-" * len(header))
    for frac in BUDGET_FRACTIONS:
        for label, factory in (("Nectar", nectar), ("Nectar+", nectar_plus),
                               ("DeepSea", deepsea)):
            system = factory(
                instance.catalog,
                domains=instance.domains,
                smax_bytes=base * frac,
            )
            reports = [system.execute(p) for p in plans]
            total = sum(r.total_s for r in reports)
            reuse = sum(1 for r in reports if r.reused_view)
            evictions = sum(r.evictions for r in reports)
            print(f"{frac:>7.0%} {label:>9} {total:>12,.0f} "
                  f"{total / hive_total:>7.0%} {reuse:>7} {evictions:>10}")
        print()

    print("Notes: at tight budgets every strategy pays for wrong evictions "
          "with re-created views;\nDeepSea's fragment-level decisions keep "
          "the hot fragments and degrade most gracefully.")


if __name__ == "__main__":
    main()
