"""Quickstart — DeepSea in five minutes.

Builds a small BigBench-like instance, runs a handful of range queries
through DeepSea, and prints what the system decided: which query
materialized a partitioned view, which queries were rewritten to read a
few fragments, and how much simulated cluster time that saved compared to
re-running everything from the base tables.

Run:  python examples/quickstart.py
"""

from repro import DeepSea
from repro.baselines import hive
from repro.workloads.bigbench import generate_bigbench, q01


def main() -> None:
    # A nominal 100 GB retail instance (scaled down to a few thousand rows;
    # the cost model reports simulated cluster seconds at full scale).
    instance = generate_bigbench(instance_gb=100.0, seed=7)
    print(f"instance: {instance.catalog.total_size_bytes / 1e9:.0f} GB nominal, "
          f"tables: {', '.join(instance.catalog.names)}")

    # The same query template with drifting selection ranges — the
    # "explore, then focus" pattern of analytic workloads.
    ranges = [(8_000, 12_000), (8_500, 12_500), (9_000, 11_000),
              (9_200, 10_800), (9_000, 11_500), (9_100, 10_900)]
    queries = [q01(lo, hi) for lo, hi in ranges]

    deepsea_system = DeepSea(instance.catalog, domains=instance.domains)
    hive_system = hive(instance.catalog, domains=instance.domains)

    print(f"\n{'query':>8}  {'Hive (s)':>9}  {'DeepSea (s)':>11}  what DeepSea did")
    total_h = total_ds = 0.0
    for i, query in enumerate(queries, 1):
        h = hive_system.execute(query)
        report = deepsea_system.execute(query)
        total_h += h.total_s
        total_ds += report.total_s
        if report.views_created:
            action = f"materialized {len(report.views_created)} view(s) as partitions"
        elif report.reused_view:
            action = (f"rewrote over view {report.view_used} "
                      f"({report.fragments_read} fragment(s) read)")
        else:
            action = "ran directly (gathering evidence)"
        print(f"{'Q' + str(i):>8}  {h.total_s:>9,.0f}  {report.total_s:>11,.0f}  {action}")

    print(f"\ntotals: Hive {total_h:,.0f}s vs DeepSea {total_ds:,.0f}s "
          f"({total_ds / total_h:.0%} of Hive)")
    print(f"pool: {deepsea_system.pool.used_bytes / 1e9:.1f} GB across "
          f"{len(deepsea_system.pool.all_entries())} entries")
    for view_id in deepsea_system.pool.resident_view_ids():
        for attr in deepsea_system.pool.partition_attrs(view_id):
            intervals = deepsea_system.pool.intervals_of(view_id, attr)
            print(f"  view {view_id} partitioned on {attr}: "
                  f"{len(intervals)} fragments: {intervals}")

    # Both systems return identical answers — views are purely physical.
    assert report.result.sorted_rows() == h.result.sorted_rows()
    print("\nanswers verified identical to direct execution ✓")


if __name__ == "__main__":
    main()
