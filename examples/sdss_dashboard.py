"""Astronomy-portal scenario — the paper's §10.1 real-life workload.

Simulates a year of SDSS-style exploration: a synthetic query log whose
range selections are non-uniform and drift over time (Figures 1-2), mapped
onto BigBench templates over an instance whose `item_sk` distribution
follows the same histogram.  Compares vanilla Hive, whole-view
materialization (NP), and DeepSea, and prints a per-phase breakdown
showing how DeepSea follows the moving hot spot.

Run:  python examples/sdss_dashboard.py  [n_queries]
"""

import sys

import numpy as np

from repro.baselines import deepsea, hive, non_partitioned
from repro.workloads.bigbench import generate_bigbench
from repro.workloads.generator import sdss_mapped_workload
from repro.partitioning.intervals import Interval
from repro.workloads.sdss import (
    SDSSConfig,
    generate_sdss_log,
    range_histogram,
    sample_values_from_ranges,
)


def main(n_queries: int = 200) -> None:
    print("generating the synthetic SDSS log (10 000 range selections)...")
    log = generate_sdss_log(SDSSConfig())
    edges, hits = range_histogram(log, nbins=14)
    print("access histogram over ra (hits per 30-degree bin):")
    peak = hits.max()
    for i, h in enumerate(hits):
        bar = "#" * max(1, int(40 * h / peak))
        print(f"  {edges[i]:>6.0f}..{edges[i + 1]:>6.0f}  {bar} {h}")

    item_domain = Interval.closed(0, 40_000)
    rng = np.random.default_rng(0)
    values = sample_values_from_ranges(log, 50_000, item_domain, rng)
    instance = generate_bigbench(
        500.0, seed=1, item_domain=item_domain, item_sk_values=values
    )
    plans = sdss_mapped_workload(log, item_domain, n_queries=n_queries, seed=2)
    print(f"\nworkload: {n_queries} BigBench queries with SDSS-mapped ranges, "
          f"500 GB instance")

    results = {}
    for label, factory in (
        ("Hive", hive),
        ("NP", non_partitioned),
        ("DeepSea", deepsea),
    ):
        system = factory(instance.catalog, domains=instance.domains)
        reports = [system.execute(p) for p in plans]
        results[label] = reports
        total = sum(r.total_s for r in reports)
        reuse = sum(1 for r in reports if r.reused_view)
        print(f"  {label:>8}: {total:>10,.0f} simulated seconds "
              f"({reuse}/{n_queries} queries answered from the pool)")

    hive_total = sum(r.total_s for r in results["Hive"])
    for label in ("NP", "DeepSea"):
        total = sum(r.total_s for r in results[label])
        print(f"  {label} = {total / hive_total:.0%} of Hive")

    quarters = max(n_queries // 4, 1)
    print("\nper-quarter cumulative time (watch DeepSea pull ahead as the "
          "pool warms up):")
    print(f"{'quarter':>8} {'Hive':>12} {'NP':>12} {'DeepSea':>12}")
    for q in range(4):
        sl = slice(q * quarters, (q + 1) * quarters)
        row = [sum(r.total_s for r in results[label][sl])
               for label in ("Hive", "NP", "DeepSea")]
        print(f"{'Q' + str(q + 1):>8} {row[0]:>12,.0f} {row[1]:>12,.0f} {row[2]:>12,.0f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
