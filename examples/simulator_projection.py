"""The §9 simulator — projecting long workloads from short measurements.

Evaluating a selection strategy over thousands of queries is slow even on
a simulated cluster if every query is physically executed.  The paper's
simulator observes each query template's steady-state behaviour and then
*predicts* repeat executions with linear regression over the selection
width.

This example measures a 12-query prefix per template, lets the simulator
predict the rest of a 200-query mixed workload, and compares the
projection against the ground truth of actually executing everything.

Run:  python examples/simulator_projection.py
"""

import numpy as np

from repro.baselines import deepsea
from repro.core.simulator import WorkloadSimulator
from repro.workloads.bigbench import generate_bigbench, TEMPLATES


def build_workload(instance, n=200, seed=5):
    rng = np.random.default_rng(seed)
    names = ["q01", "q05", "q30"]
    queries = []
    for _ in range(n):
        name = names[int(rng.integers(0, len(names)))]
        width = int(rng.integers(400, 2_000))
        lo = int(rng.integers(0, 40_000 - width))
        queries.append((name, TEMPLATES[name](lo, lo + width)))
    return queries


def main() -> None:
    instance = generate_bigbench(100.0, seed=5)
    workload = build_workload(instance)

    print("ground truth: executing all 200 queries ...")
    truth_system = deepsea(instance.catalog, domains=instance.domains)
    truth = sum(truth_system.execute(plan).total_s for _, plan in workload)

    print("simulator: measuring until each template is learned, then predicting ...")
    sim_system = deepsea(instance.catalog, domains=instance.domains)
    simulator = WorkloadSimulator(sim_system, min_samples=12)
    projected = simulator.run_workload(workload)

    print(f"\n  ground truth : {truth:>12,.0f} simulated s (200 executions)")
    print(f"  simulator    : {projected:>12,.0f} simulated s "
          f"({simulator.measured_count} measured + "
          f"{simulator.predicted_count} predicted)")
    error = abs(projected - truth) / truth
    print(f"  projection error: {error:.1%}")
    speedup = 200 / max(simulator.measured_count, 1)
    print(f"  executions saved: {simulator.predicted_count} "
          f"(~{speedup:.1f}x fewer physical runs)")

    print("\nper-template regression fits (elapsed ≈ a + b·width):")
    for template in sorted(simulator.regression._widths):
        fit = simulator.regression.fit(template)
        if fit:
            print(f"  {template}: intercept={fit.intercept:8.1f}s "
                  f"slope={fit.slope * 1000:8.3f}s/1000-units "
                  f"(n={fit.n_samples})")


if __name__ == "__main__":
    main()
