"""Evolving hot spot — overlapping fragments in action (§3, Example 2).

A dashboard team monitors click activity for this week's featured items;
every week the featured range moves.  Horizontal partitioning would split
and rewrite a large fragment at every move; DeepSea's overlapping
partitioning just writes the newly hot range and keeps the old fragment.

This example runs the same moving-window workload under both refinement
modes and prints the fragment layout after each phase, plus the bytes each
mode wrote.

Run:  python examples/evolving_hotspot.py
"""

from repro.baselines import deepsea
from repro.workloads.bigbench import generate_bigbench, q30


def window_queries(center: int, n: int, width: int = 400):
    """n queries around a featured-item window."""
    offsets = range(-n // 2 * 10, n // 2 * 10, 10)
    return [
        q30(center - width // 2 + off, center + width // 2 + off)
        for off in list(offsets)[:n]
    ]


def run(label: str, overlapping: bool) -> None:
    instance = generate_bigbench(100.0, seed=5)
    system = deepsea(
        instance.catalog,
        domains=instance.domains,
        overlapping=overlapping,
        bounds=None,
    )
    phases = [(8_000, "week 1"), (16_000, "week 2"), (24_000, "week 3")]
    print(f"\n=== {label} ===")
    total = 0.0
    written = 0.0
    for center, week in phases:
        for query in window_queries(center, n=8):
            report = system.execute(query)
            total += report.total_s
            written += (
                report.creation_ledger.bytes_written
                + report.execution_ledger.bytes_written
            )
        view_ids = [
            v for v in system.pool.resident_view_ids()
            if system.pool.partition_attrs(v)
        ]
        if view_ids:
            attr = system.pool.partition_attrs(view_ids[0])[0]
            intervals = system.pool.intervals_of(view_ids[0], attr)
            print(f"  after {week} (hot spot at {center}): "
                  f"{len(intervals)} fragments")
            for iv in intervals:
                print(f"    {iv}")
    print(f"  simulated time: {total:,.0f}s, data written: {written / 1e9:.1f} GB")


def main() -> None:
    run("horizontal partitioning (split & rewrite)", overlapping=False)
    run("overlapping partitioning (write only what's hot)", overlapping=True)


if __name__ == "__main__":
    main()
