"""DeepSea — progressive workload-aware partitioning of materialized views.

A faithful reproduction of *DeepSea: Progressive Workload-Aware
Partitioning of Materialized Views in Scalable Data Analytics* (EDBT
2017) over a simulated Hive/Hadoop substrate.

Quickstart::

    from repro import DeepSea, Catalog, Q
    from repro.workloads.bigbench import generate_bigbench

    catalog, domains = generate_bigbench(instance_gb=100, seed=7)
    system = DeepSea(catalog, domains=domains)
    plan = (
        Q("store_sales")
        .join("item", on=("ss_item_sk", "i_item_sk"))
        .where_between("i_item_sk", 1_000, 5_000)
        .group_by("i_category", agg=[("sum", "ss_quantity", "total_qty")])
        .plan
    )
    report = system.execute(plan)
    print(report.total_s, report.result.to_rows()[:5])
"""

from repro.core.deepsea import DeepSea
from repro.core.policies import Policy
from repro.core.reports import QueryReport, WorkloadSummary
from repro.engine.catalog import Catalog
from repro.engine.cost import ClusterSpec, CostLedger
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.engine.types import ColumnKind
from repro.partitioning.bounding import SizeBounds
from repro.partitioning.intervals import Interval
from repro.query.builder import Q

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "ClusterSpec",
    "Column",
    "ColumnKind",
    "CostLedger",
    "DeepSea",
    "Interval",
    "Policy",
    "Q",
    "QueryReport",
    "Schema",
    "SizeBounds",
    "Table",
    "WorkloadSummary",
    "__version__",
]
