"""BigBench-like substrate: schema, data generation, and query templates.

The paper evaluates on BigBench [Ghazal et al., SIGMOD'13] instances of
100 GB and 500 GB, with a workload built from ten join templates (Q1, Q5,
Q7, Q9, Q12, Q16, Q20, Q26, Q29, Q30) extended with a range selection on
``item_sk`` (§10.1).  This module provides a scaled-down synthetic
equivalent: a retail star schema whose fact tables all carry an
``*_item_sk`` column, a generator that sizes tables proportionally to a
nominal instance size (rows are scaled down, ``Table.scale`` restores the
nominal bytes the cost model sees), and ten analogous join(+aggregate)
templates parameterized by the selection range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.catalog import Catalog
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.errors import WorkloadError
from repro.partitioning.intervals import Interval
from repro.query.algebra import Plan
from repro.query.builder import Q

GB = 1.0e9

# Relative share of the instance each table occupies (BigBench-ish mix:
# clickstream and store_sales dominate).
TABLE_WEIGHTS = {
    "store_sales": 0.32,
    "web_clickstream": 0.28,
    "web_sales": 0.14,
    "store_returns": 0.08,
    "product_reviews": 0.07,
    "customer": 0.06,
    "item": 0.05,
}

# Rows per nominal GB for fact tables at the default fidelity.  200 rows/GB
# keeps a 500 GB instance around 10^5 fact rows — large enough for honest
# selectivities, small enough to run thousand-query workloads quickly.
DEFAULT_ROWS_PER_GB = 200.0

# Each fact table carries a wide ``*_payload`` column standing in for the
# many BigBench columns the templates never touch (real store_sales has 23
# columns at ~150 bytes/row).  The payload has a large *accounting* width
# but is stored as a single int64, so memory stays small while projected
# views are ~15-20% of their fact table — the ratio that makes the
# paper's pool-size experiments meaningful.
SCHEMAS = {
    "item": Schema.of(
        Column("i_item_sk"),
        Column("i_category_id"),
        Column("i_price"),
    ),
    "store_sales": Schema.of(
        Column("ss_id"),
        Column("ss_item_sk"),
        Column("ss_customer_sk"),
        Column("ss_quantity"),
        Column("ss_sales_price"),
        Column("ss_payload", width=120),
    ),
    "web_sales": Schema.of(
        Column("ws_id"),
        Column("ws_item_sk"),
        Column("ws_customer_sk"),
        Column("ws_quantity"),
        Column("ws_sales_price"),
        Column("ws_payload", width=120),
    ),
    "web_clickstream": Schema.of(
        Column("wcs_id"),
        Column("wcs_item_sk"),
        Column("wcs_user_sk"),
        Column("wcs_clicks"),
        Column("wcs_payload", width=96),
    ),
    "store_returns": Schema.of(
        Column("sr_id"),
        Column("sr_item_sk"),
        Column("sr_return_quantity"),
        Column("sr_payload", width=104),
    ),
    "product_reviews": Schema.of(
        Column("pr_id"),
        Column("pr_item_sk"),
        Column("pr_rating"),
        Column("pr_payload", width=232),  # review text
    ),
    "customer": Schema.of(
        Column("c_customer_sk"),
        Column("c_region"),
        Column("c_payload", width=112),
    ),
}

ITEM_SK_COLUMNS = {
    "store_sales": "ss_item_sk",
    "web_sales": "ws_item_sk",
    "web_clickstream": "wcs_item_sk",
    "store_returns": "sr_item_sk",
    "product_reviews": "pr_item_sk",
}

N_CATEGORIES = 24
N_REGIONS = 8


@dataclass(frozen=True)
class BigBenchInstance:
    """A generated instance: catalog plus partition-attribute domains."""

    catalog: Catalog
    domains: dict[str, Interval]
    instance_gb: float
    item_domain: Interval


def generate_bigbench(
    instance_gb: float = 100.0,
    *,
    seed: int = 0,
    item_domain: Interval = Interval.closed(0, 40_000),
    rows_per_gb: float = DEFAULT_ROWS_PER_GB,
    item_sk_values: "np.ndarray | None" = None,
) -> BigBenchInstance:
    """Generate a BigBench-like instance of the given nominal size.

    ``item_sk_values`` (optional) supplies the item-key distribution for
    the fact tables — pass SDSS-histogram samples (§10.1) to reproduce the
    real-life experiment, omit for the synthetic uniform instances.
    The array is resampled to each fact table's row count.
    """
    if instance_gb <= 0:
        raise WorkloadError("instance_gb must be positive")
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    n_items = int(item_domain.width) + 1

    def fact_item_sks(n: int) -> np.ndarray:
        if item_sk_values is not None and len(item_sk_values) > 0:
            return rng.choice(item_sk_values, size=n)
        return rng.integers(int(item_domain.lo), int(item_domain.hi) + 1, n)

    def register(name: str, data: dict, nrows: int) -> None:
        schema = SCHEMAS[name]
        actual_bytes = nrows * schema.row_bytes
        nominal = instance_gb * GB * TABLE_WEIGHTS[name]
        scale = nominal / actual_bytes if actual_bytes else 1.0
        catalog.register(name, Table.from_dict(schema, data, scale=scale))

    n_customers = max(int(instance_gb * rows_per_gb * 0.2), 50)

    # --- dimension tables -------------------------------------------------
    item_rows = min(n_items, max(int(instance_gb * rows_per_gb * 0.5), 200))
    item_sks = np.sort(rng.choice(n_items, size=item_rows, replace=False)) + int(item_domain.lo)
    register(
        "item",
        {
            "i_item_sk": item_sks,
            "i_category_id": rng.integers(0, N_CATEGORIES, item_rows),
            "i_price": rng.integers(1, 1_000, item_rows),
        },
        item_rows,
    )
    register(
        "customer",
        {
            "c_customer_sk": np.arange(n_customers),
            "c_region": rng.integers(0, N_REGIONS, n_customers),
            "c_payload": np.zeros(n_customers, dtype=np.int64),
        },
        n_customers,
    )

    # --- fact tables ------------------------------------------------------
    def fact_rows(weight: float) -> int:
        return max(int(instance_gb * rows_per_gb * weight / TABLE_WEIGHTS["store_sales"]), 100)

    n_ss = fact_rows(TABLE_WEIGHTS["store_sales"])
    register(
        "store_sales",
        {
            "ss_id": np.arange(n_ss),
            "ss_item_sk": fact_item_sks(n_ss),
            "ss_customer_sk": rng.integers(0, n_customers, n_ss),
            "ss_quantity": rng.integers(1, 12, n_ss),
            "ss_sales_price": rng.integers(1, 1_000, n_ss),
            "ss_payload": np.zeros(n_ss, dtype=np.int64),
        },
        n_ss,
    )
    n_wcs = fact_rows(TABLE_WEIGHTS["web_clickstream"])
    register(
        "web_clickstream",
        {
            "wcs_id": np.arange(n_wcs),
            "wcs_item_sk": fact_item_sks(n_wcs),
            "wcs_user_sk": rng.integers(0, n_customers, n_wcs),
            "wcs_clicks": rng.integers(1, 50, n_wcs),
            "wcs_payload": np.zeros(n_wcs, dtype=np.int64),
        },
        n_wcs,
    )
    n_ws = fact_rows(TABLE_WEIGHTS["web_sales"])
    register(
        "web_sales",
        {
            "ws_id": np.arange(n_ws),
            "ws_item_sk": fact_item_sks(n_ws),
            "ws_customer_sk": rng.integers(0, n_customers, n_ws),
            "ws_quantity": rng.integers(1, 12, n_ws),
            "ws_sales_price": rng.integers(1, 1_000, n_ws),
            "ws_payload": np.zeros(n_ws, dtype=np.int64),
        },
        n_ws,
    )
    n_sr = fact_rows(TABLE_WEIGHTS["store_returns"])
    register(
        "store_returns",
        {
            "sr_id": np.arange(n_sr),
            "sr_item_sk": fact_item_sks(n_sr),
            "sr_return_quantity": rng.integers(1, 6, n_sr),
            "sr_payload": np.zeros(n_sr, dtype=np.int64),
        },
        n_sr,
    )
    n_pr = fact_rows(TABLE_WEIGHTS["product_reviews"])
    register(
        "product_reviews",
        {
            "pr_id": np.arange(n_pr),
            "pr_item_sk": fact_item_sks(n_pr),
            "pr_rating": rng.integers(1, 6, n_pr),
            "pr_payload": np.zeros(n_pr, dtype=np.int64),
        },
        n_pr,
    )

    domains = {"i_item_sk": item_domain}
    for column in ITEM_SK_COLUMNS.values():
        domains[column] = item_domain
    return BigBenchInstance(catalog, domains, instance_gb, item_domain)


# ----------------------------------------------------------------------
# Query templates (§10.1): ten join templates with a selection on item_sk
# ----------------------------------------------------------------------
def q01(lo: float, hi: float) -> Plan:
    """Store sales per category (quantity) in an item range."""
    return (
        Q("store_sales")
        .join("item", on=("ss_item_sk", "i_item_sk"))
        .select("i_item_sk", "i_category_id", "ss_quantity")
        .where_between("i_item_sk", lo, hi)
        .group_by("i_category_id", agg=[("sum", "ss_quantity", "q01_total_qty")])
        .plan
    )


def q05(lo: float, hi: float) -> Plan:
    """Click counts per category in an item range."""
    return (
        Q("web_clickstream")
        .join("item", on=("wcs_item_sk", "i_item_sk"))
        .select("i_item_sk", "i_category_id", "wcs_clicks")
        .where_between("i_item_sk", lo, hi)
        .group_by("i_category_id", agg=[("sum", "wcs_clicks", "q05_clicks")])
        .plan
    )


def q07(lo: float, hi: float) -> Plan:
    """Store sales revenue per customer region in an item range."""
    return (
        Q("store_sales")
        .join("customer", on=("ss_customer_sk", "c_customer_sk"))
        .select("ss_item_sk", "c_region", "ss_sales_price")
        .where_between("ss_item_sk", lo, hi)
        .group_by("c_region", agg=[("sum", "ss_sales_price", "q07_revenue")])
        .plan
    )


def q09(lo: float, hi: float) -> Plan:
    """Average store sales price per category in an item range."""
    return (
        Q("store_sales")
        .join("item", on=("ss_item_sk", "i_item_sk"))
        .select("i_item_sk", "i_category_id", "ss_sales_price")
        .where_between("i_item_sk", lo, hi)
        .group_by("i_category_id", agg=[("avg", "ss_sales_price", "q09_avg_price")])
        .plan
    )


def q12(lo: float, hi: float) -> Plan:
    """Clickstream sessions per user region in an item range."""
    return (
        Q("web_clickstream")
        .join("customer", on=("wcs_user_sk", "c_customer_sk"))
        .select("wcs_item_sk", "c_region")
        .where_between("wcs_item_sk", lo, hi)
        .group_by("c_region", agg=[("count", None, "q12_clicks")])
        .plan
    )


def q16(lo: float, hi: float) -> Plan:
    """Web sales per category in an item range."""
    return (
        Q("web_sales")
        .join("item", on=("ws_item_sk", "i_item_sk"))
        .select("i_item_sk", "i_category_id", "ws_sales_price")
        .where_between("i_item_sk", lo, hi)
        .group_by("i_category_id", agg=[("sum", "ws_sales_price", "q16_revenue")])
        .plan
    )


def q20(lo: float, hi: float) -> Plan:
    """Returns per category in an item range."""
    return (
        Q("store_returns")
        .join("item", on=("sr_item_sk", "i_item_sk"))
        .select("i_item_sk", "i_category_id", "sr_return_quantity")
        .where_between("i_item_sk", lo, hi)
        .group_by(
            "i_category_id", agg=[("sum", "sr_return_quantity", "q20_returned")]
        )
        .plan
    )


def q26(lo: float, hi: float) -> Plan:
    """Sales count and volume per category in an item range."""
    return (
        Q("store_sales")
        .join("item", on=("ss_item_sk", "i_item_sk"))
        .select("i_item_sk", "i_category_id", "ss_quantity")
        .where_between("i_item_sk", lo, hi)
        .group_by(
            "i_category_id",
            agg=[("count", None, "q26_sales"), ("sum", "ss_quantity", "q26_qty")],
        )
        .plan
    )


def q29(lo: float, hi: float) -> Plan:
    """Average review rating per category in an item range."""
    return (
        Q("product_reviews")
        .join("item", on=("pr_item_sk", "i_item_sk"))
        .select("i_item_sk", "i_category_id", "pr_rating")
        .where_between("i_item_sk", lo, hi)
        .group_by("i_category_id", agg=[("avg", "pr_rating", "q29_avg_rating")])
        .plan
    )


def q30(lo: float, hi: float) -> Plan:
    """Clicks per category in an item range — the §10.2-10.4 workhorse."""
    return (
        Q("web_clickstream")
        .join("item", on=("wcs_item_sk", "i_item_sk"))
        .select("i_item_sk", "i_category_id", "wcs_clicks")
        .where_between("i_item_sk", lo, hi)
        .group_by("i_category_id", agg=[("max", "wcs_clicks", "q30_max_clicks")])
        .plan
    )


TEMPLATES = {
    "q01": q01,
    "q05": q05,
    "q07": q07,
    "q09": q09,
    "q12": q12,
    "q16": q16,
    "q20": q20,
    "q26": q26,
    "q29": q29,
    "q30": q30,
}
