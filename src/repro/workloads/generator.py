"""Workload generation: Table-1 synthetic grids and the SDSS-mapped mix.

Two workload families drive the evaluation:

* **Synthetic** (§10.2-10.4) — a single template instantiated with
  selection ranges of a given selectivity (S/M/B) and skew (U/L/H, plus
  Zipf), optionally switching distribution mid-workload to model evolving
  access patterns;
* **SDSS-mapped** (§10.1) — 1 000 selection ranges drawn from the
  (synthetic) SDSS log in submission order, mapped onto the ``item_sk``
  domain, each attached to a randomly chosen BigBench template.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.partitioning.intervals import Interval
from repro.query.algebra import Plan
from repro.workloads import bigbench
from repro.workloads.distributions import RangeSampler, selectivity_for, skew_for
from repro.workloads.sdss import SDSS_RA_DOMAIN, map_ranges


@dataclass(frozen=True)
class SyntheticSpec:
    """One Table-1 cell: template × selectivity × skew.

    ``center`` positions the skewed distributions (domain fraction), so
    pattern-shift workloads can move the hot spot between phases.
    """

    template: str
    selectivity: str  # "S" | "M" | "B"
    skew: str  # "U" | "L" | "H" | "Z"
    n_queries: int
    center: float | None = None
    seed: int = 0

    @property
    def label(self) -> str:
        return f"{self.selectivity.upper()}{self.skew.upper()}"


def synthetic_workload(spec: SyntheticSpec, domain: Interval) -> list[Plan]:
    """Instantiate one synthetic workload over the item domain."""
    template = bigbench.TEMPLATES.get(spec.template)
    if template is None:
        raise WorkloadError(f"unknown template: {spec.template!r}")
    sampler = RangeSampler(
        domain=domain,
        selectivity=selectivity_for(spec.selectivity),
        skew=skew_for(spec.skew),
        center=spec.center,
    )
    rng = np.random.default_rng(spec.seed)
    return [template(iv.lo, iv.hi) for iv in sampler.sample_many(spec.n_queries, rng)]


def phased_workload(phases: list[SyntheticSpec], domain: Interval) -> list[Plan]:
    """Concatenate phases — the pattern-shift workloads of §10.4."""
    plans: list[Plan] = []
    for phase in phases:
        plans.extend(synthetic_workload(phase, domain))
    return plans


def midpoint_sequence_workload(
    template: str,
    midpoints: list[float],
    width: float,
    domain: Interval,
) -> list[Plan]:
    """Fixed-width queries at explicit midpoints (the Fig-9 sequence)."""
    fn = bigbench.TEMPLATES.get(template)
    if fn is None:
        raise WorkloadError(f"unknown template: {template!r}")
    half = width / 2.0
    plans = []
    for mid in midpoints:
        lo = max(domain.lo, mid - half)
        hi = min(domain.hi, mid + half)
        plans.append(fn(lo, hi))
    return plans


def sdss_mapped_workload(
    sdss_ranges: list[Interval],
    item_domain: Interval,
    n_queries: int = 1_000,
    templates: list[str] | None = None,
    seed: int = 0,
) -> list[Plan]:
    """The §10.1 real-life workload.

    Randomly picks ``n_queries`` ranges from the SDSS log (kept in
    submission order), maps them onto ``item_sk``, and attaches each to a
    randomly drawn BigBench template.
    """
    if not sdss_ranges:
        raise WorkloadError("empty SDSS log")
    names = templates or sorted(bigbench.TEMPLATES)
    rng = np.random.default_rng(seed)
    picks = np.sort(rng.choice(len(sdss_ranges), size=n_queries, replace=True))
    chosen = [sdss_ranges[i] for i in picks]  # order preserved
    mapped = map_ranges(chosen, SDSS_RA_DOMAIN, item_domain)
    plans = []
    for interval in mapped:
        template = bigbench.TEMPLATES[names[int(rng.integers(0, len(names)))]]
        plans.append(template(interval.lo, interval.hi))
    return plans
