"""Synthetic SDSS workload model (Figures 1-2 and §10.1).

The paper drives its real-life experiment from the query log of the Sloan
Digital Sky Survey: range selections on attribute ``ra`` of table
``PhotoPrimary`` between March 2010 and March 2011.  That log is not
redistributable, so this module generates a synthetic log reproducing the
three properties the paper actually uses:

* **Non-uniform access** (Fig 1) — hits concentrate in a few hot ranges,
  and ranges near hot spots are themselves warm (spatial correlation);
* **Evolving access** (Fig 2) — the first ~30 % of the log focuses on
  200-300°, the remainder shifts to ~100°, with occasional full-domain
  scans (the vertical line near query 1 000);
* **Histogram-driven data skew** (§10.1) — BigBench ``item_sk`` values
  are sampled from the ra-range histogram so the data distribution
  matches the workload's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.partitioning.intervals import Interval

SDSS_RA_DOMAIN = Interval.closed(-20.0, 400.0)


@dataclass(frozen=True)
class SDSSConfig:
    """Parameters of the synthetic SDSS log generator.

    Defaults reproduce the qualitative shape of Figures 1-2: an early hot
    spot at 200-300°, a later one near 100°, a small uniform background,
    and a handful of full-domain scans clustered near query 1 000.
    """

    n_queries: int = 10_000
    phase_split: float = 0.3
    early_hot: tuple[float, float] = (250.0, 25.0)  # (mean, sigma) degrees
    late_hot: tuple[float, float] = (100.0, 15.0)
    width_range: tuple[float, float] = (2.0, 40.0)
    uniform_fraction: float = 0.02
    full_domain_near: int = 1_000
    full_domain_count: int = 3
    seed: int = 20100308  # the log's start date

    def __post_init__(self) -> None:
        if not 0.0 < self.phase_split < 1.0:
            raise WorkloadError("phase_split must be in (0, 1)")
        if self.n_queries < 1:
            raise WorkloadError("n_queries must be positive")


def generate_sdss_log(config: SDSSConfig = SDSSConfig()) -> list[Interval]:
    """The synthetic log: one selection interval per query, in time order."""
    rng = np.random.default_rng(config.seed)
    domain = SDSS_RA_DOMAIN
    split_at = int(config.n_queries * config.phase_split)
    full_domain_at = set()
    if config.full_domain_count and config.n_queries > config.full_domain_near:
        full_domain_at = {
            config.full_domain_near + int(i)
            for i in rng.integers(0, 50, config.full_domain_count)
        }

    log: list[Interval] = []
    for i in range(config.n_queries):
        if i in full_domain_at:
            log.append(domain)
            continue
        if rng.uniform() < config.uniform_fraction:
            mid = float(rng.uniform(domain.lo, domain.hi))
        else:
            mean, sigma = config.early_hot if i < split_at else config.late_hot
            mid = float(rng.normal(mean, sigma))
        width = float(rng.uniform(*config.width_range))
        lo = max(domain.lo, mid - width / 2.0)
        hi = min(domain.hi, mid + width / 2.0)
        if lo >= hi:
            lo, hi = domain.lo, domain.lo + width
        log.append(Interval.closed(lo, hi))
    return log


def range_histogram(
    ranges: list[Interval],
    nbins: int = 42,
    domain: Interval = SDSS_RA_DOMAIN,
) -> tuple[np.ndarray, np.ndarray]:
    """Figure-1 style histogram: per-bin count of ranges touching the bin.

    Returns ``(bin_edges, hits)`` with ``len(hits) == nbins``.
    """
    edges = np.linspace(domain.lo, domain.hi, nbins + 1)
    hits = np.zeros(nbins, dtype=np.int64)
    for r in ranges:
        first = int(np.searchsorted(edges, r.lo, side="right")) - 1
        last = int(np.searchsorted(edges, r.hi, side="left")) - 1
        first = max(first, 0)
        last = min(last, nbins - 1)
        if last >= first:
            hits[first : last + 1] += 1
    return edges, hits


def map_ranges(
    ranges: list[Interval],
    source: Interval,
    target: Interval,
) -> list[Interval]:
    """Linearly map selection ranges onto another attribute domain (§10.1).

    This is how the paper turns SDSS ``ra`` selections into BigBench
    ``item_sk`` selections.
    """
    if not (source.is_bounded() and target.is_bounded()):
        raise WorkloadError("range mapping requires bounded domains")
    scale = target.width / source.width

    def m(x: float) -> float:
        return target.lo + (x - source.lo) * scale

    return [Interval.closed(m(r.lo), m(r.hi)) for r in ranges]


def sample_values_from_ranges(
    ranges: list[Interval],
    n: int,
    target: Interval,
    rng: np.random.Generator,
    nbins: int = 200,
    source: Interval = SDSS_RA_DOMAIN,
) -> np.ndarray:
    """Sample ``n`` integer attribute values following the log's histogram.

    Builds the Figure-1 histogram over the source log, maps it to the
    target domain, and draws values bin-proportionally — the §10.1 recipe
    for giving ``item_sk`` the SDSS data distribution.  A small uniform
    floor keeps every bin reachable.
    """
    edges, hits = range_histogram(ranges, nbins=nbins, domain=source)
    weights = hits.astype(np.float64) + 1.0  # uniform floor
    weights /= weights.sum()
    bins = rng.choice(nbins, size=n, p=weights)
    span = target.width / nbins
    offsets = rng.uniform(0.0, span, size=n)
    values = target.lo + bins * span + offsets
    return np.clip(np.round(values), target.lo, target.hi).astype(np.int64)
