"""Selection-range distributions (Table 1 and §10).

A *range sampler* draws selection intervals ``[l, u]`` of a fixed
selectivity over an attribute's domain.  The paper defines three midpoint
skews — the midpoint of the interval is sampled from:

* **Uniform (U)** — uniform over the domain;
* **Lightly skewed (L)** — normal with σ = 7.5 % of the domain width;
* **Heavily skewed (H)** — normal with σ = 0.25 % of the domain width;

plus a Zipfian option used by the Figure-8b robustness experiment.
Midpoints are clamped so the interval stays inside the domain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.partitioning.intervals import Interval

SKEWS = ("uniform", "light", "heavy", "zipf")

LIGHT_SIGMA_FRACTION = 0.075
HEAVY_SIGMA_FRACTION = 0.0025


@dataclass(frozen=True)
class RangeSampler:
    """Draws fixed-width selection intervals with a configurable skew.

    Attributes:
        domain: Bounded attribute domain.
        selectivity: Interval width as a fraction of the domain width
            (the paper's S/M/B = 1 % / 5 % / 25 %).
        skew: One of ``uniform``, ``light``, ``heavy``, ``zipf``.
        center: Midpoint of the skewed distributions as a domain
            fraction; defaults to the domain centre.
        zipf_a: Shape parameter of the Zipf distribution.
    """

    domain: Interval
    selectivity: float
    skew: str = "uniform"
    center: float | None = None
    zipf_a: float = 1.8

    def __post_init__(self) -> None:
        if not self.domain.is_bounded():
            raise WorkloadError("range sampler requires a bounded domain")
        if not 0.0 < self.selectivity <= 1.0:
            raise WorkloadError(f"selectivity must be in (0, 1], got {self.selectivity}")
        if self.skew not in SKEWS:
            raise WorkloadError(f"unknown skew: {self.skew!r}")

    @property
    def width(self) -> float:
        return self.domain.width * self.selectivity

    def _midpoint(self, rng: np.random.Generator) -> float:
        lo, hi = self.domain.lo, self.domain.hi
        span = hi - lo
        centre = lo + span * (self.center if self.center is not None else 0.5)
        if self.skew == "uniform":
            return float(rng.uniform(lo, hi))
        if self.skew == "light":
            return float(rng.normal(centre, span * LIGHT_SIGMA_FRACTION))
        if self.skew == "heavy":
            return float(rng.normal(centre, span * HEAVY_SIGMA_FRACTION))
        # Zipf over a 1000-bucket discretization of the domain, anchored at
        # the centre and wrapping so the mass stays in-domain.
        rank = int(rng.zipf(self.zipf_a))
        bucket = (rank - 1) % 1000
        return centre + (bucket / 1000.0) * span / 2.0

    def sample(self, rng: np.random.Generator) -> Interval:
        """One selection interval, clamped inside the domain."""
        half = self.width / 2.0
        mid = self._midpoint(rng)
        mid = min(max(mid, self.domain.lo + half), self.domain.hi - half)
        return Interval.closed(mid - half, mid + half)

    def sample_many(self, n: int, rng: np.random.Generator) -> list[Interval]:
        return [self.sample(rng) for _ in range(n)]


def selectivity_for(label: str) -> float:
    """Map the paper's S/M/B labels to fractions (Table 1)."""
    mapping = {"S": 0.01, "M": 0.05, "B": 0.25}
    try:
        return mapping[label.upper()]
    except KeyError:
        raise WorkloadError(f"unknown selectivity label: {label!r}") from None


def skew_for(label: str) -> str:
    """Map the paper's U/L/H labels to sampler skews (Table 1)."""
    mapping = {"U": "uniform", "L": "light", "H": "heavy", "Z": "zipf"}
    try:
        return mapping[label.upper()]
    except KeyError:
        raise WorkloadError(f"unknown skew label: {label!r}") from None
