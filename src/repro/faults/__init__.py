"""Deterministic fault injection for the simulated cluster.

DeepSea's design assumptions come from a MapReduce world where map tasks
fail and restart, stragglers trigger speculative copies, HDFS blocks go
missing, and controllers die between repartitioning steps.  The seed's
simulated cluster was perfect, so none of the paper's machinery was ever
exercised under adversity.  This package makes adversity a first-class,
*reproducible* input:

* :mod:`repro.faults.schedule` — :class:`FaultSchedule`: a seeded,
  picklable, JSON-serializable description of what goes wrong and how
  often, plus a registry of built-in schedules.
* :mod:`repro.faults.injector` — :class:`FaultInjector`: the seeded
  random stream that turns a schedule into concrete decisions at each
  injection site, logging every event it fires.
* :mod:`repro.faults.recovery` — :class:`FragmentRecovery`: the
  recompute-from-base-tables degradation path used when every replica of
  a pool entry is lost.
* :mod:`repro.faults.verify` — the chaos harness's invariant checker:
  **faults may change cost, never answers** (result tables byte-identical
  to the fault-free run, ledgers strictly costlier).
"""

from repro.faults.injector import FaultInjector, InjectedEvent
from repro.faults.recovery import FragmentRecovery
from repro.faults.schedule import (
    BUILTIN_SCHEDULES,
    FAULT_KINDS,
    FaultSchedule,
    FaultSpec,
    builtin_schedule,
    builtin_schedule_names,
)
from repro.faults.verify import InvariantReport, verify_run, verify_runs

__all__ = [
    "BUILTIN_SCHEDULES",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "FragmentRecovery",
    "InjectedEvent",
    "InvariantReport",
    "builtin_schedule",
    "builtin_schedule_names",
    "verify_run",
    "verify_runs",
]
