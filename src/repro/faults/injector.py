"""The seeded random stream that turns a schedule into concrete faults.

One :class:`FaultInjector` is minted per system run (never shared across
runs): all decisions come from a single PCG64 stream seeded by the
schedule, so a run's fault sequence depends only on (schedule, call
sequence) — and the engine's call sequence is deterministic, which is what
makes ``workers=1`` and ``workers=2`` chaos runs byte-identical.

Every fired fault and every completed recovery appends one line to the
event log; the determinism harness asserts the logs are identical across
worker counts, and the chaos CLI prints the counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.engine.cost import CostLedger
    from repro.faults.schedule import FaultSchedule

# A failed task's retry chain is bounded: after this many attempts the
# simulated scheduler blacklists the node and the task succeeds elsewhere.
_MAX_TASK_ATTEMPTS = 4


@dataclass(frozen=True)
class InjectedEvent:
    """One fired fault (or completed recovery), in firing order."""

    seq: int
    site: str
    kind: str
    detail: str

    def line(self) -> str:
        return f"{self.seq}:{self.site}:{self.kind}:{self.detail}"


class FaultInjector:
    """Draws fault decisions for every injection site, logging each one."""

    def __init__(self, schedule: "FaultSchedule") -> None:
        self.schedule = schedule
        self._rng = np.random.Generator(np.random.PCG64(schedule.seed))
        self._rates = {spec.kind: spec.rate for spec in schedule.specs}
        self.events: list[InjectedEvent] = []

    # ------------------------------------------------------------------
    def _record(self, site: str, kind: str, detail: str) -> None:
        self.events.append(InjectedEvent(len(self.events), site, kind, detail))

    def event_log(self) -> tuple[str, ...]:
        return tuple(event.line() for event in self.events)

    def event_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    @property
    def fired(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Injection sites
    # ------------------------------------------------------------------
    def map_task_faults(self, tasks: int) -> tuple[list[int], int]:
        """Failures and stragglers among ``tasks`` map tasks of one scan.

        Returns ``(retry_chains, stragglers)``: one entry per failed task
        giving how many *re-executions* it needed (each re-execution may
        fail again at the same rate, capped), and the number of tasks that
        straggled badly enough to trigger a speculative duplicate.
        """
        frate = self._rates.get("task_failure", 0.0)
        srate = self._rates.get("straggler", 0.0)
        chains: list[int] = []
        if frate > 0.0 and tasks > 0:
            failures = int(self._rng.binomial(tasks, frate))
            for _ in range(failures):
                attempts = 1
                while attempts < _MAX_TASK_ATTEMPTS and self._rng.random() < frate:
                    attempts += 1
                chains.append(attempts)
            if failures:
                self._record(
                    "cost.read",
                    "task_failure",
                    f"{failures}/{tasks} tasks failed, {sum(chains)} re-executions",
                )
        stragglers = 0
        if srate > 0.0 and tasks > 0:
            stragglers = int(self._rng.binomial(tasks, srate))
            if stragglers:
                self._record(
                    "cost.read",
                    "straggler",
                    f"{stragglers}/{tasks} speculative duplicates",
                )
        return chains, stragglers

    def block_read_faults(self, path: str, size_bytes: float, ledger: "CostLedger") -> None:
        """Replica-level damage on one file read, charged to ``ledger``.

        A lost replica costs a full re-read from a surviving sibling; a
        corrupt block costs the checksum detection (one task overhead)
        plus the re-read.  Neither changes the payload returned.
        """
        cluster = ledger.cluster
        lrate = self._rates.get("replica_loss", 0.0)
        if lrate > 0.0 and self._rng.random() < lrate:
            ledger.charge_fault(cluster.read_elapsed(size_bytes, nfiles=1))
            self._record("storage.read", "replica_loss", path)
        crate = self._rates.get("block_corruption", 0.0)
        if crate > 0.0 and self._rng.random() < crate:
            ledger.charge_fault(
                cluster.task_overhead_s + cluster.read_elapsed(size_bytes, nfiles=1)
            )
            self._record("storage.read", "block_corruption", path)

    def lose_fragment(self, n_candidates: int) -> int | None:
        """Index of the pool entry losing all replicas this query, if any."""
        rate = self._rates.get("fragment_loss", 0.0)
        if rate <= 0.0 or n_candidates <= 0:
            return None
        if self._rng.random() >= rate:
            return None
        index = int(self._rng.integers(n_candidates))
        self._record("pool", "fragment_loss", f"entry {index} of {n_candidates}")
        return index

    def controller_crash(self, site: str) -> bool:
        """Does the controller die at this repartitioning step?"""
        rate = self._rates.get("controller_crash", 0.0)
        if rate <= 0.0 or self._rng.random() >= rate:
            return False
        self._record(site, "controller_crash", "died before commit")
        return True

    def worker_crash(self, site: str) -> bool:
        """One executor-worker death draw at the ``worker_kill`` rate.

        Where :meth:`worker_kill_plan` pre-draws a whole fan-out batch,
        this is the per-attempt form used by long-lived executors (the
        serving layer): each query attempt asks once whether its worker
        dies mid-flight, and a ``True`` is surfaced as a
        :class:`~repro.errors.WorkerCrashError` that the caller's bounded
        retry-with-backoff absorbs.
        """
        rate = self._rates.get("worker_kill", 0.0)
        if rate <= 0.0 or self._rng.random() >= rate:
            return False
        self._record(site, "worker_kill", "executor worker died mid-query")
        return True

    def worker_kill_plan(self, n_tasks: int) -> dict[int, int]:
        """Which fan-out tasks get their first attempt's worker killed.

        Maps task index to the number of leading attempts to kill — the
        ``fault_plan`` consumed by :func:`repro.parallel.pool.fan_out`.
        """
        rate = self._rates.get("worker_kill", 0.0)
        plan: dict[int, int] = {}
        if rate > 0.0:
            for index in range(n_tasks):
                if self._rng.random() < rate:
                    plan[index] = 1
        if plan:
            self._record("parallel", "worker_kill", f"tasks {sorted(plan)} of {n_tasks}")
        return plan

    # ------------------------------------------------------------------
    # Recovery bookkeeping (logged so the chaos report shows both sides)
    # ------------------------------------------------------------------
    def record_recovery(self, site: str, detail: str) -> None:
        self._record(site, "recovery", detail)
