"""Recompute-from-base-tables degradation for lost pool entries.

When every replica of a materialized fragment is gone, the real system
falls back to the view's defining query: re-run it over the base tables,
re-filter to the fragment's interval, and heal the file.  The recomputed
payload is byte-equivalent to the lost one — the definition plan is pure
over immutable base tables and the interval filter is deterministic — so
the degradation changes *cost* (a full recompute plus a re-write, charged
as fault time) but never *answers*.  :meth:`SimulatedHDFS.restore`
enforces the equivalence with a size check that raises
:class:`~repro.errors.RecoveryError` on divergence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.cost import ClusterSpec, CostLedger
from repro.engine.executor import ExecutionContext, Executor
from repro.engine.table import Table

if TYPE_CHECKING:
    from repro.engine.catalog import Catalog
    from repro.faults.injector import FaultInjector
    from repro.storage.pool import FragmentEntry, MaterializedViewPool


class FragmentRecovery:
    """Rebuilds a lost entry from its view definition over base tables."""

    def __init__(
        self,
        catalog: "Catalog",
        cluster: ClusterSpec,
        injector: "FaultInjector | None" = None,
    ) -> None:
        self.catalog = catalog
        self.cluster = cluster
        self.injector = injector
        self.recovered = 0

    def recover(
        self,
        pool: "MaterializedViewPool",
        entry: "FragmentEntry",
        ledger: CostLedger | None,
    ) -> Table:
        """Recompute ``entry``'s payload, heal the file, charge the price.

        The recompute runs against the catalog only (no pool), so its plan
        cannot recurse into other — possibly also damaged — pool entries.
        Its full simulated cost, plus the re-write of the healed file, is
        charged to ``ledger`` as fault time: the answer path is unchanged,
        only the bill grows.
        """
        definition = pool.definition(entry.key.view_id)
        scratch = CostLedger(self.cluster)
        executor = Executor(ExecutionContext(self.catalog, None, self.cluster))
        table = executor.execute(definition.plan, scratch).table
        if entry.key.attr is not None:
            table = table.filter(entry.key.interval.mask(table.column(entry.key.attr)))
        scratch.charge_write(table.size_bytes, nfiles=1)
        pool.hdfs.restore(entry.path, table)  # raises RecoveryError on divergence
        if ledger is not None:
            ledger.charge_fault(scratch.total_seconds)
        self.recovered += 1
        if self.injector is not None:
            self.injector.record_recovery(
                "pool", f"recomputed {entry.fragment_id} from base tables"
            )
        return table
