"""The chaos harness's invariant checker.

The contract every recovery path in this codebase is built around:
**faults may change cost, never answers**.  A run under a fault schedule
must produce, query for query, the same result rows and the same
decision trail (views used/created, refinements, evictions, pool bytes)
as the fault-free run — while its ledgers are *strictly* costlier,
because retries, re-reads, recomputes, and journal replays are real
simulated work.

:func:`verify_run` checks both directions for one system and returns an
:class:`InvariantReport`; ``python -m repro chaos`` prints one line per
(system × schedule) and exits non-zero if any report has problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.parallel.determinism import report_fingerprint

if TYPE_CHECKING:
    from repro.bench.harness import RunResult

# Positional names of the report_fingerprint tuple, for diff messages.
_FIELD_NAMES = (
    "index",
    "execution_ledger",
    "creation_ledger",
    "view_used",
    "fragments_read",
    "views_created",
    "refinements",
    "evictions",
    "pool_bytes",
    "sorted_rows",
)

_MAX_PROBLEMS = 8


@dataclass
class InvariantReport:
    """Verdict for one (system × schedule) chaos run."""

    label: str
    schedule: str
    events: int
    baseline_s: float
    faulted_s: float
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def overhead_s(self) -> float:
        return self.faulted_s - self.baseline_s

    def summary(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        line = (
            f"{self.label:<10} {self.schedule:<18} {verdict:<5} "
            f"events={self.events:<4} "
            f"baseline={self.baseline_s:10.1f}s "
            f"faulted={self.faulted_s:10.1f}s "
            f"overhead={self.overhead_s:+9.1f}s"
        )
        for problem in self.problems:
            line += f"\n    ! {problem}"
        return line


def verify_run(baseline: "RunResult", faulted: "RunResult", schedule: str = "?") -> InvariantReport:
    """Check the answers-never-change / strictly-costlier invariant pair.

    ``baseline`` and ``faulted`` must be the same system over the same
    workload, with and without a fault schedule attached.  Ledgers are
    masked out of the answer comparison (they are *supposed* to differ)
    and checked separately for the strict cost increase.
    """
    problems: list[str] = []
    if len(baseline.reports) != len(faulted.reports):
        problems.append(
            f"report count diverged: {len(baseline.reports)} fault-free vs "
            f"{len(faulted.reports)} faulted"
        )
    else:
        for base, fault in zip(baseline.reports, faulted.reports):
            if len(problems) >= _MAX_PROBLEMS:
                problems.append("... (further divergences truncated)")
                break
            fp_base = report_fingerprint(base, include_ledgers=False)
            fp_fault = report_fingerprint(fault, include_ledgers=False)
            if fp_base == fp_fault:
                continue
            for name, vb, vf in zip(_FIELD_NAMES, fp_base, fp_fault):
                if vb != vf:
                    problems.append(f"query {base.index}: {name} diverged under faults")
                    break
    events = len(faulted.fault_events)
    if events == 0:
        problems.append("schedule fired no faults — nothing was exercised")
    elif faulted.total_s <= baseline.total_s:
        problems.append(
            f"faulted ledger not strictly costlier: "
            f"{faulted.total_s:.3f}s vs {baseline.total_s:.3f}s fault-free"
        )
    return InvariantReport(
        baseline.label,
        schedule,
        events,
        baseline.total_s,
        faulted.total_s,
        problems,
    )


def verify_runs(
    baselines: "dict[str, RunResult]",
    faulted: "dict[str, RunResult]",
    schedule: str = "?",
) -> list[InvariantReport]:
    """One :class:`InvariantReport` per system label, in baseline order."""
    reports = []
    for label, base in baselines.items():
        if label not in faulted:
            report = InvariantReport(label, schedule, 0, base.total_s, 0.0)
            report.problems.append("no faulted run for this system")
            reports.append(report)
            continue
        reports.append(verify_run(base, faulted[label], schedule))
    return reports
