"""Fault schedules: seeded, serializable descriptions of cluster adversity.

A :class:`FaultSchedule` is pure configuration — frozen dataclasses of
primitives, picklable and JSON-round-trippable — so the same adversity can
be replayed bit-for-bit in another process, another worker count, or
another session.  The schedule never *decides* anything; decisions are
drawn by :class:`~repro.faults.injector.FaultInjector`, which a schedule
mints on demand.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import FaultError

#: Every injection site the simulator understands, and where it fires:
#:
#: ``task_failure``      map tasks in the cost model; retried with backoff
#: ``straggler``         map tasks in the cost model; speculative copy
#: ``replica_loss``      one HDFS replica on read; re-read from a sibling
#: ``block_corruption``  checksum failure on read; detect + re-read
#: ``fragment_loss``     all replicas of one pool entry, once per query
#: ``controller_crash``  between repartitioning steps; journal rollback
#: ``worker_kill``       parallel-runner worker death; bounded re-dispatch
FAULT_KINDS = frozenset(
    {
        "task_failure",
        "straggler",
        "replica_loss",
        "block_corruption",
        "fragment_loss",
        "controller_crash",
        "worker_kill",
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One knob of a schedule: a fault kind and its per-opportunity rate."""

    kind: str
    rate: float

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}; known: {sorted(FAULT_KINDS)}")
        if not 0.0 <= self.rate <= 1.0:
            raise FaultError(f"fault rate must be in [0, 1], got {self.rate!r}")


@dataclass(frozen=True)
class FaultSchedule:
    """A named, seeded set of fault rates.

    The seed fully determines every decision an injector minted from this
    schedule will ever make (given the same sequence of injection-site
    calls, which the engine guarantees is deterministic per run).
    """

    name: str
    seed: int
    specs: tuple[FaultSpec, ...]

    def __post_init__(self) -> None:
        kinds = [s.kind for s in self.specs]
        if len(kinds) != len(set(kinds)):
            raise FaultError(f"duplicate fault kinds in schedule {self.name!r}")

    @classmethod
    def of(cls, name: str, seed: int = 0, **rates: float) -> "FaultSchedule":
        """Build a schedule from keyword rates: ``of("x", task_failure=0.05)``."""
        specs = tuple(FaultSpec(kind, rate) for kind, rate in sorted(rates.items()))
        return cls(name, seed, specs)

    def rate(self, kind: str) -> float:
        for spec in self.specs:
            if spec.kind == kind:
                return spec.rate
        return 0.0

    def injector(self):
        """Mint a fresh seeded :class:`~repro.faults.injector.FaultInjector`."""
        from repro.faults.injector import FaultInjector

        return FaultInjector(self)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "seed": self.seed,
                "faults": {s.kind: s.rate for s in self.specs},
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"invalid schedule JSON: {exc}") from None
        if not isinstance(data, dict) or "faults" not in data:
            raise FaultError("schedule JSON must be an object with a 'faults' map")
        return cls.of(
            str(data.get("name", "unnamed")),
            int(data.get("seed", 0)),
            **{str(k): float(v) for k, v in data["faults"].items()},
        )

    @classmethod
    def resolve(cls, ref: "str | FaultSchedule") -> "FaultSchedule":
        """A schedule from a built-in name, a JSON string, or itself."""
        if isinstance(ref, FaultSchedule):
            return ref
        if ref in BUILTIN_SCHEDULES:
            return BUILTIN_SCHEDULES[ref]
        if ref.lstrip().startswith("{"):
            return cls.from_json(ref)
        raise FaultError(f"unknown schedule {ref!r}; built-ins: {builtin_schedule_names()}")


# ----------------------------------------------------------------------
# Built-in schedules (the chaos CLI's defaults)
# ----------------------------------------------------------------------
# Rates are calibrated for the small-scale chaos workloads: high enough
# that every kind fires several times over ~50-150 queries, low enough
# that recovery (not collapse) dominates.  All include a task-failure
# floor so *every* system variant — including H, which never touches the
# pool — pays a strictly positive fault cost.
BUILTIN_SCHEDULES: dict[str, FaultSchedule] = {
    s.name: s
    for s in (
        FaultSchedule.of(
            "flaky-tasks", seed=7, task_failure=0.004, straggler=0.002
        ),
        FaultSchedule.of(
            "lossy-blocks",
            seed=11,
            task_failure=0.001,
            replica_loss=0.08,
            block_corruption=0.04,
        ),
        FaultSchedule.of(
            "amnesiac-pool", seed=13, task_failure=0.001, fragment_loss=0.08
        ),
        FaultSchedule.of(
            "crashy-controller", seed=17, task_failure=0.001, controller_crash=0.25
        ),
        FaultSchedule.of(
            "perfect-storm",
            seed=23,
            task_failure=0.002,
            straggler=0.001,
            replica_loss=0.04,
            block_corruption=0.02,
            fragment_loss=0.05,
            controller_crash=0.15,
            worker_kill=0.25,
        ),
    )
}


def builtin_schedule(name: str) -> FaultSchedule:
    try:
        return BUILTIN_SCHEDULES[name]
    except KeyError:
        raise FaultError(
            f"no built-in schedule {name!r}; known: {builtin_schedule_names()}"
        ) from None


def builtin_schedule_names() -> list[str]:
    return sorted(BUILTIN_SCHEDULES)
