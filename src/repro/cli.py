"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro list                 # available experiments
    python -m repro run fig5a            # regenerate one figure
    python -m repro run fig5a fig6       # several
    python -m repro run all              # the whole evaluation
    python -m repro run all --workers 4  # same, over a process pool
    python -m repro compare --queries 200 --pool 0.25
                                          # ad-hoc H/NP/DS comparison
    python -m repro determinism --workers 1,2,4
                                          # ledger byte-identity harness

Each experiment prints the same paper-shaped table as its pytest
benchmark; the CLI simply drives the ``run_experiment`` functions that the
benchmarks define, so results are identical to
``pytest benchmarks/ --benchmark-only -s``.

``--workers N`` fans independent units out over a forked process pool
(experiments for ``run``, system variants for ``profile``) and merges
outputs back in canonical order — simulated-second results are
byte-identical to a serial run for any worker count, which ``python -m
repro determinism`` verifies end to end.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
import time
from pathlib import Path

from repro.bench.reporting import format_table

_BENCH_DIR = Path(__file__).resolve().parent.parent.parent / "benchmarks"

EXPERIMENTS = {
    "table1": ("bench_table1_parameters", "Table 1 — parameter grid"),
    "fig1": ("bench_fig1_sdss_histogram", "Figure 1 — SDSS histogram"),
    "fig2": ("bench_fig2_sdss_evolution", "Figure 2 — selection-range evolution"),
    "fig5a": ("bench_fig5a_overall", "Figure 5a — DS vs NP vs H"),
    "fig5b": ("bench_fig5b_selection_strategies", "Figure 5b — N / N+ / DS"),
    "fig6": ("bench_fig6_equidepth", "Figure 6 — equi-depth vs adaptive"),
    "fig7a": ("bench_fig7a_selectivity_skew", "Figure 7a — selectivity x skew"),
    "fig7b": ("bench_fig7b_recoup", "Figure 7b — queries to recoup"),
    "fig8a": ("bench_fig8a_correlation_normal", "Figure 8a — correlations (normal)"),
    "fig8b": ("bench_fig8b_correlation_zipf", "Figure 8b — correlations (Zipf)"),
    "fig9": ("bench_fig9_overlapping", "Figure 9 — overlapping partitioning"),
    "fig10a": ("bench_fig10a_adaptation", "Figure 10a — workload change"),
    "fig10b": ("bench_fig10b_ratio", "Figure 10b — DS/NR ratio"),
    "decay": ("bench_ablation_decay", "Ablation A1 — decay"),
    "bounding": ("bench_ablation_bounding", "Ablation A2 — size bounding"),
    "filtertree": ("bench_ablation_filtertree", "Ablation A3 — filter tree"),
    "mle": ("bench_ablation_mle", "Ablation A4 — MLE smoothing"),
    "merging": ("bench_ablation_merging", "Ablation A5 — fragment merging"),
}


def _load_bench(module_name: str):
    """Import a benchmark module from the benchmarks/ directory."""
    if str(_BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(_BENCH_DIR))
    path = _BENCH_DIR / f"{module_name}.py"
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        raise FileNotFoundError(path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module


class _PrintingBenchmark:
    """Duck-typed pytest-benchmark fixture: run once, report wall time."""

    def __init__(self) -> None:
        self.elapsed = 0.0

    def __call__(self, fn, *args, **kwargs):
        return self.pedantic(fn, args=args, kwargs=kwargs)

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1, warmup_rounds=0):
        start = time.perf_counter()
        result = fn(*args, **(kwargs or {}))
        self.elapsed = time.perf_counter() - start
        return result


def run_experiment(key: str) -> None:
    module_name, title = EXPERIMENTS[key]
    module = _load_bench(module_name)
    print(f"\n### {title} ###")
    bench = _PrintingBenchmark()
    once = lambda fn: bench.pedantic(fn)
    test_fns = [
        getattr(module, name)
        for name in dir(module)
        if name.startswith("test_") and callable(getattr(module, name))
    ]
    for fn in test_fns:
        params = fn.__code__.co_varnames[: fn.__code__.co_argcount]
        kwargs = {}
        if "once" in params:
            kwargs["once"] = once
        if "benchmark" in params:
            kwargs["benchmark"] = bench
        fn(**kwargs)
    print(f"(experiment wall time: {bench.elapsed:.1f}s; all assertions held)")


def cmd_list() -> int:
    rows = [(key, desc) for key, (_, desc) in EXPERIMENTS.items()]
    print(format_table(["id", "experiment"], rows, title="Available experiments"))
    return 0


def _run_experiment_captured(key: str) -> str:
    """Run one experiment with its stdout captured (pool-worker body)."""
    import contextlib
    import io

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        run_experiment(key)
    return buffer.getvalue()


def cmd_run(keys: list[str], workers: int = 0) -> int:
    targets = list(EXPERIMENTS) if keys == ["all"] else keys
    unknown = [k for k in targets if k not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use `python -m repro list` to see what's available", file=sys.stderr)
        return 2
    if workers >= 2 and len(targets) > 1:
        # Whole figures are the fan-out unit: each runs in a pool worker
        # with captured stdout, and the reports print in the canonical
        # experiment order no matter which worker finished first.
        from repro.parallel.pool import fan_out

        outputs = fan_out(
            [lambda key=key: _run_experiment_captured(key) for key in targets],
            workers,
        )
        for text in outputs:
            print(text, end="")
        return 0
    for key in targets:
        run_experiment(key)
    return 0


def cmd_compare(queries: int, pool: float | None, instance_gb: float, seed: int) -> int:
    from repro.baselines import deepsea, hive, non_partitioned
    from repro.bench.harness import sdss_fixture
    from repro.workloads.generator import sdss_mapped_workload

    fx = sdss_fixture(instance_gb)
    plans = sdss_mapped_workload(fx.log, fx.item_domain, n_queries=queries, seed=seed)
    smax = fx.catalog.total_size_bytes * pool if pool is not None else None
    rows = []
    for label, factory in (
        ("H", lambda: hive(fx.catalog, domains=fx.domains)),
        ("NP", lambda: non_partitioned(fx.catalog, domains=fx.domains, smax_bytes=smax)),
        ("DS", lambda: deepsea(fx.catalog, domains=fx.domains, smax_bytes=smax)),
    ):
        system = factory()
        reports = [system.execute(p) for p in plans]
        total = sum(r.total_s for r in reports)
        reuse = sum(1 for r in reports if r.reused_view)
        rows.append((label, total, reuse, system.pool.used_bytes / 1e9))
    baseline = rows[0][1]
    rows = [(l, t, t / baseline, r, p) for (l, t, r, p) in rows]
    print(
        format_table(
            ["system", "total (s)", "vs H", "reuses", "pool (GB)"],
            rows,
            title=f"Ad-hoc comparison — {queries} SDSS-mapped queries, "
            f"{instance_gb:.0f}GB instance, pool "
            f"{'unlimited' if pool is None else f'{pool:.0%} of base'}",
        )
    )
    return 0


def cmd_profile(
    queries: int,
    instance_gb: float,
    seed: int,
    output: str | None,
    check: str | None,
    max_slowdown: float,
    workers: int = 0,
    scheduler: str = "static",
    shared: str = "off",
) -> int:
    """Run the Figure-5a workload under the wall-clock profiler.

    Unlike every other subcommand, the numbers here are *real* seconds
    spent inside this Python process, not simulated cluster seconds —
    this is the tool for measuring the engine's own hot paths.  With
    ``--workers N`` the three systems run in a process pool; each
    worker's stage profile and cache counters appear under
    ``per_worker`` in the JSON report, merged totals under ``stages``.
    ``--scheduler steal`` swaps the static per-system split for the
    work-stealing pool: warm-forked workers pull run units off a shared
    deque (the stateless H baseline sliced into query chunks so it
    load-balances), and ``per_worker`` reports per *worker* — tasks run
    plus cache-counter deltas — instead of per system.  ``--shared-cache
    on`` attaches the cross-worker shared cache tier (the parent serves
    cache frames over the pool pipes; server counters land under
    ``shared_cache`` in the report).  With ``--check`` the measured total
    *and every profiled stage* are gated against a previously written
    report (the CI regression smoke), failing with a per-phase verdict.
    """
    from repro.baselines import deepsea, hive, non_partitioned
    from repro.bench.harness import run_systems, sdss_fixture
    from repro.bench.profile import (
        WallClockProfiler,
        check_report_against_baseline,
        load_report,
        write_report,
    )
    from repro.parallel import shared_cache
    from repro.workloads.generator import sdss_mapped_workload

    fx = sdss_fixture(instance_gb)  # built outside the timed region
    plans = sdss_mapped_workload(fx.log, fx.item_domain, n_queries=queries, seed=seed)
    factories = {
        "H": lambda: hive(fx.catalog, domains=fx.domains),
        "NP": lambda: non_partitioned(fx.catalog, domains=fx.domains),
        "DS": lambda: deepsea(fx.catalog, domains=fx.domains),
    }
    profilers = {label: WallClockProfiler() for label in factories}
    telemetry: dict = {}
    worker_stats: list = []
    server = shared_cache.SharedCacheServer() if shared == "on" else None
    prior_server = shared_cache.install_server(server) if server is not None else None
    start = time.perf_counter()
    try:
        run_systems(
            factories,
            plans,
            profilers,
            workers=workers,
            telemetry=telemetry,
            scheduler=scheduler,
            stateless=("H",) if scheduler == "steal" else (),
            worker_stats=worker_stats,
            catalog=fx.catalog if scheduler == "steal" else None,
            shared=server,
            shared_scope=("profile", queries, instance_gb, seed),
        )
    finally:
        if server is not None:
            shared_cache.install_server(prior_server)
    wall = time.perf_counter() - start

    combined = WallClockProfiler()
    stage_names = sorted({name for p in profilers.values() for name in p.seconds})
    rows = []
    for label, prof in profilers.items():
        combined.merge(prof)
        rows.append(
            (label, prof.total_seconds)
            + tuple(prof.seconds.get(name, 0.0) for name in stage_names)
        )
    rows.append(
        ("all", combined.total_seconds)
        + tuple(combined.seconds.get(name, 0.0) for name in stage_names)
    )
    print(
        format_table(
            ["system", "total (s)"] + [f"{n} (s)" for n in stage_names],
            rows,
            title=f"Wall-clock profile — {queries} SDSS-mapped queries, "
            f"{instance_gb:.0f}GB instance"
            + (f", {workers} workers ({scheduler})" if workers >= 2 else ""),
        )
    )

    report = {
        "experiment": "fig5a",
        "queries": queries,
        "instance_gb": instance_gb,
        "seed": seed,
        "workers": workers,
        "scheduler": scheduler,
        # Per-tier cache counters: the local tier is every worker's
        # process-local caches (in per_worker), the shared tier the
        # parent-side server the pool loops multiplexed.
        "shared_cache": {"mode": shared}
        | ({"server": server.stats()} if server is not None else {}),
        "total_seconds": wall,
        "systems": {label: prof.report() for label, prof in profilers.items()},
        "stages": combined.report()["stages"],
        # One entry per fan-out unit: which pid ran it, its stage profile,
        # and its cache hit/miss/eviction counters.  Serial runs share one
        # pid (and cumulative cache counters); parallel workers are
        # isolated, so their counters describe exactly one system's run.
        # Under --scheduler steal the unit is the *worker*, not the
        # system: warm-forked workers run many units each, so the entry
        # is tasks completed plus cache-counter deltas for that worker.
        "per_worker": {
            f"worker-{stats['pid']}": {
                "pid": stats["pid"],
                "tasks": stats["tasks"],
                "caches": stats["caches"],
            }
            for stats in worker_stats
        }
        if scheduler == "steal"
        else {
            label: {
                "pid": info.pid,
                "profile": info.profile,
                "caches": info.caches,
            }
            for label, info in telemetry.items()
        },
    }
    if server is not None:
        server.close()
    if output:
        write_report(output, report)
        print(f"report written to {output}")
    if check:
        ok, message = check_report_against_baseline(report, load_report(check), max_slowdown)
        print(message)
        return 0 if ok else 1
    return 0


def cmd_determinism(
    queries: int,
    instance_gb: float,
    seed: int,
    worker_counts: list[int],
    shared: str = "off",
    scheduler: str = "both",
    ingest: str = "off",
) -> int:
    """Verify parallel runs are byte-identical to serial (CI smoke gate).

    Runs the Figure-5a (H / NP / DS) task specs serially, then once per
    requested worker count — submitting tasks in *reversed* order to
    exercise the canonical-order merge — and compares full result
    fingerprints (both simulated-second ledgers, all decision counters,
    and every result table's sorted rows).  ``--scheduler`` picks which
    schedulers each worker count is checked under: the static cold-worker
    fan-out, the work-stealing pool with warm-forked workers and the
    stateless H baseline sliced into query chunks, or ``both`` (the
    default; CI runs one scheduler per matrix entry).  ``--shared-cache
    on`` (or ``both``) additionally runs every row with the cross-worker
    shared cache tier attached — same serial reference, so a digest match
    *is* the proof that shared-tier hits never change an answer or a
    ledger.  ``--ingest on`` adds a fourth task — DS with the steady-drip
    micro-batch schedule interleaved against a forked catalog — so the
    fingerprints also cover ingest's maintenance ledgers (``maint_s``,
    rows routed/applied, fragments patched) across worker counts and
    schedulers.  Exits non-zero, printing the first divergences, if any
    run changes a single byte.
    """
    from repro.bench.harness import RunResult
    from repro.parallel import shared_cache
    from repro.parallel.determinism import diff_results, fingerprint
    from repro.parallel.pool import fan_out, steal_map
    from repro.parallel.tasks import FixtureSpec, RunTask, SystemSpec, WorkloadSpec

    fixture = FixtureSpec("sdss", instance_gb)
    workload = WorkloadSpec(queries, seed)
    tasks = [
        RunTask(label, SystemSpec.of(factory), fixture, workload)
        for label, factory in (
            ("H", "hive"),
            ("NP", "non_partitioned"),
            ("DS", "deepsea"),
        )
    ]
    if ingest == "on":
        tasks.append(
            RunTask("DS+ingest", SystemSpec.of("deepsea"), fixture, workload, ingest="drip")
        )
    labels = [t.label for t in tasks]

    serial = {t.label: t.run() for t in tasks}
    reference = fingerprint(serial)
    rows = [("serial", reference[:16], "baseline")]
    status = 0

    # The H baseline is stateless, so under the steal scheduler its run
    # splits into contiguous query slices that merge back in order.
    sliced: list[tuple[str, RunTask]] = []
    for task in tasks:
        parts = task.slices(4) if task.label == "H" else [task]
        sliced.extend((task.label, part) for part in parts)

    def check(name: str, results: dict) -> None:
        nonlocal status
        digest = fingerprint(results)
        if digest == reference:
            rows.append((name, digest[:16], "identical"))
        else:
            rows.append((name, digest[:16], "DIVERGED"))
            status = 1
            for line in diff_results(serial, results, b_name=name):
                print(line, file=sys.stderr)

    tiers = {"off": (False,), "on": (True,), "both": (False, True)}[shared]
    for n in worker_counts:
        for tier_on in tiers:
            suffix = " shared" if tier_on else ""
            if scheduler in ("static", "both"):
                shuffled = list(reversed(range(len(tasks))))
                server = shared_cache.SharedCacheServer() if tier_on else None
                try:
                    outputs = fan_out(tasks, n, submission_order=shuffled, shared=server)
                finally:
                    if server is not None:
                        server.close()
                check(f"workers={n}{suffix}", dict(zip(labels, outputs)))

            if scheduler in ("steal", "both"):
                server = shared_cache.SharedCacheServer() if tier_on else None
                try:
                    stolen = steal_map(
                        [part for _, part in sliced], n, chunk_size=1, shared=server
                    )
                finally:
                    if server is not None:
                        server.close()
                merged: dict[str, RunResult] = {}
                for (label, _), result in zip(sliced, stolen):
                    if label in merged:
                        merged[label] = RunResult(
                            label,
                            merged[label].reports + result.reports,
                            merged[label].fault_events + result.fault_events,
                        )
                    else:
                        merged[label] = result
                check(f"workers={n} steal{suffix}", merged)
    print(
        format_table(
            ["run", "fingerprint", "verdict"],
            rows,
            title=f"Determinism harness — fig5a, {queries} queries, "
            f"{instance_gb:.0f}GB, systems {'/'.join(labels)}",
        )
    )
    print(
        "ledgers byte-identical across worker counts"
        if status == 0
        else "LEDGER DIVERGENCE — parallel run is not byte-identical to serial",
        file=sys.stderr if status else sys.stdout,
    )
    return status


def cmd_chaos(
    schedules: list[str],
    queries: int,
    instance_gb: float,
    seed: int,
    workers: int = 0,
    list_schedules: bool = False,
) -> int:
    """Run fig5a under fault schedules and verify the chaos invariant.

    For each schedule the H / NP / DS systems run twice over the same
    workload — fault-free and with the schedule attached — and
    :func:`repro.faults.verify.verify_run` checks both directions of the
    contract: result tables and decision trails byte-identical, ledgers
    strictly costlier.  Exits non-zero on any divergence, printing which
    query and which field diverged.
    """
    from repro.errors import FaultError
    from repro.faults import FaultSchedule, builtin_schedule_names, verify_run
    from repro.parallel.pool import fan_out
    from repro.parallel.tasks import FixtureSpec, RunTask, SystemSpec, WorkloadSpec

    if list_schedules:
        from repro.faults import BUILTIN_SCHEDULES

        rows = [
            (
                name,
                sched.seed,
                ", ".join(f"{s.kind}={s.rate:g}" for s in sched.specs),
            )
            for name, sched in sorted(BUILTIN_SCHEDULES.items())
        ]
        print(
            format_table(
                ["schedule", "seed", "fault rates"],
                rows,
                title="Built-in fault schedules",
            )
        )
        return 0

    names = schedules or builtin_schedule_names()
    try:
        for name in names:
            FaultSchedule.resolve(name)
    except FaultError as exc:
        print(f"bad --schedule: {exc}", file=sys.stderr)
        return 2

    fixture = FixtureSpec("sdss", instance_gb)
    workload = WorkloadSpec(queries, seed)
    systems = (("H", "hive"), ("NP", "non_partitioned"), ("DS", "deepsea"))
    base_tasks = [
        RunTask(label, SystemSpec.of(factory), fixture, workload)
        for label, factory in systems
    ]
    chaos_tasks = [
        RunTask(label, SystemSpec.of(factory), fixture, workload, faults=name)
        for name in names
        for label, factory in systems
    ]
    # Schedules with a worker_kill rate also attack the harness itself:
    # pool workers are hard-killed on their first dispatch of the drawn
    # tasks and the orphaned runs re-dispatch — byte-identical results
    # (the re-run executes the same spec) or fan_out raises, never hangs.
    all_tasks = base_tasks + chaos_tasks
    kill_plan: dict[int, int] = {}
    for name in names:
        sched = FaultSchedule.resolve(name)
        if sched.rate("worker_kill") > 0:
            for index, crashes in sched.injector().worker_kill_plan(len(all_tasks)).items():
                kill_plan[index] = max(kill_plan.get(index, 0), crashes)
    outputs = fan_out(all_tasks, workers, fault_plan=kill_plan or None)
    baselines = {task.label: result for task, result in zip(base_tasks, outputs)}

    status = 0
    rows = []
    for task, faulted in zip(chaos_tasks, outputs[len(base_tasks) :]):
        report = verify_run(baselines[task.label], faulted, task.faults)
        rows.append(
            (
                report.schedule,
                report.label,
                "ok" if report.ok else "FAIL",
                report.events,
                f"{report.baseline_s:.1f}",
                f"{report.faulted_s:.1f}",
                f"{report.overhead_s:+.1f}",
            )
        )
        if not report.ok:
            status = 1
            for problem in report.problems:
                print(
                    f"{report.schedule} / {report.label}: {problem}",
                    file=sys.stderr,
                )
    print(
        format_table(
            ["schedule", "system", "verdict", "events", "fault-free (s)",
             "faulted (s)", "overhead (s)"],
            rows,
            title=f"Chaos harness — fig5a, {queries} queries, "
            f"{instance_gb:.0f}GB, schedules {'/'.join(names)}",
        )
    )
    print(
        "answers byte-identical under every schedule; all ledgers strictly costlier"
        if status == 0
        else "CHAOS INVARIANT VIOLATED — faults changed answers or cost did not rise",
        file=sys.stderr if status else sys.stdout,
    )
    return status


def cmd_serve_bench(
    queries: int,
    instance_gb: float,
    seed: int,
    workers: int,
    queue_depth: int,
    deadline: float | None,
    chaos: str,
    rate: float,
    phases: list[str],
    output: str | None,
    shared: str = "off",
) -> int:
    """Open-loop load over the serving layer; verify the serving invariant.

    Drives steady / burst / chaos phases through :class:`repro.serve
    .QueryService` — concurrent snapshot readers, a single journaling
    writer repartitioning throughout, admission control and deadlines in
    front — and checks every answered query's digest against a serial
    fault-free direct run.  Exits non-zero if any answer diverged, the
    accounting invariant broke, any query failed outright, burst shed
    nothing, or chaos never exercised the retry path.
    """
    import json

    from repro.serve.driver import PHASES, run_serve_bench

    wanted = tuple(phases) if phases else PHASES
    unknown = [p for p in wanted if p not in PHASES]
    if unknown:
        print(f"unknown phase(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    report = run_serve_bench(
        queries=queries,
        instance_gb=instance_gb,
        seed=seed,
        workers=workers,
        queue_depth=queue_depth,
        deadline_s=deadline,
        chaos_schedule=chaos,
        rate_qps=rate,
        phases=wanted,
        shared_cache=shared == "on",
    )
    rows = []
    for name, phase in report["phases"].items():
        rows.append(
            (
                name,
                phase["offered"],
                phase["answered"],
                phase["shed"],
                phase["timed_out"],
                phase["retries"],
                phase["qps"],
                phase["p50_ms"],
                phase["p95_ms"],
                phase["p99_ms"],
                phase["pool_epoch"],
            )
        )
    print(
        format_table(
            ["phase", "offered", "answered", "shed", "timed out", "retries",
             "qps", "p50 (ms)", "p95 (ms)", "p99 (ms)", "epoch"],
            rows,
            title=f"Serve bench — {queries} SDSS-mapped queries, "
            f"{instance_gb:.0f}GB, {workers} readers, queue depth "
            f"{queue_depth}, chaos schedule {chaos}",
        )
    )
    if output:
        with open(output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {output}")
    for problem in report["problems"]:
        print(f"GATE: {problem}", file=sys.stderr)
    print(
        "all answers byte-identical to the serial fault-free run; accounting holds"
        if report["ok"]
        else "SERVING INVARIANT VIOLATED",
        file=sys.stdout if report["ok"] else sys.stderr,
    )
    return 0 if report["ok"] else 1


def cmd_ingest_bench(
    scenarios: list[str],
    modes: list[str],
    queries: int,
    instance_gb: float,
    seed: int,
    workers: int,
    output: str | None,
) -> int:
    """Micro-batch ingest scenarios; verify delta maintenance end to end.

    Each scenario (steady drip, flash-crowd burst, drifting hot range)
    runs in ``delta`` and ``rebuild`` modes over identical inputs.  After
    every batch the harness proves each resident fragment payload
    byte-identical to a from-scratch recompute over the grown base table,
    and probes every query answer against a direct base-table evaluation
    (stale cache reads must be zero).  Exits non-zero if any identity
    check fails, maintenance is never charged, no fragment is
    delta-patched, or the two modes' per-query answers diverge.
    """
    import json

    from repro.bench.ingest_bench import MODES, SCENARIOS, run_ingest_bench

    wanted = tuple(scenarios) if scenarios else SCENARIOS
    unknown = [s for s in wanted if s not in SCENARIOS]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    mode_set = tuple(modes) if modes else MODES
    unknown = [m for m in mode_set if m not in MODES]
    if unknown:
        print(f"unknown mode(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    report = run_ingest_bench(
        wanted,
        modes=mode_set,
        queries=queries,
        instance_gb=instance_gb,
        seed=seed,
        workers=workers,
    )
    rows = []
    for res in report["results"]:
        third = max(1, len(res["per_query_s"]) // 3)
        early = sum(res["per_query_s"][:third]) / third
        late = sum(res["per_query_s"][-third:]) / third
        rows.append(
            (
                res["scenario"],
                res["mode"],
                res["batches"],
                res["rows_ingested"],
                f"{res['maint_s']:.1f}",
                res["fragments_patched"],
                res["fragments_rebuilt"],
                res["fragments_dropped"],
                f"{res['total_s']:.1f}",
                f"{early:.1f}",
                f"{late:.1f}",
                "yes" if res["identity_ok"] else "NO",
                res["stale_reads"],
            )
        )
    print(
        format_table(
            ["scenario", "mode", "batches", "rows", "maint (s)", "patched",
             "rebuilt", "dropped", "total (s)", "early q (s)", "late q (s)",
             "identity", "stale"],
            rows,
            title=f"Ingest bench — {queries} queries/scenario, "
            f"{instance_gb:.0f}GB instance, per-batch identity proof"
            + (f", {workers} workers" if workers >= 2 else ""),
        )
    )
    if output:
        with open(output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True, default=float)
        print(f"report written to {output}")
    for problem in report["problems"]:
        print(f"GATE: {problem}", file=sys.stderr)
    print(
        "delta-maintained answers byte-identical to full recompute after every batch"
        if report["ok"]
        else "INGEST INVARIANT VIOLATED",
        file=sys.stdout if report["ok"] else sys.stderr,
    )
    return 0 if report["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DeepSea (EDBT 2017) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run experiments by id (or 'all')")
    run_p.add_argument("experiments", nargs="+", metavar="ID")
    run_p.add_argument("--workers", type=int, default=0,
                       help="fan experiments out over N pool workers")
    cmp_p = sub.add_parser("compare", help="ad-hoc H/NP/DS comparison")
    cmp_p.add_argument("--queries", type=int, default=200)
    cmp_p.add_argument("--pool", type=float, default=None,
                       help="pool budget as a fraction of base size")
    cmp_p.add_argument("--instance-gb", type=float, default=500.0)
    cmp_p.add_argument("--seed", type=int, default=2)
    prof_p = sub.add_parser("profile", help="wall-clock profile of the engine (real seconds)")
    prof_p.add_argument("--queries", type=int, default=400)
    prof_p.add_argument("--instance-gb", type=float, default=500.0)
    prof_p.add_argument("--seed", type=int, default=2)
    prof_p.add_argument("--workers", type=int, default=0,
                        help="fan system variants out over N pool workers")
    prof_p.add_argument("--scheduler", choices=("static", "steal"), default="static",
                        help="static per-system fan-out, or work-stealing "
                        "pool with warm workers and query slicing")
    prof_p.add_argument("--shared-cache", choices=("on", "off"), default="off",
                        help="attach the cross-worker shared cache tier")
    prof_p.add_argument("--output", default=None, metavar="PATH", help="write the JSON report here")
    prof_p.add_argument("--check", default=None, metavar="PATH",
                        help="fail if slower than this baseline report")
    prof_p.add_argument("--max-slowdown", type=float, default=2.0,
                        help="allowed slowdown factor for --check")
    det_p = sub.add_parser(
        "determinism",
        help="verify parallel ledgers are byte-identical to serial",
    )
    det_p.add_argument("--queries", type=int, default=80)
    det_p.add_argument("--instance-gb", type=float, default=20.0)
    det_p.add_argument("--seed", type=int, default=2)
    det_p.add_argument(
        "--workers", default="1,2,4", metavar="N[,N...]",
        help="comma-separated worker counts to check against serial",
    )
    det_p.add_argument(
        "--shared-cache", choices=("on", "off", "both"), default="off",
        help="also (or only) run each row with the shared cache tier attached",
    )
    det_p.add_argument(
        "--scheduler", choices=("static", "steal", "both"), default="both",
        help="which pool scheduler(s) to check each worker count under",
    )
    det_p.add_argument(
        "--ingest", choices=("on", "off"), default="off",
        help="add a DS task with the steady-drip ingest schedule interleaved",
    )
    chaos_p = sub.add_parser(
        "chaos",
        help="run fig5a under fault schedules; verify answers never change",
    )
    chaos_p.add_argument(
        "--schedule", action="append", default=[], metavar="NAME|JSON",
        help="fault schedule (built-in name or FaultSchedule JSON); "
        "repeatable; default: every built-in schedule",
    )
    chaos_p.add_argument("--queries", type=int, default=80)
    chaos_p.add_argument("--instance-gb", type=float, default=20.0)
    chaos_p.add_argument("--seed", type=int, default=2)
    chaos_p.add_argument("--workers", type=int, default=0,
                         help="fan (system x schedule) runs out over N pool workers")
    chaos_p.add_argument("--list-schedules", action="store_true",
                         help="print the built-in schedules and exit")
    serve_p = sub.add_parser(
        "serve-bench",
        help="open-loop load driver for the concurrent serving layer",
    )
    serve_p.add_argument("--queries", type=int, default=120)
    serve_p.add_argument("--instance-gb", type=float, default=20.0)
    serve_p.add_argument("--seed", type=int, default=2)
    serve_p.add_argument("--workers", type=int, default=2,
                         help="executor reader threads")
    serve_p.add_argument("--queue-depth", type=int, default=16,
                         help="admission queue bound (excess load is shed)")
    serve_p.add_argument("--deadline", type=float, default=5.0,
                         help="per-query deadline in wall seconds (0 = none)")
    serve_p.add_argument("--chaos", default="perfect-storm", metavar="NAME|JSON",
                         help="fault schedule for the chaos phase")
    serve_p.add_argument("--rate", type=float, default=150.0,
                         help="steady/chaos arrival rate (queries per second)")
    serve_p.add_argument("--phase", action="append", default=[], metavar="NAME",
                         help="run only these phases (steady, burst, chaos); "
                         "repeatable; default: all three")
    serve_p.add_argument("--output", default=None, metavar="PATH",
                         help="write the JSON report here")
    serve_p.add_argument("--shared-cache", choices=("on", "off"), default="off",
                         help="route reader threads through the in-process "
                         "shared cache tier (lock-free result lookups)")

    ing_p = sub.add_parser(
        "ingest-bench",
        help="micro-batch ingest scenarios with per-batch identity proof",
    )
    ing_p.add_argument("--scenario", action="append", default=[], metavar="NAME",
                       help="run only these scenarios (drip, burst, drift); "
                       "repeatable; default: all three")
    ing_p.add_argument("--mode", action="append", default=[], metavar="NAME",
                       help="maintenance mode (delta, rebuild); repeatable; "
                       "default: both, with cross-mode answer check")
    ing_p.add_argument("--queries", type=int, default=40)
    ing_p.add_argument("--instance-gb", type=float, default=2.0)
    ing_p.add_argument("--seed", type=int, default=1)
    ing_p.add_argument("--workers", type=int, default=0,
                       help="fan (scenario x mode) units out over N pool workers")
    ing_p.add_argument("--output", default=None, metavar="PATH",
                       help="write the JSON report here")

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args.experiments, args.workers)
    if args.command == "profile":
        return cmd_profile(
            args.queries, args.instance_gb, args.seed,
            args.output, args.check, args.max_slowdown, args.workers,
            args.scheduler, args.shared_cache,
        )
    if args.command == "determinism":
        try:
            counts = [int(part) for part in str(args.workers).split(",") if part]
        except ValueError:
            print(f"invalid --workers list: {args.workers!r}", file=sys.stderr)
            return 2
        return cmd_determinism(
            args.queries, args.instance_gb, args.seed, counts, args.shared_cache,
            args.scheduler, args.ingest,
        )
    if args.command == "chaos":
        return cmd_chaos(
            args.schedule, args.queries, args.instance_gb, args.seed,
            args.workers, args.list_schedules,
        )
    if args.command == "ingest-bench":
        return cmd_ingest_bench(
            args.scenario, args.mode, args.queries, args.instance_gb,
            args.seed, args.workers, args.output,
        )
    if args.command == "serve-bench":
        return cmd_serve_bench(
            args.queries, args.instance_gb, args.seed, args.workers,
            args.queue_depth, args.deadline or None, args.chaos, args.rate,
            args.phase, args.output, args.shared_cache,
        )
    return cmd_compare(args.queries, args.pool, args.instance_gb, args.seed)


if __name__ == "__main__":
    raise SystemExit(main())
