"""Static plan analysis: output schemas, range collection, join classes.

These helpers underpin signature computation (§8.1), selection pushdown
(the vanilla-Hive baseline's optimizer behaviour), and candidate
generation.  They need to know base-table schemas, supplied as a mapping
``relation name -> ordered column names``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.caches import register_cache
from repro.errors import PlanError
from repro.partitioning.intervals import Interval
from repro.query.algebra import (
    Aggregate,
    Join,
    MaterializedScan,
    Plan,
    Project,
    Relation,
    Select,
    walk,
)

SchemaMap = dict[str, tuple[str, ...]]


def output_columns(plan: Plan, schemas: SchemaMap) -> tuple[str, ...]:
    """Ordered output column names of a plan (mirrors executor semantics)."""
    if isinstance(plan, Relation):
        try:
            return schemas[plan.name]
        except KeyError:
            raise PlanError(f"unknown relation in schema map: {plan.name!r}") from None
    if isinstance(plan, (Select,)):
        return output_columns(plan.child, schemas)
    if isinstance(plan, Project):
        return plan.columns
    if isinstance(plan, Join):
        left = output_columns(plan.left, schemas)
        right = output_columns(plan.right, schemas)
        drop = {plan.right_attr} if plan.right_attr == plan.left_attr else set()
        return left + tuple(c for c in right if c not in drop)
    if isinstance(plan, Aggregate):
        return plan.group_by + tuple(a.alias for a in plan.aggregates)
    if isinstance(plan, MaterializedScan):
        raise PlanError("output_columns over MaterializedScan requires the pool")
    raise PlanError(f"cannot infer schema of {type(plan).__name__}")


def collect_ranges(plan: Plan) -> dict[str, Interval]:
    """Per-attribute intersection of every range predicate in the plan.

    An unsatisfiable conjunction collapses to a point interval at +inf,
    which no finite value matches — semantically an empty selection, and
    (unlike NaN) equal to itself so signatures remain comparable.
    """
    ranges: dict[str, Interval] = {}
    for node in walk(plan):
        if not isinstance(node, Select):
            continue
        for pred in node.predicates:
            if pred.attr in ranges:
                merged = ranges[pred.attr].intersect(pred.interval)
                if merged is None:
                    merged = Interval.point(float("inf"))
                ranges[pred.attr] = merged
            else:
                ranges[pred.attr] = pred.interval
    return ranges


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, x: str) -> str:
        self._parent.setdefault(x, x)
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[max(ra, rb)] = min(ra, rb)

    def classes(self) -> frozenset[frozenset[str]]:
        groups: dict[str, set[str]] = {}
        for member in self._parent:
            groups.setdefault(self.find(member), set()).add(member)
        return frozenset(frozenset(g) for g in groups.values() if len(g) > 1)


def join_equivalence_classes(plan: Plan) -> frozenset[frozenset[str]]:
    """Attribute equivalence classes induced by the plan's equi-joins."""
    uf = _UnionFind()
    for node in walk(plan):
        if isinstance(node, Join):
            uf.union(node.left_attr, node.right_attr)
    return uf.classes()


def class_representative(attr: str, classes: frozenset[frozenset[str]]) -> str:
    """Canonical member (sorted-first) of the class containing ``attr``."""
    for cls in classes:
        if attr in cls:
            return min(cls)
    return attr


def class_members(attr: str, classes: frozenset[frozenset[str]]) -> frozenset[str]:
    for cls in classes:
        if attr in cls:
            return cls
    return frozenset({attr})


@dataclass(frozen=True)
class PlanAnalysis:
    """Job structure of a plan, derived in one traversal.

    ``boundaries`` must be treated as read-only: instances are shared by
    the memo below across every caller that analyses an equal plan.
    """

    boundaries: frozenset[Plan]
    job_ops: int  # Join/Aggregate node count (each tree occurrence counts)
    # Whether any leaf reads the materialized-view pool.  The subplan
    # result cache keys such plans on a per-view cover-version vector and
    # pure base-relation plans on the catalog alone.
    has_materialized: bool = False
    # Sorted, deduplicated view ids of every MaterializedScan leaf — the
    # views whose pool state the plan's result can depend on.  The result
    # cache keys pool-reading plans on exactly these views' cover
    # versions, so mutations to disjoint views leave entries valid.
    view_ids: tuple[str, ...] = ()


@lru_cache(maxsize=4096)
def analyze_plan(plan: Plan) -> PlanAnalysis:
    """Job boundaries and job-operator count in a single plan traversal.

    Memoized on the (structurally hashed) plan: the executor, the cost
    estimator, and the instrumentation all ask the same question about the
    same plans many times per query, and plans are immutable.
    """
    nodes = list(walk(plan))
    projected = {node.child for node in nodes if isinstance(node, Project)}
    boundaries: set[Plan] = set()
    job_ops = 0
    view_ids = tuple(
        sorted({node.view_id for node in nodes if isinstance(node, MaterializedScan)})
    )
    has_materialized = bool(view_ids)
    for node in nodes:
        if isinstance(node, (Join, Aggregate)):
            job_ops += 1
            if node not in projected:
                boundaries.add(node)
            continue
        if isinstance(node, Project) and node not in projected:
            base = node.child
            while isinstance(base, Project):
                base = base.child
            if isinstance(base, (Join, Aggregate)):
                boundaries.add(node)
    return PlanAnalysis(frozenset(boundaries), job_ops, has_materialized, view_ids)


def job_boundaries(plan: Plan) -> frozenset[Plan]:
    """Nodes whose output a MapReduce engine writes to the file system.

    Every join and aggregation is its own MR job, and Hive folds a chain
    of projections directly above the operator into the same job — so the
    written output is the *projected* result.  These are exactly the
    intermediate results DeepSea can keep as views for free (§2), and the
    cost model charges an HDFS write for each of them, including the root
    (the final query result is written too).

    A selection between the projection and the operator is *not* folded:
    DeepSea deliberately keeps the query's range selection out of the
    materialized intermediate (§10.2), so the boundary payload is the
    pre-selection result.
    """
    return analyze_plan(plan).boundaries


def clear_analysis_cache() -> None:
    """Drop memoized plan analyses (tests / long-lived sessions)."""
    analyze_plan.cache_clear()


def _analysis_cache_stats() -> dict:
    info = analyze_plan.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "evictions": 0,
        "entries": info.currsize,
    }


register_cache("query.analysis", clear_analysis_cache, _analysis_cache_stats)
