"""Fluent query builder — the library's ergonomic entry point.

Example::

    from repro.query.builder import Q

    plan = (
        Q("store_sales")
        .join("item", on=("ss_item_sk", "i_item_sk"))
        .where_between("i_item_sk", 1000, 2000)
        .group_by("i_category", agg=[("sum", "ss_quantity", "total_qty")])
        .plan
    )
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.algebra import Aggregate, AggSpec, Join, Plan, Project, Relation, Select
from repro.query.predicates import RangePredicate, at_least, at_most, between, eq


@dataclass(frozen=True)
class Q:
    """Immutable builder; every method returns a new builder."""

    _plan: Plan

    def __init__(self, source: str | Plan):
        plan = Relation(source) if isinstance(source, str) else source
        object.__setattr__(self, "_plan", plan)

    @property
    def plan(self) -> Plan:
        return self._plan

    # ------------------------------------------------------------------
    def join(self, other: "str | Plan | Q", on: tuple[str, str]) -> "Q":
        if isinstance(other, Q):
            right = other.plan
        elif isinstance(other, str):
            right = Relation(other)
        else:
            right = other
        return Q(Join(self._plan, right, on[0], on[1]))

    def where(self, *predicates: RangePredicate) -> "Q":
        return Q(Select(self._plan, tuple(predicates)))

    def where_between(self, attr: str, low: float, high: float) -> "Q":
        return self.where(between(attr, low, high))

    def where_eq(self, attr: str, value: float) -> "Q":
        return self.where(eq(attr, value))

    def where_at_least(self, attr: str, low: float) -> "Q":
        return self.where(at_least(attr, low))

    def where_at_most(self, attr: str, high: float) -> "Q":
        return self.where(at_most(attr, high))

    def select(self, *columns: str) -> "Q":
        return Q(Project(self._plan, columns))

    def group_by(self, *columns: str, agg: list[tuple[str, str | None, str]]) -> "Q":
        specs = tuple(AggSpec(f, a, alias) for f, a, alias in agg)
        return Q(Aggregate(self._plan, columns, specs))

    def aggregate(self, agg: list[tuple[str, str | None, str]]) -> "Q":
        """Global aggregation (no grouping)."""
        specs = tuple(AggSpec(f, a, alias) for f, a, alias in agg)
        return Q(Aggregate(self._plan, (), specs))
