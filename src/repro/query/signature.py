"""Query signatures in the style of Goldstein and Larson (§8.1).

A signature abstracts a plan away from its syntax: it records the multiset
of base relations, the attribute equivalence classes induced by the
equi-joins, per-attribute selection ranges (normalized onto each
equivalence class's representative), the ordered output columns, and the
aggregation shape.  Two plans that differ only in join order or in where
commuting selections sit produce the same signature, which is what makes
DeepSea's matching *logical* rather than physical (§2).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

from repro.caches import register_cache
from repro.errors import PlanError
from repro.partitioning.intervals import Interval
from repro.query.algebra import Aggregate, AggSpec, MaterializedScan, Plan, walk
from repro.query.analysis import (
    SchemaMap,
    class_representative,
    collect_ranges,
    join_equivalence_classes,
    output_columns,
)
from repro.query.algebra import base_relations


@dataclass(frozen=True)
class Signature:
    """Syntax-independent description of a query or view."""

    relations: tuple[str, ...]
    join_classes: frozenset[frozenset[str]]
    ranges: tuple[tuple[str, Interval], ...]
    output: tuple[str, ...]
    group_by: tuple[str, ...] | None
    aggregates: tuple[AggSpec, ...] | None

    @property
    def output_set(self) -> frozenset[str]:
        return frozenset(self.output)

    @property
    def range_map(self) -> dict[str, Interval]:
        # Built once per instance (signatures are shared via the memo
        # below and matching reads this on every candidate check).
        # Callers treat the dict as read-only.  Direct __dict__ write:
        # the dataclass is frozen but instance dicts are writable.
        cached = self.__dict__.get("_range_map")
        if cached is None:
            cached = self.__dict__["_range_map"] = dict(self.ranges)
        return cached

    @property
    def agg_key(self) -> tuple:
        """Hashable aggregation shape, used as a filter-tree level."""
        if self.group_by is None:
            return ("none",)
        return (tuple(sorted(self.group_by)), tuple(sorted(self.aggregates, key=repr)))


# Signature computation is pure in (plan, schemas) and called repeatedly
# for the same subplans — by candidate registration, matching, and benefit
# estimation within a single query, and across queries for recurring plan
# shapes.  Memoize on plan identity (structural hash of the frozen plan
# tree) plus a hashable snapshot of the schema map.
_SIGNATURE_CACHE: dict[tuple, Signature] = {}
_SIGNATURE_CACHE_MAX = 65_536

# Hashable snapshots of schema maps, keyed by dict identity.  Holding a
# strong reference to the snapshotted dict pins its id (no reuse after
# GC), and the ``is`` check rejects id collisions outright, so the only
# way to observe a stale snapshot is in-place mutation of a schema map —
# which no caller does (schema maps are built once per catalog).  This
# turns the per-call ``tuple(sorted(schemas.items()))`` into a dict hit.
_SCHEMA_SNAPSHOTS: dict[int, tuple[SchemaMap, tuple]] = {}


def _schema_snapshot(schemas: SchemaMap) -> tuple:
    entry = _SCHEMA_SNAPSHOTS.get(id(schemas))
    if entry is None or entry[0] is not schemas:
        snapshot = tuple(sorted(schemas.items()))
        _SCHEMA_SNAPSHOTS[id(schemas)] = (schemas, snapshot)
        return snapshot
    return entry[1]


def compute_signature(plan: Plan, schemas: SchemaMap) -> Signature:
    """Build the signature of a plan over base relations (memoized).

    Plans containing ``MaterializedScan`` are rejected: signatures are
    only computed over *definitions* (queries and candidate views), never
    over already-rewritten plans.
    """
    key = (plan, _schema_snapshot(schemas))
    cached = _SIGNATURE_CACHE.get(key)
    if cached is not None:
        return cached
    signature = _compute_signature(plan, schemas)
    if len(_SIGNATURE_CACHE) >= _SIGNATURE_CACHE_MAX:
        _SIGNATURE_CACHE.pop(next(iter(_SIGNATURE_CACHE)))
    _SIGNATURE_CACHE[key] = signature
    return signature


def _compute_signature(plan: Plan, schemas: SchemaMap) -> Signature:
    if any(isinstance(n, MaterializedScan) for n in walk(plan)):
        raise PlanError("signatures are computed over base-relation plans only")

    aggregates = [n for n in walk(plan) if isinstance(n, Aggregate)]
    if len(aggregates) > 1:
        raise PlanError("at most one aggregation level is supported")
    agg = aggregates[0] if aggregates else None

    classes = join_equivalence_classes(plan)
    raw_ranges = collect_ranges(plan)
    normalized: dict[str, Interval] = {}
    for attr, interval in raw_ranges.items():
        rep = class_representative(attr, classes)
        if rep in normalized:
            merged = normalized[rep].intersect(interval)
            normalized[rep] = merged if merged is not None else Interval.point(float("inf"))
        else:
            normalized[rep] = interval

    return Signature(
        relations=base_relations(plan),
        join_classes=classes,
        ranges=tuple(sorted(normalized.items())),
        output=output_columns(plan, schemas),
        group_by=agg.group_by if agg else None,
        aggregates=agg.aggregates if agg else None,
    )


@lru_cache(maxsize=65_536)
def view_id_for(plan: Plan) -> str:
    """Deterministic short identifier for a view defined by ``plan``.

    Uses the structural repr of the frozen plan dataclasses, which is
    stable across processes.  Memoized: the repr of a deep plan tree is
    O(plan size) to build and candidate registration derives ids for the
    same subplans on every query.
    """
    digest = hashlib.blake2b(repr(plan).encode(), digest_size=6).hexdigest()
    return f"v_{digest}"


def clear_signature_caches() -> None:
    """Drop memoized signatures and view ids (tests / long-lived sessions)."""
    _SIGNATURE_CACHE.clear()
    _SCHEMA_SNAPSHOTS.clear()
    view_id_for.cache_clear()


def _signature_cache_stats() -> dict:
    info = view_id_for.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "evictions": 0,
        "entries": len(_SIGNATURE_CACHE) + info.currsize,
    }


register_cache("query.signature", clear_signature_caches, _signature_cache_stats)
