"""Selection predicates.

The evaluation in the paper drives everything off conjunctive range
selections of the form ``σ_{l ≤ A ≤ u}``, so the predicate language here is
a conjunction of per-attribute :class:`RangePredicate` terms.  Each term
wraps an :class:`~repro.partitioning.intervals.Interval`, giving partition
candidate generation and partition matching direct access to the interval
algebra.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.table import Table
from repro.engine.types import decoded
from repro.partitioning.intervals import Interval


@dataclass(frozen=True)
class RangePredicate:
    """``attr ∈ interval`` — one conjunct of a selection condition."""

    attr: str
    interval: Interval

    def mask(self, table: Table) -> np.ndarray:
        # ``decoded`` unwraps dictionary-encoded string columns so the
        # interval's value comparisons see actual values, not codes; on a
        # TableView, ``column`` gathers only the predicate's attribute.
        return self.interval.mask(decoded(table.column(self.attr)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.attr} in {self.interval}"


def between(attr: str, low: float, high: float) -> RangePredicate:
    """``low ≤ attr ≤ high`` — the paper's canonical selection shape."""
    return RangePredicate(attr, Interval.closed(low, high))


def eq(attr: str, value: float) -> RangePredicate:
    """``attr = value``"""
    return RangePredicate(attr, Interval.point(value))


def at_least(attr: str, low: float) -> RangePredicate:
    """``attr ≥ low``"""
    return RangePredicate(attr, Interval.at_least(low))


def at_most(attr: str, high: float) -> RangePredicate:
    """``attr ≤ high``"""
    return RangePredicate(attr, Interval.at_most(high))


def conjunction_mask(predicates: tuple[RangePredicate, ...], table: Table) -> np.ndarray:
    """Boolean mask for the conjunction of all predicates.

    Feeding this mask to ``Table.filter`` yields a late-materialized
    row-index view — selection never copies payload columns.  An
    already-empty conjunction short-circuits the remaining column
    gathers; the result is the same all-false mask either way.
    """
    mask = np.ones(table.nrows, dtype=bool)
    for pred in predicates:
        mask &= pred.mask(table)
        if not mask.any():
            break
    return mask


def combine_ranges(predicates: tuple[RangePredicate, ...]) -> dict[str, Interval]:
    """Per-attribute intersection of all range conjuncts.

    Returns a mapping ``attr -> interval``.  Conjuncts over the same
    attribute are intersected; an unsatisfiable conjunction raises
    ``IntervalError`` upstream when the intersection is empty, which we
    surface as ``None`` entries filtered by the caller.
    """
    ranges: dict[str, Interval] = {}
    for pred in predicates:
        if pred.attr in ranges:
            merged = ranges[pred.attr].intersect(pred.interval)
            if merged is None:
                # Unsatisfiable conjunction: canonical impossible point at
                # +inf — no finite value matches it, and unlike NaN it
                # compares equal to itself so signatures stay comparable.
                merged = Interval.point(float("inf"))
            ranges[pred.attr] = merged
        else:
            ranges[pred.attr] = pred.interval
    return ranges
