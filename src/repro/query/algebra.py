"""Logical query algebra.

Plans are immutable trees of frozen dataclasses, so they can be hashed and
used as dictionary keys — the statistics store keys view candidates by
their defining plan.  Supported operators mirror what DeepSea needs:

* ``Relation`` — base-table scan.
* ``MaterializedScan`` — scan of a materialized view (whole or a set of
  fragments); produced only by the rewriter.
* ``Select`` — conjunction of range predicates.
* ``Project`` — column subset.
* ``Join`` — equi-join on one attribute pair.
* ``Aggregate`` — group-by with ``sum``/``count``/``avg``/``min``/``max``.

Join order is normalized by the signature machinery, not here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.query.predicates import RangePredicate

AGG_FUNCS = ("sum", "count", "avg", "min", "max")


class Plan:
    """Marker base class for all logical plan nodes."""

    @property
    def children(self) -> tuple["Plan", ...]:
        raise NotImplementedError

    def with_children(self, children: tuple["Plan", ...]) -> "Plan":
        raise NotImplementedError


@dataclass(frozen=True)
class Relation(Plan):
    """Scan of a base table registered in the catalog."""

    name: str

    @property
    def children(self) -> tuple[Plan, ...]:
        return ()

    def with_children(self, children: tuple[Plan, ...]) -> Plan:
        if children:
            raise PlanError("Relation takes no children")
        return self


@dataclass(frozen=True)
class MaterializedScan(Plan):
    """Scan of a materialized view, possibly restricted to fragments.

    ``fragment_ids`` empty means the whole (unpartitioned) view is read.
    The executor resolves both against the materialized-view pool.

    ``clips`` holds one interval per fragment (or ``None``): rows outside
    the clip are discarded after the fragment file is read.  The rewriter
    uses clips to disjointify a cover of *overlapping* fragments so no row
    is produced twice, while the cost model still charges the full
    fragment read — exactly the physical behaviour of fragment predicates
    in DeepSea's partition operator (§9).
    """

    view_id: str
    fragment_ids: tuple[str, ...] = ()
    attr: str | None = None
    clips: tuple = ()

    @property
    def children(self) -> tuple[Plan, ...]:
        return ()

    def with_children(self, children: tuple[Plan, ...]) -> Plan:
        if children:
            raise PlanError("MaterializedScan takes no children")
        return self


@dataclass(frozen=True)
class Select(Plan):
    """Conjunctive range selection."""

    child: Plan
    predicates: tuple[RangePredicate, ...]

    def __post_init__(self) -> None:
        if not self.predicates:
            raise PlanError("Select requires at least one predicate")

    @property
    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Plan, ...]) -> Plan:
        (child,) = children
        return Select(child, self.predicates)


@dataclass(frozen=True)
class Project(Plan):
    """Column-subset projection (no expressions, as in the paper)."""

    child: Plan
    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise PlanError("Project requires at least one column")

    @property
    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Plan, ...]) -> Plan:
        (child,) = children
        return Project(child, self.columns)


@dataclass(frozen=True)
class Join(Plan):
    """Equi-join ``left.left_attr = right.right_attr``.

    The join keeps both key columns when their names differ (TPC-style
    unique naming), so downstream selections on either side still work.
    """

    left: Plan
    right: Plan
    left_attr: str
    right_attr: str

    @property
    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Plan, ...]) -> Plan:
        left, right = children
        return Join(left, right, self.left_attr, self.right_attr)


@dataclass(frozen=True)
class AggSpec:
    """One aggregate expression: ``func(attr) AS alias``."""

    func: str
    attr: str | None
    alias: str

    def __post_init__(self) -> None:
        if self.func not in AGG_FUNCS:
            raise PlanError(f"unknown aggregate function: {self.func!r}")
        if self.attr is None and self.func != "count":
            raise PlanError(f"{self.func} requires an attribute")


@dataclass(frozen=True)
class Aggregate(Plan):
    """Group-by aggregation."""

    child: Plan
    group_by: tuple[str, ...]
    aggregates: tuple[AggSpec, ...]

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise PlanError("Aggregate requires at least one aggregate")

    @property
    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Plan, ...]) -> Plan:
        (child,) = children
        return Aggregate(child, self.group_by, self.aggregates)


# ----------------------------------------------------------------------
# Hash caching
# ----------------------------------------------------------------------
def _install_hash_cache(*classes: type) -> None:
    """Wrap each dataclass-generated ``__hash__`` with a per-instance memo.

    Plans are used as keys throughout the system (signature memos, job
    boundary sets, statistics stores), and the generated hash re-walks the
    whole subtree on every lookup.  Since the trees are immutable, the
    value is computed once and stored on the instance; equality semantics
    are untouched.
    """
    for cls in classes:
        generated = cls.__hash__

        def cached(self, _generated=generated):
            try:
                return object.__getattribute__(self, "_cached_hash")
            except AttributeError:
                value = _generated(self)
                object.__setattr__(self, "_cached_hash", value)
                return value

        cls.__hash__ = cached


_install_hash_cache(Relation, MaterializedScan, Select, Project, Join, Aggregate, AggSpec)


# ----------------------------------------------------------------------
# Tree utilities
# ----------------------------------------------------------------------
def walk(plan: Plan) -> tuple[Plan, ...]:
    """Every node of the plan, root first.

    Returns a tuple cached on the (immutable) node — the same instance-
    attribute idiom as the hash cache above — so the many per-query
    passes over one plan (analysis, signatures, pushdown, estimates)
    traverse each subtree once instead of rebuilding generator frames
    per pass.  Subtree tuples are cached by the recursion too, so a
    shared child costs nothing across parents.
    """
    try:
        return object.__getattribute__(plan, "_cached_nodes")
    except AttributeError:
        nodes = [plan]
        for child in plan.children:
            nodes.extend(walk(child))
        out = tuple(nodes)
        object.__setattr__(plan, "_cached_nodes", out)
        return out


def replace_subplan(plan: Plan, target: Plan, replacement: Plan) -> Plan:
    """Return ``plan`` with every occurrence of ``target`` replaced.

    Matching is structural (dataclass equality), which is exactly what the
    rewriter needs: a subquery that equals a view definition is swapped for
    a scan of that view.
    """
    if plan == target:
        return replacement
    if not plan.children:
        return plan
    new_children = tuple(replace_subplan(child, target, replacement) for child in plan.children)
    if new_children == plan.children:
        return plan
    return plan.with_children(new_children)


def count_jobs(plan: Plan) -> int:
    """Number of MapReduce jobs the plan maps to (joins + aggregates, min 1)."""
    jobs = sum(1 for node in walk(plan) if isinstance(node, (Join, Aggregate)))
    return max(jobs, 1)


def base_relations(plan: Plan) -> tuple[str, ...]:
    """Sorted multiset of base-relation names referenced by the plan."""
    return tuple(sorted(n.name for n in walk(plan) if isinstance(n, Relation)))
