"""Selection pushdown — the conventional optimizer behaviour.

Vanilla Hive pushes selections below joins and aggregations to shrink
intermediate results; DeepSea deliberately keeps a selection *above* an
intermediate result it wants to materialize (§10.2: "our materialization
strategy requires that selections are not pushed down and hence we incur
a performance hit initially").  The baselines use :func:`push_down` for
every query; DeepSea uses it whenever the current query is not being
instrumented to materialize anything.
"""

from __future__ import annotations

from functools import lru_cache

from repro.caches import register_cache
from repro.query.algebra import Aggregate, Join, Plan, Project, Relation, Select
from repro.query.analysis import SchemaMap, output_columns
from repro.query.predicates import RangePredicate


def push_down(plan: Plan, schemas: SchemaMap) -> Plan:
    """Push every range selection as close to the leaves as possible.

    Pushdown is pure and plans are immutable, so results are memoized per
    ``(plan, schemas)`` — each system optimizes the same query plan several
    times (cost estimation, instrumentation, direct execution).
    """
    return _push_down_cached(plan, tuple(sorted(schemas.items())))


@lru_cache(maxsize=16384)
def _push_down_cached(plan: Plan, schemas_key: tuple) -> Plan:
    schemas = dict(schemas_key)
    changed = True
    while changed:
        plan, changed = _push_once(plan, schemas)
    return plan


def _pushdown_cache_stats() -> dict:
    info = _push_down_cached.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "evictions": 0,
        "entries": info.currsize,
    }


register_cache("query.optimizer.pushdown", _push_down_cached.cache_clear, _pushdown_cache_stats)


def _with_select(plan: Plan, predicates: tuple[RangePredicate, ...]) -> Plan:
    return Select(plan, predicates) if predicates else plan


def _push_once(plan: Plan, schemas: SchemaMap) -> tuple[Plan, bool]:
    if isinstance(plan, Select):
        child, child_changed = _push_once(plan.child, schemas)
        pushed, self_changed = _push_select(Select(child, plan.predicates), schemas)
        return pushed, child_changed or self_changed
    if not plan.children:
        return plan, False
    new_children = []
    changed = False
    for c in plan.children:
        nc, ch = _push_once(c, schemas)
        new_children.append(nc)
        changed = changed or ch
    return (plan.with_children(tuple(new_children)) if changed else plan), changed


def _push_select(select: Select, schemas: SchemaMap) -> tuple[Plan, bool]:
    child = select.child
    preds = select.predicates

    if isinstance(child, Select):
        return Select(child.child, preds + child.predicates), True

    if isinstance(child, Join):
        left_cols = set(output_columns(child.left, schemas))
        right_cols = set(output_columns(child.right, schemas))
        to_left = tuple(p for p in preds if p.attr in left_cols)
        to_right = tuple(p for p in preds if p.attr not in left_cols and p.attr in right_cols)
        stay = tuple(p for p in preds if p.attr not in left_cols and p.attr not in right_cols)
        if not to_left and not to_right:
            return select, False
        new_join = Join(
            _with_select(child.left, to_left),
            _with_select(child.right, to_right),
            child.left_attr,
            child.right_attr,
        )
        return _with_select(new_join, stay), True

    if isinstance(child, Aggregate):
        below = tuple(p for p in preds if p.attr in child.group_by)
        stay = tuple(p for p in preds if p.attr not in child.group_by)
        if not below:
            return select, False
        new_agg = Aggregate(_with_select(child.child, below), child.group_by, child.aggregates)
        return _with_select(new_agg, stay), True

    if isinstance(child, Project):
        child_cols = set(output_columns(child.child, schemas))
        movable = tuple(p for p in preds if p.attr in child_cols)
        stay = tuple(p for p in preds if p.attr not in child_cols)
        if not movable:
            return select, False
        new_proj = Project(_with_select(child.child, movable), child.columns)
        return _with_select(new_proj, stay), True

    if isinstance(child, Relation):
        return select, False
    return select, False
