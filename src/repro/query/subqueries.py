"""Subquery enumeration and view-candidate shapes (Definition 6).

View candidates are subqueries of the form ``γ(Q1)``, ``Q1 ⋈ Q2``, or
``π(Q1)`` — joins because they are expensive and reusable, aggregations
and projections because they shrink their input.  Selections are *not*
candidates: partitioning the selection's input on the selection attribute
is more effective (§6.1).

One refinement over the bare definition reflects how Hive actually
materializes intermediates (§2: "we use intermediate results that are
materialized anyways by the MapReduce engine"): a projection is applied
in the same map/reduce stage as the operator beneath it, so the job
boundary writes the *projected* join/aggregate output, never the
unprojected one.  A join or aggregate directly under a projection is
therefore represented by the ``π(...)`` candidate alone.
"""

from __future__ import annotations

from repro.query.algebra import Aggregate, Join, MaterializedScan, Plan, Project, walk


def unique_subplans(plan: Plan) -> list[Plan]:
    """All distinct subplans, outermost first."""
    seen: list[Plan] = []
    for node in walk(plan):
        if node not in seen:
            seen.append(node)
    return seen


def is_view_candidate_shape(plan: Plan) -> bool:
    """Definition 6's shape condition: join, aggregate, or project root."""
    return isinstance(plan, (Join, Aggregate, Project))


def _projected_children(plan: Plan) -> set[Plan]:
    """Nodes that sit directly under a projection (same job stage)."""
    covered: set[Plan] = set()
    for node in walk(plan):
        if isinstance(node, Project):
            covered.add(node.child)
    return covered


def view_candidate_subplans(plan: Plan) -> list[Plan]:
    """Definition-6 candidate subqueries of ``plan``, outermost first.

    Subplans that touch a ``MaterializedScan`` are excluded: candidate
    definitions must be expressed over base relations so that logical
    matching can find them later.  Joins/aggregates immediately under a
    projection are folded into the projected candidate (see module doc).
    """
    projected = _projected_children(plan)
    candidates = []
    for sub in unique_subplans(plan):
        if not is_view_candidate_shape(sub):
            continue
        if sub in projected:
            continue  # the enclosing π(...) candidate covers this stage
        if any(isinstance(n, MaterializedScan) for n in walk(sub)):
            continue
        candidates.append(sub)
    return candidates
