"""Determinism harness: fingerprint and diff experiment result streams.

The hard requirement carried through every performance PR: *simulated-
second ledgers and result tables must stay byte-identical no matter how
many workers run*.  This module turns that sentence into machinery:

* :func:`report_fingerprint` reduces one :class:`~repro.core.reports.
  QueryReport` to a canonical tuple of every externally observable field
  — both cost ledgers in full, the decision trail (view used, creations,
  refinements, evictions, pool bytes), and the result table's sorted
  rows.  Floats enter via ``repr``, so equality is bit-equality, not
  tolerance.
* :func:`fingerprint` hashes a whole ``run_systems`` result dict into one
  hex digest, suitable for a one-line CI assertion.
* :func:`diff_results` explains a digest mismatch: which system, which
  query index, which field, both values — the message a failing smoke job
  prints instead of two opaque hashes.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.bench.harness import RunResult
    from repro.core.reports import QueryReport

_LEDGER_FIELDS = (
    "read_s",
    "write_s",
    "shuffle_s",
    "overhead_s",
    "jobs",
    "map_tasks",
    "bytes_read",
    "bytes_written",
    "files_written",
    "fault_s",
    "task_retries",
    "speculative_tasks",
    "fault_events",
    "maint_s",
    "delta_rows_routed",
    "delta_rows_applied",
    "fragments_patched",
    "fragments_rebuilt",
)


def _ledger_tuple(ledger) -> tuple:
    return tuple(repr(getattr(ledger, name)) for name in _LEDGER_FIELDS)


def report_fingerprint(
    report: "QueryReport",
    *,
    include_rows: bool = True,
    include_ledgers: bool = True,
) -> tuple:
    """Canonical tuple of one query's observable outputs.

    ``include_ledgers=False`` masks both cost ledgers: the chaos harness
    (:mod:`repro.faults.verify`) compares a faulted run against its
    fault-free twin, where ledgers are *supposed* to differ while every
    other field — answers and decisions — must not.
    """
    rows: tuple = ()
    if include_rows:
        rows = tuple(repr(row) for row in report.result.sorted_rows())
    return (
        report.index,
        _ledger_tuple(report.execution_ledger) if include_ledgers else "<masked>",
        _ledger_tuple(report.creation_ledger) if include_ledgers else "<masked>",
        report.view_used,
        report.fragments_read,
        tuple(report.views_created),
        report.refinements,
        report.evictions,
        repr(report.pool_bytes),
        rows,
    )


def result_fingerprint(
    result: "RunResult",
    *,
    include_rows: bool = True,
    include_ledgers: bool = True,
) -> tuple:
    """Canonical tuple of one system's whole run."""
    return (
        result.label,
        tuple(
            report_fingerprint(
                r, include_rows=include_rows, include_ledgers=include_ledgers
            )
            for r in result.reports
        ),
    )


def fingerprint(
    results: "dict[str, RunResult]",
    *,
    include_rows: bool = True,
    include_ledgers: bool = True,
) -> str:
    """One hex digest over a ``run_systems`` result dict (canonical order)."""
    digest = hashlib.sha256()
    for label in sorted(results):
        digest.update(
            repr(
                result_fingerprint(
                    results[label],
                    include_rows=include_rows,
                    include_ledgers=include_ledgers,
                )
            ).encode()
        )
    return digest.hexdigest()


def diff_results(
    a: "dict[str, RunResult]",
    b: "dict[str, RunResult]",
    *,
    a_name: str = "serial",
    b_name: str = "parallel",
    max_lines: int = 20,
) -> list[str]:
    """Human-readable divergences between two result dicts (empty = equal)."""
    lines: list[str] = []
    for label in sorted(set(a) | set(b)):
        if label not in a or label not in b:
            lines.append(f"{label}: present only in {a_name if label in a else b_name}")
            continue
        ra, rb = a[label], b[label]
        if len(ra.reports) != len(rb.reports):
            lines.append(
                f"{label}: {len(ra.reports)} reports in {a_name} vs "
                f"{len(rb.reports)} in {b_name}"
            )
            continue
        for qa, qb in zip(ra.reports, rb.reports):
            if len(lines) >= max_lines:
                lines.append("... (diff truncated)")
                return lines
            fa = report_fingerprint(qa)
            fb = report_fingerprint(qb)
            if fa == fb:
                continue
            names = (
                "index",
                "execution_ledger",
                "creation_ledger",
                "view_used",
                "fragments_read",
                "views_created",
                "refinements",
                "evictions",
                "pool_bytes",
                "sorted_rows",
            )
            for name, va, vb in zip(names, fa, fb):
                if va != vb:
                    lines.append(
                        f"{label} query {qa.index}: {name} differs — "
                        f"{a_name}={va!r} vs {b_name}={vb!r}"
                    )
    return lines
