"""Picklable task specs: rebuild work from configuration, not live objects.

A forked pool can inherit closures, but a spawned pool — and any future
distributed runner — needs units of work that survive ``pickle``.  A live
:class:`~repro.core.deepsea.DeepSea` instance drags a catalog of numpy
columns with it; a spec is a few dozen bytes that *rebuilds* the same
system deterministically on the other side:

* :class:`FixtureSpec` — which benchmark instance to (re)build; workers
  hit the fixture cache of :mod:`repro.bench.harness`, so repeated tasks
  on one worker share a single build.
* :class:`SystemSpec` — a factory *name* from :mod:`repro.baselines` plus
  keyword options.  ``pool_fraction`` is resolved against the fixture's
  catalog size at build time (the only option that needs the fixture).
* :class:`WorkloadSpec` — the seeded SDSS-mapped workload and an optional
  ``[start, stop)`` slice, so one logical workload can be cut into
  per-worker shards without shipping plan objects.
* :class:`RunTask` — one (system variant × workload slice) unit: exactly
  what ``run_systems`` fans out, in pickled form.

Everything here is frozen dataclasses of primitives, hashable and
byte-stable, which also makes task identity usable as a dedup/cache key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.bench.harness import RunResult
    from repro.bench.profile import WallClockProfiler
    from repro.core.deepsea import DeepSea
    from repro.query.algebra import Plan


@dataclass(frozen=True)
class FixtureSpec:
    """Recipe for one benchmark fixture (see ``repro.bench.harness``)."""

    kind: str  # "sdss" | "uniform"
    instance_gb: float
    seed: int = 1
    log_queries: int = 10_000  # sdss only

    def build(self):
        from repro.bench.harness import sdss_fixture, uniform_fixture

        if self.kind == "sdss":
            return sdss_fixture(self.instance_gb, log_queries=self.log_queries, seed=self.seed)
        if self.kind == "uniform":
            return uniform_fixture(self.instance_gb, seed=self.seed)
        raise ValueError(f"unknown fixture kind: {self.kind!r}")


@dataclass(frozen=True)
class SystemSpec:
    """A system variant by factory name, e.g. ``SystemSpec("deepsea")``.

    ``options`` are keyword arguments for the factory as a sorted tuple of
    pairs (kept hashable).  The virtual option ``pool_fraction`` becomes
    ``smax_bytes = fraction × catalog size`` at build time.
    """

    factory: str
    options: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, factory: str, **options: Any) -> "SystemSpec":
        return cls(factory, tuple(sorted(options.items())))

    def build(self, fixture) -> "DeepSea":
        import repro.baselines as baselines

        make = getattr(baselines, self.factory, None)
        if make is None or not callable(make):
            raise ValueError(f"unknown system factory: {self.factory!r}")
        kwargs = dict(self.options)
        fraction = kwargs.pop("pool_fraction", None)
        if fraction is not None:
            kwargs["smax_bytes"] = fixture.catalog.total_size_bytes * fraction
        return make(fixture.catalog, domains=fixture.domains, **kwargs)


@dataclass(frozen=True)
class WorkloadSpec:
    """A seeded SDSS-mapped workload, optionally sliced to ``[start, stop)``."""

    n_queries: int
    seed: int = 2
    start: int = 0
    stop: "int | None" = None

    def build(self, fixture) -> "list[Plan]":
        from repro.workloads.generator import sdss_mapped_workload

        plans = sdss_mapped_workload(
            fixture.log, fixture.item_domain, n_queries=self.n_queries, seed=self.seed
        )
        return plans[self.start : self.stop]


@dataclass(frozen=True)
class _ForkedFixture:
    """Fixture stand-in wrapping a forked catalog (ingest tasks)."""

    catalog: Any
    domains: Any


@dataclass(frozen=True)
class RunTask:
    """One fan-out unit: run ``system`` over ``workload`` on ``fixture``.

    ``faults`` is an optional fault-schedule reference — a built-in name
    or a ``FaultSchedule.to_json()`` string, kept as a plain string so
    the spec stays hashable and byte-stable across pickling.  The worker
    resolves it and mints a fresh seeded injector, so any worker count
    replays the identical fault sequence.
    """

    label: str
    system: SystemSpec
    fixture: FixtureSpec
    workload: WorkloadSpec
    faults: "str | None" = None
    # Logical-clock offset applied to the fresh system before the first
    # query — what keeps a query-slice task's report indexes (and hit
    # timestamps) identical to the same queries inside a whole run.
    clock0: int = 0
    # Ingest scenario name (repro.bench.ingest_bench.SCENARIOS): when
    # set, the run interleaves that scenario's deterministic micro-batch
    # schedule with the workload — batch k applies to ``store_sales``
    # right before its scheduled query — against a *fork* of the fixture
    # catalog (fixtures are cached and shared; appends must not leak into
    # other tasks).  Ingest tasks are stateful by construction and are
    # never sliced.
    ingest: "str | None" = None

    def __call__(self) -> "RunResult":
        return self.run()

    def run(self, profiler: "WallClockProfiler | None" = None) -> "RunResult":
        from repro.bench.harness import run_system

        fixture = self.fixture.build()
        plans = self.workload.build(fixture)
        if self.ingest is not None:
            return self._run_with_ingest(fixture, plans, profiler)
        system = self.system.build(fixture)
        if self.clock0:
            system.clock = self.clock0
        if self.faults is not None:
            system.attach_faults(self.faults)
        pool = getattr(system, "pool", None)
        if pool is not None:
            # Shared-cache identity: the whole frozen spec, because the
            # pool's mutation sequence (and hence the content behind each
            # cover version) is a deterministic function of exactly
            # (fixture, system options, workload slice, fault schedule,
            # clock offset).  Two workers running the same spec replay the
            # same mutations, so a version-matched shared entry from one
            # is bit-identical on the other; any differing spec gets a
            # different identity and can never collide.
            pool.shared_ident = ("run_task", self)
        return run_system(self.label, system, plans, profiler)

    def _run_with_ingest(self, fixture, plans, profiler) -> "RunResult":
        """Replay the scenario's batch schedule between the workload's
        queries — one deterministic interleaving for any worker count."""
        from repro.bench.harness import RunResult
        from repro.bench.ingest_bench import scenario_schedule

        catalog = fixture.catalog.fork(("run_task_ingest", self))
        system = self.system.build(_ForkedFixture(catalog, fixture.domains))
        if self.clock0:
            system.clock = self.clock0
        if self.faults is not None:
            system.attach_faults(self.faults)
        pool = getattr(system, "pool", None)
        if pool is not None:
            pool.shared_ident = ("run_task", self)
        _, batches = scenario_schedule(
            self.ingest, len(plans), fixture.item_domain, self.workload.seed
        )
        by_index: dict[int, list] = {}
        for spec in batches:
            by_index.setdefault(spec.at, []).append(spec)
        id0 = catalog.get("store_sales").nrows

        if profiler is not None:
            system.profiler = profiler
        try:
            reports = []
            for i, plan in enumerate(plans):
                for spec in by_index.get(i, ()):
                    system.ingest("store_sales", spec.rows(id0))
                reports.append(system.execute(plan))
            events = system.faults.event_log() if system.faults is not None else ()
            return RunResult(self.label, reports, events)
        finally:
            if profiler is not None:
                system.profiler = None

    def slices(self, n_slices: int) -> "list[RunTask]":
        """Cut this run into contiguous query-slice tasks (stateless systems).

        Only valid when per-query outputs do not depend on earlier
        queries — the H baseline (``materialize=False``) never builds
        state, so a fresh system whose clock starts at the slice offset
        produces byte-identical reports for the slice's queries.  Tasks
        with a fault schedule are never sliced (the injector's draws are
        sequenced over the whole run), nor are workloads too small to
        split; both fall back to ``[self]``.
        """
        start = self.workload.start
        stop = self.workload.stop if self.workload.stop is not None else self.workload.n_queries
        total = stop - start
        if self.faults is not None or self.ingest is not None or n_slices <= 1 or total < 2:
            return [self]
        n_slices = min(n_slices, total)
        per = total / n_slices
        tasks = []
        for i in range(n_slices):
            lo = start + round(i * per)
            hi = start + round((i + 1) * per) if i + 1 < n_slices else stop
            if lo >= hi:
                continue
            workload = WorkloadSpec(self.workload.n_queries, self.workload.seed, lo, hi)
            tasks.append(
                RunTask(self.label, self.system, self.fixture, workload, clock0=lo)
            )
        return tasks
