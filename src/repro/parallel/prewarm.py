"""Parent-side cache prewarm for warm-forked worker pools.

The work-stealing scheduler (:func:`repro.parallel.pool.steal_map`) forks
its workers *warm*: whatever the parent has cached at spawn time is
shared copy-on-write into every worker.  A cold parent wastes that —
each worker then rebuilds the same plan analyses, pushdowns, signatures,
conjunct normalizations, and base-table sort/probe indexes privately,
once per process.  :func:`prewarm_shared_caches` pays those builds a
single time in the parent, so a pool of N workers amortizes them N ways
instead of multiplying them.

Everything warmed is a pure function of the immutable plans and the
shared catalog tables (index caches key on table *identity*, and all
system factories close over the same catalog), so the pass is
semantically invisible: ledgers and result tables are byte-identical
with or without it.  The *stateful* tiers of the caches — fragment prune
decisions, cover-version-validated entries, result tables — cannot be
prewarmed here because the pool starts empty; only their plan-pure tiers
are.

Static fan-out workers (:func:`repro.parallel.pool.fan_out`) are the
deliberate opposite: they clear every registered cache at startup so no
parent state can leak into an isolation comparison.
"""

from __future__ import annotations

from repro.engine.indexes import prewarm_join, sort_index
from repro.errors import PlanError
from repro.matching.fragment_cache import normalize_conjuncts
from repro.query.algebra import Join, Plan, Project, Relation, Select, walk
from repro.query.analysis import analyze_plan
from repro.query.optimizer import push_down
from repro.query.signature import compute_signature


def _leaf_relation(node) -> "str | None":
    # Only Select/Project chains keep a view's lineage anchored to the
    # base table; anything else (joins, aggregates) yields per-query
    # temporaries the cross-query caches would never see again.
    while isinstance(node, (Select, Project)):
        node = node.child
    return node.name if isinstance(node, Relation) else None


def prewarm_shared_caches(plans: list[Plan], catalog) -> None:
    """Populate every plan-pure memo and base-table join index once, here.

    Covers the plan-analysis, signature, and pushdown memos, the fragment
    cache's conjunct-shape normalization (its plan-pure tier — see
    :mod:`repro.matching.fragment_cache`), and the sort/probe indexes of
    every base table the pushed-down plans join.
    """
    schemas = {n: catalog.get(n).schema.names for n in catalog.names}

    for plan in plans:
        analyze_plan(plan)
        try:
            compute_signature(plan, schemas)
        except PlanError:
            pass  # signatures cover definition-shaped plans only
        pushed = push_down(plan, schemas)
        analyze_plan(pushed)
        for node in walk(pushed):
            if isinstance(node, Select):
                normalize_conjuncts(node.predicates)
                continue
            if not isinstance(node, Join):
                continue
            right_name = _leaf_relation(node.right)
            if right_name is None:
                continue
            left_name = _leaf_relation(node.left)
            if left_name is None:
                sort_index(catalog.get(right_name), node.right_attr)
            else:
                prewarm_join(
                    catalog.get(left_name),
                    node.left_attr,
                    catalog.get(right_name),
                    node.right_attr,
                )
