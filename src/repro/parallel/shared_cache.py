"""Shared cross-worker cache tier (DESIGN.md §15).

The per-process caches (result cache, cover cache, fragment prune cache)
make work *one* process paid for free for that process — but a pool of N
workers still pays N times.  The warm-forked steal pool shares whatever
the parent cached *before* the fork copy-on-write; everything earned
*after* the fork stays worker-private.  This module adds the missing
read-mostly tier behind them:

* a **parent-side cache server** (:class:`SharedCacheServer`) multiplexed
  over the pool's existing per-worker pipes — cache request/response
  frames travel alongside task dispatch, so there is no extra socket, no
  extra thread, and a dead worker is still exactly an EOF;
* an optional **mmap'd append-only arena** for large payloads: the parent
  appends the pickled bytes once, replies with ``(offset, length)``, and
  workers read the bytes straight out of the shared file instead of
  re-pickling them through the parent's pipe;
* an **in-process client** (:class:`InProcessClient`) so the serving
  layer's reader threads — and the serial fallbacks of ``fan_out`` /
  ``steal_map`` — go through the identical lookup/publish path without a
  process boundary.

Keys and validation reuse the DESIGN.md §13 three-tier scheme exactly:
every entry is stored under a content-stable key (sha-256 of the
canonical ``repr`` of identity parts that survive pickling and process
boundaries) together with the **version token** it was computed at —
catalog version plus per-view cover-version vector for results, the
single per-view cover version for cover and fragment entries.  A ``get``
must present the *current* version: an exact match is a hit, anything
else is a miss (counted ``stale``), so invalidation needs no coordination
beyond the CoverDelta stream that already bumps the versions.  A journal
rollback restores pre-transaction versions, which re-validates entries
published before the transaction and strands entries published inside it
(mid-transaction versions are never re-issued — see
``tests/test_cover_delta.py``).

Cross-process key identity cannot lean on ``catalog.uid`` / ``pool.uid``
(process-local counters): only catalogs and pools that carry a
``shared_ident`` — a content-stable token stamped by the fixture builders
and the task specs that deterministically rebuild the same state on every
worker — participate in the tier.  Everything else silently skips it.

Publishing is guarded by a per-namespace **admission threshold**
(:class:`AdmissionPolicy`): entries whose pickled payload is smaller than
the floor never pay the round trip, and payloads above the ceiling never
bloat the server.  ``stale_served`` is a tripwire counter: the server
increments it if a version-mismatched entry would ever be returned as a
hit; CI asserts it stays zero.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.caches import register_cache

# Frame tags, shared with repro.parallel.pool's multiplexing loops.
GET_FRAME = "cget"
PUT_FRAME = "cput"
CACHE_FRAMES = (GET_FRAME, PUT_FRAME)
_REPLY_HIT = "chit"
_REPLY_ARENA = "carena"
_REPLY_MISS = "cmiss"
# Canned non-stale miss, for pool shutdown paths that must answer a
# worker's in-flight cget without consulting a (gone) server.
MISS_REPLY = (_REPLY_MISS, False)

NAMESPACES = ("result", "cover", "fragment")

# Payloads at or above this many pickled bytes go to the arena instead of
# crossing the pipe on every hit.
DEFAULT_ARENA_THRESHOLD = 64 * 1024
# In-memory payload budget (arena bytes are bounded separately).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024
DEFAULT_ARENA_MAX_BYTES = 1024 * 1024 * 1024


def stable_key(namespace: str, parts: Any) -> bytes:
    """Content-stable cross-process key: sha-256 over canonical ``repr``.

    ``parts`` must repr deterministically from values alone — tuples of
    primitives, frozen dataclasses, and ``repr``-ed plans/intervals
    qualify; anything keyed on object identity or process-local counters
    does not (that is what ``shared_ident`` exists for).
    """
    digest = hashlib.sha256(namespace.encode())
    digest.update(b"\x00")
    digest.update(repr(parts).encode())
    return digest.digest()


@dataclass(frozen=True)
class AdmissionPolicy:
    """Size gates deciding which payloads are worth publishing.

    ``min_bytes`` keeps trivially-recomputable entries from paying the
    pipe round trip at all; ``max_bytes`` keeps a pathological result
    table from monopolizing the server.  Both are measured on the pickled
    payload, the actual wire/arena cost.
    """

    min_bytes: dict = field(
        default_factory=lambda: {"result": 96, "cover": 48, "fragment": 48}
    )
    max_bytes: int = 16 * 1024 * 1024

    def admits(self, namespace: str, payload_bytes: int) -> bool:
        return self.min_bytes.get(namespace, 0) <= payload_bytes <= self.max_bytes


class _Arena:
    """Append-only payload file: parent appends, workers mmap and slice.

    Offsets are stable forever (nothing is ever rewritten or truncated),
    so a reader holding yesterday's ``(offset, length)`` ref always reads
    the exact bytes the publisher appended.  Readers remap lazily when a
    ref points past their current mapping; platforms where ``mmap``
    misbehaves fall back to ``os.pread`` — same bytes either way.
    """

    def __init__(self, path: "str | None" = None):
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-shared-arena-", suffix=".bin")
            self._wfd: "int | None" = fd
            self._owner = True
        else:
            self._wfd = None
            self._owner = False
        self.path = path
        self.size = os.path.getsize(path) if os.path.exists(path) else 0
        self._rfd: "int | None" = None
        self._map: "mmap.mmap | None" = None

    # -- parent side ---------------------------------------------------
    def append(self, payload: bytes) -> tuple[int, int]:
        if self._wfd is None:
            raise RuntimeError("arena is read-only in this process")
        offset = self.size
        view = memoryview(payload)
        while view:
            written = os.write(self._wfd, view)
            view = view[written:]
        self.size += len(payload)
        return offset, len(payload)

    # -- worker side ---------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        if self._rfd is None:
            self._rfd = os.open(self.path, os.O_RDONLY)
        end = offset + length
        if self._map is None or end > len(self._map):
            try:
                if self._map is not None:
                    self._map.close()
                self._map = mmap.mmap(self._rfd, 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):
                self._map = None  # empty file or no mmap: pread below
        if self._map is not None and end <= len(self._map):
            return bytes(self._map[offset:end])
        return os.pread(self._rfd, length, offset)

    def close(self) -> None:
        if self._map is not None:
            self._map.close()
            self._map = None
        if self._rfd is not None:
            os.close(self._rfd)
            self._rfd = None
        if self._wfd is not None:
            os.close(self._wfd)
            self._wfd = None
        if self._owner:
            try:
                os.unlink(self.path)
            except OSError:
                pass
            self._owner = False


class _Entry:
    __slots__ = ("version", "location", "length", "origin")

    def __init__(self, version, location, length: int, origin) -> None:
        self.version = version
        # ("mem", payload_bytes) or ("arena", offset)
        self.location = location
        self.length = length
        self.origin = origin  # publisher pid/thread id, for cross-hit proof


class SharedCacheServer:
    """The parent-side store behind every worker's shared-tier client.

    Thread-safety: mutations take one lock; ``get`` reads the entry dict
    lock-free (a CPython dict read races only against whole-value
    replacement, and entries are immutable once stored), which is what
    lets the serving layer's reader threads hit the tier without the
    result cache's LRU lock.  Counters are plain ints — exact in every
    single-threaded context, best-effort under thread races.
    """

    def __init__(
        self,
        *,
        use_arena: bool = True,
        arena_threshold: int = DEFAULT_ARENA_THRESHOLD,
        max_bytes: int = DEFAULT_MAX_BYTES,
        arena_max_bytes: int = DEFAULT_ARENA_MAX_BYTES,
        admission: "AdmissionPolicy | None" = None,
    ):
        self.admission = admission if admission is not None else AdmissionPolicy()
        self.arena_threshold = arena_threshold
        self.max_bytes = max_bytes
        self.arena_max_bytes = arena_max_bytes
        self._entries: dict[tuple[str, bytes], _Entry] = {}
        self._mem_bytes = 0
        self._lock = threading.Lock()
        self._arena: "_Arena | None" = _Arena() if use_arena else None
        self.gets = 0
        self.hits = 0
        self.cross_hits = 0
        self.misses = 0
        self.stale = 0
        self.stale_served = 0  # tripwire: must stay 0 (CI-gated)
        self.publishes = 0
        self.republishes = 0
        self.rejected = 0
        self.evictions = 0
        self.bytes_served = 0

    @property
    def arena_path(self) -> "str | None":
        return self._arena.path if self._arena is not None else None

    # -- core operations -----------------------------------------------
    def get(self, namespace: str, key: bytes, version, origin=None) -> tuple:
        """Reply frame for one lookup: hit, arena ref, or (stale) miss."""
        self.gets += 1
        entry = self._entries.get((namespace, key))
        if entry is None:
            self.misses += 1
            return (_REPLY_MISS, False)
        if entry.version != version:
            self.stale += 1
            return (_REPLY_MISS, True)
        # Version matched exactly — the only way an entry may be served.
        # (The tripwire below can only fire if this comparison is ever
        # weakened; check_shared_cache.py asserts it never does.)
        if entry.version != version:  # pragma: no cover - defensive
            self.stale_served += 1
        self.hits += 1
        if origin is not None and entry.origin is not None and origin != entry.origin:
            self.cross_hits += 1
        self.bytes_served += entry.length
        if entry.location[0] == "arena":
            return (_REPLY_ARENA, entry.location[1], entry.length)
        return (_REPLY_HIT, entry.location[1])

    def put(self, namespace: str, key: bytes, version, payload: bytes, origin=None) -> bool:
        """Store (or overwrite) one entry; returns whether it was kept."""
        if not self.admission.admits(namespace, len(payload)):
            self.rejected += 1
            return False
        with self._lock:
            slot = (namespace, key)
            prior = self._entries.get(slot)
            use_arena = (
                self._arena is not None
                and len(payload) >= self.arena_threshold
                and self._arena.size + len(payload) <= self.arena_max_bytes
            )
            if use_arena:
                offset, length = self._arena.append(payload)
                location = ("arena", offset)
            else:
                location, length = ("mem", payload), len(payload)
                self._mem_bytes += length
            self._entries[slot] = _Entry(version, location, length, origin)
            if prior is not None:
                if prior.location[0] == "mem":
                    self._mem_bytes -= prior.length
                self.republishes += 1
            else:
                self.publishes += 1
            while self._mem_bytes > self.max_bytes:
                victim = next(
                    (s for s, e in self._entries.items() if e.location[0] == "mem"),
                    None,
                )
                if victim is None or victim == slot:
                    break
                evicted = self._entries.pop(victim)
                self._mem_bytes -= evicted.length
                self.evictions += 1
        return True

    def read_payload(self, reply: tuple) -> "bytes | None":
        """Resolve a reply frame to payload bytes (in-process client path)."""
        if reply[0] == _REPLY_HIT:
            return reply[1]
        if reply[0] == _REPLY_ARENA:
            return self._arena.read(reply[1], reply[2])
        return None

    def handle(self, frame: tuple) -> "tuple | None":
        """Dispatch one pipe frame; a reply tuple for gets, None for puts."""
        if frame[0] == GET_FRAME:
            _, namespace, key, version, origin = frame
            return self.get(namespace, key, version, origin)
        if frame[0] == PUT_FRAME:
            _, namespace, key, version, payload, origin = frame
            self.put(namespace, key, version, payload, origin)
            return None
        raise ValueError(f"not a shared-cache frame: {frame[0]!r}")

    # -- registry hooks ------------------------------------------------
    def clear(self) -> None:
        """Drop every entry (counters too) — the parent-side isolation hook.

        ``repro.caches.clear_all_caches()`` in a process holding the
        server empties the shared tier outright, so tests and sessions
        that reset local caches can never resurrect a shared entry whose
        producing state was discarded with them.
        """
        with self._lock:
            self._entries.clear()
            self._mem_bytes = 0
            self.gets = self.hits = self.cross_hits = self.misses = 0
            self.stale = self.stale_served = 0
            self.publishes = self.republishes = self.rejected = self.evictions = 0
            self.bytes_served = 0

    def stats(self) -> dict:
        return {
            "gets": self.gets,
            "hits": self.hits,
            "cross_hits": self.cross_hits,
            "misses": self.misses,
            "stale": self.stale,
            "stale_served": self.stale_served,
            "publishes": self.publishes,
            "republishes": self.republishes,
            "rejected": self.rejected,
            "evictions": self.evictions,
            "bytes_served": self.bytes_served,
            "entries": len(self._entries),
            "mem_bytes": self._mem_bytes,
            "arena_bytes": self._arena.size if self._arena is not None else 0,
        }

    def close(self) -> None:
        if self._arena is not None:
            self._arena.close()


class SharedCacheClient:
    """Common counter surface for both client flavors.

    ``prefer_shared`` marks clients whose shared lookup is cheaper than
    the local cache's lock (the serving layer's in-process tier): cache
    integrations consult the shared tier *first* when it is set.
    """

    prefer_shared = False

    def __init__(self, admission: "AdmissionPolicy | None" = None):
        self.admission = admission if admission is not None else AdmissionPolicy()
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.publishes = 0
        self.skipped = 0
        self.errors = 0

    def admit(self, namespace: str, payload_bytes: int) -> bool:
        if self.admission.admits(namespace, payload_bytes):
            return True
        self.skipped += 1
        return False

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "publishes": self.publishes,
            "skipped": self.skipped,
            "errors": self.errors,
        }

    def clear(self) -> None:
        self.hits = self.misses = self.stale = 0
        self.publishes = self.skipped = self.errors = 0

    # subclass surface: get(ns, key, version) -> bytes | None ; put(...)


class PipeClient(SharedCacheClient):
    """Worker-side client speaking cache frames over the task pipe.

    The protocol is strictly worker-initiated: a ``cget`` is answered by
    exactly one reply frame before anything else arrives on the pipe
    (the parent only dispatches new tasks to idle workers, and a worker
    is never idle mid-lookup), and a ``cput`` is fire-and-forget.  Any
    unexpected reply or pipe error permanently disables the client —
    the shared tier degrades to all-miss, never to a wrong answer.
    """

    def __init__(
        self,
        conn,
        arena_path: "str | None" = None,
        admission: "AdmissionPolicy | None" = None,
    ):
        super().__init__(admission)
        self._conn = conn
        self._arena = _Arena(arena_path) if arena_path else None
        self._origin = os.getpid()
        self._dead = False

    def get(self, namespace: str, key: bytes, version) -> "bytes | None":
        if self._dead:
            self.misses += 1
            return None
        try:
            self._conn.send((GET_FRAME, namespace, key, version, self._origin))
            reply = self._conn.recv()
        except (EOFError, OSError, BrokenPipeError):
            self._dead = True
            self.errors += 1
            self.misses += 1
            return None
        if reply[0] == _REPLY_HIT:
            self.hits += 1
            return reply[1]
        if reply[0] == _REPLY_ARENA:
            if self._arena is None:
                self._dead = True
                self.errors += 1
                self.misses += 1
                return None
            self.hits += 1
            return self._arena.read(reply[1], reply[2])
        if reply[0] == _REPLY_MISS:
            if reply[1]:
                self.stale += 1
            self.misses += 1
            return None
        # Interleaved non-cache message: protocol breach (e.g. the parent
        # is tearing the pool down mid-task).  Disable rather than guess.
        self._dead = True
        self.errors += 1
        self.misses += 1
        return None

    def put(self, namespace: str, key: bytes, version, payload: bytes) -> None:
        if self._dead:
            return
        try:
            self._conn.send((PUT_FRAME, namespace, key, version, payload, self._origin))
            self.publishes += 1
        except (EOFError, OSError, BrokenPipeError):
            self._dead = True
            self.errors += 1

    def close(self) -> None:
        if self._arena is not None:
            self._arena.close()


class InProcessClient(SharedCacheClient):
    """Direct-call client for threads sharing the server's process.

    Used by the serving layer's readers (``prefer_shared=True``: the
    lock-free dict read beats the result cache's LRU lock) and by the
    pool schedulers' serial fallbacks (so ``--shared-cache on`` at
    ``--workers 1`` exercises the identical code path).
    """

    def __init__(
        self,
        server: SharedCacheServer,
        *,
        prefer_shared: bool = False,
        admission: "AdmissionPolicy | None" = None,
    ):
        super().__init__(admission if admission is not None else server.admission)
        self.server = server
        self.prefer_shared = prefer_shared

    def _origin(self) -> tuple:
        return (os.getpid(), threading.get_ident())

    def get(self, namespace: str, key: bytes, version) -> "bytes | None":
        reply = self.server.get(namespace, key, version, self._origin())
        if reply[0] == _REPLY_MISS:
            if reply[1]:
                self.stale += 1
            self.misses += 1
            return None
        self.hits += 1
        return self.server.read_payload(reply)

    def put(self, namespace: str, key: bytes, version, payload: bytes) -> None:
        self.server.put(namespace, key, version, payload, self._origin())
        self.publishes += 1


# ----------------------------------------------------------------------
# Process-wide installation (what the cache integrations consult)
# ----------------------------------------------------------------------
_CLIENT: "SharedCacheClient | None" = None
_SERVER: "SharedCacheServer | None" = None


def client() -> "SharedCacheClient | None":
    """The installed shared-tier client, or None when the tier is off."""
    return _CLIENT


def install_client(new: "SharedCacheClient | None") -> "SharedCacheClient | None":
    """Install (or, with None, remove) the process client; returns prior."""
    global _CLIENT
    prior = _CLIENT
    _CLIENT = new
    return prior


def install_server(new: "SharedCacheServer | None") -> "SharedCacheServer | None":
    """Expose a parent-side server to this process's registry stats."""
    global _SERVER
    prior = _SERVER
    _SERVER = new
    return prior


def server() -> "SharedCacheServer | None":
    return _SERVER


def _registry_clear() -> None:
    if _CLIENT is not None:
        _CLIENT.clear()
    if _SERVER is not None:
        _SERVER.clear()


def _registry_stats() -> dict:
    stats = (
        _CLIENT.stats()
        if _CLIENT is not None
        else {"hits": 0, "misses": 0, "stale": 0, "publishes": 0, "skipped": 0, "errors": 0}
    )
    stats["evictions"] = _SERVER.evictions if _SERVER is not None else 0
    stats["entries"] = len(_SERVER._entries) if _SERVER is not None else 0
    if _SERVER is not None:
        stats["server"] = _SERVER.stats()
    return stats


register_cache("parallel.shared_cache", _registry_clear, _registry_stats, tier="shared")
