"""Deterministic process-parallel experiment execution.

The experiment suite runs independent units of work — (system variant ×
workload) runs inside :func:`repro.bench.harness.run_systems`, whole
benchmark figures inside ``python -m repro run all``, and side-effect-free
partitioning-candidate evaluations inside the refinement filter — strictly
serially in the seed.  All of them share nothing but read-only inputs, so
this package fans them out over a process pool and merges the result
streams back in *canonical task order*, making every ledger and table
byte-identical to a serial run for any worker count.

Three modules:

* :mod:`repro.parallel.pool` — the executor: :func:`~repro.parallel.pool.
  fan_out` runs thunks over forked workers (each initialized with
  :func:`repro.caches.clear_all_caches` for isolation) and returns results
  indexed by task position, never by completion order.
* :mod:`repro.parallel.tasks` — picklable task specs (fixture + system
  factory + workload slice instead of live objects), so units of work can
  cross process boundaries without dragging megabyte tables along.
* :mod:`repro.parallel.determinism` — the harness that fingerprints and
  diffs ``RunResult`` streams across worker counts; the CI smoke job and
  the determinism tests are built on it.
"""

from repro.parallel.determinism import (
    diff_results,
    fingerprint,
    result_fingerprint,
)
from repro.parallel.pool import batch_map, fan_out, steal_map
from repro.parallel.tasks import FixtureSpec, RunTask, SystemSpec, WorkloadSpec

__all__ = [
    "FixtureSpec",
    "RunTask",
    "SystemSpec",
    "WorkloadSpec",
    "batch_map",
    "diff_results",
    "fan_out",
    "fingerprint",
    "result_fingerprint",
    "steal_map",
]
