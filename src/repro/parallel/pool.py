"""The process-pool executor: deterministic fan-out of independent tasks.

Design constraints, in order:

1. **Determinism.**  Results are returned in *task order*, never in
   completion or submission order.  Workers return ``(index, value)``
   pairs and the parent slots each value by index, so any interleaving of
   completions — and any deliberate shuffling of submissions — produces
   the same output list.  Combined with per-worker cache isolation this
   makes parallel ledgers byte-identical to serial ones.
2. **Closures over specs.**  Benchmark factories are lambdas closing over
   multi-hundred-MB fixtures; pickling them is either impossible or
   ruinous.  The pool therefore uses the ``fork`` start method and passes
   tasks to workers *by inheritance*: the parent parks the task list in a
   module global, forks, and sends only integer indexes over the pipe.
   Results still cross the pipe by pickling — see
   :meth:`repro.engine.table.Table.__getstate__` for why that stays
   cheap.  On platforms without ``fork`` the executor degrades to serial
   execution (same results, no speedup) unless every task is picklable —
   use :mod:`repro.parallel.tasks` specs to guarantee that.
3. **Isolation.**  Every worker starts by calling
   :func:`repro.caches.clear_all_caches`: nothing cached in the parent
   before the fork can influence a worker's run, and — because caches
   auto-register with :mod:`repro.caches` on import — a newly added cache
   cannot be missed.  The caches are semantically transparent, so this is
   belt-and-braces for byte-identical ledgers, not a correctness
   requirement.
4. **No hangs.**  The parent owns one pipe per worker and multiplexes
   them with :func:`multiprocessing.connection.wait`, so a worker that
   dies (crash, OOM-kill, ``os._exit``) surfaces as EOF on its pipe
   instead of a result that never arrives.  The orphaned task is
   re-dispatched to a fresh worker up to ``retries`` extra times; an
   optional per-task timeout kills and re-dispatches stuck tasks the same
   way.  Exhausted retries raise a typed
   :class:`~repro.errors.WorkerCrashError` naming the task, never a
   silent ``None`` and never a hang.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Callable, Sequence, TypeVar

from repro.errors import WorkerCrashError
from repro.parallel import shared_cache

T = TypeVar("T")
U = TypeVar("U")

# Tasks inherited by forked workers (see module docstring, point 2).
# Only ever non-None inside a `fan_out` call; parallel sections do not
# nest (a worker that calls fan_out again runs its tasks serially, since
# its own _TASKS is set — the guard in fan_out).
_TASKS: "Sequence[Callable[[], Any]] | None" = None

# How long to wait for a killed worker process to be reaped before
# escalating from terminate() to kill().
_REAP_GRACE_S = 2.0


def _worker_init() -> None:
    """Per-worker startup: drop every cache forked from the parent."""
    from repro.caches import clear_all_caches

    clear_all_caches()


def _install_worker_client(conn, shared_on: bool, arena_path: "str | None") -> None:
    """Point this worker's shared-tier hooks at the parent, or at nothing.

    Always called, even with the tier off: a forked worker may inherit
    the parent's installed client (e.g. the serving layer's in-process
    one), which would silently operate on the worker's private copy of
    the parent's server — installing ``None`` severs that.
    """
    client = shared_cache.PipeClient(conn, arena_path) if shared_on else None
    shared_cache.install_client(client)
    shared_cache.install_server(None)


def _worker_main(conn, shared_on: bool = False, arena_path: "str | None" = None) -> None:
    """Worker loop: receive ``(index, attempt, crashes)``, send results.

    ``crashes`` is the task's entry in the caller's ``fault_plan``: while
    ``attempt <= crashes`` the worker dies via ``os._exit`` *before*
    running the task — an honest hard crash (no exception, no cleanup,
    just a dead process and an EOF on the pipe) used by the chaos tests
    to prove the parent's crash detection end to end.  A ``None`` index
    is the shutdown sentinel.

    With ``shared_on`` the worker speaks shared-cache frames over the
    same ``conn`` between tasks' request/response pairs (the parent loop
    multiplexes them); cache lookups happen strictly mid-task, so a
    cache reply can never be confused with a task dispatch.
    """
    _install_worker_client(conn, shared_on, arena_path)
    _worker_init()
    while True:
        try:
            index, attempt, crashes = conn.recv()
        except (EOFError, OSError):
            return
        if index is None:
            return
        if attempt <= crashes:
            os._exit(17)
        try:
            value = _TASKS[index]()
        except BaseException as exc:  # propagate to the parent, keep serving
            try:
                conn.send(("err", index, exc))
            except Exception:
                conn.send(("err", index, RuntimeError(repr(exc))))
            continue
        conn.send(("ok", index, value))


@dataclass
class _Worker:
    """Parent-side handle for one worker process."""

    proc: Any
    conn: Any
    # fan_out: the in-flight task index.  steal_map: the set of task
    # indexes of the claimed chunk still awaiting results.
    current: "int | set[int] | None" = None
    deadline: "float | None" = None

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()

    def shutdown(self) -> None:
        try:
            if self.alive:
                self.conn.send((None, 0, 0))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(_REAP_GRACE_S)
        if self.alive:
            self.proc.terminate()
            self.proc.join(_REAP_GRACE_S)
        if self.alive:
            self.proc.kill()
            self.proc.join()
        self.conn.close()

    def kill(self) -> None:
        self.proc.terminate()
        self.proc.join(_REAP_GRACE_S)
        if self.alive:
            self.proc.kill()
            self.proc.join()
        self.conn.close()


def default_workers() -> int:
    """Worker count when the user asks for "all cores"."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without CPU affinity
        return os.cpu_count() or 1


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def fan_out(
    tasks: Sequence[Callable[[], T]],
    workers: int = 0,
    *,
    submission_order: "Sequence[int] | None" = None,
    retries: int = 1,
    task_timeout: "float | None" = None,
    fault_plan: "dict[int, int] | None" = None,
    shared: "shared_cache.SharedCacheServer | None" = None,
) -> list[T]:
    """Run independent thunks, results in task order for any worker count.

    ``workers <= 1`` (or a single task, or a platform without ``fork``,
    or a nested call from inside a worker) runs serially in-process —
    the degenerate pool.  ``submission_order`` permutes the order tasks
    are *handed to* the pool without affecting the order results are
    *returned* in; it exists so the determinism tests can prove that
    claim.

    A task whose worker dies mid-run is re-dispatched to a fresh worker
    up to ``retries`` extra times; ``task_timeout`` (real seconds per
    dispatch) kills and re-dispatches stuck tasks the same way.  When a
    task exhausts its dispatches, :class:`~repro.errors.WorkerCrashError`
    is raised with the task index — the pool never hangs and never
    silently drops a result.  ``fault_plan`` maps a task index to a
    number of leading dispatches whose worker hard-crashes before running
    it (the chaos hook; see :func:`repro.faults.injector.FaultInjector.
    worker_kill_plan`).  Because results are slotted by index and each
    re-run executes the identical thunk, crashes perturb scheduling only
    — outputs are byte-identical to a crash-free run.

    ``shared`` plugs in a :class:`~repro.parallel.shared_cache.
    SharedCacheServer`: the parent loop answers cache request frames
    alongside task results and workers publish what they compute, so an
    entry one worker paid for is a hit for every other.  The serial
    fallback installs an in-process client against the same server, so
    ``workers=1`` exercises the identical code path.
    """
    global _TASKS
    tasks = list(tasks)
    order = list(range(len(tasks))) if submission_order is None else list(submission_order)
    if sorted(order) != list(range(len(tasks))):
        raise ValueError("submission_order must be a permutation of the task indexes")
    if retries < 0:
        raise ValueError("retries must be >= 0")

    serial = (
        workers <= 1
        or len(tasks) <= 1
        or not fork_available()
        or _TASKS is not None  # nested fan-out inside a worker
    )
    results: list[Any] = [None] * len(tasks)
    if serial:
        prior_client = (
            shared_cache.install_client(shared_cache.InProcessClient(shared))
            if shared is not None
            else None
        )
        try:
            for index in order:
                results[index] = tasks[index]()
        finally:
            if shared is not None:
                shared_cache.install_client(prior_client)
        return results

    context = multiprocessing.get_context("fork")
    fault_plan = dict(fault_plan or {})
    max_dispatches = retries + 1
    pending: deque[int] = deque(order)
    dispatches = [0] * len(tasks)

    def spawn() -> _Worker:
        parent_conn, child_conn = context.Pipe()
        proc = context.Process(
            target=_worker_main,
            args=(
                child_conn,
                shared is not None,
                shared.arena_path if shared is not None else None,
            ),
            daemon=True,
        )
        proc.start()
        # Close the child end immediately: after this, the only open copy
        # lives in the child, so its death is an EOF on parent_conn.
        child_conn.close()
        return _Worker(proc, parent_conn)

    _TASKS = tasks
    crew = [spawn() for _ in range(min(workers, len(tasks)))]
    done = 0
    try:
        while done < len(tasks):
            for slot, worker in enumerate(crew):
                if worker.current is None and pending:
                    index = pending.popleft()
                    if dispatches[index] >= max_dispatches:
                        raise WorkerCrashError(
                            f"task {index} lost its worker "
                            f"{dispatches[index]} time(s); retry limit "
                            f"({retries}) exhausted",
                            index=index,
                            dispatches=dispatches[index],
                        )
                    dispatches[index] += 1
                    worker.current = index
                    worker.deadline = (
                        time.monotonic() + task_timeout
                        if task_timeout is not None
                        else None
                    )
                    try:
                        worker.conn.send(
                            (index, dispatches[index], fault_plan.get(index, 0))
                        )
                    except (BrokenPipeError, OSError):
                        # The idle worker died between tasks; the task was
                        # never received, so it keeps its dispatch budget
                        # and goes back to the queue front for the fresh
                        # worker picked up on the next pass.
                        dispatches[index] -= 1
                        worker.kill()
                        crew[slot] = spawn()
                        pending.appendleft(index)
            busy = [w for w in crew if w.current is not None]
            if not busy:
                # Every in-flight dispatch just failed on a dead pipe;
                # loop back to hand the re-queued tasks to fresh workers.
                continue
            wait_for = None
            if task_timeout is not None:
                soonest = min(w.deadline for w in busy)
                wait_for = max(soonest - time.monotonic(), 0.0)
            ready = set(connection.wait([w.conn for w in busy], wait_for))
            now = time.monotonic()
            for slot, worker in enumerate(crew):
                if worker.current is None:
                    continue
                crashed = None
                if worker.conn in ready:
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        crashed = "died"
                    else:
                        if message[0] in shared_cache.CACHE_FRAMES:
                            # Mid-task cache traffic: answer and leave the
                            # worker busy on its current task (a queued
                            # follow-up frame re-readies the pipe).
                            reply = shared.handle(message) if shared is not None else None
                            if message[0] == shared_cache.GET_FRAME:
                                try:
                                    worker.conn.send(
                                        reply if reply is not None else shared_cache.MISS_REPLY
                                    )
                                except (BrokenPipeError, OSError):
                                    crashed = "died"
                        else:
                            kind, index, payload = message
                            if kind == "err":
                                raise payload
                            results[index] = payload
                            worker.current = None
                            done += 1
                elif worker.deadline is not None and now >= worker.deadline:
                    crashed = f"exceeded task_timeout={task_timeout}s"
                if crashed is not None:
                    index = worker.current
                    worker.kill()
                    # Orphaned task goes to the queue front so its retry
                    # budget is settled before new work is started.
                    pending.appendleft(index)
                    crew[slot] = spawn()
    finally:
        _TASKS = None
        for worker in crew:
            worker.shutdown()
    return results


def _steal_worker_main(
    conn, warm: bool, shared_on: bool = False, arena_path: "str | None" = None
) -> None:
    """Persistent steal-pool worker: pull chunks, push per-task results.

    Messages from the parent are ``("run", units)`` — one chunk of
    ``(index, attempt, crashes)`` units pulled off the shared deque — or
    ``("stop",)``.  Each finished task is sent back individually as
    ``("ok", index, value)``, so the parent can slot results (and account
    crashes) at task granularity even though scheduling is chunked.  With
    ``warm=True`` the worker *keeps* every cache forked from the parent
    (result cache, cover cache, match memo, fixtures...) instead of
    starting cold; the caches are semantically transparent, so outputs
    stay byte-identical while repeated fixture builds and index probes
    become fork-shared hits.  On ``stop`` the worker reports what it did:
    ``("stats", pid, {"tasks": n, "caches": <counter deltas>})``.
    """
    from repro import caches

    _install_worker_client(conn, shared_on, arena_path)
    if not warm:
        caches.clear_all_caches()
    before = caches.snapshot_stats()
    ran = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            try:
                delta = caches.stats_delta(before, caches.snapshot_stats())
                conn.send(("stats", os.getpid(), {"tasks": ran, "caches": delta}))
            except Exception:
                pass
            return
        for index, attempt, crashes in message[1]:
            if attempt <= crashes:
                os._exit(17)
            try:
                value = _TASKS[index]()
            except BaseException as exc:  # propagate to the parent
                try:
                    conn.send(("err", index, exc))
                except Exception:
                    conn.send(("err", index, RuntimeError(repr(exc))))
                continue
            ran += 1
            conn.send(("ok", index, value))


def steal_map(
    tasks: Sequence[Callable[[], T]],
    workers: int = 0,
    *,
    chunk_size: int = 0,
    warm: bool = True,
    submission_order: "Sequence[int] | None" = None,
    retries: int = 1,
    fault_plan: "dict[int, int] | None" = None,
    worker_stats: "list[dict] | None" = None,
    shared: "shared_cache.SharedCacheServer | None" = None,
) -> list[T]:
    """Run thunks over a work-stealing pool; results in task order.

    Where :func:`fan_out` hands exactly one task to a worker and waits,
    this scheduler keeps a shared deque of *chunks* (``chunk_size`` task
    indexes each; default splits the workload about four chunks per
    worker) and persistent workers that pull the next chunk the moment
    they finish one — so an unlucky worker stuck with a long task no
    longer idles the rest of the pool the way a static split does.  The
    deque lives in the parent, which multiplexes every worker pipe: an
    idle worker's drained pipe *is* its pull, and a worker death is an
    EOF, never a hang.  Workers fork **warm** by default (see
    :func:`_steal_worker_main`): the parent's caches are shared read-only
    into every worker at pool start.

    Determinism contract unchanged from :func:`fan_out`: results are
    slotted by task index, so any chunking, any steal order, any
    ``submission_order`` permutation, and any crash/retry interleaving
    (``fault_plan``, ``retries``) produce the identical list.  A task
    whose worker dies re-dispatches only the *unfinished* remainder of
    the chunk; exhausted retries raise
    :class:`~repro.errors.WorkerCrashError`.

    ``worker_stats``, when given, receives one dict per pool worker
    (``pid``, ``tasks`` completed, per-cache counter ``deltas``) — the
    per-worker section of the profile JSON.  The serial fallback appends
    a single self-entry so callers see a uniform shape.

    ``shared`` attaches a cross-worker cache server exactly as in
    :func:`fan_out`; here the warm fork makes it strictly additive —
    whatever the parent cached pre-fork is copy-on-write shared, and the
    shared tier carries what workers earn *after* the fork across the
    pool.
    """
    global _TASKS
    tasks = list(tasks)
    order = list(range(len(tasks))) if submission_order is None else list(submission_order)
    if sorted(order) != list(range(len(tasks))):
        raise ValueError("submission_order must be a permutation of the task indexes")
    if retries < 0:
        raise ValueError("retries must be >= 0")

    serial = (
        workers <= 1
        or len(tasks) <= 1
        or not fork_available()
        or _TASKS is not None  # nested call from inside a pool worker
    )
    results: list[Any] = [None] * len(tasks)
    if serial:
        from repro import caches

        prior_client = (
            shared_cache.install_client(shared_cache.InProcessClient(shared))
            if shared is not None
            else None
        )
        try:
            before = caches.snapshot_stats() if worker_stats is not None else None
            for index in order:
                results[index] = tasks[index]()
            if worker_stats is not None:
                delta = caches.stats_delta(before, caches.snapshot_stats())
                worker_stats.append(
                    {"pid": os.getpid(), "tasks": len(tasks), "caches": delta}
                )
        finally:
            if shared is not None:
                shared_cache.install_client(prior_client)
        return results

    if chunk_size <= 0:
        chunk_size = max(1, len(tasks) // (workers * 4))
    pending: deque[list[int]] = deque(
        [order[i : i + chunk_size] for i in range(0, len(order), chunk_size)]
    )
    fault_plan = dict(fault_plan or {})
    max_dispatches = retries + 1
    dispatches = [0] * len(tasks)

    context = multiprocessing.get_context("fork")

    def spawn() -> _Worker:
        parent_conn, child_conn = context.Pipe()
        proc = context.Process(
            target=_steal_worker_main,
            args=(
                child_conn,
                warm,
                shared is not None,
                shared.arena_path if shared is not None else None,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def dispatch(worker: _Worker, chunk: list[int]) -> None:
        units = []
        for index in chunk:
            if dispatches[index] >= max_dispatches:
                raise WorkerCrashError(
                    f"task {index} lost its worker {dispatches[index]} time(s); "
                    f"retry limit ({retries}) exhausted",
                    index=index,
                    dispatches=dispatches[index],
                )
            dispatches[index] += 1
            units.append((index, dispatches[index], fault_plan.get(index, 0)))
        worker.current = set(chunk)
        worker.conn.send(("run", units))

    # Freeze the parent heap before forking: the fixtures and warm caches
    # the workers inherit stop being traversed by their cyclic GC, so the
    # shared pages stay copy-on-write-clean instead of being privately
    # duplicated into every worker the first time its GC walks them.
    import gc

    gc.collect()  # don't freeze garbage into every child
    gc.freeze()

    _TASKS = tasks
    crew = [spawn() for _ in range(min(workers, len(pending)))]
    done = 0
    try:
        while done < len(tasks):
            for slot, worker in enumerate(crew):
                if worker.current is None and pending:
                    chunk = pending.popleft()
                    try:
                        dispatch(worker, chunk)
                    except (BrokenPipeError, OSError):
                        # The idle worker died between chunks; the chunk
                        # was never received, so hand it to a fresh one.
                        for index in chunk:
                            dispatches[index] -= 1
                        worker.kill()
                        crew[slot] = spawn()
                        dispatch(crew[slot], chunk)
            busy = [w for w in crew if w.current is not None]
            if not busy:
                # All dispatches failed on dead pipes this pass; loop back
                # to hand the re-queued chunks to fresh workers instead of
                # waiting on an empty pipe set (which never wakes).
                continue
            ready = set(connection.wait([w.conn for w in busy]))
            for slot, worker in enumerate(crew):
                if worker.current is None or worker.conn not in ready:
                    continue
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    # Re-queue only what the dead worker had not finished,
                    # at the front so its retry budget settles first.
                    remainder = sorted(worker.current)
                    worker.kill()
                    pending.appendleft(remainder)
                    crew[slot] = spawn()
                    continue
                if message[0] in shared_cache.CACHE_FRAMES:
                    # Mid-task cache traffic; the worker stays busy on its
                    # current chunk.
                    reply = shared.handle(message) if shared is not None else None
                    if message[0] == shared_cache.GET_FRAME:
                        try:
                            worker.conn.send(
                                reply if reply is not None else shared_cache.MISS_REPLY
                            )
                        except (BrokenPipeError, OSError):
                            remainder = sorted(worker.current)
                            worker.kill()
                            pending.appendleft(remainder)
                            crew[slot] = spawn()
                    continue
                kind, index, payload = message
                if kind == "err":
                    raise payload
                results[index] = payload
                worker.current.discard(index)
                done += 1
                if not worker.current:
                    worker.current = None
    finally:
        _TASKS = None
        gc.unfreeze()
        for worker in crew:
            stats = _steal_shutdown(worker)
            if stats is not None and worker_stats is not None:
                worker_stats.append(stats)
    return results


def _steal_shutdown(worker: _Worker) -> "dict | None":
    """Stop one steal worker, harvesting its final stats message.

    A worker can still be mid-task when "stop" is queued, so leftover
    cache frames may precede the stats message: publishes are dropped
    (the tier is going away) and lookups get a canned miss so the task
    can finish and the worker reach its stop handler.
    """
    stats = None
    try:
        if worker.alive:
            worker.conn.send(("stop",))
            while worker.conn.poll(_REAP_GRACE_S):
                message = worker.conn.recv()
                if message[0] == "stats":
                    stats = {"pid": message[1], **message[2]}
                    break
                if message[0] == shared_cache.GET_FRAME:
                    worker.conn.send(shared_cache.MISS_REPLY)
                # cput / trailing ok frames: drained and dropped
    except (EOFError, OSError, BrokenPipeError):
        pass
    worker.proc.join(_REAP_GRACE_S)
    if worker.alive:
        worker.proc.terminate()
        worker.proc.join(_REAP_GRACE_S)
    if worker.alive:
        worker.proc.kill()
        worker.proc.join()
    worker.conn.close()
    return stats


def batch_map(
    fn: Callable[[U], T],
    items: Sequence[U],
    workers: int = 0,
    *,
    min_items: int = 16,
) -> list[T]:
    """Map a pure function over items, fanning out only above a threshold.

    Process fan-out has real fixed cost (fork + pipe per batch); for the
    optimizer's candidate evaluations — microseconds each, usually a
    handful per query — the serial path is the fast path.  Only a batch of
    at least ``min_items`` with ``workers >= 2`` pays for a pool.  Results
    are in item order either way.
    """
    items = list(items)
    if workers <= 1 or len(items) < max(min_items, 2):
        return [fn(item) for item in items]
    return fan_out([_Bound(fn, item) for item in items], workers)


class _Bound:
    """A picklable ``lambda: fn(item)`` (closures defeat spawn pickling)."""

    __slots__ = ("fn", "item")

    def __init__(self, fn: Callable, item: Any) -> None:
        self.fn = fn
        self.item = item

    def __call__(self):
        return self.fn(self.item)
