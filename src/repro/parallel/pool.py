"""The process-pool executor: deterministic fan-out of independent tasks.

Design constraints, in order:

1. **Determinism.**  Results are returned in *task order*, never in
   completion or submission order.  Workers return ``(index, value)``
   pairs and the parent slots each value by index, so any interleaving of
   completions — and any deliberate shuffling of submissions — produces
   the same output list.  Combined with per-worker cache isolation this
   makes parallel ledgers byte-identical to serial ones.
2. **Closures over specs.**  Benchmark factories are lambdas closing over
   multi-hundred-MB fixtures; pickling them is either impossible or
   ruinous.  The pool therefore uses the ``fork`` start method and passes
   tasks to workers *by inheritance*: the parent parks the task list in a
   module global, forks, and sends only integer indexes over the pipe.
   Results still cross the pipe by pickling — see
   :meth:`repro.engine.table.Table.__getstate__` for why that stays
   cheap.  On platforms without ``fork`` the executor degrades to serial
   execution (same results, no speedup) unless every task is picklable —
   use :mod:`repro.parallel.tasks` specs to guarantee that.
3. **Isolation.**  Every worker starts by calling
   :func:`repro.caches.clear_all_caches`: nothing cached in the parent
   before the fork can influence a worker's run, and — because caches
   auto-register with :mod:`repro.caches` on import — a newly added cache
   cannot be missed.  The caches are semantically transparent, so this is
   belt-and-braces for byte-identical ledgers, not a correctness
   requirement.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Sequence, TypeVar

T = TypeVar("T")
U = TypeVar("U")

# Tasks inherited by forked workers (see module docstring, point 2).
# Only ever non-None inside a `fan_out` call; parallel sections do not
# nest (a worker that calls fan_out again runs its tasks serially, since
# its own _TASKS is set — the guard in fan_out).
_TASKS: "Sequence[Callable[[], Any]] | None" = None


def _worker_init() -> None:
    """Per-worker startup: drop every cache forked from the parent."""
    from repro.caches import clear_all_caches

    clear_all_caches()


def _run_indexed(index: int) -> tuple[int, Any]:
    assert _TASKS is not None
    return index, _TASKS[index]()


def default_workers() -> int:
    """Worker count when the user asks for "all cores"."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without CPU affinity
        return os.cpu_count() or 1


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def fan_out(
    tasks: Sequence[Callable[[], T]],
    workers: int = 0,
    *,
    submission_order: "Sequence[int] | None" = None,
) -> list[T]:
    """Run independent thunks, results in task order for any worker count.

    ``workers <= 1`` (or a single task, or a platform without ``fork``,
    or a nested call from inside a worker) runs serially in-process —
    the degenerate pool.  ``submission_order`` permutes the order tasks
    are *handed to* the pool without affecting the order results are
    *returned* in; it exists so the determinism tests can prove that
    claim.
    """
    global _TASKS
    tasks = list(tasks)
    order = (
        list(range(len(tasks)))
        if submission_order is None
        else list(submission_order)
    )
    if sorted(order) != list(range(len(tasks))):
        raise ValueError("submission_order must be a permutation of the task indexes")

    serial = (
        workers <= 1
        or len(tasks) <= 1
        or not fork_available()
        or _TASKS is not None  # nested fan-out inside a worker
    )
    results: list[Any] = [None] * len(tasks)
    if serial:
        for index in order:
            results[index] = tasks[index]()
        return results

    context = multiprocessing.get_context("fork")
    _TASKS = tasks
    try:
        with context.Pool(
            processes=min(workers, len(tasks)), initializer=_worker_init
        ) as pool:
            for index, value in pool.imap_unordered(_run_indexed, order):
                results[index] = value
    finally:
        _TASKS = None
    return results


def batch_map(
    fn: Callable[[U], T],
    items: Sequence[U],
    workers: int = 0,
    *,
    min_items: int = 16,
) -> list[T]:
    """Map a pure function over items, fanning out only above a threshold.

    Process fan-out has real fixed cost (fork + pipe per batch); for the
    optimizer's candidate evaluations — microseconds each, usually a
    handful per query — the serial path is the fast path.  Only a batch of
    at least ``min_items`` with ``workers >= 2`` pays for a pool.  Results
    are in item order either way.
    """
    items = list(items)
    if workers <= 1 or len(items) < max(min_items, 2):
        return [fn(item) for item in items]
    return fan_out([_Bound(fn, item) for item in items], workers)


class _Bound:
    """A picklable ``lambda: fn(item)`` (closures defeat spawn pickling)."""

    __slots__ = ("fn", "item")

    def __init__(self, fn: Callable, item: Any) -> None:
        self.fn = fn
        self.item = item

    def __call__(self):
        return self.fn(self.item)
