"""Process-wide cache registry.

Every semantically transparent cache in the system — join-key indexes,
probe results, signature memos, plan-analysis memos, pushdown memos, the
matcher memo, benchmark fixtures — registers itself here at import time.
Having one registry serves two masters:

* **Worker isolation** (:mod:`repro.parallel`): a process-pool worker
  calls :func:`clear_all_caches` once at startup so no state forked from
  the parent can leak into its runs.  Because caches *auto-register* on
  import, a newly added cache cannot be missed by worker startup the way
  it could when ``clear_caches`` implementations were hand-maintained in
  two places.
* **Observability**: caches may register a ``stats`` callable; the
  aggregate :func:`cache_stats` snapshot is surfaced per worker in the
  ``python -m repro profile`` JSON report.

Registration is idempotent by name, which keeps module re-imports (e.g.
under ``importlib`` test harnesses) from duplicating entries.
"""

from __future__ import annotations

from typing import Callable

_CLEARERS: dict[str, Callable[[], None]] = {}
_STATS: dict[str, Callable[[], dict]] = {}
_TIERS: dict[str, str] = {}


def register_cache(
    name: str,
    clear: Callable[[], None],
    stats: "Callable[[], dict] | None" = None,
    *,
    tier: str = "local",
) -> None:
    """Register one cache's ``clear`` (and optional ``stats``) callable.

    Called at module import time by every cache-bearing module; the
    ``name`` should be the dotted location of the cache so registry
    snapshots read like a map of the process.  ``tier`` distinguishes
    process-local caches (``"local"``, the default) from the cross-worker
    shared tier (``"shared"``) so profile reports can break counters out
    per tier.
    """
    if tier not in ("local", "shared"):
        raise ValueError(f"unknown cache tier {tier!r}")
    _CLEARERS[name] = clear
    _TIERS[name] = tier
    if stats is not None:
        _STATS[name] = stats
    else:
        _STATS.pop(name, None)


def registered_caches() -> tuple[str, ...]:
    """Names of every cache currently registered (sorted, for tests)."""
    return tuple(sorted(_CLEARERS))


def cache_tier(name: str) -> str:
    """The registered tier of one cache (``"local"`` or ``"shared"``)."""
    return _TIERS[name]


def clear_all_caches() -> None:
    """Reset every registered cache in the process.

    All registered caches are semantically transparent, so clearing is
    never required for correctness — this exists for memory-bounded
    sessions, cold/warm comparisons in tests, and per-worker isolation in
    :mod:`repro.parallel`.
    """
    for clear in _CLEARERS.values():
        clear()


def cache_stats() -> dict[str, dict]:
    """Snapshot of every registered cache's counters (stable key order)."""
    return {name: dict(_STATS[name]()) for name in sorted(_STATS)}


def snapshot_stats() -> dict[str, dict]:
    """Alias of :func:`cache_stats` for before/after delta bookkeeping."""
    return cache_stats()


def stats_delta(before: dict[str, dict], after: dict[str, dict]) -> dict[str, dict]:
    """Per-cache counter differences ``after − before``.

    A warm-forked pool worker inherits the parent's counters along with
    the caches themselves, so its raw :func:`cache_stats` snapshot mixes
    parent history with its own work.  The delta isolates what *this*
    process did since ``before`` — the per-worker numbers surfaced in the
    ``python -m repro profile`` JSON.  Non-numeric entries (and gauges
    like ``entries`` that describe current state rather than traffic) are
    reported as their ``after`` value.
    """
    out: dict[str, dict] = {}
    for name in sorted(after):
        prior = before.get(name, {})
        entry = {}
        for key, value in after[name].items():
            base = prior.get(key, 0)
            if (
                key != "entries"
                and isinstance(value, (int, float))
                and isinstance(base, (int, float))
            ):
                entry[key] = value - base
            else:
                entry[key] = value
        out[name] = entry
    return out
