"""Fragment merging — the paper's first listed future extension (§11).

"...there are several interesting ways in which we can improve DeepSea
including considering how to merge consecutive fragments that are mostly
accessed together."

Two adjacent resident fragments that almost always appear in the same
query's cover cost an extra file per read (an extra map task and its
dispatch) without buying any pruning.  This module finds such pairs and
decides, with the same cost-benefit discipline as refinement, whether to
coalesce them into one fragment:

* **co-access** — the fraction of either fragment's (decayed) hits shared
  with the other must reach ``threshold``;
* **benefit** — per co-accessed query, reading one merged file instead of
  two separate ones;
* **cost** — reading both fragments and writing the merged file once;
* the merged fragment must respect the size bound φ·S(V) when bounds are
  configured.

Disabled by default (`Policy.merge_fragments`); the ablation benchmark
``bench_ablation_merging.py`` demonstrates the effect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.decay import Decay
from repro.costmodel.stats import FragmentStats
from repro.engine.cost import ClusterSpec
from repro.partitioning.intervals import Interval
from repro.storage.pool import FragmentEntry


@dataclass(frozen=True)
class MergeCandidate:
    """Two adjacent resident fragments proposed for coalescing."""

    view_id: str
    attr: str
    left: Interval
    right: Interval

    @property
    def merged(self) -> Interval:
        return self.left.hull(self.right)


def co_access_fraction(a: FragmentStats, b: FragmentStats, t_now: float, decay: Decay) -> float:
    """Decayed fraction of hits the two fragments share.

    A hit timestamp present on both fragments means one query touched
    both.  The fraction is taken against the *busier* fragment, so a hot
    fragment is never merged into a cold neighbour it rarely drags along.
    """
    times_a = set(a.hit_times)
    times_b = set(b.hit_times)
    if not times_a or not times_b:
        return 0.0
    shared = times_a & times_b
    weight = lambda times: sum(decay(t_now, t) for t in times)
    denominator = max(weight(times_a), weight(times_b))
    if denominator <= 0:
        return 0.0
    return weight(shared) / denominator


def merge_saving_per_hit(left_bytes: float, right_bytes: float, cluster: ClusterSpec) -> float:
    """Per-co-accessed-query saving of reading one file instead of two."""
    separate = cluster.read_elapsed(left_bytes, nfiles=1) + cluster.read_elapsed(
        right_bytes, nfiles=1
    )
    together = cluster.read_elapsed(left_bytes + right_bytes, nfiles=1)
    return max(separate - together, 0.0)


def merge_cost(left_bytes: float, right_bytes: float, cluster: ClusterSpec) -> float:
    """One-off price: read both fragments, write the coalesced file."""
    return (
        cluster.read_elapsed(left_bytes, nfiles=1)
        + cluster.read_elapsed(right_bytes, nfiles=1)
        + cluster.write_elapsed(left_bytes + right_bytes, nfiles=1)
    )


def find_merge_candidates(
    entries: list[FragmentEntry],
    stats_for: dict[Interval, FragmentStats],
    t_now: float,
    decay: Decay,
    cluster: ClusterSpec,
    *,
    threshold: float = 0.8,
    min_shared_hits: float = 3.0,
    max_merged_bytes: float | None = None,
    safety: float = 1.5,
) -> list[MergeCandidate]:
    """Adjacent pairs worth coalescing, best saving first.

    ``entries`` must belong to one (view, attr) partition.  Only
    *disjoint, touching* neighbours are considered (merging overlapping
    fragments would duplicate rows); each fragment joins at most one
    candidate per round.
    """
    ordered = sorted(entries, key=lambda e: (e.key.interval.lo, e.key.interval.hi))
    candidates: list[tuple[float, MergeCandidate]] = []
    used: set[str] = set()
    for left, right in zip(ordered, ordered[1:]):
        if left.fragment_id in used or right.fragment_id in used:
            continue
        a, b = left.key.interval, right.key.interval
        if not a.adjacent_to(b):
            continue
        merged_bytes = left.size_bytes + right.size_bytes
        if max_merged_bytes is not None and merged_bytes > max_merged_bytes:
            continue
        sa, sb = stats_for.get(a), stats_for.get(b)
        if sa is None or sb is None:
            continue
        fraction = co_access_fraction(sa, sb, t_now, decay)
        if fraction < threshold:
            continue
        shared = set(sa.hit_times) & set(sb.hit_times)
        shared_weight = sum(decay(t_now, t) for t in shared)
        if shared_weight < min_shared_hits:
            continue
        saving = merge_saving_per_hit(left.size_bytes, right.size_bytes, cluster)
        cost = merge_cost(left.size_bytes, right.size_bytes, cluster)
        if shared_weight * saving < safety * cost:
            continue
        candidate = MergeCandidate(left.key.view_id, left.key.attr, a, b)
        candidates.append((shared_weight * saving - cost, candidate))
        used.add(left.fragment_id)
        used.add(right.fragment_id)
    candidates.sort(key=lambda pair: -pair[0])
    return [c for _, c in candidates]
