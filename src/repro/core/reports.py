"""Per-query execution reports and workload summaries."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.cost import CostLedger
from repro.engine.table import Table
from repro.query.algebra import Plan


@dataclass
class QueryReport:
    """Everything observed while processing one query."""

    index: int
    plan: Plan
    result: Table
    execution_ledger: CostLedger
    creation_ledger: CostLedger
    view_used: str | None = None
    fragments_read: int = 0
    views_created: list[str] = field(default_factory=list)
    refinements: int = 0
    evictions: int = 0
    pool_bytes: float = 0.0

    @property
    def execution_s(self) -> float:
        """Simulated time answering the query (including view reads)."""
        return self.execution_ledger.total_seconds

    @property
    def creation_s(self) -> float:
        """Simulated overhead materializing / repartitioning this round."""
        return self.creation_ledger.total_seconds

    @property
    def total_s(self) -> float:
        return self.execution_s + self.creation_s

    @property
    def reused_view(self) -> bool:
        return self.view_used is not None


@dataclass
class WorkloadSummary:
    """Aggregates over a sequence of reports."""

    reports: list[QueryReport]

    @property
    def total_s(self) -> float:
        return sum(r.total_s for r in self.reports)

    @property
    def execution_s(self) -> float:
        return sum(r.execution_s for r in self.reports)

    @property
    def creation_s(self) -> float:
        return sum(r.creation_s for r in self.reports)

    @property
    def cumulative_s(self) -> list[float]:
        out: list[float] = []
        acc = 0.0
        for r in self.reports:
            acc += r.total_s
            out.append(acc)
        return out

    @property
    def reuse_count(self) -> int:
        return sum(1 for r in self.reports if r.reused_view)

    @property
    def map_tasks(self) -> int:
        return sum(r.execution_ledger.map_tasks + r.creation_ledger.map_tasks for r in self.reports)
