"""System policies — the knob set that defines DeepSea and every baseline.

A :class:`Policy` configures one run of the online view manager.  The
paper's systems map onto policies as follows (factories for each live in
``repro.baselines``):

========  =========================================================
System    Policy
========  =========================================================
H         ``materialize=False`` (vanilla Hive: no views, pushdown)
NP        ``partitioning="none"`` (ReStore-like, logical matching)
E-k       ``partitioning="equidepth"``, ``equidepth_fragments=k``
NR        adaptive initial partition, ``repartition=False``
N         ``value_model="nectar"`` (no benefit, no decay, no MLE)
N+        ``value_model="nectar+"`` (benefit, no decay, no MLE)
DS        the defaults
========  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel.decay import Decay, NoDecay, ProportionalDecay
from repro.errors import ReproError
from repro.partitioning.bounding import SizeBounds

PARTITIONING_MODES = ("adaptive", "equidepth", "none")
VALUE_MODELS = ("deepsea", "nectar", "nectar+")


@dataclass(frozen=True)
class Policy:
    """Configuration of the online partitioned-view manager.

    Attributes:
        materialize: Master switch; ``False`` reproduces vanilla Hive.
        partitioning: How views are partitioned at creation —
            workload-``adaptive`` (Def 7 boundaries), ``equidepth``
            (non-adaptive baseline), or ``none`` (whole views, NP).
        equidepth_fragments: Fragment count for the equi-depth mode.
        overlapping: Refine resident partitions with overlapping
            fragments (§3, Example 2) instead of physical splits.
        repartition: Allow refinement of resident partitions at all;
            ``False`` reproduces the NR baseline (§10.4).
        value_model: Ranking function for admission/eviction — DeepSea's
            Φ, plain Nectar, or Nectar+ (§10.1).
        use_mle: Smooth fragment hits with the fitted normal (§7.1);
            ignored by the Nectar models.
        decay: Benefit decay ``DEC``; the Nectar models force NoDecay.
        bounds: Fragment size bounds (§9); ``None`` disables both bounds
            (the Fig-6 experiments run unbounded).
        evidence_factor: Materialize a view once its accumulated benefit
            reaches ``evidence_factor × COST(V)`` (§7.2).  ``0`` is the
            eager mode used by experiments that materialize at query 1.
        mle_parts: Grid resolution of the MLE part quantization.
        admission_hysteresis: A resident entry is evicted only for a
            candidate at least this factor more valuable — damps the
            small-pool oscillation of §10.1.
        creation_cooldown: Queries to wait before re-attempting to
            materialize a view whose fragments lost the pool knapsack.
        refinement_margin: Widening applied to overlapping refinement
            pieces (fraction of piece width per side).
        refinement_safety: Benefit-over-cost factor required by the
            refinement filter.
        merge_fragments: Enable the §11 extension that coalesces adjacent
            co-accessed fragments.
        merge_threshold: Minimum decayed co-access fraction for a merge.
        multi_attribute: Materialize a partition for every restricted
            attribute instead of just the first (§4 / §11).
    """

    materialize: bool = True
    partitioning: str = "adaptive"
    equidepth_fragments: int = 6
    overlapping: bool = True
    repartition: bool = True
    value_model: str = "deepsea"
    use_mle: bool = True
    decay: Decay = field(default_factory=ProportionalDecay)
    bounds: SizeBounds | None = field(default_factory=SizeBounds)
    evidence_factor: float = 1.0
    mle_parts: int = 128
    admission_hysteresis: float = 2.0
    creation_cooldown: float = 100.0
    # Overlapping refinement pieces are widened by this fraction of their
    # width on each side (clamped to the parent), so small query-to-query
    # jitter in range endpoints stays inside the new fragment instead of
    # forcing another refinement.
    refinement_margin: float = 0.05
    # Safety factor on the §7.2 refinement filter: estimated benefit must
    # exceed cost by this much, absorbing estimate error from drift.
    refinement_safety: float = 1.5
    # §11 extension: coalesce adjacent fragments that are almost always
    # read together.  Off by default (future work in the paper).
    merge_fragments: bool = False
    merge_threshold: float = 0.8
    # §4 permits multiple partitions of one view on different attributes;
    # when enabled, creation materializes a partition for every attribute
    # the workload restricted (secondary partitions pay a full re-write).
    multi_attribute: bool = False

    def __post_init__(self) -> None:
        if self.partitioning not in PARTITIONING_MODES:
            raise ReproError(f"unknown partitioning mode: {self.partitioning!r}")
        if self.value_model not in VALUE_MODELS:
            raise ReproError(f"unknown value model: {self.value_model!r}")
        if self.evidence_factor < 0:
            raise ReproError("evidence_factor must be non-negative")

    @property
    def effective_decay(self) -> Decay:
        """Nectar models never decay benefits (§10.1)."""
        if self.value_model in ("nectar", "nectar+"):
            return NoDecay()
        return self.decay

    @property
    def smoothing_enabled(self) -> bool:
        return self.use_mle and self.value_model == "deepsea"
