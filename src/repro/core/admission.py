"""Value-ranked admission and eviction (§7.3).

The selection step treats every pool entry — candidate or resident,
fragment or whole view — uniformly: rank by value ``Φ`` and keep the best
prefix that fits in ``S_max``.  Applied online this becomes: to admit a
new entry, evict resident entries of *strictly lower* value until it
fits; if the space cannot be freed by cheaper entries, the candidate
loses and is not admitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.engine.table import Table
from repro.storage.pool import FragmentEntry, MaterializedViewPool

ValueFn = Callable[[FragmentEntry], float]


@dataclass
class AdmissionResult:
    admitted: bool
    evicted: list[FragmentEntry]


class AdmissionController:
    """Greedy Φ-ranked knapsack, applied incrementally.

    ``hysteresis`` dampens churn: a resident entry is only sacrificed for
    a candidate whose value exceeds the resident's by that factor.  Two
    entries of near-equal value would otherwise evict each other in
    alternating queries — the small-pool "oscillation" of §10.1.
    """

    def __init__(
        self,
        pool: MaterializedViewPool,
        value_fn: ValueFn,
        hysteresis: float = 1.25,
    ):
        self.pool = pool
        self.value_fn = value_fn
        self.hysteresis = hysteresis

    def plan_eviction(
        self, needed_bytes: float, candidate_value: float
    ) -> list[FragmentEntry] | None:
        """Entries to evict so ``needed_bytes`` fit, or ``None`` if impossible.

        Only entries whose value is clearly below ``candidate_value`` may
        be sacrificed — evicting an equal-or-better entry would not
        improve the configuration.
        """
        if self.pool.fits(needed_bytes):
            return []
        assert self.pool.smax_bytes is not None
        budget = self.pool.smax_bytes - self.pool.used_bytes
        threshold = candidate_value / self.hysteresis
        victims: list[FragmentEntry] = []
        for entry in sorted(self.pool.all_entries(), key=self.value_fn):
            if budget + 1e-6 >= needed_bytes:
                break
            if self.value_fn(entry) >= threshold:
                break
            victims.append(entry)
            budget += entry.size_bytes
        if budget + 1e-6 >= needed_bytes:
            return victims
        return None

    def admit_whole_view(
        self, view_id: str, table: Table, candidate_value: float
    ) -> AdmissionResult:
        victims = self.plan_eviction(table.size_bytes, candidate_value)
        if victims is None:
            return AdmissionResult(False, [])
        for entry in victims:
            self.pool.evict(entry.fragment_id)
        self.pool.add_whole_view(view_id, table)
        return AdmissionResult(True, victims)

    def admit_fragment(
        self,
        view_id: str,
        attr: str,
        interval,
        table: Table,
        candidate_value: float,
    ) -> AdmissionResult:
        victims = self.plan_eviction(table.size_bytes, candidate_value)
        if victims is None:
            return AdmissionResult(False, [])
        for entry in victims:
            self.pool.evict(entry.fragment_id)
        self.pool.add_fragment(view_id, attr, interval, table)
        return AdmissionResult(True, victims)
