"""The DeepSea simulator (§9).

Testing selection strategies over large workloads is slow even on the
simulated cluster when every query is physically executed.  The paper's
simulator tracks, per query template, the statistics gathered from real
executions and — once enough samples exist — *estimates* the runtime of
further executions of the template with linear regression over the
selection width, instead of executing them.

This module reproduces that component: :class:`TemplateRegression` fits
``elapsed ≈ a + b · width`` per (template, phase) with ordinary least
squares, and :class:`WorkloadSimulator` drives a DeepSea instance,
executing queries until a template has enough samples and predicting
afterwards.  Prediction is used by the Figure-7a experiment, which
projects 100-query workloads from 10 measured queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.deepsea import DeepSea
from repro.errors import ReproError
from repro.query.algebra import Plan, Select, walk


@dataclass
class RegressionFit:
    """An ordinary-least-squares fit of elapsed time against range width."""

    intercept: float
    slope: float
    n_samples: int

    def predict(self, width: float) -> float:
        return max(self.intercept + self.slope * width, 0.0)


@dataclass
class TemplateRegression:
    """Per-template runtime model built from observed executions."""

    min_samples: int = 5
    _widths: dict[str, list[float]] = field(default_factory=dict)
    _elapsed: dict[str, list[float]] = field(default_factory=dict)

    def observe(self, template: str, width: float, elapsed_s: float) -> None:
        self._widths.setdefault(template, []).append(width)
        self._elapsed.setdefault(template, []).append(elapsed_s)

    def sample_count(self, template: str) -> int:
        return len(self._widths.get(template, []))

    def fit(self, template: str) -> RegressionFit | None:
        """OLS fit for the template; ``None`` before ``min_samples``."""
        widths = self._widths.get(template, [])
        if len(widths) < self.min_samples:
            return None
        x = np.asarray(widths, dtype=np.float64)
        y = np.asarray(self._elapsed[template], dtype=np.float64)
        if np.ptp(x) == 0.0:
            return RegressionFit(float(y.mean()), 0.0, len(x))
        slope, intercept = np.polyfit(x, y, 1)
        return RegressionFit(float(intercept), float(slope), len(x))

    def predict(self, template: str, width: float) -> float | None:
        fit = self.fit(template)
        if fit is None:
            return None
        return fit.predict(width)


def selection_width(plan: Plan) -> float:
    """Total width of the plan's range selections (regression feature)."""
    width = 0.0
    for node in walk(plan):
        if isinstance(node, Select):
            for pred in node.predicates:
                if pred.interval.is_bounded():
                    width += pred.interval.width
    return width


@dataclass
class SimulatedQuery:
    """One simulator step: measured or predicted."""

    index: int
    template: str
    elapsed_s: float
    predicted: bool


class WorkloadSimulator:
    """Drives a system, predicting steady-state repeats via regression.

    The simulator executes each query until its template has
    ``min_samples`` *reuse* observations (executions that were answered
    from the pool — the steady state the regression models), then
    predicts further executions.  Materialization-phase executions are
    always measured, so creation costs stay exact.
    """

    def __init__(self, system: DeepSea, min_samples: int = 5):
        self.system = system
        self.regression = TemplateRegression(min_samples=min_samples)
        self.history: list[SimulatedQuery] = []

    def run(self, template: str, plan: Plan) -> SimulatedQuery:
        width = selection_width(plan)
        prediction = self.regression.predict(template, width)
        if prediction is not None:
            step = SimulatedQuery(len(self.history), template, prediction, True)
            self.history.append(step)
            return step
        report = self.system.execute(plan)
        if report.reused_view and not report.views_created and report.refinements == 0:
            self.regression.observe(template, width, report.total_s)
        step = SimulatedQuery(len(self.history), template, report.total_s, False)
        self.history.append(step)
        return step

    def run_workload(self, queries: list[tuple[str, Plan]]) -> float:
        """Total (measured + predicted) time for a template-tagged workload."""
        return sum(self.run(template, plan).elapsed_s for template, plan in queries)

    @property
    def measured_count(self) -> int:
        return sum(1 for q in self.history if not q.predicted)

    @property
    def predicted_count(self) -> int:
        return sum(1 for q in self.history if q.predicted)


def project_workload_time(
    measured: list[float],
    target_queries: int,
    steady: list[float] | None = None,
) -> float:
    """Figure-7a's projection: extend a measured prefix to N queries.

    The measured prefix is charged in full; the remaining queries are
    charged the steady-state per-query mean.  ``steady`` lets the caller
    supply the steady-state samples explicitly (e.g. only the queries that
    were answered from the pool without materialization activity); by
    default the suffix after the first query is used.
    """
    if not measured:
        raise ReproError("cannot project an empty measurement list")
    if target_queries <= len(measured):
        return float(sum(measured[:target_queries]))
    if steady is None:
        steady = measured[1:] if len(measured) > 1 else measured
    if not steady:
        raise ReproError("steady-state sample list is empty")
    per_query = float(np.mean(steady))
    return float(sum(measured) + per_query * (target_queries - len(measured)))
