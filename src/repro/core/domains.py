"""Attribute-domain resolution.

Partition candidate generation needs the bounded domain ``D(A)`` of every
partition attribute (Definition 7 clamps selections to it).  Domains can
be declared up front by the workload; otherwise the resolver derives them
lazily from the base data (min/max over any catalog table carrying the
column) and caches the answer.
"""

from __future__ import annotations

from repro.engine.catalog import Catalog
from repro.partitioning.intervals import Interval

_UNKNOWN = object()


class DomainResolver:
    """Resolves attribute names to bounded domains."""

    def __init__(self, catalog: Catalog, declared: dict[str, Interval] | None = None):
        self._catalog = catalog
        self._cache: dict[str, Interval | None] = dict(declared or {})

    def declare(self, attr: str, domain: Interval) -> None:
        self._cache[attr] = domain

    def __call__(self, attr: str) -> Interval | None:
        if attr in self._cache:
            return self._cache[attr]
        domain = self._derive(attr)
        self._cache[attr] = domain
        return domain

    def _derive(self, attr: str) -> Interval | None:
        for name in self._catalog.names:
            table = self._catalog.get(name)
            if attr not in table.schema:
                continue
            column = table.column(attr)
            if len(column) == 0:
                continue
            try:
                return Interval.closed(float(column.min()), float(column.max()))
            except (TypeError, ValueError):
                return None  # non-numeric column: not partitionable
        return None
