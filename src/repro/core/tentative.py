"""Tentative partition designs.

For every (view, attribute) pair DeepSea tracks the *tentative partition*
— what the fragmentation of the view on that attribute would look like if
the view were (re)materialized right now.  The tentative design evolves
progressively:

* it is seeded with the trivial fragmentation ``{D(V, A)}`` the first time
  a selection on A over the view is seen (§6.2, case 1);
* every Definition-7 split candidate refines it — by replacement in split
  mode, or by adding an overlapping fragment in overlapping mode;
* materialization writes the tentative intervals (modulo size bounding);
* statistics fragments (``PSTAT``) are created for every interval that
  ever appears here, so evidence survives eviction and re-creation.
"""

from __future__ import annotations

from repro.errors import PartitionError
from repro.partitioning.candidates import SplitCandidate
from repro.partitioning.fragmentation import Fragmentation
from repro.partitioning.intervals import Interval


class TentativePartitions:
    """The evolving partition design for every (view, attr) pair."""

    def __init__(self) -> None:
        self._designs: dict[tuple[str, str], Fragmentation] = {}

    def get(self, view_id: str, attr: str) -> Fragmentation | None:
        return self._designs.get((view_id, attr))

    def ensure(self, view_id: str, attr: str, domain: Interval) -> Fragmentation:
        design = self._designs.get((view_id, attr))
        if design is None:
            design = Fragmentation.single(attr, domain)
            self._designs[(view_id, attr)] = design
        return design

    def intervals(self, view_id: str, attr: str) -> list[Interval]:
        design = self._designs.get((view_id, attr))
        return list(design.intervals) if design else []

    def attrs_of(self, view_id: str) -> list[str]:
        return sorted(a for (v, a) in self._designs if v == view_id)

    # ------------------------------------------------------------------
    def apply_split(self, view_id: str, attr: str, candidate: SplitCandidate) -> None:
        """Replace the parent fragment by its pieces (horizontal refinement)."""
        design = self._designs.get((view_id, attr))
        if design is None:
            raise PartitionError(f"no tentative design for {view_id}.{attr}")
        self._designs[(view_id, attr)] = design.replace(candidate.parent, candidate.pieces)

    def add_overlapping(self, view_id: str, attr: str, piece: Interval) -> None:
        """Add an overlapping fragment (Definition 2 refinement)."""
        design = self._designs.get((view_id, attr))
        if design is None:
            raise PartitionError(f"no tentative design for {view_id}.{attr}")
        if piece in design.intervals:
            return
        self._designs[(view_id, attr)] = design.add_overlapping(piece)

    def replace_design(self, view_id: str, attr: str, design: Fragmentation) -> None:
        """Install a full design (used by the equi-depth policy)."""
        self._designs[(view_id, attr)] = design
