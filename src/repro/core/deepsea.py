"""The DeepSea online partitioned-view manager — Algorithm 1.

:class:`DeepSea` processes a workload one query at a time.  For each query
it (numbers follow Algorithm 1 in the paper):

1. computes all view matches, resident or not (``COMPUTEREWRITINGS``);
2. records benefit events and fragment hits for every match
   (``UPDATESTATS``);
3. picks the cheapest executable rewriting, or direct execution
   (``SELECTREWRITING``);
4. registers Definition-6 view candidates and refines tentative partition
   designs with Definition-7 splits (``COMPUTEVIEWCAND`` /
   ``ADDCANDIDATES``);
5. filters candidates by the §7.2 evidence test and plans refinements of
   resident partitions (``VIEWSELECTION``);
6. executes the chosen plan, capturing the intermediate results it needs
   (``INSTRUMENTQUERY`` / ``EXECUTEQUERY``) — selections are pushed down
   only when nothing is being materialized, reproducing the paper's
   "selections are not pushed down" materialization cost;
7. materializes the selected views as (bounded) partitions, applies
   refinements (splits or overlapping fragments), evicting lower-value
   entries when the pool is full, and replaces size/cost estimates with
   actuals (``UPDATESTATS``).

All baselines (H, NP, E-k, NR, Nectar, Nectar+) are the same driver under
a different :class:`~repro.core.policies.Policy`.
"""

from __future__ import annotations

import math

from contextlib import nullcontext
from dataclasses import dataclass
from functools import partial

from repro.core.admission import AdmissionController
from repro.core.merging import MergeCandidate, find_merge_candidates
from repro.core.domains import DomainResolver
from repro.core.policies import Policy
from repro.core.reports import QueryReport, WorkloadSummary
from repro.core.tentative import TentativePartitions
from repro.costmodel.estimate import ResidentProfile
from repro.costmodel.mle import adjusted_hits, adjusted_hits_density
from repro.costmodel.nectar import (
    nectar_fragment_value,
    nectar_plus_fragment_value,
    nectar_plus_view_value,
    nectar_view_value,
)
from repro.costmodel.stats import StatisticsStore, ViewStats
from repro.costmodel.value import (
    RealizingHitsIndex,
    fragment_value,
    partition_distribution,
    partition_distributions,
    view_benefit,
    view_value,
)
from repro.engine.catalog import Catalog
from repro.engine.cost import ClusterSpec, CostLedger
from repro.engine.executor import ExecutionContext, Executor
from repro.engine.table import Table
from repro.errors import ControllerCrashError
from repro.matching.filter_tree import FilterTree
from repro.matching.matcher import partition_attr_ranges
from repro.matching.partition_match import greedy_cover
from repro.matching.rewriter import Rewriter, Rewriting, ViewMatch
from repro.partitioning.bounding import bound_fragment, merge_undersized
from repro.partitioning.candidates import SplitCandidate, partition_candidates
from repro.partitioning.equidepth import equidepth_intervals
from repro.partitioning.fragmentation import Fragmentation
from repro.partitioning.intervals import Interval, sort_key
from repro.query.algebra import Plan, replace_subplan
from repro.query.optimizer import push_down
from repro.query.signature import view_id_for
from repro.query.subqueries import view_candidate_subplans
from repro.storage.hdfs import SimulatedHDFS
from repro.storage.ingest import DeltaMaintainer, IngestReport
from repro.storage.pool import FragmentKey, MaterializedViewPool

# Cap on tentative-design fragmentation growth for views that accumulate
# evidence over very long workloads without being materialized.
_MAX_TENTATIVE_FRAGMENTS = 512

# Candidate-piece batches smaller than this are always evaluated inline:
# one piece costs microseconds, so a process round-trip only pays for
# itself on the rare wide batches (dense overlapping designs).
_PARALLEL_PIECE_THRESHOLD = 32


def _piece_refinement_passes(
    piece: Interval,
    *,
    estimator: ResidentProfile,
    resident_sizes: dict[Interval, float],
    resident_intervals: list[Interval],
    domain: Interval,
    cluster: ClusterSpec,
    realizing: "RealizingHitsIndex | None",
    dist_fn,
    safety: float,
) -> bool:
    """The §7.2 filter for one candidate piece.

    Pure in its arguments — it reads precomputed per-candidate indexes
    (:class:`ResidentProfile`, :class:`RealizingHitsIndex`) and computes,
    mutating nothing but value-transparent caches — which is what lets
    `_refinement_passes` fan a wide batch of pieces out over
    :func:`repro.parallel.pool.batch_map` with results identical to the
    inline loop (each worker's memo copy just starts cold).
    """
    # Everything up to the hit counting depends only on the piece and the
    # resident cover, not on the query time — and jittering workloads
    # re-propose the same pieces query after query, so the prefix is
    # memoized on the estimator (whose cache lifetime is exactly "resident
    # set unchanged").  A memo hit replays the identical floats.
    pre = estimator.piece_memo.get(piece)
    if pre is not None:
        if not pre[0]:
            return False
        _, size_est, cost_est, saving_per_hit = pre
    else:
        size_est, cost_est = estimator.estimate(piece)
        cover = greedy_cover(piece, resident_intervals)
        if cover is None:
            # hole in the partition: nothing to refine from
            estimator.piece_memo[piece] = (False, 0.0, 0.0, 0.0)
            return False
        cover_bytes = sum(resident_sizes[c.interval] for c in cover)
        if size_est > 0.5 * cover_bytes:
            # The range is already served by a reasonably tight cover;
            # shaving a sliver off it would recur forever under
            # endpoint jitter without a matching payoff.
            estimator.piece_memo[piece] = (False, 0.0, 0.0, 0.0)
            return False
        saving_per_hit = max(
            cluster.read_elapsed(cover_bytes, nfiles=len(cover))
            - cluster.read_elapsed(size_est, nfiles=1),
            0.0,
        )
        estimator.piece_memo[piece] = (True, size_est, cost_est, saving_per_hit)
    # Only queries whose need from this parent fits inside the
    # piece realize the per-hit margin; MLE smoothing tops this up
    # (capped, so the fitted tail cannot manufacture evidence).
    hits = realizing.hits_for(piece) if realizing is not None else 0.0
    if dist_fn is not None and hits > 0:
        dist = dist_fn()
        if dist is not None:
            fitted, total = dist
            smoothed = adjusted_hits(piece, fitted, total, domain)
            hits = max(hits, min(smoothed, 2.0 * hits))
    return hits * saving_per_hit >= safety * cost_est


class _ConstDist:
    """Picklable constant thunk for the batched refinement path."""

    __slots__ = ("_dist",)

    def __init__(self, dist) -> None:
        self._dist = dist

    def __call__(self):
        return self._dist


@dataclass
class ViewCreation:
    """Decision to materialize one candidate view during this query."""

    view_id: str
    plan: Plan
    attrs: tuple[str, ...]  # partition attributes (empty = store whole)


@dataclass
class Refinement:
    """Decision to refine one resident fragment (§6.2 / Example 2)."""

    view_id: str
    attr: str
    parent: Interval
    split_pieces: tuple[Interval, ...] | None  # split mode: replaces parent
    overlap_pieces: tuple[Interval, ...] | None  # overlap mode: parent kept


class DeepSea:
    """Online workload-aware partitioned-view manager over the simulated cluster."""

    def __init__(
        self,
        catalog: Catalog,
        *,
        cluster: ClusterSpec | None = None,
        smax_bytes: float | None = None,
        policy: Policy | None = None,
        domains: dict[str, Interval] | None = None,
    ) -> None:
        self.catalog = catalog
        self.cluster = cluster or ClusterSpec()
        self.policy = policy or Policy()
        self.pool = MaterializedViewPool(smax_bytes, SimulatedHDFS())
        self.stats = StatisticsStore()
        self.filter_tree = FilterTree()
        # §8.3: the filter tree is also the statistics registry; its
        # per-view residency counters ride the pool's delta stream.
        self.filter_tree.subscribe_to(self.pool)
        self.domains = DomainResolver(catalog, domains)
        self.tentative = TentativePartitions()
        # (view, attr) -> the exact Fragmentation whose intervals have
        # been ensured in PSTAT.  Designs are replaced (never mutated) on
        # refinement and stats fragments are never dropped, so an `is`
        # match means the per-query ensure loop in
        # _update_match_statistics has nothing to add.
        self._pstat_synced: dict = {}
        self.schemas = {n: catalog.get(n).schema.names for n in catalog.names}
        self.rewriter = Rewriter(
            self.schemas, self.filter_tree, self.pool, catalog, self.cluster, self.domains
        )
        self.executor = Executor(ExecutionContext(catalog, self.pool, self.cluster))
        self.clock = 0
        self.reports: list[QueryReport] = []
        self._dist_cache: dict[tuple[int, str, str], tuple | None] = {}
        # (view_id, attr) -> (cover version, resident list, ResidentProfile):
        # the vectorized size/cost estimator over a partition's resident
        # fragments, reused across refinement evaluations until the pool's
        # cover (or any fragment size) changes.
        self._resident_profiles: dict[tuple[str, str], tuple] = {}
        # (view_id, attr) -> (cover version, resident list, sizes dict,
        # interval list).  Pool fragment entries are immutable after
        # admission and every admit/evict/restore bumps the view's cover
        # version, so a matching version guarantees the snapshot is current.
        self._resident_lists: dict[tuple[str, str], tuple] = {}
        self._creation_cooldown: dict[str, float] = {}
        # Optional repro.bench.profile.WallClockProfiler; when attached,
        # execute() charges real seconds to matching / selection /
        # execution / materialization.  None costs one attribute read.
        self.profiler = None
        # Worker budget for side-effect-free candidate evaluation inside
        # the refinement filter (repro.parallel.batch_map).  0 keeps the
        # serial inline path; any value yields identical decisions.
        self.parallel_workers = 0
        # Optional repro.faults.injector.FaultInjector (attach_faults).
        # None — the default, and the only configuration the seed
        # benchmarks use — keeps every path bit-identical to before.
        self.faults = None
        # True while a crashed repartitioning step is being retried: the
        # fresh controller that picks the step up does not immediately
        # die again, so the retry draws no crash decision.
        self._retrying = False
        # Journal every repartitioning step even without fault injection.
        # The serving layer's single writer sets this: concurrent snapshot
        # readers rely on each step being an atomic journaled transaction
        # (and on rollback restoring the exact pre-step configuration)
        # regardless of whether chaos is attached.  Off by default — the
        # batch benchmarks keep their zero-overhead path.
        self.always_journal = False
        # Incremental ingest (repro.storage.ingest): routes appended
        # micro-batches into resident fragments and prices the upkeep the
        # §7 selector weighs against read benefit.  Inert until the first
        # ingest() call — workloads without appends are bit-identical.
        self.maintenance = DeltaMaintainer(self)
        # Maintenance charged between queries lands on the *next* query's
        # creation ledger (upkeep is part of serving the workload, and
        # per-query ledgers are what the determinism fingerprints see).
        self._pending_maintenance: CostLedger | None = None

    _NULL_STAGE = nullcontext()

    def _stage(self, name: str):
        return self._NULL_STAGE if self.profiler is None else self.profiler.stage(name)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def attach_faults(self, faults):
        """Enable deterministic fault injection for the rest of this run.

        ``faults`` is a :class:`~repro.faults.schedule.FaultSchedule`, a
        built-in schedule name / JSON string, or a ready-made
        :class:`~repro.faults.injector.FaultInjector`.  Attaching wires
        all three recovery layers at once: task retry/speculation in the
        cost ledgers, replica damage and recompute-from-base-tables in
        the storage stack, and journaled crash/rollback/retry around
        repartitioning steps.  Returns the injector for inspection.
        """
        from repro.faults.injector import FaultInjector
        from repro.faults.recovery import FragmentRecovery
        from repro.faults.schedule import FaultSchedule

        injector = (
            faults
            if isinstance(faults, FaultInjector)
            else FaultSchedule.resolve(faults).injector()
        )
        self.faults = injector
        self.pool.hdfs.attach_faults(injector)
        self.pool.recovery = FragmentRecovery(self.catalog, self.cluster, injector)
        return injector

    def execute(self, plan: Plan) -> QueryReport:
        """Process one query (Algorithm 1) and return its report."""
        self.clock += 1
        t = float(self.clock)
        exec_ledger = CostLedger(self.cluster)
        creation_ledger = CostLedger(self.cluster)
        if self._pending_maintenance is not None:
            creation_ledger.merge(self._pending_maintenance)
            self._pending_maintenance = None
        if self.faults is not None:
            exec_ledger.faults = self.faults
            creation_ledger.faults = self.faults
            self._inject_pool_faults()

        if self.profiler is not None:
            self.profiler.queries += 1
        if not self.policy.materialize:
            return self._execute_direct(plan, exec_ledger, creation_ledger)

        with self._stage("matching"):
            # 4 (early). Register candidates so the current query contributes
            # its own evidence — the paper's final UPDATESTATS folded forward.
            candidates = self._register_candidates(plan)

            # 1-2. Matching and statistics.
            matches = self.rewriter.find_matches(plan)
            self._update_match_statistics(plan, matches, t)

            # 3. Choose Q_best.
            rewritings = self.rewriter.build_rewritings(plan, matches)
            direct_est = self.rewriter.estimate_plan_cost(push_down(plan, self.schemas)).cost_s
            chosen: Rewriting | None = None
            if rewritings:
                best = min(rewritings, key=lambda r: r.est_cost_s)
                if best.est_cost_s < direct_est:
                    chosen = best

        with self._stage("selection"):
            # 5. Selection: creations and refinements.
            usable = {r.view_id for r in rewritings}
            creations = self._plan_view_creations(candidates, usable, t)
            refinements = self._plan_refinements(matches, t) if self.policy.repartition else []

        # 6. Execute (with capture for instrumentation).
        #
        # The expensive "selections are not pushed down" mode (§10.2) is
        # only needed when a *mid-plan* intermediate must be captured in
        # its unpushed form.  A creation whose definition is the whole
        # query (e.g. the per-range aggregate view) is satisfied by the
        # root result, which pushdown does not change.
        with self._stage("execution"):
            needs_unpushed = any(creation.plan != plan for creation in creations)
            plan_to_run = chosen.plan if chosen is not None else plan
            if chosen is None and not needs_unpushed:
                plan_to_run = push_down(plan, self.schemas)
            target_map: dict[str, Plan] = {}
            for creation in creations:
                if creation.plan == plan:
                    target_map[creation.view_id] = plan_to_run  # the root result
                    continue
                target = creation.plan
                if chosen is not None and chosen.replaced is not None:
                    target = replace_subplan(target, chosen.replaced, chosen.replacement)
                target_map[creation.view_id] = target
            result, captured = self.executor.execute_with_capture(
                plan_to_run, list(target_map.values()), exec_ledger
            )

        # 7. Materialize and refine.
        with self._stage("materialization"):
            views_created: list[str] = []
            evictions = 0
            for creation in creations:
                table = captured.get(target_map[creation.view_id])
                if table is None:
                    continue  # the rewriting bypassed this intermediate
                created, evicted = self._crash_safe(
                    "materialize",
                    partial(self._materialize_view, creation, table, t, creation_ledger),
                    creation_ledger,
                )
                evictions += evicted
                if created:
                    views_created.append(creation.view_id)
                else:
                    self._creation_cooldown[creation.view_id] = t + self.policy.creation_cooldown
            applied_refinements = 0
            for refinement in refinements:
                done, evicted = self._crash_safe(
                    "repartition",
                    partial(self._apply_refinement, refinement, t, creation_ledger),
                    creation_ledger,
                )
                evictions += evicted
                applied_refinements += int(done)
            if self.policy.merge_fragments:
                for merge in self._plan_merges(matches, t):
                    done, evicted = self._crash_safe(
                        "merge",
                        partial(self._apply_merge, merge, t, creation_ledger),
                        creation_ledger,
                    )
                    evictions += evicted
                    applied_refinements += int(done)
            if self.policy.multi_attribute:
                done, evicted = self._extend_partitions(matches, t, creation_ledger)
                evictions += evicted
                applied_refinements += done

        report = QueryReport(
            index=self.clock,
            plan=plan,
            result=result.table,
            execution_ledger=exec_ledger,
            creation_ledger=creation_ledger,
            view_used=chosen.view_id if chosen is not None else None,
            fragments_read=len(chosen.fragment_ids) if chosen is not None else 0,
            views_created=views_created,
            refinements=applied_refinements,
            evictions=evictions,
            pool_bytes=self.pool.used_bytes,
        )
        self.reports.append(report)
        return report

    def ingest(self, name: str, rows) -> IngestReport:
        """Append a micro-batch to base table ``name`` and maintain views.

        Always runs as a journaled pool transaction — unlike
        repartitioning steps, which only journal under fault injection or
        a serving writer — because the append mutates the *catalog* too:
        a crash mid-batch must restore the base table, the catalog
        version, and the pool configuration together, stranding every
        cache entry (local or shared-tier) stamped with the aborted
        version.  The maintenance cost lands on the next query's creation
        ledger via ``_pending_maintenance``.
        """
        ledger = CostLedger(self.cluster)
        if self.faults is not None:
            ledger.faults = self.faults
        report = self._crash_safe(
            "ingest",
            partial(self.maintenance.apply, name, rows, ledger),
            ledger,
            force_journal=True,
        )
        if self._pending_maintenance is None:
            self._pending_maintenance = ledger
        else:
            self._pending_maintenance.merge(ledger)
        return report

    def run_workload(self, plans: list[Plan]) -> WorkloadSummary:
        """Execute a sequence of queries and return the aggregate summary."""
        return WorkloadSummary([self.execute(p) for p in plans])

    @property
    def summary(self) -> WorkloadSummary:
        return WorkloadSummary(list(self.reports))

    # ------------------------------------------------------------------
    # Vanilla execution (H baseline)
    # ------------------------------------------------------------------
    def _execute_direct(
        self, plan: Plan, exec_ledger: CostLedger, creation_ledger: CostLedger
    ) -> QueryReport:
        with self._stage("execution"):
            result = self.executor.execute(push_down(plan, self.schemas), exec_ledger)
        report = QueryReport(
            index=self.clock,
            plan=plan,
            result=result.table,
            execution_ledger=exec_ledger,
            creation_ledger=creation_ledger,
            pool_bytes=self.pool.used_bytes,
        )
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # Fault injection and crash recovery (repro.faults)
    # ------------------------------------------------------------------
    def _inject_pool_faults(self) -> None:
        """Once per query, maybe lose every replica of one pool entry.

        The victim is drawn over the path-sorted entry list, so the draw
        sequence — and therefore the whole faulted run — is a pure
        function of the schedule seed.  The loss surfaces lazily: the
        next read of the entry raises, the attached
        :class:`~repro.faults.recovery.FragmentRecovery` recomputes it
        from base tables, and the answer path continues unchanged.
        """
        candidates = sorted(
            (e for e in self.pool.all_entries() if not self.pool.hdfs.is_lost(e.path)),
            key=lambda e: e.path,
        )
        index = self.faults.lose_fragment(len(candidates))
        if index is not None:
            self.pool.hdfs.lose_replicas(candidates[index].path)

    def _maybe_crash(self, site: str) -> None:
        """Die mid-step if the injector says so (never during a retry)."""
        if self.faults is None or self._retrying:
            return
        if self.faults.controller_crash(site):
            raise ControllerCrashError(site)

    def _crash_safe(self, site: str, fn, ledger: CostLedger, *, force_journal: bool = False):
        """Run one repartitioning step with journaled crash recovery.

        Without faults this is a plain call — no transaction, no
        overhead, bit-identical to the seed.  With faults the step runs
        inside a pool transaction; a mid-step controller crash rolls the
        journal back (restoring the exact pre-step configuration, with
        replayed re-writes charged to ``ledger``) and a fresh controller
        retries the step.  The retry starts from the same state the
        fault-free run saw, so it makes the same decisions — the crash
        costs time, never answers.  ``force_journal`` opens the
        transaction regardless of fault/serving configuration — ingest
        steps are always journaled (they mutate the catalog).
        """
        if self.faults is None and not self.always_journal and not force_journal:
            return fn()
        self.pool.begin(site)
        try:
            out = fn()
        except ControllerCrashError:
            self.pool.rollback(ledger)
            self.faults.record_recovery(site, "journal rollback, step retried")
            self._retrying = True
            self.pool.begin(site)
            try:
                out = fn()
                self.pool.commit()
            except BaseException:
                # Roll the retry back too: whatever happened, the journal
                # must not stay open (a wedged journal turns every later
                # step into a PoolError) and the pool must not stay
                # half-mutated under concurrent snapshot readers.
                self.pool.rollback(ledger)
                raise
            finally:
                self._retrying = False
            return out
        except BaseException:
            self.pool.rollback(ledger)
            raise
        self.pool.commit()
        return out

    # ------------------------------------------------------------------
    # Candidate registration (Definitions 6 and 7)
    # ------------------------------------------------------------------
    def _register_candidates(self, plan: Plan) -> list[tuple[str, Plan]]:
        query_sig = self.rewriter.signature_of(plan)
        registered: list[tuple[str, Plan]] = []
        for sub in view_candidate_subplans(plan):
            view_id = view_id_for(sub)
            if self.stats.view(view_id) is None:
                sub_sig = self.rewriter.signature_of(sub)
                self.filter_tree.add(view_id, sub_sig)
                self.pool.define_view(view_id, sub)
                vstats = self.stats.ensure_view(view_id, sub)
                estimate = self.rewriter.estimate_plan_cost(sub)
                vstats.size_bytes = max(estimate.bytes_out, 1.0)
                # COST(V) is the full recreation price: recompute the
                # defining query and write the partitioned result (§7.1).
                vstats.creation_cost_s = estimate.cost_s + self.cluster.write_elapsed(0.0, nfiles=4)
            self._refine_tentative_designs(view_id, query_sig)
            registered.append((view_id, sub))
        return registered

    def _refine_tentative_designs(self, view_id: str, query_sig) -> None:
        """Progressive partition design for a (not yet resident) view."""
        view_sig = self.filter_tree.signature(view_id)
        if view_sig is None:
            return
        ranges = partition_attr_ranges(view_sig, query_sig)
        for attr in sorted(ranges):
            domain = self.domains(attr)
            if domain is None:
                continue
            design = self.tentative.ensure(view_id, attr, domain)
            if self.policy.partitioning != "adaptive":
                continue
            if self.pool.is_resident(view_id):
                continue  # resident partitions refine via the cost filter
            if len(design) >= _MAX_TENTATIVE_FRAGMENTS:
                continue
            theta = ranges[attr].intersect(domain)
            if theta is None:
                continue
            for candidate in partition_candidates(theta, list(design.intervals), domain):
                self._inherit_fragment_stats(view_id, attr, candidate)
                current = self.tentative.get(view_id, attr)
                if current is not None and candidate.parent in current.intervals:
                    self.tentative.apply_split(view_id, attr, candidate)

    def _inherit_fragment_stats(self, view_id: str, attr: str, candidate: SplitCandidate) -> None:
        """Give split pieces the parent's hit history.

        Each piece inherits the hits whose recorded query range touched it
        (hits without a range are copied wholesale); decay and the MLE
        smoothing keep any residual over-count from distorting values.
        """
        parent = self.stats.fragment(view_id, attr, candidate.parent)
        for piece in candidate.pieces:
            piece_stats = self.stats.ensure_fragment(view_id, attr, piece)
            if parent is not None and not piece_stats.hit_times:
                piece_stats.inherit_hits(parent, piece)

    # ------------------------------------------------------------------
    # Statistics update (§8.4)
    # ------------------------------------------------------------------
    def _update_match_statistics(
        self, plan: Plan, matches: list[ViewMatch], t: float
    ) -> None:
        # A view often matches several subqueries of the same query (e.g.
        # the bare join and the selection above it).  The view's best use
        # is the one with the largest saving; record exactly one benefit
        # event and one round of fragment hits per view per query.
        best: dict[str, tuple[float, ViewMatch]] = {}
        for match in matches:
            vstats = self.stats.view(match.view_id)
            if vstats is None:
                continue
            attrs = self.tentative.attrs_of(match.view_id)
            saving = self.rewriter.estimate_saving(plan, match, vstats.size_bytes, attrs)
            current = best.get(match.view_id)
            specificity = len(match.attr_ranges)
            if current is None or (saving, specificity) > (
                current[0],
                len(current[1].attr_ranges),
            ):
                best[match.view_id] = (saving, match)
        for view_id, (saving, match) in best.items():
            vstats = self.stats.view(view_id)
            vstats.record_benefit(t, saving)
            for attr in self.tentative.attrs_of(view_id):
                domain = self.domains(attr)
                if domain is None:
                    continue
                theta = match.attr_ranges.get(attr)
                theta = theta.intersect(domain) if theta is not None else domain
                if theta is None:
                    continue
                # Hits are recorded over PSTAT — every tracked fragment,
                # including unmaterialized candidate pieces — so that
                # refinement candidates accumulate their own evidence.
                design = self.tentative.get(view_id, attr)
                if design is not None and self._pstat_synced.get((view_id, attr)) is not design:
                    for interval in design.intervals:
                        self.stats.ensure_fragment(view_id, attr, interval)
                    self._pstat_synced[(view_id, attr)] = design
                self.stats.record_overlapping_hits(view_id, attr, t, theta)

    # ------------------------------------------------------------------
    # View selection (§7.2-7.3)
    # ------------------------------------------------------------------
    def _plan_view_creations(
        self,
        candidates: list[tuple[str, Plan]],
        usable_views: set[str],
        t: float,
    ) -> list[ViewCreation]:
        creations: list[ViewCreation] = []
        for view_id, sub in candidates:
            if view_id in usable_views:
                continue  # already answerable from the pool
            if self.pool.whole_view_entry(view_id) is not None:
                continue
            if self._creation_cooldown.get(view_id, 0.0) > t:
                continue  # recent attempt could not win pool space
            vstats = self.stats.view(view_id)
            benefit = view_benefit(vstats, t, self.policy.effective_decay)
            # COST(V) plus predicted upkeep: under ingest, a candidate
            # must also amortize the maintenance its base tables' append
            # rate will cause (exactly 0.0 when no batch has arrived, so
            # static workloads gate bit-identically).
            upkeep = self.maintenance.predicted_upkeep_s(view_id, sub)
            if benefit < self.policy.evidence_factor * (vstats.creation_cost_s + upkeep):
                continue
            attrs = self._choose_partition_attrs(view_id)
            # A first-ever attempt runs regardless (it establishes actual
            # sizes; a failure triggers the cooldown).  Re-attempts only
            # proceed when the Φ-ranked knapsack would actually admit the
            # hottest fragment — this is what bounds the small-pool
            # "oscillation" the paper observes at 5% (§10.1), because a
            # doomed creation costs a full unpushed instrumented query.
            if vstats.size_is_actual and not self._admission_feasible(
                view_id, attrs[0] if attrs else None, t
            ):
                self._creation_cooldown[view_id] = t + self.policy.creation_cooldown
                continue
            creations.append(ViewCreation(view_id, sub, attrs))
        return creations

    def _admission_feasible(self, view_id: str, attr: str | None, t: float) -> bool:
        """Would at least the hottest fragment win space in the pool?"""
        if self.pool.smax_bytes is None:
            return True
        vstats = self.stats.view(view_id)
        controller = AdmissionController(
            self.pool, lambda e: self._entry_value(e, t), self.policy.admission_hysteresis
        )
        if attr is None:
            value = self._view_admission_value(vstats, t)
            return controller.plan_eviction(vstats.size_bytes, value) is not None
        domain = self.domains(attr)
        if domain is None or domain.width <= 0:
            return False
        best: tuple[float, float] | None = None  # (value, est size)
        for interval in self.tentative.intervals(view_id, attr):
            clamped = interval.intersect(domain)
            if clamped is None:
                continue
            fstats = self.stats.fragment(view_id, attr, interval)
            if fstats is not None and fstats.size_is_actual:
                # A previous materialization measured this fragment; the
                # width-proportional guess badly underestimates hot ranges
                # on skewed data.
                size_est = fstats.size_bytes
            else:
                size_est = vstats.size_bytes * (clamped.width / domain.width)
            value = self._fragment_admission_value(view_id, attr, interval, t)
            if best is None or value > best[0]:
                best = (value, size_est)
        if best is None:
            return False
        return controller.plan_eviction(best[1], best[0]) is not None

    def _choose_partition_attrs(self, view_id: str) -> tuple[str, ...]:
        """Partition attributes for a new view.

        By default only the first (sorted) attribute with workload
        evidence is partitioned; with ``Policy.multi_attribute`` every
        attribute the workload restricted gets its own partition — §4
        permits several partitions of one view as long as they are on
        different attributes, and the rewriter picks the cheapest one per
        query.
        """
        if self.policy.partitioning == "none":
            return ()
        usable = tuple(
            attr
            for attr in self.tentative.attrs_of(view_id)
            if self.domains(attr) is not None
        )
        if not usable:
            return ()
        if self.policy.multi_attribute:
            return usable
        return usable[:1]

    # ------------------------------------------------------------------
    # Refinement planning (§7.2 filter with adjusted hits)
    # ------------------------------------------------------------------
    def _plan_refinements(self, matches: list[ViewMatch], t: float) -> list[Refinement]:
        if self.policy.partitioning != "adaptive":
            return []
        self._prefetch_distributions(matches, t)
        refinements: list[Refinement] = []
        seen: set[tuple[str, str, Interval]] = set()
        for match in matches:
            view_id = match.view_id
            if not self.pool.is_resident(view_id):
                continue
            for attr in self.pool.partition_attrs(view_id):
                theta = match.attr_ranges.get(attr)
                domain = self.domains(attr)
                if theta is None or domain is None:
                    continue
                theta = theta.intersect(domain)
                if theta is None:
                    continue
                design = self.tentative.ensure(view_id, attr, domain)
                for candidate in partition_candidates(theta, list(design.intervals), domain):
                    key = (view_id, attr, candidate.parent)
                    if key in seen:
                        continue
                    seen.add(key)
                    refinement = self._evaluate_refinement(
                        view_id, attr, candidate, theta, domain, t
                    )
                    if refinement is not None:
                        refinements.append(refinement)
        return refinements

    def _prefetch_distributions(self, matches: list[ViewMatch], t: float) -> None:
        """Batch the step's MLE fits into one decay pass (§7.1, vectorized).

        Every resident (view, attr) partition this repartitioning step will
        consult is known up front from the matches, so their fitted
        distributions are computed with a single concatenated
        ``decay.weights`` call via :func:`partition_distributions` and
        seeded into ``_dist_cache`` — each entry bit-identical to what the
        on-demand ``_partition_distribution`` call would have produced.

        A step touching a single partition gains nothing from batching and
        may not even evaluate a candidate, so it is left to the on-demand
        path (which fits at most once per step anyway); only multi-partition
        steps prefetch.
        """
        if not self.policy.smoothing_enabled:
            return
        pairs: list[tuple[str, str, Interval]] = []
        queued: set[tuple[str, str]] = set()
        for match in matches:
            if not self.pool.is_resident(match.view_id):
                continue
            for attr in self.pool.partition_attrs(match.view_id):
                domain = self.domains(attr)
                if match.attr_ranges.get(attr) is None or domain is None:
                    continue
                if (match.view_id, attr) in queued:
                    continue
                if (self.clock, match.view_id, attr) in self._dist_cache:
                    continue
                queued.add((match.view_id, attr))
                pairs.append((match.view_id, attr, domain))
        if len(pairs) < 2:
            return
        fits = partition_distributions(
            self.stats, pairs, t, self.policy.effective_decay, self.policy.mle_parts
        )
        for view_id, attr, _domain in pairs:
            self._dist_cache[(self.clock, view_id, attr)] = fits[(view_id, attr)]

    def _evaluate_refinement(
        self,
        view_id: str,
        attr: str,
        candidate: SplitCandidate,
        theta: Interval,
        domain: Interval,
        t: float,
    ) -> Refinement | None:
        vstats = self.stats.view(view_id)
        if vstats is None:
            return None
        resident, _, _ = self._resident_snapshot(view_id, attr)
        hot = [p for p in candidate.pieces if theta.contains(p)]
        if not hot:
            return None
        # Track the candidate pieces in PSTAT immediately (ADDCANDIDATES):
        # even if the §7.2 filter rejects them now, they accumulate hit
        # evidence and may pass on a later query.
        self._inherit_fragment_stats(view_id, attr, candidate)
        if self.policy.overlapping:
            # Widen before filtering: the filter's realizing-hits test asks
            # which past queries the new fragment would have served, and
            # that must be judged against the fragment actually created.
            jitter = self._observed_jitter(view_id, attr, candidate.parent, theta)
            hot = [self._widen_piece(p, theta, candidate.parent, domain, jitter) for p in hot]
        if not self._refinement_passes(
            view_id, attr, candidate.parent, hot, resident, domain, vstats, t
        ):
            return None
        if self.policy.overlapping:
            pieces = tuple(
                p
                for p in hot
                if self.pool.find_fragment(FragmentKey(view_id, attr, p)) is None
                and p not in self.tentative.intervals(view_id, attr)
            )
            if not pieces:
                return None
            for piece in pieces:
                self.tentative.add_overlapping(view_id, attr, piece)
            return Refinement(view_id, attr, candidate.parent, None, pieces)
        self.tentative.apply_split(view_id, attr, candidate)
        return Refinement(view_id, attr, candidate.parent, candidate.pieces, None)

    def _observed_jitter(self, view_id: str, attr: str, parent: Interval, theta: Interval) -> float:
        """Standard deviation of recent query midpoints around ``theta``.

        Measured from the parent fragment's recorded hit ranges, so the
        widening below can cover the workload's actual endpoint jitter
        (heavy skew keeps ranges near one spot but their midpoints still
        wander by the distribution's sigma).
        """
        parent_stats = self.stats.fragment(view_id, attr, parent)
        if parent_stats is None:
            return 0.0
        # Inlined bounded/overlaps/width tests over the precomputed bound
        # keys — identical predicates to the Interval methods, without the
        # per-range attribute and property calls (this loop runs for every
        # candidate of every query).
        theta_width = theta.width
        half_width = 0.5 * theta_width
        tl, tu = theta._lkey, theta._ukey
        mids = []
        for rng in parent_stats.hit_ranges[-30:]:
            if rng is None:
                continue
            lk, uk = rng._lkey, rng._ukey
            lo, hi = lk[0], uk[0]
            if math.isinf(lo) or math.isinf(hi):
                continue
            if not (lk <= tu and tl <= uk):
                continue
            # same template family: comparable selection widths only
            if abs((hi - lo) - theta_width) <= half_width:
                mids.append((lo + hi) / 2.0)
        if len(mids) < 2:
            return 0.0
        mean = sum(mids) / len(mids)
        return (sum((m - mean) ** 2 for m in mids) / len(mids)) ** 0.5

    def _widen_piece(
        self,
        piece: Interval,
        theta: Interval,
        parent: Interval,
        domain: Interval,
        jitter: float = 0.0,
    ) -> Interval:
        """Widen an overlapping piece to absorb endpoint jitter.

        The margin scales with the *query* width (endpoint jitter between
        instances of a template is proportional to the selection range,
        not to the possibly sliver-thin piece being carved) and with the
        jitter actually observed on the parent, whichever is larger.
        """
        margin = max(self.policy.refinement_margin * theta.width, 2.0 * jitter)
        if margin <= 0:
            return piece
        widened = Interval(piece.lo - margin, piece.hi + margin, False, False).intersect(parent)
        widened = widened.intersect(domain) if widened is not None else None
        return widened if widened is not None else piece

    def _resident_snapshot(
        self, view_id: str, attr: str
    ) -> "tuple[list[tuple[Interval, float]], dict[Interval, float], list[Interval]]":
        """Cached ``(resident list, sizes dict, interval list)`` for a partition.

        The three views of the resident set are rebuilt together whenever
        the view's cover version moves; between moves every refinement
        evaluation shares the same objects.
        """
        key = (view_id, attr)
        version = self.pool.cover_version(view_id)
        cached = self._resident_lists.get(key)
        if cached is not None and cached[0] == version:
            return cached[1], cached[2], cached[3]
        resident = [(e.key.interval, e.size_bytes) for e in self.pool.fragments_of(view_id, attr)]
        sizes = {iv: s for iv, s in resident}
        entry = (version, resident, sizes, list(sizes))
        self._resident_lists[key] = entry
        return entry[1], entry[2], entry[3]

    def _resident_profile(
        self,
        view_id: str,
        attr: str,
        resident: list[tuple[Interval, float]],
        domain: Interval,
    ) -> ResidentProfile:
        """Cached :class:`ResidentProfile` for one partition's resident set.

        Candidate evaluations within a step (and across steps while the
        pool is stable) see the same resident fragments, so the estimator's
        precomputed bound/size/read-cost arrays are reused until the view's
        cover version moves or the resident list itself (intervals *or*
        sizes) differs from the cached snapshot.
        """
        key = (view_id, attr)
        version = self.pool.cover_version(view_id)
        cached = self._resident_profiles.get(key)
        if cached is not None and cached[0] == version and cached[1] == resident:
            return cached[2]
        profile = ResidentProfile(resident, domain, self.cluster)
        self._resident_profiles[key] = (version, resident, profile)
        return profile

    def _refinement_passes(
        self,
        view_id: str,
        attr: str,
        parent: Interval,
        hot: list[Interval],
        resident: list[tuple[Interval, float]],
        domain: Interval,
        vstats: ViewStats,
        t: float,
    ) -> bool:
        """§7.2: create the fragment only when its benefit covers its cost.

        The benefit of a refinement is *marginal*: it is what queries that
        hit the piece would save by reading the new small fragment instead
        of the cheapest resident cover of its range.  A range already
        served by tight fragments yields no benefit, which is what stops
        the system from re-carving the same hot spot query after query.
        """
        decay = self.policy.effective_decay
        batched = self.parallel_workers >= 2 and len(hot) >= _PARALLEL_PIECE_THRESHOLD
        dist_fn = None
        if self.policy.smoothing_enabled:
            if batched:
                # Workers need a picklable value, so the batch path fits
                # eagerly; the fit itself is (clock, view, attr)-cached
                # either way, so both paths see identical distributions.
                dist_fn = _ConstDist(self._partition_distribution(view_id, attr, domain, t))
            else:
                # Most candidate pieces fail the size/cover prefix before
                # the hit counting ever consults the MLE fit — defer the
                # fit until a piece actually reaches it with hits.
                dist_fn = lambda: self._partition_distribution(view_id, attr, domain, t)  # noqa: E731
        _, resident_sizes, resident_intervals = self._resident_snapshot(view_id, attr)
        parent_stats = self.stats.fragment(view_id, attr, parent)
        check = partial(
            _piece_refinement_passes,
            estimator=self._resident_profile(view_id, attr, resident, domain),
            resident_sizes=resident_sizes,
            resident_intervals=resident_intervals,
            domain=domain,
            cluster=self.cluster,
            realizing=(
                RealizingHitsIndex(parent_stats, parent, t, decay)
                if parent_stats is not None
                else None
            ),
            dist_fn=dist_fn,
            safety=self.policy.refinement_safety,
        )
        if batched:
            from repro.parallel.pool import batch_map

            return any(
                batch_map(
                    check,
                    hot,
                    self.parallel_workers,
                    min_items=_PARALLEL_PIECE_THRESHOLD,
                )
            )
        return any(check(piece) for piece in hot)

    # ------------------------------------------------------------------
    # Materialization (instrumented execution aftermath)
    # ------------------------------------------------------------------
    def _materialize_view(
        self,
        creation: ViewCreation,
        table: Table,
        t: float,
        ledger: CostLedger,
    ) -> tuple[bool, int]:
        vstats = self.stats.view(creation.view_id)
        vstats.set_actual_size(max(table.size_bytes, 1.0))
        controller = AdmissionController(
            self.pool, lambda e: self._entry_value(e, t), self.policy.admission_hysteresis
        )

        if not creation.attrs:
            candidate_value = self._view_admission_value(vstats, t)
            result = controller.admit_whole_view(creation.view_id, table, candidate_value)
            if result.admitted:
                # whole-view payload: already written at the job boundary;
                # keeping it costs one extra file creation.
                ledger.charge_write(0.0, nfiles=1)
                if not vstats.cost_is_actual:
                    vstats.set_actual_cost(self.rewriter.estimate_plan_cost(creation.plan).cost_s)
            return result.admitted, len(result.evicted)

        admitted_any = False
        evicted = 0
        total_files = 0
        for index, attr in enumerate(creation.attrs):
            self._maybe_crash("materialize")
            domain = self.domains(attr)
            intervals = self._creation_intervals(creation, attr, table, domain)
            column = table.column(attr)
            written_bytes = 0.0
            written_files = 0
            for interval in intervals:
                if self.pool.find_fragment(
                    FragmentKey(creation.view_id, attr, interval)
                ) is not None:
                    continue  # re-creation: only write missing fragments
                piece = table.filter(interval.mask(column))
                fstats = self.stats.ensure_fragment(creation.view_id, attr, interval)
                fstats.set_actual_size(piece.size_bytes)
                result = controller.admit_fragment(
                    creation.view_id,
                    attr,
                    interval,
                    piece,
                    self._fragment_admission_value(
                        creation.view_id, attr, interval, t
                    ),
                )
                evicted += len(result.evicted)
                if result.admitted:
                    admitted_any = True
                    written_bytes += piece.size_bytes
                    written_files += 1
            if written_files:
                if index == 0:
                    # The view's bytes were already written at the job
                    # boundary during execution (MapReduce materializes
                    # them anyway, §2); the primary partition only adds
                    # per-fragment file overheads.
                    ledger.charge_write(0.0, nfiles=written_files)
                else:
                    # A secondary partition on another attribute is a full
                    # re-sort and re-write of the view's bytes.
                    ledger.charge_write(written_bytes, nfiles=written_files)
            total_files += written_files
        if admitted_any and not vstats.cost_is_actual:
            vstats.set_actual_cost(
                self.rewriter.estimate_plan_cost(creation.plan).cost_s
                + self.cluster.write_elapsed(0.0, nfiles=max(total_files, 1))
            )
        return admitted_any, evicted

    def _creation_intervals(
        self, creation: ViewCreation, attr: str, table: Table, domain: Interval | None
    ) -> list[Interval]:
        if domain is None:
            return []
        if self.policy.partitioning == "equidepth":
            intervals = equidepth_intervals(
                table.column(attr), self.policy.equidepth_fragments, domain
            )
            self.tentative.replace_design(
                creation.view_id, attr, Fragmentation(attr, domain, tuple(intervals))
            )
            return intervals
        design = self.tentative.ensure(creation.view_id, attr, domain)
        intervals = list(design.intervals)
        if self.policy.bounds is None:
            return intervals
        column = table.column(attr)
        sizes = [table.filter(iv.mask(column)).size_bytes for iv in intervals]
        if design.is_disjoint():
            intervals = merge_undersized(intervals, sizes, self.policy.bounds.min_bytes)
            sizes = [table.filter(iv.mask(column)).size_bytes for iv in intervals]
        bounded: list[Interval] = []
        for interval, size in zip(intervals, sizes):
            bounded.extend(bound_fragment(interval, size, table.size_bytes, self.policy.bounds))
        bounded = sorted(set(bounded), key=sort_key)
        self.tentative.replace_design(
            creation.view_id, attr, Fragmentation(attr, domain, tuple(bounded))
        )
        return bounded

    # ------------------------------------------------------------------
    # Secondary partitions (§4: multiple partitions on different attributes)
    # ------------------------------------------------------------------
    def _extend_partitions(
        self, matches: list[ViewMatch], t: float, ledger: CostLedger
    ) -> tuple[int, int]:
        """Add a partition on a newly restricted attribute to a resident view.

        Unlike creation, no recomputation is needed: the view's rows are
        reconstructed from an existing partition (or the whole-view entry)
        and re-written sorted by the new attribute — a full read + write
        of the view, charged as such.
        """
        extended = 0
        evictions = 0
        seen: set[tuple[str, str]] = set()
        for match in matches:
            view_id = match.view_id
            if not self.pool.is_resident(view_id):
                continue
            resident_attrs = set(self.pool.partition_attrs(view_id))
            if not resident_attrs and self.pool.whole_view_entry(view_id) is None:
                continue
            for attr in match.attr_ranges:
                if attr in resident_attrs or (view_id, attr) in seen:
                    continue
                if attr not in self.tentative.attrs_of(view_id):
                    continue
                domain = self.domains(attr)
                if domain is None:
                    continue
                seen.add((view_id, attr))
                table = self._reconstruct_view(view_id, ledger)
                if table is None or attr not in table.schema:
                    continue
                creation = ViewCreation(
                    view_id, self.pool.definition(view_id).plan, (attr,)
                )
                intervals = self._creation_intervals(creation, attr, table, domain)
                column = table.column(attr)
                controller = AdmissionController(
                    self.pool,
                    lambda e: self._entry_value(e, t),
                    self.policy.admission_hysteresis,
                )
                written_bytes = 0.0
                written_files = 0
                for interval in intervals:
                    if self.pool.find_fragment(FragmentKey(view_id, attr, interval)) is not None:
                        continue
                    piece = table.filter(interval.mask(column))
                    fstats = self.stats.ensure_fragment(view_id, attr, interval)
                    fstats.set_actual_size(piece.size_bytes)
                    result = controller.admit_fragment(
                        view_id,
                        attr,
                        interval,
                        piece,
                        self._fragment_admission_value(view_id, attr, interval, t),
                    )
                    evictions += len(result.evicted)
                    if result.admitted:
                        written_bytes += piece.size_bytes
                        written_files += 1
                if written_files:
                    ledger.charge_write(written_bytes, nfiles=written_files)
                    extended += 1
        return extended, evictions

    def _reconstruct_view(self, view_id: str, ledger: CostLedger):
        """The view's full content from resident entries, or ``None``."""
        whole = self.pool.whole_view_entry(view_id)
        if whole is not None:
            ledger.charge_read(whole.size_bytes, nfiles=1)
            return self.pool.read_entry(whole.fragment_id, ledger)
        for attr in self.pool.partition_attrs(view_id):
            domain = self.domains(attr)
            if domain is None:
                continue
            entries = self.pool.fragments_of(view_id, attr)
            cover = self.rewriter.cover_cache.cover(view_id, attr, domain)
            if cover is None:
                continue
            by_interval = {e.key.interval: e for e in entries}
            pieces = []
            total = 0.0
            for covered in cover:
                entry = by_interval[covered.interval]
                total += entry.size_bytes
                piece = self.pool.read_entry(entry.fragment_id, ledger)
                if covered.clip is not None:
                    piece = piece.filter(covered.clip.mask(piece.column(attr)))
                pieces.append(piece)
            ledger.charge_read(total, nfiles=len(cover))
            return Table.concat_many(pieces)
        return None

    # ------------------------------------------------------------------
    # Fragment merging (§11 extension)
    # ------------------------------------------------------------------
    def _plan_merges(self, matches: list[ViewMatch], t: float) -> list[MergeCandidate]:
        """Coalescing candidates for partitions the current query touched."""
        merges: list[MergeCandidate] = []
        seen: set[tuple[str, str]] = set()
        max_bytes = None
        for match in matches:
            view_id = match.view_id
            if not self.pool.is_resident(view_id):
                continue
            vstats = self.stats.view(view_id)
            for attr in self.pool.partition_attrs(view_id):
                if (view_id, attr) in seen:
                    continue
                seen.add((view_id, attr))
                entries = self.pool.fragments_of(view_id, attr)
                stats_for = {
                    e.key.interval: self.stats.fragment(view_id, attr, e.key.interval)
                    for e in entries
                }
                stats_for = {k: v for k, v in stats_for.items() if v is not None}
                if self.policy.bounds is not None and vstats is not None:
                    max_bytes = self.policy.bounds.max_bytes(vstats.size_bytes)
                merges.extend(
                    find_merge_candidates(
                        entries,
                        stats_for,
                        t,
                        self.policy.effective_decay,
                        self.cluster,
                        threshold=self.policy.merge_threshold,
                        max_merged_bytes=max_bytes,
                        safety=self.policy.refinement_safety,
                    )
                )
        return merges

    def _apply_merge(self, merge: MergeCandidate, t: float, ledger: CostLedger) -> tuple[bool, int]:
        left = self.pool.find_fragment(FragmentKey(merge.view_id, merge.attr, merge.left))
        right = self.pool.find_fragment(FragmentKey(merge.view_id, merge.attr, merge.right))
        if left is None or right is None:
            return False, 0
        if self.pool.find_fragment(
            FragmentKey(merge.view_id, merge.attr, merge.merged)
        ) is not None:
            return False, 0
        left_table = self.pool.read_entry(left.fragment_id, ledger)
        right_table = self.pool.read_entry(right.fragment_id, ledger)
        ledger.charge_read(left.size_bytes, nfiles=1)
        ledger.charge_read(right.size_bytes, nfiles=1)
        merged_table = left_table.concat(right_table)
        # union the pair's hit history into the merged fragment's stats
        merged_stats = self.stats.ensure_fragment(merge.view_id, merge.attr, merge.merged)
        if not merged_stats.hit_times:
            events = set()
            for interval in (merge.left, merge.right):
                source = self.stats.fragment(merge.view_id, merge.attr, interval)
                if source is not None:
                    events.update(zip(source.hit_times, source.hit_ranges))
            for time, theta in sorted(events, key=lambda e: e[0]):
                merged_stats.record_hit(time, theta)
        merged_stats.set_actual_size(merged_table.size_bytes)
        self.pool.evict(left.fragment_id)
        self.pool.evict(right.fragment_id)
        # Same dangerous window as refinement: both halves gone, the
        # merged entry not yet admitted.
        self._maybe_crash("merge")
        controller = AdmissionController(
            self.pool, lambda e: self._entry_value(e, t), self.policy.admission_hysteresis
        )
        result = controller.admit_fragment(
            merge.view_id,
            merge.attr,
            merge.merged,
            merged_table,
            self._fragment_admission_value(merge.view_id, merge.attr, merge.merged, t),
        )
        if result.admitted:
            ledger.charge_write(merged_table.size_bytes, nfiles=1)
        # reflect the coalescing in the tentative design when it is disjoint
        domain = self.domains(merge.attr)
        design = self.tentative.get(merge.view_id, merge.attr)
        if domain is not None and design is not None:
            remaining = tuple(
                iv for iv in design.intervals if iv not in (merge.left, merge.right)
            ) + (merge.merged,)
            self.tentative.replace_design(
                merge.view_id, merge.attr, Fragmentation(merge.attr, domain, remaining)
            )
        return result.admitted, len(result.evicted)

    # ------------------------------------------------------------------
    # Refinement execution
    # ------------------------------------------------------------------
    def _apply_refinement(
        self, refinement: Refinement, t: float, ledger: CostLedger
    ) -> tuple[bool, int]:
        parent_entry = self.pool.find_fragment(
            FragmentKey(refinement.view_id, refinement.attr, refinement.parent)
        )
        if parent_entry is None:
            return False, 0  # parent evicted meanwhile: design-only refinement
        parent_table = self.pool.read_entry(parent_entry.fragment_id, ledger)
        ledger.charge_read(parent_entry.size_bytes, nfiles=1)
        column_name = refinement.attr
        controller = AdmissionController(
            self.pool, lambda e: self._entry_value(e, t), self.policy.admission_hysteresis
        )

        if refinement.overlap_pieces is not None:
            new_intervals = refinement.overlap_pieces
        else:
            self.pool.evict(parent_entry.fragment_id)
            new_intervals = refinement.split_pieces
        # The dangerous window: the parent is gone, its pieces not yet
        # admitted.  A crash here must roll back to the parent or the
        # configuration has a hole the fault-free run never had.
        self._maybe_crash("repartition")

        evicted = 0
        written_bytes = 0.0
        written_files = 0
        column = parent_table.column(column_name)
        for interval in new_intervals:
            if self.pool.find_fragment(
                FragmentKey(refinement.view_id, refinement.attr, interval)
            ) is not None:
                continue
            piece = parent_table.filter(interval.mask(column))
            fstats = self.stats.ensure_fragment(refinement.view_id, refinement.attr, interval)
            fstats.set_actual_size(piece.size_bytes)
            result = controller.admit_fragment(
                refinement.view_id,
                refinement.attr,
                interval,
                piece,
                self._fragment_admission_value(
                    refinement.view_id, refinement.attr, interval, t
                ),
            )
            evicted += len(result.evicted)
            if result.admitted:
                written_bytes += piece.size_bytes
                written_files += 1
        if written_files:
            ledger.charge_write(written_bytes, nfiles=written_files)
        return written_files > 0, evicted

    # ------------------------------------------------------------------
    # Entry values (admission and eviction ranking, §7.3 / §10.1)
    # ------------------------------------------------------------------
    def _partition_distribution(self, view_id: str, attr: str, domain: Interval, t: float):
        key = (self.clock, view_id, attr)
        if key not in self._dist_cache:
            self._dist_cache[key] = partition_distribution(
                self.stats,
                view_id,
                attr,
                domain,
                t,
                self.policy.effective_decay,
                self.policy.mle_parts,
            )
        return self._dist_cache[key]

    def _mean_fragment_width(self, view_id: str, attr: str, domain: Interval) -> float:
        """Mean resident fragment width — the density-normalization scale."""
        intervals = self.pool.intervals_of(view_id, attr) or self.tentative.intervals(view_id, attr)
        widths = [iv.intersect(domain).width for iv in intervals if iv.intersect(domain)]
        positive = [w for w in widths if w > 0]
        if not positive:
            return domain.width
        return sum(positive) / len(positive)

    def _view_admission_value(self, vstats: ViewStats, t: float) -> float:
        model = self.policy.value_model
        if model == "nectar":
            return nectar_view_value(vstats, t)
        if model == "nectar+":
            return nectar_plus_view_value(vstats, t)
        return view_value(vstats, t, self.policy.effective_decay)

    def _fragment_admission_value(
        self, view_id: str, attr: str, interval: Interval, t: float
    ) -> float:
        """Per-fragment value Φ(I) — the same metric eviction ranks by.

        Admission and eviction must speak the same currency (§7.3 ranks
        ALLCAND and resident fragments together): a cold fragment of a
        valuable view must not evict a hot fragment of another view.
        """
        vstats = self.stats.view(view_id)
        if vstats is None:
            return 0.0
        fstats = self.stats.ensure_fragment(view_id, attr, interval)
        model = self.policy.value_model
        if model == "nectar":
            return nectar_fragment_value(fstats, vstats, t)
        if model == "nectar+":
            return nectar_plus_fragment_value(fstats, vstats, t)
        hits_override = None
        if self.policy.smoothing_enabled:
            domain = self.domains(attr)
            if domain is not None:
                dist = self._partition_distribution(view_id, attr, domain, t)
                if dist is not None:
                    fitted, total = dist
                    hits_override = adjusted_hits_density(
                        interval, fitted, total, domain,
                        self._mean_fragment_width(view_id, attr, domain),
                    )
        return fragment_value(fstats, vstats, t, self.policy.effective_decay, hits_override)

    def _entry_value(self, entry, t: float) -> float:
        vstats = self.stats.view(entry.key.view_id)
        if vstats is None:
            return 0.0
        if entry.key.attr is None:
            return self._view_admission_value(vstats, t)
        fstats = self.stats.ensure_fragment(entry.key.view_id, entry.key.attr, entry.key.interval)
        if not fstats.size_is_actual:
            fstats.set_actual_size(entry.size_bytes)
        model = self.policy.value_model
        if model == "nectar":
            return nectar_fragment_value(fstats, vstats, t)
        if model == "nectar+":
            return nectar_plus_fragment_value(fstats, vstats, t)
        hits_override = None
        if self.policy.smoothing_enabled:
            domain = self.domains(entry.key.attr)
            if domain is not None:
                dist = self._partition_distribution(entry.key.view_id, entry.key.attr, domain, t)
                if dist is not None:
                    fitted, total = dist
                    hits_override = adjusted_hits_density(
                        entry.key.interval, fitted, total, domain,
                        self._mean_fragment_width(
                            entry.key.view_id, entry.key.attr, domain
                        ),
                    )
        return fragment_value(fstats, vstats, t, self.policy.effective_decay, hits_override)
