"""Benefit decay functions (§7.1).

The paper weights past cost savings by their age with a monotonically
decreasing function ``DEC(t_now, t) ∈ [0, 1]`` and times benefits out
entirely past a threshold ``t_max``:

    DEC(t_now, t) = 0            if t_now − t > t_max
                    t / t_now    otherwise

Time is the logical query sequence number (1-based), so ``t / t_now`` is
well defined and in (0, 1].  ``NoDecay`` (DEC ≡ 1) is used by the Nectar
and Nectar+ baselines, which do not decay benefits (§10.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


class Decay:
    """Interface: callable mapping (t_now, t) to a weight in [0, 1]."""

    def __call__(self, t_now: float, t: float) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ProportionalDecay(Decay):
    """The paper's decay: times out after ``t_max``, else weight ``t/t_now``."""

    t_max: float = 500.0

    def __call__(self, t_now: float, t: float) -> float:
        if t > t_now:
            raise ReproError(f"event time {t} is in the future of {t_now}")
        if t_now - t > self.t_max:
            return 0.0
        if t_now <= 0:
            return 1.0
        return max(0.0, t / t_now)


@dataclass(frozen=True)
class NoDecay(Decay):
    """DEC ≡ 1 — benefits never age (Nectar / Nectar+ behaviour)."""

    def __call__(self, t_now: float, t: float) -> float:
        if t > t_now:
            raise ReproError(f"event time {t} is in the future of {t_now}")
        return 1.0
