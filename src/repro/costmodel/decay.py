"""Benefit decay functions (§7.1).

The paper weights past cost savings by their age with a monotonically
decreasing function ``DEC(t_now, t) ∈ [0, 1]`` and times benefits out
entirely past a threshold ``t_max``:

    DEC(t_now, t) = 0            if t_now − t > t_max
                    t / t_now    otherwise

Time is the logical query sequence number (1-based), so ``t / t_now`` is
well defined and in (0, 1].  ``NoDecay`` (DEC ≡ 1) is used by the Nectar
and Nectar+ baselines, which do not decay benefits (§10.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


class Decay:
    """Interface: callable mapping (t_now, t) to a weight in [0, 1]."""

    def __call__(self, t_now: float, t: float) -> float:
        raise NotImplementedError

    def weights(self, t_now: float, times: np.ndarray) -> np.ndarray:
        """Vectorized decay: elementwise identical to calling ``self`` per time.

        The hot accumulation loops in :mod:`repro.costmodel.value` sum
        thousands of decayed weights per selection step; computing them as
        one array expression removes the per-event Python call while the
        IEEE operations (and therefore every bit of the result) stay the
        same as the scalar path.
        """
        return np.array([self(t_now, t) for t in times], dtype=np.float64)


@dataclass(frozen=True)
class ProportionalDecay(Decay):
    """The paper's decay: times out after ``t_max``, else weight ``t/t_now``."""

    t_max: float = 500.0

    def __call__(self, t_now: float, t: float) -> float:
        if t > t_now:
            raise ReproError(f"event time {t} is in the future of {t_now}")
        if t_now - t > self.t_max:
            return 0.0
        if t_now <= 0:
            return 1.0
        return max(0.0, t / t_now)

    def weights(self, t_now: float, times: np.ndarray) -> np.ndarray:
        arr = np.asarray(times, dtype=np.float64)
        if arr.size == 0:
            return arr
        if float(arr.max()) > t_now:
            raise ReproError(f"an event time is in the future of {t_now}")
        # Same branch structure as the scalar path: timeout first, then the
        # t/t_now ratio (plain IEEE division, bit-equal to the scalar's).
        base = np.maximum(0.0, arr / t_now) if t_now > 0 else np.ones_like(arr)
        return np.where(t_now - arr > self.t_max, 0.0, base)


@dataclass(frozen=True)
class NoDecay(Decay):
    """DEC ≡ 1 — benefits never age (Nectar / Nectar+ behaviour)."""

    def __call__(self, t_now: float, t: float) -> float:
        if t > t_now:
            raise ReproError(f"event time {t} is in the future of {t_now}")
        return 1.0

    def weights(self, t_now: float, times: np.ndarray) -> np.ndarray:
        arr = np.asarray(times, dtype=np.float64)
        if arr.size and float(arr.max()) > t_now:
            raise ReproError(f"an event time is in the future of {t_now}")
        return np.ones_like(arr)
