"""Size and creation-cost estimates for unmaterialized fragment candidates (§7.2).

Before a candidate fragment exists we estimate:

* its size, assuming values are uniformly distributed *within* each
  resident fragment it overlaps:

      S(I_cand) = Σ_{I ∩ I_cand ≠ ∅} (‖I_cand ∩ I‖ / ‖I‖) · S(I)

* its creation cost — to build it we must read every overlapping resident
  fragment, extract the matching rows, and write the new fragment:

      COST(I_cand) = w_write · S(I_cand) + Σ_{I ∩ I_cand ≠ ∅} w_read · S(I)

The read/write weights come from the simulated cluster, so estimates are
commensurable with the simulated elapsed times charged at execution.
"""

from __future__ import annotations

import numpy as np

from repro.engine.cost import ClusterSpec
from repro.partitioning.intervals import Interval


class ResidentProfile:
    """Vectorized size/cost estimator over one resident fragment list.

    A refinement evaluation estimates every hot piece of a candidate
    against the *same* resident fragments, so everything that does not
    depend on the piece is computed once: the interval bound keys for the
    overlap mask, each fragment's domain-clamped intersection bounds and
    width, and each fragment's one-file read cost.  :meth:`estimate` then
    reproduces :func:`estimate_fragment_size` and
    :func:`estimate_fragment_cost` term for term — the same overlapping
    fragments walked in the same order with the same IEEE products and
    left-to-right sums — so both estimates are bit-identical to the
    scalar pair (proven against them in tests/test_estimate.py).
    """

    def __init__(
        self,
        resident: list[tuple[Interval, float]],
        domain: Interval,
        cluster: ClusterSpec,
    ) -> None:
        self._cluster = cluster
        self._n = len(resident)
        # piece -> memoized §7.2 filter prefix (see _piece_refinement_passes);
        # shares this profile's lifetime, i.e. "resident set unchanged".
        self.piece_memo: dict = {}
        if not self._n:
            return
        ivs = [iv for iv, _ in resident]
        self._sizes = np.array([s for _, s in resident], dtype=np.float64)
        keys = np.array([iv._lkey + iv._ukey for iv in ivs], dtype=np.float64)
        self._lk, self._uk = keys[:, :2], keys[:, 2:]
        clamped = [iv.intersect(domain) for iv in ivs]
        self._res_none = np.array([c is None for c in clamped], dtype=bool)
        res_keys = np.array(
            [(0.0, 0.0, 0.0, 0.0) if c is None else c._lkey + c._ukey for c in clamped],
            dtype=np.float64,
        )
        self._res_lk, self._res_uk = res_keys[:, :2], res_keys[:, 2:]
        self._res_w = self._res_uk[:, 0] - self._res_lk[:, 0]
        self._read_cost = np.array(
            [cluster.read_elapsed(s, nfiles=1) for _, s in resident], dtype=np.float64
        )

    def estimate(self, piece: Interval) -> tuple[float, float]:
        """``(estimate_fragment_size(piece), estimate_fragment_cost(piece))``."""
        cluster = self._cluster
        if not self._n:
            return 0, cluster.write_elapsed(0, nfiles=1) + 0
        pl, pu = piece._lkey, piece._ukey
        lk, uk = self._lk, self._uk
        # piece.overlaps(iv): piece._lkey <= iv._ukey and iv._lkey <= piece._ukey.
        lo_ok = (lk[:, 0] < pu[0]) | ((lk[:, 0] == pu[0]) & (lk[:, 1] <= pu[1]))
        hi_ok = (pl[0] < uk[:, 0]) | ((pl[0] == uk[:, 0]) & (pl[1] <= uk[:, 1]))
        idx = np.flatnonzero(lo_ok & hi_ok)
        if not idx.size:
            return 0, cluster.write_elapsed(0, nfiles=1) + 0
        # candidate ∩ clamped-resident, as componentwise lexicographic
        # max/min over the (value, openness) bound keys.
        rlk, ruk = self._res_lk[idx], self._res_uk[idx]
        take_res = (rlk[:, 0] > pl[0]) | ((rlk[:, 0] == pl[0]) & (rlk[:, 1] >= pl[1]))
        lo0 = np.where(take_res, rlk[:, 0], pl[0])
        lo1 = np.where(take_res, rlk[:, 1], pl[1])
        take_res = (ruk[:, 0] < pu[0]) | ((ruk[:, 0] == pu[0]) & (ruk[:, 1] <= pu[1]))
        hi0 = np.where(take_res, ruk[:, 0], pu[0])
        hi1 = np.where(take_res, ruk[:, 1], pu[1])
        empty = (lo0 > hi0) | ((lo0 == hi0) & ((lo1 == 1.0) | (hi1 == -1.0)))
        res_w = self._res_w[idx]
        frac = np.minimum(1.0, (hi0 - lo0) / np.where(res_w > 0, res_w, 1.0))
        frac = np.where(res_w == 0, 1.0, frac)
        frac = np.where(empty | self._res_none[idx], 0.0, frac)
        size = sum((frac * self._sizes[idx]).tolist())
        read_s = sum(self._read_cost[idx].tolist())
        return size, cluster.write_elapsed(size, nfiles=1) + read_s


def _overlap_fraction(candidate: Interval, resident: Interval, domain: Interval) -> float:
    """‖I_cand ∩ I‖ / ‖I‖, with intervals clamped to the (bounded) domain."""
    res = resident.intersect(domain)
    if res is None:
        return 0.0
    inter = candidate.intersect(res)
    if inter is None:
        return 0.0
    if res.width == 0:
        return 1.0  # point fragment entirely inside the candidate
    return min(1.0, inter.width / res.width)


def estimate_fragment_size(
    candidate: Interval,
    resident: list[tuple[Interval, float]],
    domain: Interval,
) -> float:
    """Estimated ``S(I_cand)`` from overlapping resident fragment sizes."""
    return sum(
        _overlap_fraction(candidate, interval, domain) * size
        for interval, size in resident
        if candidate.overlaps(interval)
    )


def estimate_fragment_cost(
    candidate: Interval,
    resident: list[tuple[Interval, float]],
    domain: Interval,
    cluster: ClusterSpec,
) -> float:
    """Estimated ``COST(I_cand)`` in simulated seconds."""
    size = estimate_fragment_size(candidate, resident, domain)
    read_s = sum(
        cluster.read_elapsed(s, nfiles=1)
        for interval, s in resident
        if candidate.overlaps(interval)
    )
    return cluster.write_elapsed(size, nfiles=1) + read_s


def estimate_view_size(input_bytes: float, output_ratio: float = 1.0) -> float:
    """Rough pre-materialization size estimate for a view candidate.

    Used only until the first instrumented execution replaces it with the
    actual size (§7.1: "initially estimated when we first see this view").
    """
    return input_bytes * output_ratio
