"""Size and creation-cost estimates for unmaterialized fragment candidates (§7.2).

Before a candidate fragment exists we estimate:

* its size, assuming values are uniformly distributed *within* each
  resident fragment it overlaps:

      S(I_cand) = Σ_{I ∩ I_cand ≠ ∅} (‖I_cand ∩ I‖ / ‖I‖) · S(I)

* its creation cost — to build it we must read every overlapping resident
  fragment, extract the matching rows, and write the new fragment:

      COST(I_cand) = w_write · S(I_cand) + Σ_{I ∩ I_cand ≠ ∅} w_read · S(I)

The read/write weights come from the simulated cluster, so estimates are
commensurable with the simulated elapsed times charged at execution.
"""

from __future__ import annotations

from repro.engine.cost import ClusterSpec
from repro.partitioning.intervals import Interval


def _overlap_fraction(candidate: Interval, resident: Interval, domain: Interval) -> float:
    """‖I_cand ∩ I‖ / ‖I‖, with intervals clamped to the (bounded) domain."""
    res = resident.intersect(domain)
    if res is None:
        return 0.0
    inter = candidate.intersect(res)
    if inter is None:
        return 0.0
    if res.width == 0:
        return 1.0  # point fragment entirely inside the candidate
    return min(1.0, inter.width / res.width)


def estimate_fragment_size(
    candidate: Interval,
    resident: list[tuple[Interval, float]],
    domain: Interval,
) -> float:
    """Estimated ``S(I_cand)`` from overlapping resident fragment sizes."""
    return sum(
        _overlap_fraction(candidate, interval, domain) * size
        for interval, size in resident
        if candidate.overlaps(interval)
    )


def estimate_fragment_cost(
    candidate: Interval,
    resident: list[tuple[Interval, float]],
    domain: Interval,
    cluster: ClusterSpec,
) -> float:
    """Estimated ``COST(I_cand)`` in simulated seconds."""
    size = estimate_fragment_size(candidate, resident, domain)
    read_s = sum(
        cluster.read_elapsed(s, nfiles=1)
        for interval, s in resident
        if candidate.overlaps(interval)
    )
    return cluster.write_elapsed(size, nfiles=1) + read_s


def estimate_view_size(input_bytes: float, output_ratio: float = 1.0) -> float:
    """Rough pre-materialization size estimate for a view candidate.

    Used only until the first instrumented execution replaces it with the
    actual size (§7.1: "initially estimated when we first see this view").
    """
    return input_bytes * output_ratio
