"""Accumulated benefit ``B`` and value ``Φ`` for views and fragments (§7.1).

View value:

    B(V, t_now) = Σ_{Q used V at t} (COST(Q) − COST(Q/V)) · DEC(t_now, t)
    Φ(V, t_now) = COST(V) · B(V, t_now) / S(V)

Fragment value (benefit derives from the owning view):

    H(I)        = Σ_{Q used I at t} DEC(t_now, t)            (decayed hits)
    B(I, t_now) = H(I) · (S(I)/S(V)) · COST(V)
    Φ(I, t_now) = COST(V) · B(I, t_now) / S(I)

The *smoothed* fragment value replaces H(I) with the adjusted hits
``H_A(I)`` from the MLE model, which is what lets DeepSea keep
low-hit-count neighbours of hot fragments resident (§10.3).
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.decay import Decay
from repro.costmodel.mle import FittedNormal, adjusted_hits, fit_partition_distribution
from repro.costmodel.stats import FragmentStats, StatisticsStore, ViewStats
from repro.partitioning.intervals import Interval

_EPS_BYTES = 1.0


def view_benefit(view: ViewStats, t_now: float, decay: Decay) -> float:
    """Accumulated, decayed benefit ``B(V, t_now)``.

    Decay weights are computed vectorized and the products summed
    left-to-right over Python floats — the exact additions of the naive
    per-event loop, at array speed.  The result is memoized per
    ``(decay, t_now)`` on the stats object (selection ranks the same view
    many times within one step) and invalidated by ``record_benefit``.
    """
    memo = view._benefit_memo
    if memo is not None and memo[1] == t_now and memo[0] == decay:
        return memo[2]
    times, savings = view.events_arrays()
    if times.size == 0:
        value = 0.0
    else:
        value = sum((savings * decay.weights(t_now, times)).tolist())
    view._benefit_memo = (decay, t_now, value)
    return value


def view_value(view: ViewStats, t_now: float, decay: Decay) -> float:
    """``Φ(V, t_now)`` — the cost-benefit ratio used for ranking."""
    size = max(view.size_bytes, _EPS_BYTES)
    return view.creation_cost_s * view_benefit(view, t_now, decay) / size


def fragment_hits(fragment: FragmentStats, t_now: float, decay: Decay) -> float:
    """Decayed hit count ``H(I)`` (vectorized, bit-equal to the event loop).

    Memoized per ``(decay, t_now)`` on the stats object: one selection or
    refinement step evaluates the same fragment against many candidates at
    a fixed logical time.  ``record_hit`` invalidates the memo.
    """
    memo = fragment._hits_memo
    if memo is not None and memo[1] == t_now and memo[0] == decay:
        return memo[2]
    times = fragment.times_array()
    if times.size == 0:
        value = 0.0
    else:
        value = sum(decay.weights(t_now, times).tolist())
    fragment._hits_memo = (decay, t_now, value)
    return value


def fragment_weighted_hits(
    fragment: FragmentStats, piece: Interval, t_now: float, decay: Decay
) -> float:
    """Decayed hits weighted by how much of the ``piece`` each query wanted.

    General-purpose smoothing helper: a query with ``θ ⊇ piece`` counts
    fully, a partial overlap counts as ``‖θ ∩ piece‖ / ‖piece‖``.  Hits
    recorded without a range (domain-wide use) count fully.
    """
    total = 0.0
    width = piece.width
    for t, theta in zip(fragment.hit_times, fragment.hit_ranges):
        if theta is None:
            total += decay(t_now, t)
            continue
        overlap = theta.intersect(piece)
        if overlap is None:
            continue
        weight = 1.0 if width <= 0 else min(overlap.width / width, 1.0)
        total += weight * decay(t_now, t)
    return total


def realizing_hits(
    parent: FragmentStats,
    parent_interval: Interval,
    piece: Interval,
    t_now: float,
    decay: Decay,
) -> float:
    """Decayed hits that would *realize* a refinement's saving (§7.2).

    Splitting ``piece`` out of ``parent_interval`` saves a query the
    parent read only when everything the query needs from that parent
    fits inside the piece: ``θ ∩ parent ⊆ piece``.  A query needing more
    of the parent still reads it (or other siblings), so its hit must not
    back the piece's creation cost.  This is what keeps jittering range
    endpoints from carving an endless stream of boundary slivers.
    """
    total = 0.0
    for t, theta in zip(parent.hit_times, parent.hit_ranges):
        if theta is None:
            continue
        needed = theta.intersect(parent_interval)
        if needed is not None and piece.contains(needed):
            total += decay(t_now, t)
    return total


def fragment_benefit(
    fragment: FragmentStats,
    view: ViewStats,
    t_now: float,
    decay: Decay,
    hits_override: float | None = None,
) -> float:
    """``B(I, t_now)`` — optionally with MLE-adjusted hits."""
    hits = fragment_hits(fragment, t_now, decay) if hits_override is None else hits_override
    view_size = max(view.size_bytes, _EPS_BYTES)
    return hits * (fragment.size_bytes / view_size) * view.creation_cost_s


def fragment_value(
    fragment: FragmentStats,
    view: ViewStats,
    t_now: float,
    decay: Decay,
    hits_override: float | None = None,
) -> float:
    """``Φ(I, t_now)``."""
    benefit = fragment_benefit(fragment, view, t_now, decay, hits_override)
    size = max(fragment.size_bytes, _EPS_BYTES)
    return view.creation_cost_s * benefit / size


def partition_distribution(
    stats: StatisticsStore,
    view_id: str,
    attr: str,
    domain: Interval,
    t_now: float,
    decay: Decay,
    n_parts: int = 256,
) -> tuple[FittedNormal, float] | None:
    """The MLE-fitted access distribution of a partition and its H_total.

    Returns ``None`` when the partition has no hit mass yet (nothing to
    fit), in which case callers fall back to raw hits.
    """
    fragments = stats.fragments_for(view_id, attr)
    if not fragments:
        return None
    # One decay.weights call over all fragments' concatenated hit times
    # instead of one per fragment: the weight ops are elementwise, so each
    # fragment's slice is bitwise the array fragment_hits would compute,
    # and the per-fragment scalar sums are unchanged.
    arrs = [f.times_array() for f in fragments]
    nonempty = [a for a in arrs if a.size]
    if nonempty:
        w_all = decay.weights(t_now, np.concatenate(nonempty) if len(nonempty) > 1 else nonempty[0])
    raw = []
    off = 0
    for f, a in zip(fragments, arrs):
        if a.size == 0:
            value = 0.0
        else:
            value = sum(w_all[off : off + a.size].tolist())
            off += a.size
        f._hits_memo = (decay, t_now, value)
        raw.append((f.interval, value))
    # H_total is "the total number of queries that used at least one
    # fragment" (§7.1): count each hit timestamp once even when it touched
    # several (possibly overlapping) fragments.
    distinct_times = {t for f in fragments for t in f.hit_times}
    # np.fromiter walks the set in the same order the scalar sum did, so
    # the vectorized weights accumulate in the identical sequence.
    times = np.fromiter(distinct_times, dtype=np.float64, count=len(distinct_times))
    total = sum(decay.weights(t_now, times).tolist())
    if total <= 0:
        return None
    fitted: FittedNormal | None = fit_partition_distribution(domain, raw, n_parts)
    if fitted is None:
        return None
    return fitted, total


def partition_adjusted_hits(
    stats: StatisticsStore,
    view_id: str,
    attr: str,
    domain: Interval,
    t_now: float,
    decay: Decay,
    n_parts: int = 256,
) -> dict[Interval, float] | None:
    """MLE-smoothed hit counts for every tracked fragment of a partition."""
    fit = partition_distribution(stats, view_id, attr, domain, t_now, decay, n_parts)
    if fit is None:
        return None
    fitted, total = fit
    return {
        interval: adjusted_hits(interval, fitted, total, domain)
        for interval in stats.intervals_for(view_id, attr)
    }
