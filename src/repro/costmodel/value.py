"""Accumulated benefit ``B`` and value ``Φ`` for views and fragments (§7.1).

View value:

    B(V, t_now) = Σ_{Q used V at t} (COST(Q) − COST(Q/V)) · DEC(t_now, t)
    Φ(V, t_now) = COST(V) · B(V, t_now) / S(V)

Fragment value (benefit derives from the owning view):

    H(I)        = Σ_{Q used I at t} DEC(t_now, t)            (decayed hits)
    B(I, t_now) = H(I) · (S(I)/S(V)) · COST(V)
    Φ(I, t_now) = COST(V) · B(I, t_now) / S(I)

The *smoothed* fragment value replaces H(I) with the adjusted hits
``H_A(I)`` from the MLE model, which is what lets DeepSea keep
low-hit-count neighbours of hot fragments resident (§10.3).
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.decay import Decay
from repro.costmodel.mle import FittedNormal, adjusted_hits_many, fit_partition_bounds
from repro.costmodel.stats import FragmentStats, StatisticsStore, ViewStats
from repro.partitioning.intervals import Interval

_EPS_BYTES = 1.0


def view_benefit(view: ViewStats, t_now: float, decay: Decay) -> float:
    """Accumulated, decayed benefit ``B(V, t_now)``.

    Decay weights are computed vectorized and the products summed
    left-to-right over Python floats — the exact additions of the naive
    per-event loop, at array speed.  The result is memoized per
    ``(decay, t_now)`` on the stats object (selection ranks the same view
    many times within one step) and invalidated by ``record_benefit``.
    """
    memo = view._benefit_memo
    if memo is not None and memo[1] == t_now and memo[0] == decay:
        return memo[2]
    times, savings = view.events_arrays()
    if times.size == 0:
        value = 0.0
    else:
        value = sum((savings * decay.weights(t_now, times)).tolist())
    view._benefit_memo = (decay, t_now, value)
    return value


def view_value(view: ViewStats, t_now: float, decay: Decay) -> float:
    """``Φ(V, t_now)`` — the cost-benefit ratio used for ranking."""
    size = max(view.size_bytes, _EPS_BYTES)
    return view.creation_cost_s * view_benefit(view, t_now, decay) / size


def fragment_hits(fragment: FragmentStats, t_now: float, decay: Decay) -> float:
    """Decayed hit count ``H(I)`` (vectorized, bit-equal to the event loop).

    Memoized per ``(decay, t_now)`` on the stats object: one selection or
    refinement step evaluates the same fragment against many candidates at
    a fixed logical time.  ``record_hit`` invalidates the memo.
    """
    memo = fragment._hits_memo
    if memo is not None and memo[1] == t_now and memo[0] == decay:
        return memo[2]
    times = fragment.times_array()
    if times.size == 0:
        value = 0.0
    else:
        value = sum(decay.weights(t_now, times).tolist())
    fragment._hits_memo = (decay, t_now, value)
    return value


def fragment_weighted_hits(
    fragment: FragmentStats, piece: Interval, t_now: float, decay: Decay
) -> float:
    """Decayed hits weighted by how much of the ``piece`` each query wanted.

    General-purpose smoothing helper: a query with ``θ ⊇ piece`` counts
    fully, a partial overlap counts as ``‖θ ∩ piece‖ / ‖piece‖``.  Hits
    recorded without a range (domain-wide use) count fully.
    """
    total = 0.0
    width = piece.width
    for t, theta in zip(fragment.hit_times, fragment.hit_ranges):
        if theta is None:
            total += decay(t_now, t)
            continue
        overlap = theta.intersect(piece)
        if overlap is None:
            continue
        weight = 1.0 if width <= 0 else min(overlap.width / width, 1.0)
        total += weight * decay(t_now, t)
    return total


def realizing_hits(
    parent: FragmentStats,
    parent_interval: Interval,
    piece: Interval,
    t_now: float,
    decay: Decay,
) -> float:
    """Decayed hits that would *realize* a refinement's saving (§7.2).

    Splitting ``piece`` out of ``parent_interval`` saves a query the
    parent read only when everything the query needs from that parent
    fits inside the piece: ``θ ∩ parent ⊆ piece``.  A query needing more
    of the parent still reads it (or other siblings), so its hit must not
    back the piece's creation cost.  This is what keeps jittering range
    endpoints from carving an endless stream of boundary slivers.
    """
    total = 0.0
    for t, theta in zip(parent.hit_times, parent.hit_ranges):
        if theta is None:
            continue
        needed = theta.intersect(parent_interval)
        if needed is not None and piece.contains(needed):
            total += decay(t_now, t)
    return total


class RealizingHitsIndex:
    """Precomputed :func:`realizing_hits` over many pieces of one parent.

    One refinement evaluation asks for the realizing hits of every hot
    piece of a split candidate against the same parent fragment.  The
    per-hit work that does not depend on the piece — intersecting each
    recorded query range with the parent interval and decaying the hit
    timestamps — happens once here; :meth:`hits_for` is then a vectorized
    containment test plus a left-to-right sum of exactly the decayed
    weights the scalar loop would have added, in the same order.

    Most candidates have exactly one hot piece, so the index builds its
    arrays *lazily*: the first :meth:`hits_for` call runs the scalar loop
    (nothing to amortize), and only a second call — same parent, more
    pieces — pays the one-time array construction that makes every later
    piece a few vectorized compares.  Both paths produce bit-identical
    sums (tests/test_value_functions.py).
    """

    __slots__ = ("_parent", "_interval", "_t_now", "_decay", "_calls", "_weights", "_lk", "_uk")

    def __init__(
        self,
        parent: FragmentStats,
        parent_interval: Interval,
        t_now: float,
        decay: Decay,
    ) -> None:
        self._parent = parent
        self._interval = parent_interval
        self._t_now = t_now
        self._decay = decay
        self._calls = 0
        self._weights = None

    def _build(self) -> None:
        lower_keys: list[tuple] = []
        upper_keys: list[tuple] = []
        times: list[float] = []
        for t, theta in zip(self._parent.hit_times, self._parent.hit_ranges):
            if theta is None:
                continue
            needed = theta.intersect(self._interval)
            if needed is None:
                continue
            lower_keys.append(needed._lkey)
            upper_keys.append(needed._ukey)
            times.append(t)
        if times:
            self._weights = self._decay.weights(self._t_now, np.array(times, dtype=np.float64))
            self._lk = np.array(lower_keys, dtype=np.float64)
            self._uk = np.array(upper_keys, dtype=np.float64)
        else:
            self._weights = np.empty(0, dtype=np.float64)

    def hits_for(self, piece: Interval) -> float:
        """Bit-identical to ``realizing_hits(parent, parent_interval, piece, …)``."""
        self._calls += 1
        if self._calls == 1:
            return realizing_hits(self._parent, self._interval, piece, self._t_now, self._decay)
        if self._weights is None:
            self._build()
        if not self._weights.size:
            return 0.0
        pl, pu = piece._lkey, piece._ukey
        lk, uk = self._lk, self._uk
        # piece.contains(needed) as two lexicographic key comparisons:
        # piece._lkey <= needed._lkey and needed._ukey <= piece._ukey.
        lo_ok = (pl[0] < lk[:, 0]) | ((pl[0] == lk[:, 0]) & (pl[1] <= lk[:, 1]))
        hi_ok = (uk[:, 0] < pu[0]) | ((uk[:, 0] == pu[0]) & (uk[:, 1] <= pu[1]))
        return sum(self._weights[lo_ok & hi_ok].tolist())


def fragment_benefit(
    fragment: FragmentStats,
    view: ViewStats,
    t_now: float,
    decay: Decay,
    hits_override: float | None = None,
) -> float:
    """``B(I, t_now)`` — optionally with MLE-adjusted hits."""
    hits = fragment_hits(fragment, t_now, decay) if hits_override is None else hits_override
    view_size = max(view.size_bytes, _EPS_BYTES)
    return hits * (fragment.size_bytes / view_size) * view.creation_cost_s


def fragment_value(
    fragment: FragmentStats,
    view: ViewStats,
    t_now: float,
    decay: Decay,
    hits_override: float | None = None,
) -> float:
    """``Φ(I, t_now)``."""
    benefit = fragment_benefit(fragment, view, t_now, decay, hits_override)
    size = max(fragment.size_bytes, _EPS_BYTES)
    return view.creation_cost_s * benefit / size


def partition_distributions(
    stats: StatisticsStore,
    partitions: "list[tuple[str, str, Interval]]",
    t_now: float,
    decay: Decay,
    n_parts: int = 256,
) -> "dict[tuple[str, str], tuple[FittedNormal, float] | None]":
    """Batched MLE fits for several ``(view_id, attr, domain)`` partitions.

    One ``decay.weights`` call covers every partition's concatenated
    fragment hit times *and* distinct hit times, instead of two calls per
    partition: the weight ops are elementwise, so each partition's slices
    are bitwise the arrays the one-at-a-time path would compute, and the
    per-fragment / per-partition scalar sums accumulate the identical
    floats in the identical order.  A partition with no hit mass maps to
    ``None`` (nothing to fit; callers fall back to raw hits).
    """
    prepared = []
    segments = []
    for view_id, attr, domain in partitions:
        frags, lens, concat, distinct = stats.partition_times(view_id, attr)
        _, lk, uk = stats.partition_bounds(view_id, attr)
        prepared.append((view_id, attr, domain, frags, lens, concat, distinct, lk, uk))
        if concat.size:
            segments.append(concat)
        if distinct.size:
            segments.append(distinct)
    if segments:
        w_all = decay.weights(
            t_now, np.concatenate(segments) if len(segments) > 1 else segments[0]
        )
    results: "dict[tuple[str, str], tuple[FittedNormal, float] | None]" = {}
    off = 0
    for view_id, attr, domain, frags, lens, concat, distinct, lk, uk in prepared:
        if not frags:
            results[(view_id, attr)] = None
            continue
        w_list = w_all[off : off + concat.size].tolist() if concat.size else []
        off += concat.size
        values = []
        frag_off = 0
        for f, n in zip(frags, lens):
            if n == 0:
                value = 0.0
            else:
                value = sum(w_list[frag_off : frag_off + n])
                frag_off += n
            f._hits_memo = (decay, t_now, value)
            values.append(value)
        # H_total is "the total number of queries that used at least one
        # fragment" (§7.1): count each hit timestamp once even when it
        # touched several (possibly overlapping) fragments.
        if distinct.size:
            total = sum(w_all[off : off + distinct.size].tolist())
            off += distinct.size
        else:
            total = 0.0
        if total <= 0:
            results[(view_id, attr)] = None
            continue
        # The cached bound-key arrays parallel ``frags`` element for
        # element, so this is fit_partition_distribution(domain,
        # [(f.interval, v) ...], n_parts) without re-walking the intervals.
        fitted: FittedNormal | None = fit_partition_bounds(
            domain, lk, uk, np.asarray(values, dtype=np.float64), n_parts
        )
        results[(view_id, attr)] = None if fitted is None else (fitted, total)
    return results


def partition_distribution(
    stats: StatisticsStore,
    view_id: str,
    attr: str,
    domain: Interval,
    t_now: float,
    decay: Decay,
    n_parts: int = 256,
) -> tuple[FittedNormal, float] | None:
    """The MLE-fitted access distribution of a partition and its H_total.

    Returns ``None`` when the partition has no hit mass yet (nothing to
    fit), in which case callers fall back to raw hits.
    """
    fits = partition_distributions(stats, [(view_id, attr, domain)], t_now, decay, n_parts)
    return fits[(view_id, attr)]


def partition_adjusted_hits(
    stats: StatisticsStore,
    view_id: str,
    attr: str,
    domain: Interval,
    t_now: float,
    decay: Decay,
    n_parts: int = 256,
) -> dict[Interval, float] | None:
    """MLE-smoothed hit counts for every tracked fragment of a partition."""
    fit = partition_distribution(stats, view_id, attr, domain, t_now, decay, n_parts)
    if fit is None:
        return None
    fitted, total = fit
    intervals = stats.intervals_for(view_id, attr)
    return dict(zip(intervals, adjusted_hits_many(intervals, fitted, total, domain)))
