"""Accumulated benefit ``B`` and value ``Φ`` for views and fragments (§7.1).

View value:

    B(V, t_now) = Σ_{Q used V at t} (COST(Q) − COST(Q/V)) · DEC(t_now, t)
    Φ(V, t_now) = COST(V) · B(V, t_now) / S(V)

Fragment value (benefit derives from the owning view):

    H(I)        = Σ_{Q used I at t} DEC(t_now, t)            (decayed hits)
    B(I, t_now) = H(I) · (S(I)/S(V)) · COST(V)
    Φ(I, t_now) = COST(V) · B(I, t_now) / S(I)

The *smoothed* fragment value replaces H(I) with the adjusted hits
``H_A(I)`` from the MLE model, which is what lets DeepSea keep
low-hit-count neighbours of hot fragments resident (§10.3).
"""

from __future__ import annotations

from repro.costmodel.decay import Decay
from repro.costmodel.mle import FittedNormal, adjusted_hits, fit_partition_distribution
from repro.costmodel.stats import FragmentStats, StatisticsStore, ViewStats
from repro.partitioning.intervals import Interval

_EPS_BYTES = 1.0


def view_benefit(view: ViewStats, t_now: float, decay: Decay) -> float:
    """Accumulated, decayed benefit ``B(V, t_now)``."""
    return sum(ev.saving_s * decay(t_now, ev.t) for ev in view.benefit_events)


def view_value(view: ViewStats, t_now: float, decay: Decay) -> float:
    """``Φ(V, t_now)`` — the cost-benefit ratio used for ranking."""
    size = max(view.size_bytes, _EPS_BYTES)
    return view.creation_cost_s * view_benefit(view, t_now, decay) / size


def fragment_hits(fragment: FragmentStats, t_now: float, decay: Decay) -> float:
    """Decayed hit count ``H(I)``."""
    return sum(decay(t_now, t) for t in fragment.hit_times)


def fragment_weighted_hits(
    fragment: FragmentStats, piece: Interval, t_now: float, decay: Decay
) -> float:
    """Decayed hits weighted by how much of the ``piece`` each query wanted.

    General-purpose smoothing helper: a query with ``θ ⊇ piece`` counts
    fully, a partial overlap counts as ``‖θ ∩ piece‖ / ‖piece‖``.  Hits
    recorded without a range (domain-wide use) count fully.
    """
    total = 0.0
    width = piece.width
    for t, theta in zip(fragment.hit_times, fragment.hit_ranges):
        if theta is None:
            total += decay(t_now, t)
            continue
        overlap = theta.intersect(piece)
        if overlap is None:
            continue
        weight = 1.0 if width <= 0 else min(overlap.width / width, 1.0)
        total += weight * decay(t_now, t)
    return total


def realizing_hits(
    parent: FragmentStats,
    parent_interval: Interval,
    piece: Interval,
    t_now: float,
    decay: Decay,
) -> float:
    """Decayed hits that would *realize* a refinement's saving (§7.2).

    Splitting ``piece`` out of ``parent_interval`` saves a query the
    parent read only when everything the query needs from that parent
    fits inside the piece: ``θ ∩ parent ⊆ piece``.  A query needing more
    of the parent still reads it (or other siblings), so its hit must not
    back the piece's creation cost.  This is what keeps jittering range
    endpoints from carving an endless stream of boundary slivers.
    """
    total = 0.0
    for t, theta in zip(parent.hit_times, parent.hit_ranges):
        if theta is None:
            continue
        needed = theta.intersect(parent_interval)
        if needed is not None and piece.contains(needed):
            total += decay(t_now, t)
    return total


def fragment_benefit(
    fragment: FragmentStats,
    view: ViewStats,
    t_now: float,
    decay: Decay,
    hits_override: float | None = None,
) -> float:
    """``B(I, t_now)`` — optionally with MLE-adjusted hits."""
    hits = fragment_hits(fragment, t_now, decay) if hits_override is None else hits_override
    view_size = max(view.size_bytes, _EPS_BYTES)
    return hits * (fragment.size_bytes / view_size) * view.creation_cost_s


def fragment_value(
    fragment: FragmentStats,
    view: ViewStats,
    t_now: float,
    decay: Decay,
    hits_override: float | None = None,
) -> float:
    """``Φ(I, t_now)``."""
    benefit = fragment_benefit(fragment, view, t_now, decay, hits_override)
    size = max(fragment.size_bytes, _EPS_BYTES)
    return view.creation_cost_s * benefit / size


def partition_distribution(
    stats: StatisticsStore,
    view_id: str,
    attr: str,
    domain: Interval,
    t_now: float,
    decay: Decay,
    n_parts: int = 256,
) -> tuple[FittedNormal, float] | None:
    """The MLE-fitted access distribution of a partition and its H_total.

    Returns ``None`` when the partition has no hit mass yet (nothing to
    fit), in which case callers fall back to raw hits.
    """
    fragments = stats.fragments_for(view_id, attr)
    if not fragments:
        return None
    raw = [(f.interval, fragment_hits(f, t_now, decay)) for f in fragments]
    # H_total is "the total number of queries that used at least one
    # fragment" (§7.1): count each hit timestamp once even when it touched
    # several (possibly overlapping) fragments.
    distinct_times = {t for f in fragments for t in f.hit_times}
    total = sum(decay(t_now, t) for t in distinct_times)
    if total <= 0:
        return None
    fitted: FittedNormal | None = fit_partition_distribution(domain, raw, n_parts)
    if fitted is None:
        return None
    return fitted, total


def partition_adjusted_hits(
    stats: StatisticsStore,
    view_id: str,
    attr: str,
    domain: Interval,
    t_now: float,
    decay: Decay,
    n_parts: int = 256,
) -> dict[Interval, float] | None:
    """MLE-smoothed hit counts for every tracked fragment of a partition."""
    fit = partition_distribution(stats, view_id, attr, domain, t_now, decay, n_parts)
    if fit is None:
        return None
    fitted, total = fit
    return {
        interval: adjusted_hits(interval, fitted, total, domain)
        for interval in stats.intervals_for(view_id, attr)
    }
