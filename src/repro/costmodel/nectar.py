"""Nectar and Nectar+ value models (§10.1 baselines).

Nectar [Gunda et al., OSDI'10] ranks cached results by a cost-to-benefit
ratio without accumulated benefit.  The paper extends it to *Nectar+* by
adding DeepSea's accumulated (but undecayed) benefit:

    N(V)  = Σ_{Q used V at t} (COST(Q) − COST(Q/V))          (no decay)
    N+(V) = COST(V) · N(V) / (S(V) · ΔT)

where ``ΔT`` is the time elapsed since the last access to V.  Plain
Nectar drops the ``N(V)`` factor:

    N(V)_plain = COST(V) / (S(V) · ΔT)

Fragment variants follow §7.1's formulas with the decay removed.
"""

from __future__ import annotations

from repro.costmodel.stats import FragmentStats, ViewStats

_EPS_BYTES = 1.0
_EPS_DT = 1.0


def _delta_t(last_access_t: float, t_now: float) -> float:
    return max(t_now - last_access_t, _EPS_DT)


def nectar_view_value(view: ViewStats, t_now: float) -> float:
    """Plain Nectar: no accumulated-benefit factor."""
    size = max(view.size_bytes, _EPS_BYTES)
    return view.creation_cost_s / (size * _delta_t(view.last_access_t, t_now))


def nectar_plus_view_value(view: ViewStats, t_now: float) -> float:
    """Nectar+: accumulated undecayed benefit over size and staleness."""
    accumulated = sum(ev.saving_s for ev in view.benefit_events)
    size = max(view.size_bytes, _EPS_BYTES)
    return view.creation_cost_s * accumulated / (size * _delta_t(view.last_access_t, t_now))


def nectar_fragment_value(fragment: FragmentStats, view: ViewStats, t_now: float) -> float:
    """Plain Nectar for fragments: recreate-cost over size and staleness."""
    size = max(fragment.size_bytes, _EPS_BYTES)
    return view.creation_cost_s / (size * _delta_t(fragment.last_access_t, t_now))


def nectar_plus_fragment_value(fragment: FragmentStats, view: ViewStats, t_now: float) -> float:
    """Nectar+ for fragments: §7.1 formulas with DEC removed."""
    hits = float(len(fragment.hit_times))
    view_size = max(view.size_bytes, _EPS_BYTES)
    benefit = hits * (fragment.size_bytes / view_size) * view.creation_cost_s
    size = max(fragment.size_bytes, _EPS_BYTES)
    return view.creation_cost_s * benefit / (size * _delta_t(fragment.last_access_t, t_now))
