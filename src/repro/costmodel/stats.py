"""View and fragment statistics — the ``STAT`` structure of Definition 5.

``STAT = (VSTAT, PSTAT, Σ)``: a set of views, a mapping from (view,
attribute) to fragment intervals, and per-view / per-fragment bookkeeping.
Statistics are kept for every candidate *whether or not it is resident in
the pool* — that is what lets DeepSea estimate the value of re-admitting
an evicted fragment, and lets partition candidates accumulate evidence
before being materialized.

Per view (§7.1): size ``S(V)``, creation cost ``COST(V)``, the timestamped
benefit events ``(T, B)``, and the last access time (used by the Nectar
baselines' ``ΔT``).  Sizes and costs start as estimates and are replaced
with actuals after the first materialization.

Per fragment: size ``S(I)`` and hit timestamps ``T(I)``; cost and benefit
derive from the owning view (§7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.partitioning.intervals import Interval, sort_key
from repro.query.algebra import Plan


@dataclass(frozen=True)
class BenefitEvent:
    """One potential use of a view: at time ``t`` it would have saved ``saving_s``."""

    t: float
    saving_s: float


@dataclass
class ViewStats:
    """Σ entry for one view (candidate or resident)."""

    view_id: str
    plan: Plan
    size_bytes: float = 0.0
    creation_cost_s: float = 0.0
    size_is_actual: bool = False
    cost_is_actual: bool = False
    benefit_events: list[BenefitEvent] = field(default_factory=list)
    last_access_t: float = 0.0
    _events_arr: "tuple[np.ndarray, np.ndarray] | None" = field(
        default=None, init=False, repr=False, compare=False
    )
    # (decay, t_now, value) memo for view_benefit — see repro.costmodel.value
    _benefit_memo: "tuple | None" = field(default=None, init=False, repr=False, compare=False)

    def record_benefit(self, t: float, saving_s: float) -> None:
        self.benefit_events.append(BenefitEvent(t, saving_s))
        self.last_access_t = max(self.last_access_t, t)
        self._events_arr = None
        self._benefit_memo = None

    def events_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """(times, savings) as float arrays, cached until the next event."""
        if self._events_arr is None:
            self._events_arr = (
                np.array([ev.t for ev in self.benefit_events], dtype=np.float64),
                np.array([ev.saving_s for ev in self.benefit_events], dtype=np.float64),
            )
        return self._events_arr

    def set_actual_size(self, size_bytes: float) -> None:
        self.size_bytes = size_bytes
        self.size_is_actual = True

    def set_actual_cost(self, cost_s: float) -> None:
        self.creation_cost_s = cost_s
        self.cost_is_actual = True


@dataclass
class FragmentStats:
    """Σ entry for one fragment (candidate or resident).

    ``hit_ranges`` parallels ``hit_times``: the selection interval of the
    query that produced the hit (``None`` when the query had no range on
    the partition attribute).  The refinement filter uses it to count only
    the queries a candidate piece would fully serve.
    """

    view_id: str
    attr: str
    interval: Interval
    size_bytes: float = 0.0
    size_is_actual: bool = False
    hit_times: list[float] = field(default_factory=list)
    hit_ranges: list["Interval | None"] = field(default_factory=list)
    last_access_t: float = 0.0
    _times_arr: "np.ndarray | None" = field(default=None, init=False, repr=False, compare=False)
    # (decay, t_now, value) memo for fragment_hits — see repro.costmodel.value
    _hits_memo: "tuple | None" = field(default=None, init=False, repr=False, compare=False)

    def record_hit(self, t: float, theta: "Interval | None" = None) -> None:
        self.hit_times.append(t)
        self.hit_ranges.append(theta)
        self.last_access_t = max(self.last_access_t, t)
        self._times_arr = None
        self._hits_memo = None

    def times_array(self) -> np.ndarray:
        """``hit_times`` as a float array, cached until the next hit."""
        if self._times_arr is None:
            self._times_arr = np.array(self.hit_times, dtype=np.float64)
        return self._times_arr

    def set_actual_size(self, size_bytes: float) -> None:
        self.size_bytes = size_bytes
        self.size_is_actual = True


FragmentStatsKey = tuple[str, str, Interval]


class StatisticsStore:
    """In-memory STAT: keyed views and fragments, resident or not."""

    def __init__(self) -> None:
        self._views: dict[str, ViewStats] = {}
        self._fragments: dict[FragmentStatsKey, FragmentStats] = {}
        # (view_id, attr) -> set of intervals with stats (PSTAT(V, A))
        self._partitions: dict[tuple[str, str], list[Interval]] = {}
        # (view_id, attr) -> (interval snapshot, lower keys [n,2], upper
        # keys [n,2]) for the vectorized overlap scan; rebuilt lazily after
        # any partition-list mutation.
        self._bounds_cache: dict[tuple[str, str], tuple] = {}

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def view(self, view_id: str) -> ViewStats | None:
        return self._views.get(view_id)

    def ensure_view(self, view_id: str, plan: Plan) -> ViewStats:
        stats = self._views.get(view_id)
        if stats is None:
            stats = ViewStats(view_id, plan)
            self._views[view_id] = stats
        return stats

    def all_views(self) -> list[ViewStats]:
        return list(self._views.values())

    # ------------------------------------------------------------------
    # Fragments
    # ------------------------------------------------------------------
    def fragment(self, view_id: str, attr: str, interval: Interval) -> FragmentStats | None:
        return self._fragments.get((view_id, attr, interval))

    def ensure_fragment(self, view_id: str, attr: str, interval: Interval) -> FragmentStats:
        key = (view_id, attr, interval)
        stats = self._fragments.get(key)
        if stats is None:
            stats = FragmentStats(view_id, attr, interval)
            self._fragments[key] = stats
            ivs = self._partitions.setdefault((view_id, attr), [])
            ivs.append(interval)
            ivs.sort(key=sort_key)
            self._bounds_cache.pop((view_id, attr), None)
        return stats

    def drop_fragment(self, view_id: str, attr: str, interval: Interval) -> None:
        """Forget a fragment's statistics (used when a split retires a parent)."""
        key = (view_id, attr, interval)
        if key in self._fragments:
            del self._fragments[key]
            self._partitions[(view_id, attr)].remove(interval)
            self._bounds_cache.pop((view_id, attr), None)

    def intervals_for(self, view_id: str, attr: str) -> list[Interval]:
        """PSTAT(V, A): all fragment intervals tracked for this partition."""
        return list(self._partitions.get((view_id, attr), []))

    def overlapping_intervals(self, view_id: str, attr: str, theta: Interval) -> list[Interval]:
        """The tracked intervals of PSTAT(V, A) that overlap ``theta``.

        Equivalent to ``[iv for iv in intervals_for(...) if
        iv.overlaps(theta)]`` — two intervals overlap exactly when each
        one's lower key is lexicographically ≤ the other's upper key — but
        evaluated as four vectorized comparisons over cached per-partition
        bound arrays instead of one ``intersect`` allocation per interval.
        The bound keys are ``(value, openness flag)`` pairs whose float
        comparisons match Python tuple comparison bit for bit, and
        ``flatnonzero`` walks the same sorted order as the scalar loop.
        """
        key = (view_id, attr)
        cached = self._bounds_cache.get(key)
        if cached is None:
            ivs = list(self._partitions.get(key, []))
            lk = np.array([iv._lower_key() for iv in ivs], dtype=np.float64)
            uk = np.array([iv._upper_key() for iv in ivs], dtype=np.float64)
            cached = (ivs, lk.reshape(len(ivs), 2), uk.reshape(len(ivs), 2))
            self._bounds_cache[key] = cached
        ivs, lk, uk = cached
        if not ivs:
            return []
        tl, tu = theta._lower_key(), theta._upper_key()
        lo_ok = (lk[:, 0] < tu[0]) | ((lk[:, 0] == tu[0]) & (lk[:, 1] <= tu[1]))
        hi_ok = (tl[0] < uk[:, 0]) | ((tl[0] == uk[:, 0]) & (tl[1] <= uk[:, 1]))
        return [ivs[i] for i in np.flatnonzero(lo_ok & hi_ok)]

    def fragments_for(self, view_id: str, attr: str) -> list[FragmentStats]:
        return [self._fragments[(view_id, attr, iv)] for iv in self.intervals_for(view_id, attr)]

    def partition_attrs(self, view_id: str) -> list[str]:
        return sorted(a for (v, a) in self._partitions if v == view_id)

    def all_fragments(self) -> list[FragmentStats]:
        return list(self._fragments.values())
