"""View and fragment statistics — the ``STAT`` structure of Definition 5.

``STAT = (VSTAT, PSTAT, Σ)``: a set of views, a mapping from (view,
attribute) to fragment intervals, and per-view / per-fragment bookkeeping.
Statistics are kept for every candidate *whether or not it is resident in
the pool* — that is what lets DeepSea estimate the value of re-admitting
an evicted fragment, and lets partition candidates accumulate evidence
before being materialized.

Per view (§7.1): size ``S(V)``, creation cost ``COST(V)``, the timestamped
benefit events ``(T, B)``, and the last access time (used by the Nectar
baselines' ``ΔT``).  Sizes and costs start as estimates and are replaced
with actuals after the first materialization.

Per fragment: size ``S(I)`` and hit timestamps ``T(I)``; cost and benefit
derive from the owning view (§7.1).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from itertools import chain

import numpy as np

from repro.partitioning.intervals import Interval, sort_key
from repro.query.algebra import Plan


@dataclass(frozen=True)
class BenefitEvent:
    """One potential use of a view: at time ``t`` it would have saved ``saving_s``."""

    t: float
    saving_s: float


@dataclass
class ViewStats:
    """Σ entry for one view (candidate or resident)."""

    view_id: str
    plan: Plan
    size_bytes: float = 0.0
    creation_cost_s: float = 0.0
    size_is_actual: bool = False
    cost_is_actual: bool = False
    benefit_events: list[BenefitEvent] = field(default_factory=list)
    last_access_t: float = 0.0
    _events_arr: "tuple[np.ndarray, np.ndarray] | None" = field(
        default=None, init=False, repr=False, compare=False
    )
    # (decay, t_now, value) memo for view_benefit — see repro.costmodel.value
    _benefit_memo: "tuple | None" = field(default=None, init=False, repr=False, compare=False)

    def record_benefit(self, t: float, saving_s: float) -> None:
        self.benefit_events.append(BenefitEvent(t, saving_s))
        self.last_access_t = max(self.last_access_t, t)
        self._events_arr = None
        self._benefit_memo = None

    def events_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """(times, savings) as float arrays, cached until the next event."""
        if self._events_arr is None:
            self._events_arr = (
                np.array([ev.t for ev in self.benefit_events], dtype=np.float64),
                np.array([ev.saving_s for ev in self.benefit_events], dtype=np.float64),
            )
        return self._events_arr

    def set_actual_size(self, size_bytes: float) -> None:
        self.size_bytes = size_bytes
        self.size_is_actual = True

    def set_actual_cost(self, cost_s: float) -> None:
        self.creation_cost_s = cost_s
        self.cost_is_actual = True


@dataclass
class FragmentStats:
    """Σ entry for one fragment (candidate or resident).

    ``hit_ranges`` parallels ``hit_times``: the selection interval of the
    query that produced the hit (``None`` when the query had no range on
    the partition attribute).  The refinement filter uses it to count only
    the queries a candidate piece would fully serve.
    """

    view_id: str
    attr: str
    interval: Interval
    size_bytes: float = 0.0
    size_is_actual: bool = False
    hit_times: list[float] = field(default_factory=list)
    hit_ranges: list["Interval | None"] = field(default_factory=list)
    last_access_t: float = 0.0
    _times_arr: "np.ndarray | None" = field(default=None, init=False, repr=False, compare=False)
    # (decay, t_now, value) memo for fragment_hits — see repro.costmodel.value
    _hits_memo: "tuple | None" = field(default=None, init=False, repr=False, compare=False)
    # Shared per-partition revision cell (a one-element list owned by the
    # StatisticsStore), bumped on every recorded hit; lets
    # StatisticsStore.partition_times validate its per-partition cache
    # with one integer compare instead of walking the fragment list.
    _hit_cell: "list[int] | None" = field(default=None, init=False, repr=False, compare=False)

    def record_hit(self, t: float, theta: "Interval | None" = None) -> None:
        self.hit_times.append(t)
        self.hit_ranges.append(theta)
        self.last_access_t = max(self.last_access_t, t)
        self._times_arr = None
        self._hits_memo = None
        if self._hit_cell is not None:
            self._hit_cell[0] += 1

    def times_array(self) -> np.ndarray:
        """``hit_times`` as a float array, cached until the next hit."""
        if self._times_arr is None:
            self._times_arr = np.array(self.hit_times, dtype=np.float64)
        return self._times_arr

    def inherit_hits(self, parent: "FragmentStats", piece: Interval) -> None:
        """Copy the parent's hits whose recorded range touches ``piece``.

        Hits without a range are copied wholesale.  Equivalent to calling
        :meth:`record_hit` per qualifying hit, with the cache resets and
        the revision-cell bump applied once per batch instead of per hit
        (split inheritance replays whole histories, so the per-call
        overhead was measurable).
        """
        pl, pu = piece._lkey, piece._ukey
        times, ranges = self.hit_times, self.hit_ranges
        last = self.last_access_t
        added = 0
        for t, theta in zip(parent.hit_times, parent.hit_ranges):
            if theta is None or (theta._lkey <= pu and pl <= theta._ukey):
                times.append(t)
                ranges.append(theta)
                if t > last:
                    last = t
                added += 1
        if added:
            self.last_access_t = last
            self._times_arr = None
            self._hits_memo = None
            if self._hit_cell is not None:
                self._hit_cell[0] += added

    def set_actual_size(self, size_bytes: float) -> None:
        self.size_bytes = size_bytes
        self.size_is_actual = True


FragmentStatsKey = tuple[str, str, Interval]


def _insert_bound_row(arr: np.ndarray, pos: int, row: tuple[float, int]) -> np.ndarray:
    """``np.insert(arr, pos, row, axis=0)`` without its Python overhead.

    The bound-key arrays are patched on nearly every query (candidate
    tracking), and ``np.insert``'s generic argument handling cost more
    than the copy itself.  Same float64 rows in the same order.
    """
    n = arr.shape[0]
    out = np.empty((n + 1, 2), dtype=np.float64)
    out[:pos] = arr[:pos]
    out[pos] = row
    out[pos + 1 :] = arr[pos:]
    return out


class StatisticsStore:
    """In-memory STAT: keyed views and fragments, resident or not."""

    def __init__(self) -> None:
        self._views: dict[str, ViewStats] = {}
        self._fragments: dict[FragmentStatsKey, FragmentStats] = {}
        # (view_id, attr) -> set of intervals with stats (PSTAT(V, A))
        self._partitions: dict[tuple[str, str], list[Interval]] = {}
        # (view_id, attr) -> (interval snapshot, lower keys [n,2], upper
        # keys [n,2]) for the vectorized overlap scan; rebuilt lazily after
        # any partition-list mutation.
        self._bounds_cache: dict[tuple[str, str], tuple] = {}
        # (view_id, attr) -> (hit revision, fragment snapshot, per-fragment
        # hit-time arrays, their concatenation, distinct hit times) for the
        # batched decay pass in costmodel.value; validated against the
        # partition's shared hit-revision cell, and popped whenever the
        # fragment list itself changes.
        self._times_cache: dict[tuple[str, str], tuple] = {}
        # (view_id, attr) -> [hit revision]; shared with every FragmentStats
        # of the partition so record_hit can bump it without knowing the store.
        self._hit_cells: dict[tuple[str, str], list[int]] = {}
        # (view_id, attr) -> fragment-stats list in partition order; popped
        # alongside the bounds cache on any fragment-list mutation.
        self._frags_cache: dict[tuple[str, str], list[FragmentStats]] = {}

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def view(self, view_id: str) -> ViewStats | None:
        return self._views.get(view_id)

    def ensure_view(self, view_id: str, plan: Plan) -> ViewStats:
        stats = self._views.get(view_id)
        if stats is None:
            stats = ViewStats(view_id, plan)
            self._views[view_id] = stats
        return stats

    def all_views(self) -> list[ViewStats]:
        return list(self._views.values())

    # ------------------------------------------------------------------
    # Fragments
    # ------------------------------------------------------------------
    def fragment(self, view_id: str, attr: str, interval: Interval) -> FragmentStats | None:
        return self._fragments.get((view_id, attr, interval))

    def ensure_fragment(self, view_id: str, attr: str, interval: Interval) -> FragmentStats:
        key = (view_id, attr, interval)
        stats = self._fragments.get(key)
        if stats is None:
            stats = FragmentStats(view_id, attr, interval)
            stats._hit_cell = self._hit_cells.setdefault((view_id, attr), [0])
            self._fragments[key] = stats
            ivs = self._partitions.setdefault((view_id, attr), [])
            # sort_key is injective over the distinct intervals of a
            # partition, so a bisected insert lands exactly where a full
            # re-sort would place it — at O(n) instead of O(n log n).
            pos = bisect_right(ivs, sort_key(interval), key=sort_key)
            ivs.insert(pos, interval)
            # Patch the derived caches in place of popping them: candidate
            # tracking adds a fragment on most queries, and the from-scratch
            # rebuilds (Python listcomps over every interval) dominated the
            # warm profile.  Each patched entry is element-for-element what
            # a rebuild would produce — the new interval's bound keys slot
            # in at the same bisected position, and a fragment with no hits
            # contributes nothing to the concatenated or distinct hit
            # times.  Fresh copies replace the cached tuples so snapshots
            # already handed to callers stay internally consistent.
            cache_key = (view_id, attr)
            bounds = self._bounds_cache.get(cache_key)
            if bounds is not None:
                civs, lk, uk = bounds
                civs = civs.copy()
                civs.insert(pos, interval)
                self._bounds_cache[cache_key] = (
                    civs,
                    _insert_bound_row(lk, pos, interval._lower_key()),
                    _insert_bound_row(uk, pos, interval._upper_key()),
                )
            frags = self._frags_cache.get(cache_key)
            if frags is not None:
                frags = frags.copy()
                frags.insert(pos, stats)
                self._frags_cache[cache_key] = frags
            times = self._times_cache.get(cache_key)
            if times is not None:
                rev, tfrags, lens, concat, distinct = times
                tfrags = tfrags.copy()
                tfrags.insert(pos, stats)
                lens = lens.copy()
                lens.insert(pos, 0)
                self._times_cache[cache_key] = (rev, tfrags, lens, concat, distinct)
        return stats

    def drop_fragment(self, view_id: str, attr: str, interval: Interval) -> None:
        """Forget a fragment's statistics (used when a split retires a parent)."""
        key = (view_id, attr, interval)
        if key in self._fragments:
            del self._fragments[key]
            self._partitions[(view_id, attr)].remove(interval)
            self._bounds_cache.pop((view_id, attr), None)
            self._times_cache.pop((view_id, attr), None)
            self._frags_cache.pop((view_id, attr), None)

    def intervals_for(self, view_id: str, attr: str) -> list[Interval]:
        """PSTAT(V, A): all fragment intervals tracked for this partition."""
        return list(self._partitions.get((view_id, attr), []))

    def partition_bounds(
        self, view_id: str, attr: str
    ) -> "tuple[list[Interval], np.ndarray, np.ndarray]":
        """PSTAT(V, A) with its ``[n, 2]`` lower/upper bound-key arrays.

        The arrays parallel :meth:`intervals_for` (and therefore
        :meth:`fragments_for`) element for element; they change only when
        the fragment list itself does, so the cache entry survives hit
        recording and is popped by ``ensure_fragment``/``drop_fragment``.
        """
        key = (view_id, attr)
        cached = self._bounds_cache.get(key)
        if cached is None:
            ivs = list(self._partitions.get(key, []))
            lk = np.array([iv._lower_key() for iv in ivs], dtype=np.float64)
            uk = np.array([iv._upper_key() for iv in ivs], dtype=np.float64)
            cached = (ivs, lk.reshape(len(ivs), 2), uk.reshape(len(ivs), 2))
            self._bounds_cache[key] = cached
        return cached

    def overlapping_intervals(self, view_id: str, attr: str, theta: Interval) -> list[Interval]:
        """The tracked intervals of PSTAT(V, A) that overlap ``theta``.

        Equivalent to ``[iv for iv in intervals_for(...) if
        iv.overlaps(theta)]`` — two intervals overlap exactly when each
        one's lower key is lexicographically ≤ the other's upper key — but
        evaluated as four vectorized comparisons over cached per-partition
        bound arrays instead of one ``intersect`` allocation per interval.
        The bound keys are ``(value, openness flag)`` pairs whose float
        comparisons match Python tuple comparison bit for bit, and
        ``flatnonzero`` walks the same sorted order as the scalar loop.
        """
        ivs, lk, uk = self.partition_bounds(view_id, attr)
        if not ivs:
            return []
        tl, tu = theta._lower_key(), theta._upper_key()
        lo_ok = (lk[:, 0] < tu[0]) | ((lk[:, 0] == tu[0]) & (lk[:, 1] <= tu[1]))
        hi_ok = (tl[0] < uk[:, 0]) | ((tl[0] == uk[:, 0]) & (tl[1] <= uk[:, 1]))
        return [ivs[i] for i in np.flatnonzero(lo_ok & hi_ok)]

    def record_overlapping_hits(self, view_id: str, attr: str, t: float, theta: Interval) -> None:
        """Record one hit on every PSTAT(V, A) fragment overlapping ``theta``.

        Equivalent to ``for iv in overlapping_intervals(...):
        fragment(...).record_hit(t, theta)`` but resolved through the
        cached aligned fragment list and applied inline — one overlap
        scan, no per-fragment key hashing, same appended state bit for
        bit.  This is the per-query statistics write (§8.4), hot enough
        that the scalar loop showed up in profiles.
        """
        ivs, lk, uk = self.partition_bounds(view_id, attr)
        if not ivs:
            return
        tl, tu = theta._lower_key(), theta._upper_key()
        lo_ok = (lk[:, 0] < tu[0]) | ((lk[:, 0] == tu[0]) & (lk[:, 1] <= tu[1]))
        hi_ok = (tl[0] < uk[:, 0]) | ((tl[0] == uk[:, 0]) & (tl[1] <= uk[:, 1]))
        fragments = self.fragments_for(view_id, attr)
        for i in np.flatnonzero(lo_ok & hi_ok):
            stats = fragments[i]
            stats.hit_times.append(t)
            stats.hit_ranges.append(theta)
            if t > stats.last_access_t:
                stats.last_access_t = t
            stats._times_arr = None
            stats._hits_memo = None
            if stats._hit_cell is not None:
                stats._hit_cell[0] += 1

    def fragments_for(self, view_id: str, attr: str) -> list[FragmentStats]:
        """Fragment stats in :meth:`intervals_for` order (shared list — don't mutate).

        Cached with the same lifetime as the bound arrays: the list changes
        only when a fragment is added or dropped, never on recorded hits.
        """
        key = (view_id, attr)
        frags = self._frags_cache.get(key)
        if frags is None:
            frags = [
                self._fragments[(view_id, attr, iv)] for iv in self._partitions.get(key, ())
            ]
            self._frags_cache[key] = frags
        return frags

    def partition_times(
        self, view_id: str, attr: str
    ) -> "tuple[list[FragmentStats], list[int], np.ndarray, np.ndarray]":
        """Hit-time arrays of one partition, cached across selection steps.

        Returns ``(fragments, per-fragment hit counts, concatenated hit
        times, distinct times)``.  The MLE pass re-reads these arrays on
        every query while the underlying hit lists change only when a hit
        is recorded, so the concatenation and the distinct-time set are
        rebuilt only when the partition's shared hit-revision cell has
        moved (fragment-list changes pop the entry outright).  The
        distinct-time array is materialized from a freshly built set
        exactly as the uncached path did: ``set.update`` feeds the same
        insertion sequence as the element-at-a-time comprehension, and a
        set fed the same insertion sequence iterates in the same order,
        so the cached array is element-for-element the one a rebuild
        would give.
        """
        key = (view_id, attr)
        cell = self._hit_cells.get(key)
        rev = cell[0] if cell is not None else 0
        cached = self._times_cache.get(key)
        if cached is not None and cached[0] == rev:
            return cached[1], cached[2], cached[3], cached[4]
        frags = self.fragments_for(view_id, attr)
        lens = [len(f.hit_times) for f in frags]
        # One C loop builds the concatenation — the same floats in the same
        # fragment order as concatenating per-fragment arrays.
        concat = np.fromiter(
            chain.from_iterable(f.hit_times for f in frags), dtype=np.float64, count=sum(lens)
        )
        distinct_set: set[float] = set()
        for f in frags:
            distinct_set.update(f.hit_times)
        distinct = np.fromiter(distinct_set, dtype=np.float64, count=len(distinct_set))
        self._times_cache[key] = (rev, frags, lens, concat, distinct)
        return frags, lens, concat, distinct

    def partition_attrs(self, view_id: str) -> list[str]:
        return sorted(a for (v, a) in self._partitions if v == view_id)

    def all_fragments(self) -> list[FragmentStats]:
        return list(self._fragments.values())
