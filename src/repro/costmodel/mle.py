"""Probabilistic fragment-benefit model (§7.1).

Fragments of a partition are correlated: ranges near a hot spot are more
likely to be hit soon than ranges far from it.  The paper models hits as
samples from a normal distribution:

1. quantize the attribute domain into equal-size *parts*;
2. spread each fragment's (decayed) hit count evenly over the parts it
   contains, giving per-part hit weights ``H(p_i)``;
3. fit a normal distribution to the weighted part midpoints with the
   maximum-likelihood estimators (weighted mean, adjusted variance);
4. compute the *adjusted hits* of fragment ``I = [l, u]`` as
   ``H_A(I) = H_total · (F(u) − F(l))`` under the fitted CDF ``F``.

The paper requires parts that are never partially contained in a
fragment.  With arbitrary real boundaries an exact equal-size grid that
aligns with every fragment boundary may not exist, so we use a fine grid
(default 256 parts, configurable) and assign each part to the fragments
containing its midpoint — an arbitrarily good approximation as the grid
refines, and exact whenever fragment boundaries lie on the grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.partitioning.intervals import Interval


@dataclass(frozen=True)
class FittedNormal:
    """MLE-fitted normal distribution over an attribute domain."""

    mu: float
    sigma2: float

    @property
    def sigma(self) -> float:
        return math.sqrt(self.sigma2)

    def cdf(self, x: float) -> float:
        if math.isinf(x):
            return 0.0 if x < 0 else 1.0
        if self.sigma == 0.0:
            return 0.0 if x < self.mu else 1.0
        z = (x - self.mu) / (self.sigma * math.sqrt(2.0))
        return 0.5 * (1.0 + math.erf(z))

    def mass(self, interval: Interval) -> float:
        """P(x ∈ interval) — endpoint openness is measure-zero, ignored."""
        return max(0.0, self.cdf(interval.hi) - self.cdf(interval.lo))

    def mass_many(self, intervals: list[Interval]) -> list[float]:
        """``[mass(iv) for iv in intervals]`` with the CDF shared per endpoint.

        Adjacent fragments tile the domain, so one fragment's upper bound
        is usually the next one's lower bound; memoizing the CDF per unique
        endpoint roughly halves the ``erf`` calls.  The per-interval
        subtraction uses the exact CDF values :meth:`mass` would compute,
        so every returned float is bit-identical to the scalar loop.
        """
        memo: dict[float, float] = {}
        out = []
        for interval in intervals:
            lo, hi = interval.lo, interval.hi
            c_hi = memo.get(hi)
            if c_hi is None:
                c_hi = memo[hi] = self.cdf(hi)
            c_lo = memo.get(lo)
            if c_lo is None:
                c_lo = memo[lo] = self.cdf(lo)
            out.append(max(0.0, c_hi - c_lo))
        return out


# Midpoint grids keyed by (domain.lo, domain.hi, n_parts): the MLE pass
# re-derives the same few grids thousands of times per workload, and the
# grid depends only on the domain bounds.  Entries are tiny (n_parts
# floats) and the number of distinct domains is the number of partition
# attributes, so the cache never needs eviction.
_MIDS_CACHE: dict[tuple[float, float, int], tuple[list[float], np.ndarray]] = {}


def _mids_for(domain: Interval, n_parts: int) -> tuple[list[float], np.ndarray]:
    key = (domain.lo, domain.hi, n_parts)
    cached = _MIDS_CACHE.get(key)
    if cached is None:
        width = domain.width / n_parts
        mids = [domain.lo + (i + 0.5) * width for i in range(n_parts)]
        cached = _MIDS_CACHE[key] = (mids, np.asarray(mids, dtype=np.float64))
    return cached


def part_midpoints(domain: Interval, n_parts: int) -> list[float]:
    """Midpoints of ``n_parts`` equal-size parts of the domain."""
    return list(_mids_for(domain, n_parts)[0])


def spread_hits(
    domain: Interval,
    fragments: list[tuple[Interval, float]],
    n_parts: int = 256,
) -> tuple[list[float], list[float]]:
    """Distribute fragment hit weights over equal-size parts.

    ``fragments`` pairs each interval with its (decayed) hit count H(I).
    Each fragment's hits are split evenly over the parts whose midpoint it
    contains: ``H(p_i) = Σ_{I ∋ p_i} H(I) / #I`` (Definition of H(p) in
    §7.1).  Returns (part midpoints, per-part hit weights).
    """
    mids, mids_arr = _mids_for(domain, n_parts)
    if not fragments:
        return mids, [0.0] * n_parts
    keys = np.array([iv._lkey + iv._ukey for iv, _ in fragments], dtype=np.float64)
    hits_arr = np.fromiter((h for _, h in fragments), dtype=np.float64, count=len(fragments))
    weights = _spread_hits_arrays(
        domain,
        mids_arr,
        keys[:, 0],
        keys[:, 2],
        keys[:, 1] == 1.0,
        keys[:, 3] == -1.0,
        hits_arr,
    )
    return mids, weights.tolist()


def _spread_hits_arrays(
    domain: Interval,
    mids_arr: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
    lo_open: np.ndarray,
    hi_open: np.ndarray,
    hits_arr: np.ndarray,
) -> np.ndarray:
    """:func:`spread_hits` over prebuilt per-fragment bound arrays.

    ``lows``/``highs`` carry ±inf for unbounded ends (the interval bound
    keys), so the searchsorted runs need no None special case.  Callers
    holding cached bound arrays (``StatisticsStore.partition_bounds``)
    skip the per-call Python attribute walk entirely.
    """
    weights = np.zeros(mids_arr.size, dtype=np.float64)
    keep = np.flatnonzero(hits_arr > 0)
    if keep.size == 0:
        return weights
    if keep.size != hits_arr.size:
        hits_arr = hits_arr[keep]
        lows, highs = lows[keep], highs[keep]
        lo_open, hi_open = lo_open[keep], hi_open[keep]
    # The midpoints are sorted, so the parts a fragment contains form a
    # contiguous run mapped by binary search: searchsorted side "left" is
    # bisect_left and "right" is bisect_right, reproducing the open/closed
    # endpoint logic of contains_point exactly.  Unbounded ends need no
    # special case — ±inf searches to 0 / n_parts on either side.
    start = np.where(
        lo_open,
        np.searchsorted(mids_arr, lows, side="right"),
        np.searchsorted(mids_arr, lows, side="left"),
    )
    end = np.where(
        hi_open,
        np.searchsorted(mids_arr, highs, side="left"),
        np.searchsorted(mids_arr, highs, side="right"),
    )
    # Degenerate fragments narrower than a part charge the nearest part;
    # argmin matches min()'s first-of-ties choice.  Rare, so the handful
    # of them keep the original scalar computation verbatim.
    for i in np.flatnonzero(end <= start):
        anchor = min(max(lows[i], domain.lo), domain.hi)
        idx = int(np.argmin(np.abs(mids_arr - anchor)))
        start[i], end[i] = idx, idx + 1
    # Scatter each fragment's equal share over its part run.  np.add.at is
    # unbuffered and applies the additions in index order, so every part
    # accumulates its shares in the same fragment order with the same IEEE
    # additions as the naive `weights[start:end] += share` loop — results
    # are bit-identical (tests/test_mle.py proves this against the scalar
    # oracle).
    lengths = end - start
    shares = hits_arr / lengths
    total = int(lengths.sum())
    flat_idx = (
        np.arange(total, dtype=np.int64)
        - np.repeat(np.cumsum(lengths) - lengths, lengths)
        + np.repeat(start, lengths)
    )
    np.add.at(weights, flat_idx, np.repeat(shares, lengths))
    return weights


def fit_normal(midpoints: list[float], weights: list[float]) -> FittedNormal | None:
    """Weighted MLE fit of a normal distribution.

    ``μ̂ = Σ wᵢxᵢ / Σwᵢ`` and the adjusted sample variance
    ``σ̂² = Σ wᵢ(xᵢ − μ̂)² / (Σwᵢ − 1)`` (the paper uses n−1 because the
    number of observed fragments is small).  Returns ``None`` when there
    is no hit mass to fit.
    """
    return _fit_normal_arrays(
        np.asarray(midpoints, dtype=np.float64),
        np.asarray(weights, dtype=np.float64),
        midpoints,
    )


def _fit_normal_arrays(
    x: np.ndarray, w: np.ndarray, midpoints: "list[float]"
) -> FittedNormal | None:
    total = sum(w.tolist())
    if total <= 0:
        return None
    # The products are computed elementwise (identical IEEE multiplies)
    # and summed left-to-right over Python floats — the exact additions of
    # the scalar generator expressions.  np.float_power routes through the
    # same libm pow as the scalar `** 2` (np.power's integer fast path
    # multiplies instead, which differs in the last ulp on this libm).
    mu = sum((w * x).tolist()) / total
    ss = sum((w * np.float_power(x - mu, 2.0)).tolist())
    denom = total - 1.0
    if denom <= 0:
        # A single observation: fall back to the biased estimator, and give
        # a degenerate fit a tiny positive variance so the CDF is usable.
        denom = total
    sigma2 = ss / denom
    if sigma2 <= 0:
        span = (max(midpoints) - min(midpoints)) if len(midpoints) > 1 else 1.0
        sigma2 = max((span / max(len(midpoints), 1)) ** 2, 1e-12)
    return FittedNormal(mu, sigma2)


def fit_partition_distribution(
    domain: Interval,
    fragments: list[tuple[Interval, float]],
    n_parts: int = 256,
) -> FittedNormal | None:
    """End-to-end: spread hits over parts, then MLE-fit a normal."""
    mids, weights = spread_hits(domain, fragments, n_parts)
    return fit_normal(mids, weights)


def fit_partition_bounds(
    domain: Interval,
    lower_keys: np.ndarray,
    upper_keys: np.ndarray,
    hits_arr: np.ndarray,
    n_parts: int = 256,
) -> FittedNormal | None:
    """:func:`fit_partition_distribution` over cached ``(value, flag)`` bound keys.

    ``lower_keys``/``upper_keys`` are the ``[n, 2]`` per-fragment bound-key
    arrays maintained by ``StatisticsStore.partition_bounds`` (column 0 the
    bound value with ±inf for unbounded ends, column 1 the openness flag),
    ``hits_arr`` the per-fragment decayed hit counts in the same order.
    Same floats, same order, no per-call interval-object walk — results
    are bit-identical to the fragment-list path (tests/test_mle.py).
    """
    mids, mids_arr = _mids_for(domain, n_parts)
    weights = _spread_hits_arrays(
        domain,
        mids_arr,
        lower_keys[:, 0],
        upper_keys[:, 0],
        lower_keys[:, 1] == 1.0,
        upper_keys[:, 1] == -1.0,
        hits_arr,
    )
    return _fit_normal_arrays(mids_arr, weights, mids)


def adjusted_hits(
    interval: Interval, fitted: FittedNormal, total_hits: float, domain: Interval
) -> float:
    """``H_A(I) = H_total · (P(x ≤ u) − P(x ≤ l))`` (§7.1).

    The interval is clamped to the domain so unbounded statistical
    fragments receive the mass of their in-domain portion.
    """
    clamped = interval.intersect(domain)
    if clamped is None:
        return 0.0
    return total_hits * fitted.mass(clamped)


def adjusted_hits_many(
    intervals: list[Interval],
    fitted: FittedNormal,
    total_hits: float,
    domain: Interval,
) -> list[float]:
    """``[adjusted_hits(iv, ...) for iv in intervals]`` with a shared CDF memo.

    Clamping and the final products match :func:`adjusted_hits` operation
    for operation; only the per-endpoint ``erf`` evaluations are shared
    (see :meth:`FittedNormal.mass_many`), so results are bit-identical.
    """
    clamped = [iv.intersect(domain) for iv in intervals]
    masses = fitted.mass_many([c for c in clamped if c is not None])
    out = []
    it = iter(masses)
    for c in clamped:
        out.append(0.0 if c is None else total_hits * next(it))
    return out


def adjusted_hits_density(
    interval: Interval,
    fitted: FittedNormal,
    total_hits: float,
    domain: Interval,
    reference_width: float,
) -> float:
    """Width-normalized adjusted hits: ``H_A(I) · reference_width / ‖I‖``.

    The paper's ``H_A`` grows with fragment width (a wide fragment captures
    more probability mass), and the width terms of ``Φ(I)`` cancel — so
    ranking by raw ``H_A`` lets whale fragments crowd small hot ones out of
    a bounded pool.  Normalizing by width turns the mass into an access
    *density* at the fragment's location, measured in hits per
    ``reference_width`` (typically the partition's mean fragment width):
    equal-width fragments rank exactly as in the paper, while fragments of
    different widths compete fairly per byte.
    """
    clamped = interval.intersect(domain)
    if clamped is None:
        return 0.0
    hits = total_hits * fitted.mass(clamped)
    width = clamped.width
    if width <= 0 or reference_width <= 0:
        return hits
    return hits * min(reference_width / width, 1e6)
