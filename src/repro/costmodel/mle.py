"""Probabilistic fragment-benefit model (§7.1).

Fragments of a partition are correlated: ranges near a hot spot are more
likely to be hit soon than ranges far from it.  The paper models hits as
samples from a normal distribution:

1. quantize the attribute domain into equal-size *parts*;
2. spread each fragment's (decayed) hit count evenly over the parts it
   contains, giving per-part hit weights ``H(p_i)``;
3. fit a normal distribution to the weighted part midpoints with the
   maximum-likelihood estimators (weighted mean, adjusted variance);
4. compute the *adjusted hits* of fragment ``I = [l, u]`` as
   ``H_A(I) = H_total · (F(u) − F(l))`` under the fitted CDF ``F``.

The paper requires parts that are never partially contained in a
fragment.  With arbitrary real boundaries an exact equal-size grid that
aligns with every fragment boundary may not exist, so we use a fine grid
(default 256 parts, configurable) and assign each part to the fragments
containing its midpoint — an arbitrarily good approximation as the grid
refines, and exact whenever fragment boundaries lie on the grid.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass

import numpy as np

from repro.partitioning.intervals import Interval


@dataclass(frozen=True)
class FittedNormal:
    """MLE-fitted normal distribution over an attribute domain."""

    mu: float
    sigma2: float

    @property
    def sigma(self) -> float:
        return math.sqrt(self.sigma2)

    def cdf(self, x: float) -> float:
        if math.isinf(x):
            return 0.0 if x < 0 else 1.0
        if self.sigma == 0.0:
            return 0.0 if x < self.mu else 1.0
        z = (x - self.mu) / (self.sigma * math.sqrt(2.0))
        return 0.5 * (1.0 + math.erf(z))

    def mass(self, interval: Interval) -> float:
        """P(x ∈ interval) — endpoint openness is measure-zero, ignored."""
        return max(0.0, self.cdf(interval.hi) - self.cdf(interval.lo))


def part_midpoints(domain: Interval, n_parts: int) -> list[float]:
    """Midpoints of ``n_parts`` equal-size parts of the domain."""
    width = domain.width / n_parts
    return [domain.lo + (i + 0.5) * width for i in range(n_parts)]


def spread_hits(
    domain: Interval,
    fragments: list[tuple[Interval, float]],
    n_parts: int = 256,
) -> tuple[list[float], list[float]]:
    """Distribute fragment hit weights over equal-size parts.

    ``fragments`` pairs each interval with its (decayed) hit count H(I).
    Each fragment's hits are split evenly over the parts whose midpoint it
    contains: ``H(p_i) = Σ_{I ∋ p_i} H(I) / #I`` (Definition of H(p) in
    §7.1).  Returns (part midpoints, per-part hit weights).
    """
    mids = part_midpoints(domain, n_parts)
    # The midpoints are sorted, so the parts a fragment contains form a
    # contiguous run: two binary searches replace the per-part membership
    # test (the bisect sides reproduce the open/closed endpoint logic of
    # contains_point exactly).  Weights accumulate per part in the same
    # fragment order with the same IEEE additions as the naive loop, so
    # results are bit-identical.
    mids_arr = np.asarray(mids, dtype=np.float64)
    weights = np.zeros(n_parts, dtype=np.float64)
    for interval, hits in fragments:
        if hits <= 0:
            continue
        low, high = interval.low, interval.high
        start = (
            0
            if low is None
            else bisect_right(mids, low) if interval.low_open else bisect_left(mids, low)
        )
        end = (
            n_parts
            if high is None
            else bisect_left(mids, high) if interval.high_open else bisect_right(mids, high)
        )
        if end <= start:
            # Degenerate fragment narrower than a part: charge the nearest part.
            anchor = min(max(interval.lo, domain.lo), domain.hi)
            # argmin matches min()'s first-of-ties choice.
            idx = int(np.argmin(np.abs(mids_arr - anchor)))
            start, end = idx, idx + 1
        share = hits / (end - start)
        weights[start:end] += share
    return mids, weights.tolist()


def fit_normal(midpoints: list[float], weights: list[float]) -> FittedNormal | None:
    """Weighted MLE fit of a normal distribution.

    ``μ̂ = Σ wᵢxᵢ / Σwᵢ`` and the adjusted sample variance
    ``σ̂² = Σ wᵢ(xᵢ − μ̂)² / (Σwᵢ − 1)`` (the paper uses n−1 because the
    number of observed fragments is small).  Returns ``None`` when there
    is no hit mass to fit.
    """
    total = sum(weights)
    if total <= 0:
        return None
    mu = sum(w * x for x, w in zip(midpoints, weights)) / total
    ss = sum(w * (x - mu) ** 2 for x, w in zip(midpoints, weights))
    denom = total - 1.0
    if denom <= 0:
        # A single observation: fall back to the biased estimator, and give
        # a degenerate fit a tiny positive variance so the CDF is usable.
        denom = total
    sigma2 = ss / denom
    if sigma2 <= 0:
        span = (max(midpoints) - min(midpoints)) if len(midpoints) > 1 else 1.0
        sigma2 = max((span / max(len(midpoints), 1)) ** 2, 1e-12)
    return FittedNormal(mu, sigma2)


def fit_partition_distribution(
    domain: Interval,
    fragments: list[tuple[Interval, float]],
    n_parts: int = 256,
) -> FittedNormal | None:
    """End-to-end: spread hits over parts, then MLE-fit a normal."""
    mids, weights = spread_hits(domain, fragments, n_parts)
    return fit_normal(mids, weights)


def adjusted_hits(
    interval: Interval, fitted: FittedNormal, total_hits: float, domain: Interval
) -> float:
    """``H_A(I) = H_total · (P(x ≤ u) − P(x ≤ l))`` (§7.1).

    The interval is clamped to the domain so unbounded statistical
    fragments receive the mass of their in-domain portion.
    """
    clamped = interval.intersect(domain)
    if clamped is None:
        return 0.0
    return total_hits * fitted.mass(clamped)


def adjusted_hits_density(
    interval: Interval,
    fitted: FittedNormal,
    total_hits: float,
    domain: Interval,
    reference_width: float,
) -> float:
    """Width-normalized adjusted hits: ``H_A(I) · reference_width / ‖I‖``.

    The paper's ``H_A`` grows with fragment width (a wide fragment captures
    more probability mass), and the width terms of ``Φ(I)`` cancel — so
    ranking by raw ``H_A`` lets whale fragments crowd small hot ones out of
    a bounded pool.  Normalizing by width turns the mass into an access
    *density* at the fragment's location, measured in hits per
    ``reference_width`` (typically the partition's mean fragment width):
    equal-width fragments rank exactly as in the paper, while fragments of
    different widths compete fairly per byte.
    """
    clamped = interval.intersect(domain)
    if clamped is None:
        return 0.0
    hits = total_hits * fitted.mass(clamped)
    width = clamped.width
    if width <= 0 or reference_width <= 0:
        return hits
    return hits * min(reference_width / width, 1e6)
