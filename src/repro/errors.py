"""Exception hierarchy for the DeepSea reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SchemaError(ReproError):
    """Invalid schema construction or column lookup."""


class CatalogError(ReproError):
    """Unknown table or duplicate registration."""


class PlanError(ReproError):
    """Malformed logical plan or unexecutable operator."""


class IntervalError(ReproError):
    """Invalid interval construction or operation."""


class PartitionError(ReproError):
    """Invalid fragmentation or partitioning operation."""


class MatchError(ReproError):
    """View/partition matching failure that should not occur."""


class PoolError(ReproError):
    """Materialized-view pool invariant violation."""


class WorkloadError(ReproError):
    """Invalid workload specification."""


class FaultError(ReproError):
    """An injected (simulated) fault surfaced to a caller.

    Raised by the fault-injection layer (:mod:`repro.faults`) and by the
    storage layer when injected damage makes an operation impossible
    without recovery.  Catching :class:`FaultError` distinctly from
    :class:`PoolError` separates *recoverable cluster adversity* from
    caller bugs (unknown paths, duplicate admits), which stay
    :class:`PoolError`.
    """


class BlockLostError(FaultError):
    """Every replica of a stored file is gone; a plain read cannot succeed."""

    def __init__(self, path: str):
        super().__init__(f"all replicas lost: {path!r}")
        self.path = path


class ControllerCrashError(FaultError):
    """Injected controller death between repartitioning steps."""

    def __init__(self, site: str):
        super().__init__(f"controller crashed at {site!r}")
        self.site = site


class RecoveryError(FaultError):
    """A recovery path failed to restore a consistent, equivalent state."""


class WorkerCrashError(ReproError):
    """A pool worker died (crash/OOM/timeout) and retries were exhausted.

    Carries the task index that could not be completed and how many times
    it was dispatched, so callers can report exactly what was lost instead
    of hanging on a result that will never arrive.
    """

    def __init__(self, message: str, *, index: int | None = None, dispatches: int = 0):
        super().__init__(message)
        self.index = index
        self.dispatches = dispatches
