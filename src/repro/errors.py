"""Exception hierarchy for the DeepSea reproduction.

Every library error derives from :class:`ReproError` and carries a
machine-readable ``kind`` string (a stable snake_case tag, independent of
the class name) so operational layers — the serving layer's per-query
outcome records, the chaos harness's event counters, structured logs —
can classify failures without string-matching messages or importing every
concrete class.  ``kind`` is a class attribute: subclasses that do not
declare their own inherit the nearest ancestor's tag.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""

    kind: str = "error"


class SchemaError(ReproError):
    """Invalid schema construction or column lookup."""

    kind = "schema"


class CatalogError(ReproError):
    """Unknown table or duplicate registration."""

    kind = "catalog"


class PlanError(ReproError):
    """Malformed logical plan or unexecutable operator."""

    kind = "plan"


class IntervalError(ReproError):
    """Invalid interval construction or operation."""

    kind = "interval"


class PartitionError(ReproError):
    """Invalid fragmentation or partitioning operation."""

    kind = "partition"


class MatchError(ReproError):
    """View/partition matching failure that should not occur."""

    kind = "match"


class PoolError(ReproError):
    """Materialized-view pool invariant violation."""

    kind = "pool"


class WorkloadError(ReproError):
    """Invalid workload specification."""

    kind = "workload"


class FaultError(ReproError):
    """An injected (simulated) fault surfaced to a caller.

    Raised by the fault-injection layer (:mod:`repro.faults`) and by the
    storage layer when injected damage makes an operation impossible
    without recovery.  Catching :class:`FaultError` distinctly from
    :class:`PoolError` separates *recoverable cluster adversity* from
    caller bugs (unknown paths, duplicate admits), which stay
    :class:`PoolError`.
    """

    kind = "fault"


class BlockLostError(FaultError):
    """Every replica of a stored file is gone; a plain read cannot succeed."""

    kind = "block_lost"

    def __init__(self, path: str):
        super().__init__(f"all replicas lost: {path!r}")
        self.path = path


class ControllerCrashError(FaultError):
    """Injected controller death between repartitioning steps."""

    kind = "controller_crash"

    def __init__(self, site: str):
        super().__init__(f"controller crashed at {site!r}")
        self.site = site


class RecoveryError(FaultError):
    """A recovery path failed to restore a consistent, equivalent state."""

    kind = "recovery"


class WorkerCrashError(ReproError):
    """A pool worker died (crash/OOM/timeout) and retries were exhausted.

    Carries the task index that could not be completed and how many times
    it was dispatched, so callers can report exactly what was lost instead
    of hanging on a result that will never arrive.
    """

    kind = "worker_crash"

    def __init__(self, message: str, *, index: int | None = None, dispatches: int = 0):
        super().__init__(message)
        self.index = index
        self.dispatches = dispatches


class ServeError(ReproError):
    """Base for serving-layer rejections (:mod:`repro.serve`).

    These are *flow-control outcomes*, not engine failures: the service
    refuses or abandons a query to protect the rest of the workload, and
    the typed class tells the client exactly which contract fired.
    """

    kind = "serve"


class Overloaded(ServeError):
    """The admission queue is full; the query was shed, never enqueued.

    Queue-based load leveling demands a *typed, immediate* rejection under
    overload — an unbounded queue (or a blocking put) converts overload
    into unbounded latency, which is indistinguishable from a hang.
    """

    kind = "overloaded"

    def __init__(self, depth: int):
        super().__init__(f"admission queue full (depth {depth}); query shed")
        self.depth = depth


class DeadlineExceeded(ServeError):
    """The query's deadline passed before an answer could be produced."""

    kind = "deadline_exceeded"

    def __init__(self, deadline_s: float, waited_s: float):
        super().__init__(
            f"deadline of {deadline_s:.3f}s exceeded after {waited_s:.3f}s"
        )
        self.deadline_s = deadline_s
        self.waited_s = waited_s
