"""Exception hierarchy for the DeepSea reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SchemaError(ReproError):
    """Invalid schema construction or column lookup."""


class CatalogError(ReproError):
    """Unknown table or duplicate registration."""


class PlanError(ReproError):
    """Malformed logical plan or unexecutable operator."""


class IntervalError(ReproError):
    """Invalid interval construction or operation."""


class PartitionError(ReproError):
    """Invalid fragmentation or partitioning operation."""


class MatchError(ReproError):
    """View/partition matching failure that should not occur."""


class PoolError(ReproError):
    """Materialized-view pool invariant violation."""


class WorkloadError(ReproError):
    """Invalid workload specification."""
