"""Filter-tree index over view signatures (§8.3).

Checking the full sufficient condition against every (subquery, view) pair
is too slow once the pool holds many views.  The filter tree prunes by
levels of increasingly specific signature parts: relations → join
equivalence classes → aggregation shape.  Each lookup walks exact keys,
so only views that agree on all three levels are handed to the range and
projection checks of the matcher.

The tree also doubles as the registry of statistics-tracked view
candidates (§8.3: "we also use this index to keep the statistics for view
and partition candidates").  Per-view *residency* statistics are kept
current by subscribing to the pool's :class:`~repro.storage.pool.
CoverDelta` stream (:meth:`FilterTree.subscribe_to`): every admit /
evict / restore updates one counter cell, so the registry never has to
rescan the pool's entry table after a mutation — the same
incremental-invalidation contract the cover-cache memo rides on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.query.signature import Signature

if TYPE_CHECKING:
    from repro.storage.pool import CoverDelta, MaterializedViewPool


@dataclass
class ViewResidency:
    """Residency counters for one view, fed by the pool's delta stream.

    ``resident_fragments`` counts entries currently in the pool for the
    view (whole-view entries included); the traffic counters accumulate
    over the run.  Journal rollbacks arrive as ordinary ``evict`` /
    ``restore`` deltas, so the gauge stays exact across aborted
    transactions without any snapshot/restore logic here.
    """

    resident_fragments: int = 0
    admits: int = 0
    evicts: int = 0
    restores: int = 0


@dataclass
class FilterTreeStats:
    """Pruning counters, used by the filter-tree ablation bench."""

    lookups: int = 0
    candidates_returned: int = 0
    views_indexed: int = 0
    deltas_applied: int = 0
    residency: dict[str, ViewResidency] = field(default_factory=dict)

    @property
    def resident_views(self) -> int:
        return sum(1 for r in self.residency.values() if r.resident_fragments > 0)


class FilterTree:
    """Three-level exact-key index: relations → join classes → agg shape."""

    def __init__(self) -> None:
        self._root: dict = {}
        self._signatures: dict[str, Signature] = {}
        self.stats = FilterTreeStats()

    # ------------------------------------------------------------------
    # Residency statistics (delta-fed, never rescans the pool)
    # ------------------------------------------------------------------
    def subscribe_to(self, pool: "MaterializedViewPool") -> None:
        """Keep per-view residency stats current from ``pool``'s deltas."""
        pool.subscribe(self._on_delta)

    def _on_delta(self, delta: "CoverDelta") -> None:
        cell = self.stats.residency.get(delta.view_id)
        if cell is None:
            cell = self.stats.residency[delta.view_id] = ViewResidency()
        if delta.kind == "evict":
            cell.evicts += 1
            cell.resident_fragments -= 1
        elif delta.kind == "restore":
            cell.restores += 1
            cell.resident_fragments += 1
        else:  # "admit"
            cell.admits += 1
            cell.resident_fragments += 1
        self.stats.deltas_applied += 1

    def residency(self, view_id: str) -> "ViewResidency | None":
        return self.stats.residency.get(view_id)

    def add(self, view_id: str, signature: Signature) -> None:
        if view_id in self._signatures:
            return
        level1 = self._root.setdefault(signature.relations, {})
        level2 = level1.setdefault(signature.join_classes, {})
        level3 = level2.setdefault(signature.agg_key, {})
        level3[view_id] = signature
        self._signatures[view_id] = signature
        self.stats.views_indexed += 1

    def remove(self, view_id: str) -> None:
        signature = self._signatures.pop(view_id, None)
        if signature is None:
            return
        level1 = self._root[signature.relations]
        level2 = level1[signature.join_classes]
        level3 = level2[signature.agg_key]
        del level3[view_id]
        if not level3:
            del level2[signature.agg_key]
        if not level2:
            del level1[signature.join_classes]
        if not level1:
            del self._root[signature.relations]
        self.stats.views_indexed -= 1

    def candidates(self, query_sig: Signature) -> list[tuple[str, Signature]]:
        """Views agreeing with the query on all indexed levels."""
        self.stats.lookups += 1
        level1 = self._root.get(query_sig.relations)
        if level1 is None:
            return []
        level2 = level1.get(query_sig.join_classes)
        if level2 is None:
            return []
        level3 = level2.get(query_sig.agg_key)
        if level3 is None:
            return []
        out = list(level3.items())
        self.stats.candidates_returned += len(out)
        return out

    def all_views(self) -> list[tuple[str, Signature]]:
        """Unpruned scan — the baseline the ablation compares against."""
        return list(self._signatures.items())

    def signature(self, view_id: str) -> Signature | None:
        return self._signatures.get(view_id)

    def __contains__(self, view_id: str) -> bool:
        return view_id in self._signatures

    def __len__(self) -> int:
        return len(self._signatures)
