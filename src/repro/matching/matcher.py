"""Sufficient-condition view matching (§8.1, after Goldstein & Larson).

A view ``V`` can answer a query subexpression ``Q'`` when:

1. they reference the same multiset of base relations;
2. they induce the same join equivalence classes;
3. they have the same aggregation shape (group-by set and aggregate list),
   or neither aggregates;
4. for every attribute, the query's selection range is contained in the
   view's (the view did not filter out rows the query needs) — where the
   containment is strict, a *compensating selection* re-applies the
   query's range on top of the view;
5. the view's output contains every column the query outputs, plus a
   usable column for each compensating selection (any member of the
   attribute's equivalence class that survived projection).

This is a sufficient condition: failing it never produces a wrong
rewriting; passing it guarantees the compensated view scan is equivalent
to ``Q'``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.caches import register_cache
from repro.partitioning.intervals import Interval
from repro.query.analysis import class_members
from repro.query.predicates import RangePredicate
from repro.query.signature import Signature


@dataclass(frozen=True)
class Compensation:
    """What must be applied on top of a view scan to answer the query."""

    selections: tuple[RangePredicate, ...]
    projection: tuple[str, ...] | None  # None: view output already matches

    @property
    def is_identity(self) -> bool:
        return not self.selections and self.projection is None


def _resolve_output_attr(attr: str, signature: Signature) -> str | None:
    """A column of the view's output usable to filter on ``attr``.

    ``attr`` is an equivalence-class representative; any class member that
    survived the view's projection carries the same values.
    """
    if attr in signature.output_set:
        return attr
    members = class_members(attr, signature.join_classes)
    usable = sorted(members & signature.output_set)
    return usable[0] if usable else None


@lru_cache(maxsize=65_536)
def match_view(view_sig: Signature, query_sig: Signature) -> Compensation | None:
    """Check the sufficient condition; return the compensation or ``None``.

    Pure in two frozen signatures, and the same (view, query-shape) pairs
    recur across a workload — the filter tree narrows candidates but every
    survivor is re-checked per query — so results are memoized.  The
    returned :class:`Compensation` is immutable, making the shared instance
    safe.
    """
    if view_sig.relations != query_sig.relations:
        return None
    if view_sig.join_classes != query_sig.join_classes:
        return None
    if (view_sig.group_by, view_sig.aggregates) != (
        query_sig.group_by,
        query_sig.aggregates,
    ):
        return None

    view_ranges = view_sig.range_map
    query_ranges = query_sig.range_map
    selections: list[RangePredicate] = []
    for attr in set(view_ranges) | set(query_ranges):
        v_iv = view_ranges.get(attr, Interval.unbounded())
        q_iv = query_ranges.get(attr, Interval.unbounded())
        if not v_iv.contains(q_iv):
            return None  # the view lacks rows the query needs
        if q_iv != v_iv:
            out_attr = _resolve_output_attr(attr, view_sig)
            if out_attr is None:
                return None  # cannot compensate: column projected away
            selections.append(RangePredicate(out_attr, q_iv))

    if not query_sig.output_set <= view_sig.output_set:
        return None

    projection = None
    if query_sig.output != view_sig.output:
        projection = query_sig.output
    return Compensation(tuple(sorted(selections, key=repr)), projection)


def partition_attr_ranges(
    view_sig: Signature, query_sig: Signature
) -> dict[str, Interval]:
    """Query selection ranges expressed per *view output column*.

    Used to (a) decide which fragments of a partition a query hits and
    (b) generate partition candidates.  Every query range whose attribute
    (or an equivalence-class sibling) survives in the view's output is
    reported under that output column.
    """
    out: dict[str, Interval] = {}
    for attr, interval in query_sig.range_map.items():
        resolved = _resolve_output_attr(attr, view_sig)
        if resolved is not None:
            out[resolved] = interval
    return out


def _match_cache_stats() -> dict:
    info = match_view.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "evictions": 0,
        "entries": info.currsize,
    }


register_cache("matching.match_view", match_view.cache_clear, _match_cache_stats)
