"""Sufficient-condition view matching (§8.1, after Goldstein & Larson).

A view ``V`` can answer a query subexpression ``Q'`` when:

1. they reference the same multiset of base relations;
2. they induce the same join equivalence classes;
3. they have the same aggregation shape (group-by set and aggregate list),
   or neither aggregates;
4. for every attribute, the query's selection range is contained in the
   view's (the view did not filter out rows the query needs) — where the
   containment is strict, a *compensating selection* re-applies the
   query's range on top of the view;
5. the view's output contains every column the query outputs, plus a
   usable column for each compensating selection (any member of the
   attribute's equivalence class that survived projection).

This is a sufficient condition: failing it never produces a wrong
rewriting; passing it guarantees the compensated view scan is equivalent
to ``Q'``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches import register_cache
from repro.partitioning.intervals import Interval
from repro.query.analysis import class_members
from repro.query.predicates import RangePredicate
from repro.query.signature import Signature


@dataclass(frozen=True)
class Compensation:
    """What must be applied on top of a view scan to answer the query."""

    selections: tuple[RangePredicate, ...]
    projection: tuple[str, ...] | None  # None: view output already matches

    @property
    def is_identity(self) -> bool:
        return not self.selections and self.projection is None


def _resolve_output_attr(attr: str, signature: Signature) -> str | None:
    """A column of the view's output usable to filter on ``attr``.

    ``attr`` is an equivalence-class representative; any class member that
    survived the view's projection carries the same values.
    """
    if attr in signature.output_set:
        return attr
    members = class_members(attr, signature.join_classes)
    usable = sorted(members & signature.output_set)
    return usable[0] if usable else None


# ----------------------------------------------------------------------
# Two-tier shape memo.
#
# Memoizing on the full (view_sig, query_sig) pair hits poorly on range
# workloads: fig-5a's SDSS queries repeat a handful of structural shapes
# but draw fresh range endpoints per query, so the pair space is nearly
# as large as the call count (measured 19% hit rate at 150 queries).
# Everything *except* the interval arithmetic, however, depends only on
# the range-free "shape" of the two signatures — relations, join classes,
# aggregation, outputs, and the *names* of the restricted attributes — of
# which fig-5a has a few dozen.  Tier 1 memoizes that structural work as
# a skeleton (including the per-attribute output-column resolution, which
# walks join equivalence classes); tier 2 runs the cheap per-call
# residual: interval containment plus compensation assembly.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _MatchSkeleton:
    """Shape-level result of the sufficient condition.

    ``attr_out`` pairs each restricted attribute (sorted union of both
    signatures' range attrs) with its resolved view-output column (``None``
    when the column was projected away — fatal only if the query's range
    is strictly narrower).  ``fixed`` short-circuits shapes with no range
    attrs, whose compensation is fully shape-determined.
    """

    attr_out: tuple[tuple[str, str | None], ...]
    projection: tuple[str, ...] | None
    fixed: Compensation | None


_SHAPE_MEMO: dict[tuple, "_MatchSkeleton | None"] = {}
_SHAPE_MEMO_MAX = 4_096
_SHAPE_COUNTERS = {"hits": 0, "misses": 0, "evictions": 0}
_ABSENT = object()
_UNBOUNDED = Interval.unbounded()

# Shape tuple -> small interned id.  Signatures are shared objects (the
# signature memo returns the same instance for equal plans), so each one
# computes its shape tuple once and caches the id on the instance; memo
# keys become int pairs, replacing the per-call construction and hashing
# of two large nested tuples on the match_view hot path.
_SHAPE_IDS: dict[tuple, int] = {}


def _shape_key(sig: Signature) -> tuple:
    """Range-free structural identity (range attr *names*, not intervals)."""
    return (
        sig.relations,
        sig.join_classes,
        sig.group_by,
        sig.aggregates,
        sig.output,
        tuple(attr for attr, _ in sig.ranges),
    )


def _shape_id(sig: Signature) -> int:
    cached = sig.__dict__.get("_matcher_shape_id")
    if cached is None:
        # Direct __dict__ write: Signature is frozen, but instance dicts
        # are still writable and the id is derived, not state.
        cached = _SHAPE_IDS.setdefault(_shape_key(sig), len(_SHAPE_IDS))
        sig.__dict__["_matcher_shape_id"] = cached
    return cached


def _build_skeleton(view_sig: Signature, query_sig: Signature) -> "_MatchSkeleton | None":
    """Shape-level checks; ``None`` means the pair can never match."""
    if view_sig.relations != query_sig.relations:
        return None
    if view_sig.join_classes != query_sig.join_classes:
        return None
    if (view_sig.group_by, view_sig.aggregates) != (
        query_sig.group_by,
        query_sig.aggregates,
    ):
        return None
    if not query_sig.output_set <= view_sig.output_set:
        return None
    attrs = sorted({a for a, _ in view_sig.ranges} | {a for a, _ in query_sig.ranges})
    attr_out = tuple((attr, _resolve_output_attr(attr, view_sig)) for attr in attrs)
    projection = query_sig.output if query_sig.output != view_sig.output else None
    fixed = Compensation((), projection) if not attr_out else None
    return _MatchSkeleton(attr_out, projection, fixed)


def match_view(view_sig: Signature, query_sig: Signature) -> Compensation | None:
    """Check the sufficient condition; return the compensation or ``None``.

    Pure in two frozen signatures.  The structural levels are memoized per
    range-free shape pair (see :class:`_MatchSkeleton`); only the interval
    containment and compensation construction run per call.  Returned
    :class:`Compensation` instances are immutable, so sharing the
    shape-level ``fixed`` instance across calls is safe.
    """
    key = (_shape_id(view_sig), _shape_id(query_sig))
    skeleton = _SHAPE_MEMO.get(key, _ABSENT)
    if skeleton is _ABSENT:
        _SHAPE_COUNTERS["misses"] += 1
        skeleton = _build_skeleton(view_sig, query_sig)
        if len(_SHAPE_MEMO) >= _SHAPE_MEMO_MAX:
            _SHAPE_MEMO.pop(next(iter(_SHAPE_MEMO)))
            _SHAPE_COUNTERS["evictions"] += 1
        _SHAPE_MEMO[key] = skeleton
    else:
        _SHAPE_COUNTERS["hits"] += 1
    if skeleton is None:
        return None
    if skeleton.fixed is not None:
        return skeleton.fixed

    view_ranges = view_sig.range_map
    query_ranges = query_sig.range_map
    selections: list[RangePredicate] = []
    for attr, out_attr in skeleton.attr_out:
        v_iv = view_ranges.get(attr, _UNBOUNDED)
        q_iv = query_ranges.get(attr, _UNBOUNDED)
        if not v_iv.contains(q_iv):
            return None  # the view lacks rows the query needs
        if q_iv != v_iv:
            if out_attr is None:
                return None  # cannot compensate: column projected away
            selections.append(RangePredicate(out_attr, q_iv))
    return Compensation(tuple(sorted(selections, key=repr)), skeleton.projection)


def partition_attr_ranges(view_sig: Signature, query_sig: Signature) -> dict[str, Interval]:
    """Query selection ranges expressed per *view output column*.

    Used to (a) decide which fragments of a partition a query hits and
    (b) generate partition candidates.  Every query range whose attribute
    (or an equivalence-class sibling) survives in the view's output is
    reported under that output column.
    """
    out: dict[str, Interval] = {}
    for attr, interval in query_sig.range_map.items():
        resolved = _resolve_output_attr(attr, view_sig)
        if resolved is not None:
            out[resolved] = interval
    return out


def _match_cache_clear() -> None:
    _SHAPE_MEMO.clear()
    _SHAPE_COUNTERS["hits"] = 0
    _SHAPE_COUNTERS["misses"] = 0
    _SHAPE_COUNTERS["evictions"] = 0


def _match_cache_stats() -> dict:
    return {
        "hits": _SHAPE_COUNTERS["hits"],
        "misses": _SHAPE_COUNTERS["misses"],
        "evictions": _SHAPE_COUNTERS["evictions"],
        "entries": len(_SHAPE_MEMO),
    }


register_cache("matching.match_view", _match_cache_clear, _match_cache_stats)
