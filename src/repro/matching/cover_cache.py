"""Cover-delta invalidated memo for Algorithm 2 greedy covers.

``greedy_cover`` is pure in ``(θ, fragment intervals)``, but its second
argument is the pool's residency state — so a naive memo would have to be
dropped on *every* pool mutation, and rebuilding the per-call
:class:`IntervalIndex` from scratch was the matching stage's residual hot
spot.  This module keys cover results on the **per-view cover version**
published by the pool (:class:`repro.storage.pool.CoverDelta`):

* a mutation of view V invalidates only V's memo bucket entries — covers
  for every other view stay live;
* the sorted interval mirror for each ``(view, attr)`` partition is
  *patched in place* from the delta (one bisected insertion or removal)
  instead of re-sorted, and the bisect index is rebuilt sort-free via
  :meth:`IntervalIndex.from_sorted`;
* a journal rollback restores the pre-transaction versions exactly
  (versions are drawn from the monotonic pool epoch, so mid-transaction
  values are never re-issued), which re-validates every memo entry
  computed before the step without any recomputation.

Validation is *lazy*: entries store the version they were computed at and
a lookup compares it against the pool's current version.  Eager dropping
on delta would destroy the rollback re-validation property.

Determinism: ``sort_key`` is injective over distinct intervals and the
pool rejects duplicate fragments per ``(view, attr)``, so the patched
mirror has exactly one canonical order — identical to a fresh
``IntervalIndex`` sort — and memoized covers are bit-identical to
recomputed ones.
"""

from __future__ import annotations

import pickle
import weakref
from bisect import insort

from repro.caches import register_cache
from repro.matching.partition_match import CoveredFragment, greedy_cover
from repro.parallel import shared_cache
from repro.partitioning.intervals import Interval, IntervalIndex, sort_key
from repro.storage.pool import CoverDelta, MaterializedViewPool

# Bound on memoized covers per view: fig-5a workloads produce a handful of
# distinct (attr, θ) pairs per view; the bound only guards degenerate
# workloads.  FIFO eviction (dict preserves insertion order).
_MAX_COVERS_PER_VIEW = 512

_ABSENT = object()

# Live instances, for the process-wide registry (clear_all_caches / stats).
_INSTANCES: "weakref.WeakSet[CoverCache]" = weakref.WeakSet()


class CoverCache:
    """Per-view-versioned greedy-cover memo fed by pool deltas."""

    def __init__(self, pool: MaterializedViewPool) -> None:
        self.pool = pool
        # (view_id, attr) -> interval list in canonical sort_key order,
        # patched in place by _on_delta once seeded.
        self._mirrors: dict[tuple[str, str], list[Interval]] = {}
        # (view_id, attr) -> (version, IntervalIndex over the mirror).
        self._indexes: dict[tuple[str, str], tuple[int, IntervalIndex]] = {}
        # view_id -> {(attr, θ): (version, cover-or-None)}.  Bucketed per
        # view so invalidation accounting is per-view too.
        self._covers: dict[str, dict[tuple[str, Interval], tuple]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.invalidations_by_view: dict[str, int] = {}
        pool.subscribe(self._on_delta)
        _INSTANCES.add(self)

    # ------------------------------------------------------------------
    # Delta application (in-place index patching)
    # ------------------------------------------------------------------
    def _on_delta(self, delta: CoverDelta) -> None:
        if delta.attr is None:
            return  # whole-view entries carry no fragment cover
        key = (delta.view_id, delta.attr)
        mirror = self._mirrors.get(key)
        if mirror is None:
            return  # not seeded yet; the first cover() call scans the pool
        if delta.kind == "evict":
            mirror.remove(delta.interval)
        else:  # "admit" | "restore"
            insort(mirror, delta.interval, key=sort_key)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def cover(self, view_id: str, attr: str, theta: Interval) -> list[CoveredFragment] | None:
        """Memoized ``greedy_cover(θ, P(view, attr))`` at the current version."""
        version = self.pool.cover_version(view_id)
        bucket = self._covers.setdefault(view_id, {})
        memo_key = (attr, theta)
        entry = bucket.get(memo_key, _ABSENT)
        if entry is not _ABSENT:
            stored_version, result = entry
            if stored_version == version:
                self.hits += 1
                return result
            self.invalidations += 1
            self.invalidations_by_view[view_id] = self.invalidations_by_view.get(view_id, 0) + 1
        self.misses += 1
        shared = self._shared_key(view_id, attr, theta)
        if shared is not None:
            fetched = self._shared_lookup(shared, version)
            if fetched is not _ABSENT:
                if len(bucket) >= _MAX_COVERS_PER_VIEW:
                    bucket.pop(next(iter(bucket)))
                    self.evictions += 1
                bucket[memo_key] = (version, fetched)
                return fetched
        result = greedy_cover(theta, [], index=self._index_for(view_id, attr, version))
        if shared is not None:
            self._shared_publish(shared, version, result)
        if len(bucket) >= _MAX_COVERS_PER_VIEW:
            bucket.pop(next(iter(bucket)))
            self.evictions += 1
        bucket[memo_key] = (version, result)
        return result

    # ------------------------------------------------------------------
    # Shared tier (cross-worker covers, same per-view version validation)
    # ------------------------------------------------------------------
    def _shared_key(self, view_id: str, attr: str, theta: Interval) -> "bytes | None":
        client = shared_cache.client()
        if client is None:
            return None
        pool_ident = getattr(self.pool, "shared_ident", None)
        if pool_ident is None:
            return None
        return shared_cache.stable_key("cover", (pool_ident, view_id, attr, theta))

    def _shared_lookup(self, key: bytes, version: int):
        """A published cover at exactly ``version``, else ``_ABSENT``.

        Covers may legitimately be ``None`` (θ not coverable), so the
        sentinel distinguishes "shared miss" from a cached None.
        """
        payload = shared_cache.client().get("cover", key, version)
        if payload is None:
            return _ABSENT
        return pickle.loads(payload)

    def _shared_publish(self, key: bytes, version: int, result) -> None:
        client = shared_cache.client()
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        if client.admit("cover", len(payload)):
            client.put("cover", key, version, payload)

    def _index_for(self, view_id: str, attr: str, version: int) -> IntervalIndex:
        key = (view_id, attr)
        cached = self._indexes.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        mirror = self._mirrors.get(key)
        if mirror is None:
            # Seed from the pool's per-attribute list (already in canonical
            # order); deltas patch it from here on.
            mirror = list(self.pool.intervals_of(view_id, attr))
            self._mirrors[key] = mirror
        index = IntervalIndex.from_sorted(mirror)
        self._indexes[key] = (version, index)
        return index

    # ------------------------------------------------------------------
    # Registry plumbing
    # ------------------------------------------------------------------
    def clear(self) -> None:
        self._mirrors.clear()
        self._indexes.clear()
        self._covers.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.invalidations_by_view.clear()

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": sum(len(b) for b in self._covers.values()),
            "by_view": dict(sorted(self.invalidations_by_view.items())),
        }


def _clear_all() -> None:
    for cache in list(_INSTANCES):
        cache.clear()


def _aggregate_stats() -> dict:
    total = {
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "invalidations": 0,
        "entries": 0,
        "by_view": {},
    }
    for cache in list(_INSTANCES):
        stats = cache.stats()
        total["hits"] += stats["hits"]
        total["misses"] += stats["misses"]
        total["evictions"] += stats["evictions"]
        total["invalidations"] += stats["invalidations"]
        total["entries"] += stats["entries"]
        for view_id, count in stats["by_view"].items():
            total["by_view"][view_id] = total["by_view"].get(view_id, 0) + count
    total["by_view"] = dict(sorted(total["by_view"].items()))
    return total


register_cache("matching.cover_cache", _clear_all, _aggregate_stats)
