"""Fragment-level partition cache with predicate-intersection pruning.

PartitionCache-style layer between the cover cache and the result cache:
for one materialized-view partition scan under a conjunction of range
predicates, remember — per ``(pool uid, view id, attr, conjunct shape,
conjunct constants)`` — how each cover fragment relates to the
intersection of the predicate intervals:

* ``FULL``    — the fragment's rows all satisfy the conjunction (its key
  interval, clipped, lies inside the predicate intersection): the
  executor passes the piece through without evaluating a mask;
* ``PARTIAL`` — some rows may survive: the executor applies one fused
  mask (predicates ∧ clip) at the scan instead of a clip mask followed
  by a post-concat selection mask;
* ``EMPTY``   — provably no row can satisfy the conjunction (the clipped
  predicate intersection misses the fragment's interval, or the
  fragment's observed min/max on the attribute): the payload is never
  read.

Entries are validated by the per-view **cover version** published through
the pool's CoverDelta stream (PR 5): repartitioning view V bumps V's
version and invalidates exactly V's entries at their next lookup, while
every other view's entries stay live.  A journal rollback restores the
prior version numbers, so entries recorded before the transaction
re-validate for free — no flush, no recomputation.

Semantic transparency (the same contract every cache in
:mod:`repro.caches` signs): pruning is **wall-clock only**.  The executor
still accounts every cover fragment's bytes and file count into
``charge_read``, and the rewriter's cost estimates are computed over the
full cover, so simulated-second ledgers and result tables are
byte-identical to the unpruned execution — the determinism fingerprint
proves it.  What the cache removes is real work: payload reads of empty
fragments, per-piece clip masks, and the post-concat selection pass.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.caches import register_cache
from repro.parallel import shared_cache
from repro.partitioning.intervals import Interval
from repro.query.predicates import RangePredicate

# Piece states.  Small ints, compared with ``is``-free equality in the
# executor's hot loop.
FULL = 0
PARTIAL = 1
EMPTY = 2


@lru_cache(maxsize=16_384)
def normalize_conjuncts(
    predicates: tuple[RangePredicate, ...],
) -> "tuple[tuple[str, ...], tuple, Interval | None] | None":
    """``(shape, constants, intersection)`` of a single-attribute conjunction.

    The *shape* is the predicate attribute tuple (all conjuncts must name
    the same attribute for fragment pruning to be sound against that
    attribute's partition intervals); the *constants* are the interval
    bound keys, which together with the shape identify the conjunction up
    to the predicate constants — the memo key granularity the
    PartitionCache line of work prescribes.  The intersection is the
    fused interval (``None`` when the conjunction is unsatisfiable).

    Returns ``None`` when the conjunction spans several attributes; the
    caller falls back to unpruned evaluation.

    Memoized on the predicate tuple: this is the cache's *plan-pure*
    tier, a function of the plans alone, which
    :func:`repro.parallel.prewarm.prewarm_shared_caches` builds once in
    the parent before forking so warm workers share it copy-on-write.
    """
    if not predicates:
        return None
    attr = predicates[0].attr
    shape = []
    constants = []
    intersection: Interval | None = predicates[0].interval
    for pred in predicates:
        if pred.attr != attr:
            return None
        shape.append(pred.attr)
        constants.append(pred.interval._lkey + pred.interval._ukey)
        if intersection is not None and pred.interval is not intersection:
            intersection = intersection.intersect(pred.interval)
    return tuple(shape), tuple(constants), intersection


@dataclass(frozen=True)
class PieceDecision:
    """How one ``(fragment, clip)`` pair relates to the conjunction."""

    state: int  # FULL / PARTIAL / EMPTY
    eff: Interval | None  # fused mask interval (PARTIAL only)


class FragmentPruneCache:
    """Per-view, cover-version-validated fragment prune decisions.

    ``_entries`` maps the conjunct key to ``(cover_version, decisions)``
    where ``decisions`` accumulates one :class:`PieceDecision` per
    ``(fragment id, clip)`` pair.  Fragment entries are immutable after
    admission and every admit/evict/restore bumps the owning view's cover
    version, so a version match guarantees every cached decision is
    current.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, tuple[int, dict]] = {}
        # (pool uid, fragment id) -> (min, max) of the partition column,
        # or None when the payload is empty.  Payloads are immutable, so
        # this never invalidates; it feeds the EMPTY/FULL upgrades that
        # interval algebra alone cannot prove.
        self._minmax: dict[tuple, "tuple[float, float] | None"] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.invalidations_by_view: dict[str, int] = {}
        self.pruned_fragments = 0
        self.rows_pruned = 0
        self.rows_scanned = 0
        self.enabled = True

    # -- classification ------------------------------------------------
    def classify(self, pool, scan, predicates) -> "list[PieceDecision] | None":
        """Prune decisions for ``scan`` under ``predicates``, or ``None``.

        ``None`` means the scan is not prunable through this cache (no
        fragment list, no partition attribute, multi-attribute
        conjunction, or the cache is disabled for an A/B test) and the
        caller must use the unpruned path.
        """
        if not self.enabled or not scan.fragment_ids or scan.attr is None:
            return None
        if scan.clips and len(scan.clips) != len(scan.fragment_ids):
            return None  # malformed scan: let the unpruned path raise
        normalized = normalize_conjuncts(predicates)
        if normalized is None or normalized[0][0] != scan.attr:
            return None
        shape, constants, intersection = normalized
        key = (pool.uid, scan.view_id, scan.attr, shape, constants)
        version = pool.cover_version(scan.view_id)
        entry = self._entries.get(key)
        if entry is not None and entry[0] != version:
            self.invalidations += 1
            view_counts = self.invalidations_by_view
            view_counts[scan.view_id] = view_counts.get(scan.view_id, 0) + 1
            entry = None
        shared_key = None
        if entry is None:
            shared_key = self._shared_key(pool, scan, shape, constants)
            decisions = None
            if shared_key is not None:
                decisions = self._shared_lookup(shared_key, version)
            if decisions is None:
                decisions = {}
            self._entries[key] = (version, decisions)
            self.misses += 1
        else:
            decisions = entry[1]
            self.hits += 1
        clips = scan.clips or (None,) * len(scan.fragment_ids)
        out = []
        computed = 0
        for fid, clip in zip(scan.fragment_ids, clips):
            decision = decisions.get((fid, clip))
            if decision is None:
                decision = self._decide(pool, scan.attr, fid, clip, intersection)
                decisions[(fid, clip)] = decision
                computed += 1
            out.append(decision)
        if computed and shared_key is not None:
            self._shared_publish(shared_key, version, decisions)
        return out

    # -- shared tier (cross-worker decisions, cover-version validated) --
    def _shared_key(self, pool, scan, shape, constants) -> "bytes | None":
        if shared_cache.client() is None:
            return None
        pool_ident = getattr(pool, "shared_ident", None)
        if pool_ident is None:
            return None
        return shared_cache.stable_key(
            "fragment", (pool_ident, scan.view_id, scan.attr, shape, constants)
        )

    @staticmethod
    def _shared_lookup(key: bytes, version: int) -> "dict | None":
        payload = shared_cache.client().get("fragment", key, version)
        if payload is None:
            return None
        return pickle.loads(payload)

    @staticmethod
    def _shared_publish(key: bytes, version: int, decisions: dict) -> None:
        client = shared_cache.client()
        payload = pickle.dumps(decisions, protocol=pickle.HIGHEST_PROTOCOL)
        if client.admit("fragment", len(payload)):
            client.put("fragment", key, version, payload)

    def _decide(self, pool, attr: str, fid: str, clip, intersection) -> PieceDecision:
        eff = intersection
        if eff is not None and clip is not None:
            eff = eff.intersect(clip)
        if eff is None:
            return PieceDecision(EMPTY, None)
        fiv = pool.get_fragment(fid).key.interval
        if fiv is not None:
            clamped = eff.intersect(fiv)
            if clamped is None:
                return PieceDecision(EMPTY, None)
            if clamped == fiv:
                return PieceDecision(FULL, None)
        minmax = self._fragment_minmax(pool, attr, fid)
        if minmax is None:
            # Empty payload: nothing to mask, nothing to prune.
            return PieceDecision(FULL, None)
        observed = Interval.closed(minmax[0], minmax[1])
        clamped = eff.intersect(observed)
        if clamped is None:
            return PieceDecision(EMPTY, None)
        if clamped == observed:
            return PieceDecision(FULL, None)
        return PieceDecision(PARTIAL, eff)

    def _fragment_minmax(self, pool, attr: str, fid: str):
        key = (pool.uid, fid)
        cached = self._minmax.get(key, _ABSENT)
        if cached is not _ABSENT:
            return cached
        entry = pool.get_fragment(fid)
        payload = pool.hdfs.peek(entry.path)
        if payload.nrows == 0 or attr not in payload.schema:
            minmax = None
        else:
            values = payload.column(attr)
            minmax = (float(np.min(values)), float(np.max(values)))
        self._minmax[key] = minmax
        return minmax

    # -- executor accounting -------------------------------------------
    def note_empty(self) -> None:
        self.pruned_fragments += 1

    def note_rows(self, scanned: int, kept: int) -> None:
        self.rows_scanned += scanned
        self.rows_pruned += scanned - kept

    # -- registry hooks ------------------------------------------------
    def clear(self) -> None:
        normalize_conjuncts.cache_clear()
        self._entries.clear()
        self._minmax.clear()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.invalidations_by_view = {}
        self.pruned_fragments = 0
        self.rows_pruned = 0
        self.rows_scanned = 0

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": 0,
            "invalidations": self.invalidations,
            "invalidations_by_view": dict(self.invalidations_by_view),
            "pruned_fragments": self.pruned_fragments,
            "rows_pruned": self.rows_pruned,
            "rows_scanned": self.rows_scanned,
            "entries": len(self._entries),
        }


_ABSENT = object()

# One process-wide cache: keys carry the pool uid, so separate systems
# (H/NP/DS pools, test pools) can never collide.
GLOBAL = FragmentPruneCache()

register_cache("matching.fragment_cache", GLOBAL.clear, GLOBAL.stats)
