"""Partition matching — Algorithm 2 with overlap disjointification (§8.2).

Given a query's selection range θ on a view's partition attribute, find a
set of fragments whose union covers θ.  With overlapping fragments this is
a set-cover instance, so the paper matches greedily: starting at θ's lower
bound, repeatedly pick — among the fragments that cover the next uncovered
point — the one with the largest lower bound, until θ is covered.

Because chosen fragments may overlap, scanning them naively would emit
duplicate rows.  Each fragment after the first therefore carries a *clip*:
rows at or below the previously covered upper bound are discarded when the
fragment is read.  Every clipped-away row inside θ is guaranteed to be
present in an earlier selected fragment (the earlier union covers the
region up to the clip), so the clipped union is exactly θ's content, each
row once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.partitioning.intervals import Interval, IntervalIndex


@dataclass(frozen=True)
class CoveredFragment:
    """One fragment chosen by the greedy cover, with its dedup clip."""

    interval: Interval
    clip: Interval | None  # None: read the whole fragment


def greedy_cover(
    theta: Interval,
    fragments: list[Interval],
    index: IntervalIndex | None = None,
) -> list[CoveredFragment] | None:
    """Algorithm 2.  Returns ``None`` when no cover of θ exists.

    A fragment qualifies while the next uncovered point of θ lies inside
    it; among qualifying fragments the one with the largest lower bound is
    chosen (it wastes the least already-covered data).  Ties are broken
    toward the larger upper bound, which covers more of θ per fragment.

    The fragments are bisect-indexed by lower bound (O(n log n) overall
    instead of the naive O(n²) rescans): qualifying fragments form a
    prefix of the sorted order, and because the order *is* the greedy
    preference order, the best choice is the rightmost prefix element not
    yet consumed.  Fragments skipped over while scanning left are entirely
    inside the covered region and can never qualify again, so each is
    visited once (union-find style jump pointers keep rescans amortized
    constant).  Chosen fragments and clips are identical to the naive
    implementation's.

    ``index`` optionally supplies a prebuilt :class:`IntervalIndex` over
    the fragments (``fragments`` is then ignored).  The index is read-only
    here — per-call scan state lives in the local ``jump`` list — so a
    caller-side cache (:mod:`repro.matching.cover_cache`) can reuse one
    index across calls.
    """
    target_hi = theta._upper_key()
    lo_key = theta._lower_key()
    # Coverage state mirrors Fragmentation.union_covers: an upper key
    # (v, flag) with flag 0 = v covered, -1 = v excluded.
    covered = (lo_key[0], -1 if lo_key[1] == 0 else 0)
    chosen: list[CoveredFragment] = []
    if index is None:
        index = IntervalIndex(fragments)
    # jump[p] = rightmost not-consumed position ≤ p (with path compression);
    # jump[0] == -1 means everything to the left is consumed.
    jump = list(range(-1, len(index)))  # position p maps to slot p + 1

    while covered < target_hi:
        v, flag = covered
        threshold = (v, 1 + flag)
        prefix = index.prefix_starting_at_or_before(threshold)
        best_pos = None
        pos = _find_live(jump, prefix - 1)
        while pos >= 0:
            if index.upper_keys[pos] > covered:
                best_pos = pos
                break
            # Fully inside the covered region: dead for all later steps.
            jump[pos + 1] = pos - 1
            pos = _find_live(jump, pos - 1)
        if best_pos is None:
            return None
        jump[best_pos + 1] = best_pos - 1  # consume
        best = index.at(best_pos)
        clip = None
        if chosen:
            # exclude everything at or below the covered upper bound
            clip = Interval(low=v, high=None, low_open=(flag == 0))
        chosen.append(CoveredFragment(best, clip))
        covered = max(covered, index.upper_keys[best_pos])
    return chosen


def _find_live(jump: list[int], position: int) -> int:
    """Rightmost not-consumed position ≤ ``position`` (-1 when none).

    ``jump`` uses slot ``p + 1`` for position ``p``; a slot holding its own
    position means "live", anything smaller is a shortcut left.  Paths are
    compressed on the way out, so repeated scans over consumed runs cost
    amortized O(α).
    """
    slot = position + 1
    root = slot
    while root > 0 and jump[root] != root - 1:
        root = jump[root] + 1
    live = root - 1
    while slot > 0 and jump[slot] != live:
        jump[slot], slot = live, jump[slot] + 1
    return live


def covered_bytes(cover: list[CoveredFragment], sizes: dict[Interval, float]) -> float:
    """Total bytes that must be read to scan a cover."""
    return sum(sizes[c.interval] for c in cover)
