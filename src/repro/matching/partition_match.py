"""Partition matching — Algorithm 2 with overlap disjointification (§8.2).

Given a query's selection range θ on a view's partition attribute, find a
set of fragments whose union covers θ.  With overlapping fragments this is
a set-cover instance, so the paper matches greedily: starting at θ's lower
bound, repeatedly pick — among the fragments that cover the next uncovered
point — the one with the largest lower bound, until θ is covered.

Because chosen fragments may overlap, scanning them naively would emit
duplicate rows.  Each fragment after the first therefore carries a *clip*:
rows at or below the previously covered upper bound are discarded when the
fragment is read.  Every clipped-away row inside θ is guaranteed to be
present in an earlier selected fragment (the earlier union covers the
region up to the clip), so the clipped union is exactly θ's content, each
row once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.partitioning.intervals import Interval


@dataclass(frozen=True)
class CoveredFragment:
    """One fragment chosen by the greedy cover, with its dedup clip."""

    interval: Interval
    clip: Interval | None  # None: read the whole fragment


def greedy_cover(theta: Interval, fragments: list[Interval]) -> list[CoveredFragment] | None:
    """Algorithm 2.  Returns ``None`` when no cover of θ exists.

    A fragment qualifies while the next uncovered point of θ lies inside
    it; among qualifying fragments the one with the largest lower bound is
    chosen (it wastes the least already-covered data).  Ties are broken
    toward the larger upper bound, which covers more of θ per fragment.
    """
    target_hi = theta._upper_key()
    lo_key = theta._lower_key()
    # Coverage state mirrors Fragmentation.union_covers: an upper key
    # (v, flag) with flag 0 = v covered, -1 = v excluded.
    covered = (lo_key[0], -1 if lo_key[1] == 0 else 0)
    chosen: list[CoveredFragment] = []
    remaining = list(fragments)

    while covered < target_hi:
        v, flag = covered
        threshold = (v, 1 + flag)
        qualifying = [
            f
            for f in remaining
            if f._lower_key() <= threshold and f._upper_key() > covered
        ]
        if not qualifying:
            return None
        best = max(qualifying, key=lambda f: (f._lower_key(), f._upper_key()))
        clip = None
        if chosen:
            # exclude everything at or below the covered upper bound
            clip = Interval(low=v, high=None, low_open=(flag == 0))
        chosen.append(CoveredFragment(best, clip))
        covered = max(covered, best._upper_key())
        remaining.remove(best)
    return chosen


def covered_bytes(cover: list[CoveredFragment], sizes: dict[Interval, float]) -> float:
    """Total bytes that must be read to scan a cover."""
    return sum(sizes[c.interval] for c in cover)
