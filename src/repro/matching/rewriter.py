"""Query rewriting using (partitioned) materialized views (§8).

The rewriter drives three things per query:

* :meth:`Rewriter.find_matches` — every view in the statistics index whose
  signature matches some subquery of Q, *resident or not*.  Non-resident
  matches exist purely so DeepSea can record that the view "could have
  been used" (§8.4).
* :meth:`Rewriter.build_rewritings` — executable plans for matches whose
  view (or a fragment cover of the query's range) is resident in the
  pool, with estimated costs.
* :func:`estimate_plan_cost` — a cheap cost estimate used to rank
  rewritings and to compute benefit events (COST(Q) − COST(Q/V)).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable

from repro.caches import register_cache
from repro.engine.catalog import Catalog
from repro.engine.cost import ClusterSpec
from repro.errors import MatchError
from repro.matching import fragment_cache
from repro.matching.cover_cache import CoverCache
from repro.matching.filter_tree import FilterTree
from repro.matching.matcher import Compensation, match_view, partition_attr_ranges
from repro.partitioning.intervals import Interval
from repro.query.algebra import (
    Aggregate,
    Join,
    MaterializedScan,
    Plan,
    Project,
    Relation,
    Select,
    replace_subplan,
)
from repro.query.analysis import SchemaMap, analyze_plan, job_boundaries
from repro.query.optimizer import push_down
from repro.query.predicates import RangePredicate
from repro.query.signature import Signature, compute_signature
from repro.query.subqueries import unique_subplans
from repro.storage.pool import MaterializedViewPool

DomainLookup = Callable[[str], "Interval | None"]

# Crude per-operator output-size factors for the estimator. Ranking only:
# rewritings differ mainly in leaf read volume and job count, which the
# estimator gets right; absolute intermediate sizes need not be accurate.
_SELECT_FACTOR = 0.2
_PROJECT_FACTOR = 0.8
_AGG_FACTOR = 0.05

# Live rewriter instances, for registry-driven clearing of the
# per-instance plan-cost memos (worker isolation, cold/warm tests).
_REWRITERS: "weakref.WeakSet[Rewriter]" = weakref.WeakSet()
_ESTIMATE_MEMO_STATS = {"hits": 0, "misses": 0}


def _clear_estimate_memos() -> None:
    for rewriter in _REWRITERS:
        rewriter._estimate_memo.clear()
    _ESTIMATE_MEMO_STATS["hits"] = 0
    _ESTIMATE_MEMO_STATS["misses"] = 0


def _estimate_memo_stats() -> dict:
    return {
        "hits": _ESTIMATE_MEMO_STATS["hits"],
        "misses": _ESTIMATE_MEMO_STATS["misses"],
        "evictions": 0,
        "entries": sum(len(r._estimate_memo) for r in _REWRITERS),
    }


register_cache("matching.estimate_memo", _clear_estimate_memos, _estimate_memo_stats)


@dataclass(frozen=True)
class ViewMatch:
    """A view whose signature matches a subquery of the current query."""

    view_id: str
    subplan: Plan
    compensation: Compensation
    attr_ranges: dict[str, Interval]

    def __hash__(self) -> int:  # attr_ranges is unhashable; identity is fine
        return hash((self.view_id, self.subplan))


@dataclass
class Rewriting:
    """An executable rewriting of the query over resident pool entries.

    ``replaced``/``replacement`` record the substitution performed, so the
    instrumentation can transform capture targets that contain the
    replaced subtree (§9).
    """

    plan: Plan
    view_id: str
    attr: str | None  # partition attribute used, None = whole view
    fragment_ids: tuple[str, ...]
    est_cost_s: float
    replaced: Plan | None = None
    replacement: Plan | None = None


@dataclass
class PlanEstimate:
    bytes_out: float
    cost_s: float
    jobs: int


class Rewriter:
    def __init__(
        self,
        schemas: SchemaMap,
        filter_tree: FilterTree,
        pool: MaterializedViewPool,
        catalog: Catalog,
        cluster: ClusterSpec,
        domain_lookup: DomainLookup,
    ) -> None:
        self.schemas = schemas
        self.filter_tree = filter_tree
        self.pool = pool
        self.catalog = catalog
        self.cluster = cluster
        self.domain_lookup = domain_lookup
        self._signature_cache: dict[Plan, Signature] = {}
        # Greedy-cover memo invalidated by pool cover deltas (per-view
        # versions), shared with DeepSea's reconstruction planning.
        self.cover_cache = CoverCache(pool)
        # Plan-cost memo keyed on everything the estimate reads: the plan,
        # the catalog version, and the cover versions of the views its
        # MaterializedScan leaves resolve against (see estimate_plan_cost).
        self._estimate_memo: dict[tuple, PlanEstimate] = {}
        _REWRITERS.add(self)

    # ------------------------------------------------------------------
    def signature_of(self, plan: Plan) -> Signature:
        sig = self._signature_cache.get(plan)
        if sig is None:
            sig = compute_signature(plan, self.schemas)
            self._signature_cache[plan] = sig
        return sig

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def find_matches(self, query: Plan) -> list[ViewMatch]:
        """All (subquery, view) signature matches, resident or not."""
        matches: list[ViewMatch] = []
        for sub in unique_subplans(query):
            if isinstance(sub, (Relation, MaterializedScan)):
                continue
            sub_sig = self.signature_of(sub)
            for view_id, view_sig in self.filter_tree.candidates(sub_sig):
                compensation = match_view(view_sig, sub_sig)
                if compensation is None:
                    continue
                matches.append(
                    ViewMatch(
                        view_id,
                        sub,
                        compensation,
                        partition_attr_ranges(view_sig, sub_sig),
                    )
                )
        return matches

    # ------------------------------------------------------------------
    # Rewriting construction
    # ------------------------------------------------------------------
    def build_rewritings(self, query: Plan, matches: list[ViewMatch]) -> list[Rewriting]:
        rewritings: list[Rewriting] = []
        for match in matches:
            if not self.pool.is_resident(match.view_id):
                continue
            if self.pool.whole_view_entry(match.view_id) is not None:
                rewritings.append(self._whole_view_rewriting(query, match))
            for attr in self.pool.partition_attrs(match.view_id):
                rewriting = self._partition_rewriting(query, match, attr)
                if rewriting is not None:
                    rewritings.append(rewriting)
        return rewritings

    def _compensated(self, scan: Plan, compensation: Compensation) -> Plan:
        plan = scan
        if compensation.selections:
            plan = Select(plan, compensation.selections)
        if compensation.projection is not None:
            plan = Project(plan, compensation.projection)
        return plan

    def _whole_view_rewriting(self, query: Plan, match: ViewMatch) -> Rewriting:
        scan = MaterializedScan(match.view_id)
        replacement = self._compensated(scan, match.compensation)
        plan = replace_subplan(query, match.subplan, replacement)
        return Rewriting(
            plan,
            match.view_id,
            None,
            (),
            self.estimate_plan_cost(plan).cost_s,
            replaced=match.subplan,
            replacement=replacement,
        )

    def _partition_rewriting(self, query: Plan, match: ViewMatch, attr: str) -> Rewriting | None:
        entries = self.pool.fragments_of(match.view_id, attr)
        if not entries:
            return None
        theta = match.attr_ranges.get(attr)
        domain = self.domain_lookup(attr)
        if theta is None:
            # No selection on the partition attribute: must cover the domain.
            if domain is None:
                return None
            theta = domain
        elif domain is not None:
            clamped = theta.intersect(domain)
            if clamped is None:
                return None  # selection entirely outside the domain
            theta = clamped
        cover = self.cover_cache.cover(match.view_id, attr, theta)
        if cover is None:
            return None  # eviction holes: the partition cannot answer this
        by_interval = {e.key.interval: e for e in entries}
        fids = tuple(by_interval[c.interval].fragment_id for c in cover)
        clips = tuple(c.clip for c in cover)
        scan = MaterializedScan(match.view_id, fids, attr, clips)
        # Intersect the cached per-conjunct fragment sets before costing:
        # the compensating selection is the conjunction the executor will
        # evaluate over this scan, so classifying it here fills the
        # fragment cache (one miss); the execution of the winning
        # rewriting — and every later query with the same conjunct shape
        # and constants at this cover version — is a pure hit.  Pruning
        # is wall-clock-only: the estimate below still costs the full
        # cover, keeping the simulated economics byte-identical.
        if match.compensation.selections:
            fragment_cache.GLOBAL.classify(self.pool, scan, match.compensation.selections)
        replacement = self._compensated(scan, match.compensation)
        plan = replace_subplan(query, match.subplan, replacement)
        return Rewriting(
            plan,
            match.view_id,
            attr,
            fids,
            self.estimate_plan_cost(plan).cost_s,
            replaced=match.subplan,
            replacement=replacement,
        )

    # ------------------------------------------------------------------
    # Cost estimation
    # ------------------------------------------------------------------
    def estimate_plan_cost(self, plan: Plan) -> PlanEstimate:
        """Estimated simulated cost, including intermediate job-boundary writes.

        Memoized: the estimate is pure in the plan tree, the catalog
        version (base-relation sizes), and the cover versions of the
        views the plan reads (fragment entries are immutable, so a
        matching version pins every ``get_fragment``/``whole_view_entry``
        resolution).  Matching and statistics re-cost the same plans many
        times per query — and a memo hit replays the identical floats, so
        the simulated economics are unchanged.
        """
        analysis = analyze_plan(plan)
        key = (
            plan,
            self.catalog.version,
            tuple(self.pool.cover_version(v) for v in analysis.view_ids),
        )
        memo = self._estimate_memo
        est = memo.get(key)
        if est is not None:
            _ESTIMATE_MEMO_STATS["hits"] += 1
            return est
        _ESTIMATE_MEMO_STATS["misses"] += 1
        est = self._estimate(plan, analysis.boundaries)
        if est.jobs == 0:
            est = PlanEstimate(est.bytes_out, est.cost_s + self.cluster.job_overhead_s, 1)
        memo[key] = est
        return est

    def _estimate(self, plan: Plan, boundaries: set[Plan]) -> PlanEstimate:
        est = self._estimate_node(plan, boundaries)
        if plan in boundaries:
            est = PlanEstimate(
                est.bytes_out,
                est.cost_s + self.cluster.write_elapsed(est.bytes_out, nfiles=1),
                est.jobs,
            )
        return est

    def _estimate_node(self, plan: Plan, boundaries: set[Plan]) -> PlanEstimate:
        if isinstance(plan, Relation):
            size = self.catalog.get(plan.name).size_bytes
            return PlanEstimate(size, self.cluster.read_elapsed(size, 1), 0)
        if isinstance(plan, MaterializedScan):
            if plan.fragment_ids:
                sizes = [self.pool.get_fragment(f).size_bytes for f in plan.fragment_ids]
                nbytes, nfiles = sum(sizes), len(sizes)
            else:
                entry = self.pool.whole_view_entry(plan.view_id)
                if entry is None:
                    raise MatchError(f"view not resident: {plan.view_id!r}")
                nbytes, nfiles = entry.size_bytes, 1
            return PlanEstimate(nbytes, self.cluster.read_elapsed(nbytes, nfiles), 0)
        if isinstance(plan, Select):
            child = self._estimate(plan.child, boundaries)
            factor = _SELECT_FACTOR ** len(plan.predicates)
            return PlanEstimate(child.bytes_out * factor, child.cost_s, child.jobs)
        if isinstance(plan, Project):
            child = self._estimate(plan.child, boundaries)
            return PlanEstimate(child.bytes_out * _PROJECT_FACTOR, child.cost_s, child.jobs)
        if isinstance(plan, Join):
            left = self._estimate(plan.left, boundaries)
            right = self._estimate(plan.right, boundaries)
            out = max(left.bytes_out, right.bytes_out)
            cost = (
                left.cost_s
                + right.cost_s
                + self.cluster.job_overhead_s
                + self.cluster.shuffle_elapsed(out)
            )
            return PlanEstimate(out, cost, left.jobs + right.jobs + 1)
        if isinstance(plan, Aggregate):
            child = self._estimate(plan.child, boundaries)
            out = child.bytes_out * _AGG_FACTOR
            cost = child.cost_s + self.cluster.job_overhead_s + self.cluster.shuffle_elapsed(out)
            return PlanEstimate(out, cost, child.jobs + 1)
        raise MatchError(f"cannot estimate {type(plan).__name__}")

    # ------------------------------------------------------------------
    # Hypothetical savings (for statistics on non-resident views)
    # ------------------------------------------------------------------
    def estimate_saving(
        self,
        query: Plan,
        match: ViewMatch,
        view_size_bytes: float,
        partition_attrs: list[str],
    ) -> float:
        """Estimated COST(Q) − COST(Q/V) if the matched view existed.

        COST(Q) is what the optimizer would actually run *without* the
        view: the subexpression with the query's selection applied and
        pushed down.  COST(Q/V) reads only the selected fraction of the
        view when a (statistical) partition exists on a restricted
        attribute, the whole view otherwise.
        """
        enclosed: Plan = match.subplan
        if match.attr_ranges:
            predicates = tuple(
                RangePredicate(attr, interval)
                for attr, interval in sorted(match.attr_ranges.items())
            )
            enclosed = Select(enclosed, predicates)
        pushed = push_down(enclosed, self.schemas)
        sub_cost = self.estimate_plan_cost(pushed).cost_s
        frac = 1.0
        for attr in partition_attrs:
            theta = match.attr_ranges.get(attr)
            domain = self.domain_lookup(attr)
            if theta is None or domain is None or domain.width <= 0:
                continue
            clamped = theta.intersect(domain)
            width = clamped.width if clamped is not None else 0.0
            frac = min(frac, max(width / domain.width, 0.0))
        read_cost = self.cluster.read_elapsed(view_size_bytes * frac, 1)
        return max(sub_cost - read_cost, 0.0)
