"""Incremental ingest with delta maintenance of materialized fragments.

Base tables in the paper are static; real workloads append.  This module
makes micro-batch appends first-class: :meth:`DeltaMaintainer.apply`
(called by ``DeepSea.ingest`` inside an open pool transaction) appends a
batch to one base table via :meth:`~repro.engine.catalog.Catalog.ingest`
and brings every resident materialized view whose definition reads that
table back in sync — without ever changing an answer.

Two maintenance paths:

* **Delta patch** — for views whose defining plan is a ``Select``/
  ``Project`` chain over the ingested relation.  Those operators are
  distributive over append *and* order-preserving, so the view of the
  grown table is exactly ``concat(view(old_rows), view(batch))``.  The
  pass executes the view plan over a batch-only throwaway catalog, routes
  the resulting delta rows to the affected fragments through the pool's
  sorted interval structure (fragments whose interval misses the batch's
  min/max range are skipped without a mask), and appends each fragment's
  slice to its payload.  A patch is a journaled evict + re-admit under
  the same :class:`~repro.storage.pool.FragmentKey` — never an in-place
  overwrite — so payload-immutability invariants (prune-cache min/max
  sidecars, epoch-pinned snapshot leases) hold and cache subscribers see
  the ordinary admit/evict CoverDelta pair: every tier invalidates by
  exact version, nothing flushes globally.
* **Rebuild from base** — the always-correct fallback for joins,
  aggregates, and forced-rebuild benchmarking: re-run the defining plan
  against the (post-append) catalog and rewrite every resident entry
  from the fresh result.

All work is charged to ``CostLedger.maint_s`` (plus the routed/applied/
patched/rebuilt counters), and the maintainer's observed per-table ingest
rates feed :meth:`predicted_upkeep_s` — the upkeep term the §7 selector
adds to a candidate's creation cost, so views over hot append streams
must clear a higher evidence bar before winning ``S_max`` budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.catalog import Catalog
from repro.engine.cost import CostLedger
from repro.engine.executor import ExecutionContext, Executor
from repro.engine.table import Table
from repro.query.algebra import Plan, Project, Relation, Select, base_relations

if TYPE_CHECKING:
    from repro.storage.pool import FragmentEntry

# Queries of look-ahead when pricing upkeep against read benefit: the
# selector charges a candidate the maintenance it is predicted to cause
# over this many future queries at the observed ingest rate.
UPKEEP_HORIZON_QUERIES = 8.0


def delta_source(plan: Plan) -> str | None:
    """The single base relation under an order-preserving operator chain.

    Returns the relation name when ``plan`` is ``Select``/``Project``
    operators stacked over one ``Relation`` — the shape for which
    ``view(base ++ batch) == view(base) ++ view(batch)`` holds row-for-row
    (filter and project preserve row order; append adds batch rows at the
    end) — and ``None`` for any plan containing a join or an aggregate,
    which must take the rebuild path.
    """
    node = plan
    while isinstance(node, (Select, Project)):
        node = node.child
    return node.name if isinstance(node, Relation) else None


@dataclass
class IngestReport:
    """Outcome of one micro-batch append, for benchmarks and tests."""

    table: str
    rows: int
    clock: float
    ledger: CostLedger
    views_delta: tuple[str, ...]
    views_rebuilt: tuple[str, ...]
    fragments_dropped: int

    @property
    def maint_s(self) -> float:
        return self.ledger.maint_s

    @property
    def fragments_patched(self) -> int:
        return self.ledger.fragments_patched

    @property
    def fragments_rebuilt(self) -> int:
        return self.ledger.fragments_rebuilt


class DeltaMaintainer:
    """Routes ingested micro-batches into the materialized-view pool."""

    def __init__(self, system, *, force_rebuild: bool = False):
        self.system = system
        # Benchmarking lever: take the recompute-from-base path even for
        # delta-able views, so ``ingest-bench`` can price delta
        # maintenance against the fallback on identical scenarios.
        self.force_rebuild = force_rebuild
        self.reports: list[IngestReport] = []
        # name -> [rows_total, batches_total, first_clock]; cumulative
        # observed ingest pressure per base table (deterministic — no
        # decay constants to tune).
        self._observed: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    # Ingest-rate observation and upkeep prediction (§7 integration)
    # ------------------------------------------------------------------
    def _observe(self, name: str, nrows: int, clock: float) -> None:
        if getattr(self.system, "_retrying", False):
            return  # crash-retry replays apply(); count the batch once
        stats = self._observed.get(name)
        if stats is None:
            self._observed[name] = [float(nrows), 1.0, clock]
        else:
            stats[0] += nrows
            stats[1] += 1.0

    def per_query_rates(self, name: str, clock: float) -> tuple[float, float]:
        """Observed (rows, batches) appended to ``name`` per query tick."""
        stats = self._observed.get(name)
        if stats is None:
            return 0.0, 0.0
        span = max(1.0, clock - stats[2] + 1.0)
        return stats[0] / span, stats[1] / span

    def predicted_upkeep_s(self, view_id: str, plan: Plan) -> float:
        """Maintenance seconds this view is predicted to cost over the
        upkeep horizon, given observed ingest rates on its base tables.

        Exactly ``0.0`` when none of the plan's relations has seen a
        batch, so workloads without ingest price candidates bit-
        identically to before.  Delta-able views pay an append-write of
        the view's share of the per-query delta bytes; everything else
        pays a full recompute + rewrite per observed batch.
        """
        names = [n for n in set(base_relations(plan)) if n in self._observed]
        if not names:
            return 0.0
        system = self.system
        cluster = system.cluster
        clock = float(system.clock)
        src = delta_source(plan)
        upkeep_per_query = 0.0
        for name in sorted(names):
            rows_pq, batches_pq = self.per_query_rates(name, clock)
            if rows_pq <= 0.0:
                continue
            base = system.catalog.get(name)
            delta_bytes_pq = rows_pq * base.schema.row_bytes * base.scale
            estimate = system.rewriter.estimate_plan_cost(plan)
            if src == name and not self.force_rebuild:
                if base.size_bytes > 0:
                    share = min(1.0, estimate.bytes_out / base.size_bytes)
                else:
                    share = 1.0
                upkeep_per_query += cluster.write_elapsed(delta_bytes_pq * share, nfiles=1)
            else:
                upkeep_per_query += batches_pq * (
                    estimate.cost_s + cluster.write_elapsed(estimate.bytes_out, nfiles=1)
                )
        return UPKEEP_HORIZON_QUERIES * upkeep_per_query

    # ------------------------------------------------------------------
    # Batch application (runs inside an open pool transaction)
    # ------------------------------------------------------------------
    def apply(self, name: str, rows, ledger: CostLedger) -> IngestReport:
        """Append one micro-batch and maintain every affected view.

        Must run inside an open pool transaction (``DeepSea.ingest``
        arranges this): the catalog append and every fragment patch are
        journaled, so a mid-batch crash rolls the whole step back — the
        base table, the catalog version, and the pool configuration all
        return to their pre-batch state, stranding any cache entries
        stamped with the aborted version.
        """
        system = self.system
        pool = system.pool
        catalog = system.catalog
        clock = float(system.clock)
        batch = catalog.ingest(name, rows, journal=pool.journal)
        self._observe(name, batch.nrows, clock)
        # Appending to the base table writes the batch bytes once,
        # regardless of what is materialized (H pays exactly this).
        ledger.charge_write(batch.size_bytes, nfiles=1)
        views_delta: list[str] = []
        views_rebuilt: list[str] = []
        dropped = 0
        for view_id in pool.resident_view_ids():
            plan = pool.definition(view_id).plan
            if name not in base_relations(plan):
                continue
            if not self.force_rebuild and delta_source(plan) == name:
                dropped += self._apply_delta(view_id, plan, batch, ledger)
                views_delta.append(view_id)
            else:
                dropped += self._rebuild(view_id, plan, ledger)
                views_rebuilt.append(view_id)
        report = IngestReport(
            table=name,
            rows=batch.nrows,
            clock=clock,
            ledger=ledger,
            views_delta=tuple(views_delta),
            views_rebuilt=tuple(views_rebuilt),
            fragments_dropped=dropped,
        )
        self.reports.append(report)
        return report

    def _entries_of(self, view_id: str) -> "list[tuple[str | None, FragmentEntry]]":
        """All resident entries of a view in deterministic order, snapshotted
        (patching replaces entries, so iteration must not chase the lists)."""
        pool = self.system.pool
        out: "list[tuple[str | None, FragmentEntry]]" = []
        whole = pool.whole_view_entry(view_id)
        if whole is not None:
            out.append((None, whole))
        for attr in pool.partition_attrs(view_id):
            out.extend((attr, e) for e in pool.fragments_of(view_id, attr))
        return out

    def _patch(self, entry: "FragmentEntry", payload: Table) -> bool:
        """Replace ``entry``'s payload, or drop the entry when the grown
        payload no longer fits under ``S_max`` (correct either way: a
        missing fragment falls back to base tables at read time).
        Returns True when the entry was dropped."""
        pool = self.system.pool
        if not pool.fits(payload.size_bytes - entry.size_bytes):
            pool.evict(entry.fragment_id)
            return True
        pool.patch_entry(entry.fragment_id, payload)
        return False

    def _apply_delta(self, view_id: str, plan: Plan, batch: Table, ledger: CostLedger) -> int:
        """Route the batch's view rows to the fragments they belong to."""
        system = self.system
        pool = system.pool
        cluster = system.cluster
        # The view's own rows contributed by the batch: the defining plan
        # over a throwaway batch-only catalog.  Executor semantics (not a
        # re-implementation) guarantee the delta rows are byte-identical
        # to the tail of a full recompute.
        scratch_catalog = Catalog()
        scratch_catalog.register(delta_source(plan), batch)
        scratch = CostLedger(cluster)
        executor = Executor(ExecutionContext(scratch_catalog, None, cluster))
        delta = executor.execute(plan, scratch, use_cache=False).table
        seconds = scratch.total_seconds
        # routed = delta rows entering the router; applied = rows landed
        # in payloads (overlapping fragments may land a row twice).
        applied = patched = dropped = 0
        for attr, entry in self._entries_of(view_id):
            if attr is None:
                if delta.nrows == 0:
                    continue
                old = pool.read_entry(entry.fragment_id, ledger)
                payload = Table.concat_many([old, delta])
                seconds += cluster.write_elapsed(delta.size_bytes, nfiles=1)
                applied += delta.nrows
                if self._patch(entry, payload):
                    dropped += 1
                else:
                    patched += 1
                continue
            values = delta.column(attr)
            if len(values) == 0:
                continue
            lo, hi = float(values.min()), float(values.max())
            interval = entry.key.interval
            # Sorted-interval pruning: a fragment whose range misses the
            # batch's [min, max] envelope routes zero rows — skip the mask.
            if hi < interval.lo or lo > interval.hi:
                continue
            mask = interval.mask(values)
            hits = int(np.count_nonzero(mask))
            if hits == 0:
                continue
            piece = delta.filter(mask)
            old = pool.read_entry(entry.fragment_id, ledger)
            payload = Table.concat_many([old, piece])
            seconds += cluster.write_elapsed(piece.size_bytes, nfiles=1)
            applied += hits
            if self._patch(entry, payload):
                dropped += 1
            else:
                patched += 1
        ledger.charge_maintenance(seconds, routed=delta.nrows, applied=applied, patched=patched)
        return dropped

    def _rebuild(self, view_id: str, plan: Plan, ledger: CostLedger) -> int:
        """Recompute the view from (post-append) base tables and rewrite
        every resident entry — the always-correct fallback."""
        system = self.system
        pool = system.pool
        cluster = system.cluster
        scratch = CostLedger(cluster)
        executor = Executor(ExecutionContext(system.catalog, None, cluster))
        table = executor.execute(plan, scratch).table
        seconds = scratch.total_seconds
        rebuilt = dropped = 0
        for attr, entry in self._entries_of(view_id):
            if attr is None:
                payload = table
            else:
                payload = table.filter(entry.key.interval.mask(table.column(attr)))
            seconds += cluster.write_elapsed(payload.size_bytes, nfiles=1)
            if self._patch(entry, payload):
                dropped += 1
            else:
                rebuilt += 1
        ledger.charge_maintenance(seconds, rebuilt=rebuilt)
        return dropped
