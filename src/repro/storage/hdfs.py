"""Simulated distributed file system.

Stores the payload (a :class:`~repro.engine.table.Table`) for every
materialized view and fragment under a path, tracks per-file nominal byte
sizes, and lets callers charge read/write time against a
:class:`~repro.engine.cost.CostLedger`.  This stands in for HDFS in the
original DeepSea deployment: files are immutable, writes are expensive,
and each file is scanned by at least one map task.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.cost import CostLedger
from repro.engine.table import Table
from repro.errors import PoolError


@dataclass
class StoredFile:
    """One immutable file: its payload and nominal size."""

    path: str
    table: Table
    size_bytes: float


class SimulatedHDFS:
    """An in-memory stand-in for HDFS."""

    def __init__(self) -> None:
        self._files: dict[str, StoredFile] = {}

    def write(self, path: str, table: Table, ledger: CostLedger | None = None) -> StoredFile:
        """Store ``table`` at ``path``, charging write cost if a ledger is given."""
        if path in self._files:
            raise PoolError(f"file already exists: {path!r}")
        stored = StoredFile(path, table, table.size_bytes)
        self._files[path] = stored
        if ledger is not None:
            ledger.charge_write(stored.size_bytes, nfiles=1)
        return stored

    def read(self, path: str, ledger: CostLedger | None = None) -> Table:
        """Fetch the payload at ``path``, charging read cost if asked."""
        stored = self._get(path)
        if ledger is not None:
            ledger.charge_read(stored.size_bytes, nfiles=1)
        return stored.table

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise PoolError(f"no such file: {path!r}")
        del self._files[path]

    def size_of(self, path: str) -> float:
        return self._get(path).size_bytes

    def exists(self, path: str) -> bool:
        return path in self._files

    @property
    def used_bytes(self) -> float:
        return sum(f.size_bytes for f in self._files.values())

    @property
    def file_count(self) -> int:
        return len(self._files)

    def _get(self, path: str) -> StoredFile:
        try:
            return self._files[path]
        except KeyError:
            raise PoolError(f"no such file: {path!r}") from None
