"""Simulated distributed file system.

Stores the payload (a :class:`~repro.engine.table.Table`) for every
materialized view and fragment under a path, tracks per-file nominal byte
sizes, and lets callers charge read/write time against a
:class:`~repro.engine.cost.CostLedger`.  This stands in for HDFS in the
original DeepSea deployment: files are immutable, writes are expensive,
and each file is scanned by at least one map task.

Fault semantics (:mod:`repro.faults`): an attached
:class:`~repro.faults.injector.FaultInjector` can damage individual
replicas on read (charged as re-reads, payload unchanged) and a file can
lose *all* replicas via :meth:`lose_replicas`, after which a plain read
raises :class:`~repro.errors.BlockLostError` until :meth:`restore` heals
the file with a recomputed payload.  Caller bugs — duplicate writes,
unknown paths — stay :class:`~repro.errors.PoolError`, so recoverable
cluster damage is catchable distinctly from programming errors.  Every
failed operation leaves ``used_bytes``/``file_count`` exactly as they
were: mutations happen only after all checks pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.cost import CostLedger
from repro.engine.table import Table
from repro.errors import BlockLostError, PoolError, RecoveryError

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector


@dataclass
class StoredFile:
    """One immutable file: its payload and nominal size."""

    path: str
    table: Table
    size_bytes: float


class SimulatedHDFS:
    """An in-memory stand-in for HDFS."""

    def __init__(self) -> None:
        self._files: dict[str, StoredFile] = {}
        self._lost: set[str] = set()
        self._faults: "FaultInjector | None" = None

    def attach_faults(self, injector: "FaultInjector | None") -> None:
        """Route replica-level read faults through ``injector``."""
        self._faults = injector

    def write(self, path: str, table: Table, ledger: CostLedger | None = None) -> StoredFile:
        """Store ``table`` at ``path``, charging write cost if a ledger is given.

        A simulated disk write is a natural materialization boundary:
        late-materialized views are gathered into plain tables here, so a
        stored fragment is self-contained and never pins the (possibly
        much larger) root table its selection vector pointed into.
        """
        if path in self._files:
            raise PoolError(f"file already exists: {path!r}")
        table = table.materialize()
        stored = StoredFile(path, table, table.size_bytes)
        self._files[path] = stored
        if ledger is not None:
            ledger.charge_write(stored.size_bytes, nfiles=1)
        return stored

    def read(
        self,
        path: str,
        ledger: CostLedger | None = None,
        *,
        charge_payload: bool = True,
    ) -> Table:
        """Fetch the payload at ``path``.

        ``charge_payload=False`` skips the base read charge for callers
        (the executor) that account scans themselves, while still running
        the fault draws and charging any replica-damage penalty to
        ``ledger``.  A file with every replica lost raises
        :class:`BlockLostError` — recovery lives one layer up, in the
        pool.
        """
        stored = self._get(path)
        if path in self._lost:
            raise BlockLostError(path)
        if ledger is not None and charge_payload:
            ledger.charge_read(stored.size_bytes, nfiles=1)
        if self._faults is not None and ledger is not None:
            self._faults.block_read_faults(path, stored.size_bytes, ledger)
        return stored.table

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise PoolError(f"no such file: {path!r}")
        del self._files[path]
        self._lost.discard(path)

    # ------------------------------------------------------------------
    # Fault surface
    # ------------------------------------------------------------------
    def lose_replicas(self, path: str) -> None:
        """Mark every replica of ``path`` as lost (injected damage)."""
        if path not in self._files:
            raise PoolError(f"no such file: {path!r}")
        self._lost.add(path)

    def is_lost(self, path: str) -> bool:
        return path in self._lost

    def restore(self, path: str, table: Table) -> StoredFile:
        """Heal a lost file with a recomputed payload of identical size.

        The recovery invariant — faults change cost, never answers —
        requires the recomputed payload to be byte-equivalent; a size
        mismatch means the recomputation diverged, which must surface as
        a hard :class:`RecoveryError`, never as silent corruption.
        """
        stored = self._get(path)
        if table.size_bytes != stored.size_bytes:
            raise RecoveryError(
                f"recomputed payload for {path!r} is {table.size_bytes:.0f} bytes, "
                f"stored size was {stored.size_bytes:.0f}"
            )
        self._files[path] = StoredFile(path, table, stored.size_bytes)
        self._lost.discard(path)
        return self._files[path]

    def peek(self, path: str) -> Table:
        """The payload regardless of replica damage — the journal's view.

        A write-ahead journal logs undo images *before* damage can strike;
        this models that: recovery machinery may read what a plain client
        cannot.
        """
        return self._get(path).table

    # ------------------------------------------------------------------
    def size_of(self, path: str) -> float:
        return self._get(path).size_bytes

    def exists(self, path: str) -> bool:
        return path in self._files

    @property
    def used_bytes(self) -> float:
        return sum(f.size_bytes for f in self._files.values())

    @property
    def file_count(self) -> int:
        return len(self._files)

    def _get(self, path: str) -> StoredFile:
        try:
            return self._files[path]
        except KeyError:
            raise PoolError(f"no such file: {path!r}") from None
