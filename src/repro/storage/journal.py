"""Write-ahead journal for the materialized-view pool.

A repartitioning step is a multi-operation pool mutation (evict the
parent, admit the pieces, possibly evict victims for space).  A controller
that dies between those operations must not leave the catalog half-moved —
the paper's progressive repartitioning only makes sense if the
configuration ``(V, P)`` is always one of the states the fault-free
controller would have produced.

The journal records an *undo image* for every operation inside an open
transaction: admits log the entry (undo = remove), evicts log the entry
plus its payload (undo = re-write and re-register), and base-table ingests
log the pre-batch table plus the catalog version (undo = re-install both,
stranding any cache entries stamped with the aborted version).  On a crash
the pool rolls the open transaction back in reverse order, restoring
exactly the pre-transaction configuration; the controller then retries the
step, so the faulted run converges to the same catalog trajectory as the
fault-free run — at strictly higher cost, which is the whole point.

The journal is process-local state, not a persisted file: the simulated
"disk" it would live on is this process's memory, and what matters for the
reproduction is the recovery *protocol*, not the serialization format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import PoolError

if TYPE_CHECKING:
    from repro.engine.catalog import Catalog
    from repro.engine.table import Table
    from repro.storage.pool import FragmentEntry


@dataclass
class JournalOp:
    """One journaled pool mutation with enough state to undo it."""

    op: str  # "admit" | "evict" | "ingest"
    entry: "FragmentEntry | None"
    payload: "Table | None" = None  # undo image; evicts + ingests
    # Catalog undo image (ingests only): the base table and catalog
    # version as they were before the micro-batch was appended.  The
    # version counter itself is *not* rewound on rollback, so version
    # numbers stamped by the aborted transaction are never re-issued —
    # in-process and shared-tier cache entries published mid-transaction
    # are stranded instead of aliasing later catalog states.
    catalog: "Catalog | None" = None
    table_name: str | None = None
    prior_version: int = 0


@dataclass
class Transaction:
    """One open repartitioning step."""

    tag: str
    seq: int
    ops: list[JournalOp] = field(default_factory=list)
    # Per-view cover versions at begin(): rollback restores them exactly,
    # re-validating matching-stage memo entries computed before the step.
    cover_versions: dict[str, int] = field(default_factory=dict)


class PoolJournal:
    """Undo log for multi-operation pool mutations."""

    def __init__(self) -> None:
        self.active: Transaction | None = None
        self.committed = 0
        self.rolled_back = 0
        self._seq = 0

    @property
    def journaling(self) -> bool:
        return self.active is not None

    def begin(self, tag: str, cover_versions: dict[str, int] | None = None) -> Transaction:
        if self.active is not None:
            raise PoolError(
                f"transaction {self.active.tag!r} already open; "
                f"repartitioning steps do not nest"
            )
        self._seq += 1
        self.active = Transaction(tag, self._seq, cover_versions=dict(cover_versions or {}))
        return self.active

    def record_admit(self, entry: "FragmentEntry") -> None:
        if self.active is not None:
            self.active.ops.append(JournalOp("admit", entry))

    def record_evict(self, entry: "FragmentEntry", payload: "Table") -> None:
        if self.active is not None:
            self.active.ops.append(JournalOp("evict", entry, payload))

    def record_ingest(
        self, catalog: "Catalog", name: str, prior_table: "Table", prior_version: int
    ) -> None:
        """Log a base-table append's undo image (pre-batch table + version)."""
        if self.active is not None:
            self.active.ops.append(
                JournalOp(
                    "ingest",
                    None,
                    prior_table,
                    catalog=catalog,
                    table_name=name,
                    prior_version=prior_version,
                )
            )

    def commit(self) -> None:
        if self.active is None:
            raise PoolError("commit without an open transaction")
        self.committed += 1
        self.active = None

    def take_for_rollback(self) -> Transaction:
        """Detach the open transaction so the pool can undo its ops."""
        if self.active is None:
            raise PoolError("rollback without an open transaction")
        txn = self.active
        self.active = None
        self.rolled_back += 1
        return txn
