"""The materialized-view pool — DeepSea's *configuration* (Definition 3).

The pool holds the set of views ``V`` currently materialized and, for each
view and partition attribute, the set of fragment intervals ``P(V, A)``.
Pool entries are managed at fragment granularity, which is what enables
DeepSea's fine-grained eviction: a single fragment of a partitioned view
can be dropped while its siblings stay resident.  An unpartitioned view
(the NP baseline, or a view the selector chose not to partition) is stored
as a single *whole-view* entry.

The pool enforces the storage bound ``S(C) ≤ S_max`` as a hard invariant:
additions that would exceed the limit raise, because the selection step
(§7.3) must have made room first.
"""

from __future__ import annotations

import itertools
from bisect import insort
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.engine.table import Table
from repro.errors import BlockLostError, PoolError, RecoveryError
from repro.partitioning.intervals import Interval, sort_key
from repro.query.algebra import Plan
from repro.storage.hdfs import SimulatedHDFS
from repro.storage.journal import PoolJournal

# Process-unique pool identities for result-cache keys (see
# MaterializedViewPool.uid).
_POOL_UIDS = itertools.count(1)

if TYPE_CHECKING:
    from repro.engine.cost import CostLedger
    from repro.faults.recovery import FragmentRecovery

WHOLE_VIEW_ATTR = None


@dataclass(frozen=True)
class CoverDelta:
    """One fine-grained pool residency change, published to subscribers.

    ``kind`` is ``"admit"`` (a new entry became resident), ``"evict"`` (an
    entry left, including rollback undoing an admit), or ``"restore"``
    (journal rollback re-registered an evicted entry).  ``version`` is the
    view's cover version *after* the mutation — subscribers key memo
    entries on it, so a delta for view V invalidates only V's entries.
    ``attr``/``interval`` are ``None`` for whole-view entries.
    """

    kind: str
    view_id: str
    attr: str | None
    interval: Interval | None
    fragment_id: str
    version: int


@dataclass(frozen=True)
class FragmentKey:
    """Stable identity of a pool entry: (view, partition attribute, interval).

    ``attr=None`` identifies the whole-view entry of an unpartitioned view.
    """

    view_id: str
    attr: str | None
    interval: Interval | None

    def __post_init__(self) -> None:
        if (self.attr is None) != (self.interval is None):
            raise PoolError("attr and interval must both be set or both be None")


@dataclass
class FragmentEntry:
    """A resident pool entry (fragment or whole view)."""

    fragment_id: str
    key: FragmentKey
    path: str
    size_bytes: float


@dataclass
class ViewDefinition:
    """Registered definition of a (potential) view: its defining plan."""

    view_id: str
    plan: Plan
    creation_cost_s: float = 0.0
    size_bytes: float = 0.0


@dataclass
class _PooledView:
    definition: ViewDefinition
    # attr -> list of fragment_ids, kept sorted by interval
    partitions: dict[str, list[str]] = field(default_factory=dict)
    whole_id: str | None = None


class MaterializedViewPool:
    """Pool of partitioned materialized views with a storage budget."""

    def __init__(self, smax_bytes: float | None = None, hdfs: SimulatedHDFS | None = None):
        self.smax_bytes = smax_bytes
        self.hdfs = hdfs or SimulatedHDFS()
        # Cache-invalidation identity: ``uid`` names this pool process-
        # uniquely (fragment ids like "frag-3" repeat across pools) and
        # ``epoch`` increments on *every* residency mutation — admit,
        # evict, rollback restore.  The subplan result cache keys
        # MaterializedScan-bearing plans on (uid, epoch), so a cached
        # result can never outlive the pool configuration it was computed
        # against.  Monotonic counters, never ``id()`` (reusable).
        self.uid: int = next(_POOL_UIDS)
        self.epoch: int = 0
        # Cross-process identity for the shared cache tier (see
        # Catalog.shared_ident): stamped by builders whose mutation
        # sequence is deterministic from a spec, None otherwise.
        self.shared_ident: "tuple | None" = None
        # Per-view cover versions: the epoch value of the view's last
        # residency mutation.  Every bump feeds the global epoch (a view
        # mutation is also a pool mutation — the result cache's epoch key
        # stays authoritative), but matching-stage memos key on the
        # *per-view* version so a mutation of view V invalidates only V's
        # entries.  Version values are epochs, hence globally unique:
        # after a rollback restores a view's pre-transaction version, no
        # later mutation can re-issue a mid-transaction value.
        self._cover_versions: dict[str, int] = {}
        # Delta subscribers (repro.matching.cover_cache): each residency
        # mutation publishes one CoverDelta so downstream indexes are
        # patched in place instead of rebuilt from a pool scan.
        self._subscribers: list[Callable[[CoverDelta], None]] = []
        self._views: dict[str, _PooledView] = {}
        self._definitions: dict[str, ViewDefinition] = {}
        self._fragments: dict[str, FragmentEntry] = {}
        # Keyed lookup index: FragmentKey -> fragment_id.  Replaces the
        # linear interval scan in find_fragment, which sits on the hot
        # path of refinement planning and re-creation checks.
        self._by_key: dict[FragmentKey, str] = {}
        self._counter = itertools.count()
        # Crash consistency: mutations inside an open transaction are
        # journaled with undo images; rollback() restores the exact
        # pre-transaction configuration (see repro.storage.journal).
        self.journal = PoolJournal()
        # Degradation path when every replica of an entry is lost: a
        # repro.faults.recovery.FragmentRecovery recomputes the payload
        # from base tables.  None (the default) surfaces the loss.
        self.recovery: "FragmentRecovery | None" = None
        # Retention hook for snapshot readers (repro.serve.snapshot): if
        # set, every entry leaving the pool is offered — with its payload —
        # to the hook *before* the file is deleted, so a reader pinned to
        # an older epoch can still produce the byte-identical bytes the
        # epoch promised.  The hook must not raise and must not touch the
        # pool (it runs mid-mutation).
        self.retention: "Callable[[FragmentEntry, Table], None] | None" = None

    # ------------------------------------------------------------------
    # Cover-delta protocol (per-view versions + subscriber deltas)
    # ------------------------------------------------------------------
    def cover_version(self, view_id: str) -> int:
        """The view's cover version: epoch of its last residency mutation.

        ``0`` for a view never mutated in this pool.  Memo entries keyed
        on ``(view_id, cover_version)`` stay valid across mutations of
        *other* views, and become valid again when a journal rollback
        restores the exact pre-transaction configuration and versions.
        """
        return self._cover_versions.get(view_id, 0)

    def subscribe(self, callback: Callable[[CoverDelta], None]) -> None:
        """Register a callback invoked with one delta per residency mutation."""
        self._subscribers.append(callback)

    def _bump(self, kind: str, entry: FragmentEntry) -> None:
        """Advance the epoch and the view's version; publish the delta."""
        self.epoch += 1
        key = entry.key
        self._cover_versions[key.view_id] = self.epoch
        if self._subscribers:
            delta = CoverDelta(
                kind, key.view_id, key.attr, key.interval, entry.fragment_id, self.epoch
            )
            for callback in self._subscribers:
                callback(delta)

    # ------------------------------------------------------------------
    # View definitions (exist independently of residency)
    # ------------------------------------------------------------------
    def define_view(self, view_id: str, plan: Plan) -> ViewDefinition:
        """Register a view definition (idempotent for identical plans)."""
        existing = self._definitions.get(view_id)
        if existing is not None:
            if existing.plan != plan:
                raise PoolError(f"view id collision: {view_id!r}")
            return existing
        definition = ViewDefinition(view_id, plan)
        self._definitions[view_id] = definition
        return definition

    def definition(self, view_id: str) -> ViewDefinition:
        try:
            return self._definitions[view_id]
        except KeyError:
            raise PoolError(f"unknown view: {view_id!r}") from None

    def has_definition(self, view_id: str) -> bool:
        return view_id in self._definitions

    # ------------------------------------------------------------------
    # Residency queries
    # ------------------------------------------------------------------
    def is_resident(self, view_id: str) -> bool:
        """True iff any entry of the view (whole or fragment) is in the pool."""
        return view_id in self._views

    def resident_view_ids(self) -> list[str]:
        return sorted(self._views)

    def whole_view_entry(self, view_id: str) -> FragmentEntry | None:
        view = self._views.get(view_id)
        if view is None or view.whole_id is None:
            return None
        return self._fragments[view.whole_id]

    def partition_attrs(self, view_id: str) -> list[str]:
        view = self._views.get(view_id)
        return sorted(view.partitions) if view else []

    def fragments_of(self, view_id: str, attr: str) -> list[FragmentEntry]:
        """Resident fragments of ``P(view, attr)``, sorted by interval."""
        view = self._views.get(view_id)
        if view is None or attr not in view.partitions:
            return []
        return [self._fragments[fid] for fid in view.partitions[attr]]

    def intervals_of(self, view_id: str, attr: str) -> list[Interval]:
        return [f.key.interval for f in self.fragments_of(view_id, attr)]

    def get_fragment(self, fragment_id: str) -> FragmentEntry:
        try:
            return self._fragments[fragment_id]
        except KeyError:
            raise PoolError(f"unknown fragment: {fragment_id!r}") from None

    def find_fragment(self, key: FragmentKey) -> FragmentEntry | None:
        """Locate a resident entry by its stable key (O(1) keyed lookup)."""
        if key.attr is None:
            return self.whole_view_entry(key.view_id)
        fid = self._by_key.get(key)
        return self._fragments[fid] if fid is not None else None

    def all_entries(self) -> list[FragmentEntry]:
        return list(self._fragments.values())

    def entries_snapshot(self) -> dict[str, FragmentEntry]:
        """Shallow copy of the fragment-id → entry map, for epoch-pinned
        readers (entries are immutable records, so sharing them is safe)."""
        return dict(self._fragments)

    def cover_versions_snapshot(self) -> dict[str, int]:
        """Copy of the per-view cover versions, for epoch-pinned readers."""
        return dict(self._cover_versions)

    @property
    def used_bytes(self) -> float:
        return sum(f.size_bytes for f in self._fragments.values())

    def fits(self, extra_bytes: float) -> bool:
        if self.smax_bytes is None:
            return True
        return self.used_bytes + extra_bytes <= self.smax_bytes + 1e-6

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_whole_view(self, view_id: str, table: Table) -> FragmentEntry:
        """Admit an unpartitioned view as a single pool entry."""
        self._require_definition(view_id)
        key = FragmentKey(view_id, None, None)
        return self._admit(key, table)

    def add_fragment(
        self, view_id: str, attr: str, interval: Interval, table: Table
    ) -> FragmentEntry:
        """Admit one fragment of ``P(view_id, attr)``."""
        self._require_definition(view_id)
        key = FragmentKey(view_id, attr, interval)
        if self.find_fragment(key) is not None:
            raise PoolError(f"fragment already resident: {key}")
        return self._admit(key, table)

    def evict(self, fragment_id: str) -> None:
        """Remove one entry (fragment or whole view) from the pool."""
        entry = self.get_fragment(fragment_id)
        if self.journal.journaling:
            # Undo image first — classic WAL discipline: log before act.
            self.journal.record_evict(entry, self.hdfs.peek(entry.path))
        self._remove_entry(entry)

    def patch_entry(self, fragment_id: str, table: Table) -> FragmentEntry:
        """Replace one entry's payload under the same :class:`FragmentKey`.

        Delta maintenance (repro.storage.ingest) appends ingested rows to
        the fragments they route to.  The replacement is deliberately an
        evict + re-admit — never an in-place overwrite — because three
        subsystems rely on payload immutability per fragment id: the
        fragment prune cache's min/max sidecar, epoch-pinned snapshot
        leases, and the cover-delta subscribers (which see the ordinary
        evict/admit pair and need no new delta kind).  The new entry gets
        a fresh fragment id and path; rollback restores the old entry via
        the standard journal replay.
        """
        entry = self.get_fragment(fragment_id)
        if self.journal.journaling:
            self.journal.record_evict(entry, self.hdfs.peek(entry.path))
        self._remove_entry(entry)
        return self._admit(entry.key, table)

    def _remove_entry(self, entry: FragmentEntry) -> None:
        view = self._views[entry.key.view_id]
        if entry.key.attr is None:
            view.whole_id = None
        else:
            view.partitions[entry.key.attr].remove(entry.fragment_id)
            if not view.partitions[entry.key.attr]:
                del view.partitions[entry.key.attr]
        if view.whole_id is None and not view.partitions:
            del self._views[entry.key.view_id]
        if self.retention is not None:
            # Offer the payload to snapshot retention before the bytes
            # vanish (peek, not read: retention is recovery machinery and
            # must see the payload even when every replica is lost).
            self.retention(entry, self.hdfs.peek(entry.path))
        self.hdfs.delete(entry.path)
        del self._fragments[entry.fragment_id]
        self._by_key.pop(entry.key, None)
        self._bump("evict", entry)

    def read_entry(self, fragment_id: str, ledger: "CostLedger | None" = None) -> Table:
        """Payload of an entry, without charging the base read (executor charges).

        ``ledger`` is the fault-accounting context: replica-damage
        penalties and — when every replica is gone and a recovery is
        attached — the full recompute-from-base-tables cost land on it.
        """
        entry = self.get_fragment(fragment_id)
        try:
            return self.hdfs.read(entry.path, ledger, charge_payload=False)
        except BlockLostError:
            if self.recovery is None:
                raise RecoveryError(
                    f"entry {fragment_id!r} lost all replicas and no recovery "
                    f"path is attached"
                ) from None
            return self.recovery.recover(self, entry, ledger)

    # ------------------------------------------------------------------
    # Crash consistency (write-ahead journal)
    # ------------------------------------------------------------------
    def begin(self, tag: str) -> None:
        """Open a journaled transaction around one repartitioning step.

        The per-view cover versions are snapshotted into the transaction:
        a rollback restores the exact pre-step configuration, so it must
        restore the exact pre-step versions too — anything keyed on them
        (matching-stage memos) becomes valid again, and mid-transaction
        versions are never re-issued because versions are drawn from the
        monotonic epoch.
        """
        self.journal.begin(tag, cover_versions=dict(self._cover_versions))

    def commit(self) -> None:
        self.journal.commit()

    def rollback(self, ledger: "CostLedger | None" = None) -> int:
        """Undo the open transaction, restoring the pre-step configuration.

        Replaying an evicted entry re-writes its bytes (charged to
        ``ledger`` — journal replay is real cluster work); undoing an
        admit deletes the file it created.  Returns the number of
        operations undone.
        """
        txn = self.journal.take_for_rollback()
        for op in reversed(txn.ops):
            if op.op == "admit":
                self._remove_entry(op.entry)
            elif op.op == "evict":
                self._restore_entry(op.entry, op.payload, ledger)
            else:  # "ingest": catalog undo image (see journal.record_ingest)
                op.catalog.rollback_ingest(op.table_name, op.payload, op.prior_version)
        # The configuration is now byte-identical to the pre-transaction
        # one, so the cover versions must be too: memo entries keyed on
        # them were computed against exactly this configuration.
        self._cover_versions = dict(txn.cover_versions)
        return len(txn.ops)

    def _restore_entry(
        self, entry: FragmentEntry, payload: Table, ledger: "CostLedger | None"
    ) -> None:
        self.hdfs.write(entry.path, payload)
        self._fragments[entry.fragment_id] = entry
        view = self._views.setdefault(
            entry.key.view_id, _PooledView(self.definition(entry.key.view_id))
        )
        if entry.key.attr is None:
            view.whole_id = entry.fragment_id
        else:
            ids = view.partitions.setdefault(entry.key.attr, [])
            insort(
                ids,
                entry.fragment_id,
                key=lambda f: sort_key(self._fragments[f].key.interval),
            )
            self._by_key[entry.key] = entry.fragment_id
        self._bump("restore", entry)
        if ledger is not None:
            ledger.charge_write(entry.size_bytes, nfiles=1)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_definition(self, view_id: str) -> None:
        if view_id not in self._definitions:
            raise PoolError(f"view {view_id!r} has no registered definition")

    def _admit(self, key: FragmentKey, table: Table) -> FragmentEntry:
        size = table.size_bytes
        if not self.fits(size):
            raise PoolError(f"admitting {size:.0f} bytes would exceed S_max={self.smax_bytes}")
        fid = f"frag-{next(self._counter)}"
        path = f"/pool/{key.view_id}/{key.attr or '_whole'}/{fid}"
        self.hdfs.write(path, table)
        entry = FragmentEntry(fid, key, path, size)
        self._fragments[fid] = entry
        view = self._views.setdefault(key.view_id, _PooledView(self.definition(key.view_id)))
        if key.attr is None:
            if view.whole_id is not None:
                raise PoolError(f"whole view already resident: {key.view_id!r}")
            view.whole_id = fid
        else:
            ids = view.partitions.setdefault(key.attr, [])
            # Keep the per-attribute list interval-ordered with one bisected
            # insertion instead of re-sorting the whole list on every admit.
            insort(ids, fid, key=lambda f: sort_key(self._fragments[f].key.interval))
            self._by_key[key] = fid
        self._bump("admit", entry)
        self.journal.record_admit(entry)
        return entry

    # ------------------------------------------------------------------
    # Inspection (Definition 3 snapshot)
    # ------------------------------------------------------------------
    def configuration(self) -> dict:
        """A ``(V, P)`` snapshot of the pool, for tests and reporting."""
        snapshot: dict = {}
        for view_id, view in self._views.items():
            snapshot[view_id] = {
                "whole": view.whole_id is not None,
                "partitions": {
                    attr: [self._fragments[fid].key.interval for fid in fids]
                    for attr, fids in view.partitions.items()
                },
            }
        return snapshot
